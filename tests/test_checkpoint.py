"""Self-verifying checkpoints: integrity, audit, and recovery.

The contract under test (ISSUE 3 acceptance criteria): every load path
either returns an audited structure or raises a typed
``CheckpointCorruption`` / ``InvariantViolation`` — never a wrong
answer — single-byte corruption of any saved artifact is detected, and
per-tree recovery restores a passing audit without a full rebuild.
"""

import copy
import hashlib
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    CheckpointService,
    CoverContract,
    audit_checkpoint,
    audit_cover,
    cover_labelings,
    load_cover_checkpoint,
    load_ft_checkpoint,
    load_labels_checkpoint,
    load_navigator_checkpoint,
    recover_cover,
    save_cover_checkpoint,
    save_ft_checkpoint,
    save_labels_checkpoint,
    save_navigator_checkpoint,
)
from repro.checkpoint.format import (
    canonical_bytes,
    section_crc,
    tree_section_name,
)
from repro.core import MetricNavigator
from repro.errors import CheckpointCorruption, InvariantViolation, ReproError
from repro.io import save_cover
from repro.metrics import random_points, sample_pairs
from repro.spanners import FaultTolerantSpanner
from repro.treecover import robust_tree_cover

pytestmark = pytest.mark.checkpoint

N = 40
EPS = 0.5
CONTRACT = CoverContract(gamma=2.5)


@pytest.fixture(scope="module")
def metric():
    return random_points(N, dim=2, seed=11)


@pytest.fixture(scope="module")
def cover(metric):
    return robust_tree_cover(metric, eps=EPS)


def _reseal(data: dict) -> dict:
    """Recompute section CRCs and the digest after editing bodies.

    Produces a *format-valid* file whose content changed — the weapon
    for testing that the semantic auditor catches what checksums
    cannot.
    """
    for entry in data["sections"].values():
        entry["crc32"] = section_crc(entry["body"])
    core = {key: data[key] for key in ("format", "kind", "meta", "sections")}
    data["digest"] = hashlib.sha256(canonical_bytes(core)).hexdigest()
    return data


# ----------------------------------------------------------------------
# Round trips


class TestRoundTrips:
    def test_cover_round_trip(self, metric, cover, tmp_path):
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(cover, path, contract=CONTRACT)
        loaded = load_cover_checkpoint(path, metric)
        assert loaded.size == cover.size
        for u, v in sample_pairs(N, 40, seed=1):
            assert abs(loaded.stretch(u, v) - cover.stretch(u, v)) < 1e-9

    def test_navigator_round_trip(self, metric, cover, tmp_path):
        navigator = MetricNavigator(metric, cover, 3)
        path = str(tmp_path / "nav.ckpt")
        save_navigator_checkpoint(navigator, path, contract=CONTRACT)
        rebuilt = load_navigator_checkpoint(path, metric)
        assert rebuilt.k == navigator.k
        assert rebuilt.num_edges == navigator.num_edges
        for u, v in sample_pairs(N, 30, seed=2):
            assert rebuilt.find_path(u, v) == navigator.find_path(u, v)

    def test_ft_round_trip_preserves_replicas(self, metric, cover, tmp_path):
        spanner = FaultTolerantSpanner(metric, f=1, k=4, cover=cover)
        path = str(tmp_path / "ft.ckpt")
        save_ft_checkpoint(spanner, path, contract=CONTRACT)
        reloaded = load_ft_checkpoint(path, metric)
        assert reloaded.f == spanner.f and reloaded.k == spanner.k
        assert reloaded.replicas == spanner.replicas
        faults = {5}
        path_uv = reloaded.find_path(0, 9, faults)
        assert reloaded.verify_path(0, 9, faults, path_uv) >= 1.0

    def test_labels_round_trip(self, metric, cover, tmp_path):
        path = str(tmp_path / "labels.ckpt")
        save_labels_checkpoint(cover, path, contract=CONTRACT)
        loaded_cover, tables = load_labels_checkpoint(path, metric)
        assert tables == cover_labelings(loaded_cover)

    def test_v1_files_still_load_and_audit(self, metric, cover, tmp_path):
        path = str(tmp_path / "v1.json")
        save_cover(cover, path)
        loaded = load_cover_checkpoint(path, metric, contract=CONTRACT)
        assert loaded.size == cover.size
        report = audit_checkpoint(path, metric)
        assert report.kind == "cover"

    def test_audit_checkpoint_reports_every_kind(self, metric, cover, tmp_path):
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(cover, path, contract=CONTRACT)
        report = audit_checkpoint(path, metric)
        assert report.kind == "cover" and report.checks
        path = str(tmp_path / "labels.ckpt")
        save_labels_checkpoint(cover, path)
        assert audit_checkpoint(path, metric).kind == "routing_labels"


# ----------------------------------------------------------------------
# Atomic saves


class TestAtomicSave:
    def test_no_temp_files_left_behind(self, metric, cover, tmp_path):
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(cover, path)
        save_cover_checkpoint(cover, path)  # overwrite in place
        assert sorted(os.listdir(tmp_path)) == ["cover.ckpt"]

    def test_failed_save_leaves_previous_file_intact(
        self, metric, cover, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(cover, path)
        before = open(path, "rb").read()

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            save_cover_checkpoint(cover, path)
        monkeypatch.undo()
        assert open(path, "rb").read() == before
        assert sorted(os.listdir(tmp_path)) == ["cover.ckpt"]
        load_cover_checkpoint(path, metric)


# ----------------------------------------------------------------------
# Corruption detection (the "never a wrong answer" property)


@pytest.fixture(scope="module")
def saved_cover_bytes(metric, cover, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("ckpt") / "cover.ckpt")
    save_cover_checkpoint(cover, path, contract=CONTRACT)
    return open(path, "rb").read()


class TestCorruptionDetection:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_single_byte_corruption_always_detected(
        self, metric, saved_cover_bytes, tmp_path_factory, data
    ):
        """Flip one byte anywhere: the load must raise a typed error,
        never return a structure built from the damaged payload."""
        raw = bytearray(saved_cover_bytes)
        position = data.draw(st.integers(0, len(raw) - 1))
        new_byte = data.draw(
            st.integers(0, 255).filter(lambda b: b != raw[position])
        )
        raw[position] = new_byte
        path = str(tmp_path_factory.mktemp("corrupt") / "cover.ckpt")
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.raises((CheckpointCorruption, InvariantViolation)):
            load_cover_checkpoint(path, metric)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_field_corruption_behind_valid_checksums_is_audited(
        self, metric, saved_cover_bytes, tmp_path_factory, data
    ):
        """An attacker (or bug) that rewrites a field AND reseals the
        checksums still cannot smuggle a broken tree past the audit."""
        payload = json.loads(saved_cover_bytes.decode())
        num_trees = payload["sections"]["cover"]["body"]["num_trees"]
        index = data.draw(st.integers(0, num_trees - 1))
        body = payload["sections"][tree_section_name(index)]["body"]
        attack = data.draw(st.sampled_from(["weights", "parents", "rep"]))
        if attack == "weights":
            # Zeroing weights breaks domination (δ_T >= δ_X).
            body["tree"]["weights"] = [0.0] * len(body["tree"]["weights"])
        elif attack == "parents":
            # A second root breaks tree well-formedness; pick a vertex
            # that is not already the root.
            parents = body["tree"]["parents"]
            victim = max(v for v, p in enumerate(parents) if p != -1)
            parents[victim] = -1
        else:
            # Breaking the host/representative fixpoint breaks stretch.
            body["rep_point"] = list(reversed(body["rep_point"]))
        _reseal(payload)
        path = str(tmp_path_factory.mktemp("sneaky") / "cover.ckpt")
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(ReproError):
            load_cover_checkpoint(path, metric)

    def test_truncated_file_is_rejected(self, metric, saved_cover_bytes, tmp_path):
        path = str(tmp_path / "trunc.ckpt")
        with open(path, "wb") as handle:
            handle.write(saved_cover_bytes[: len(saved_cover_bytes) // 2])
        with pytest.raises(CheckpointCorruption):
            load_cover_checkpoint(path, metric)

    def test_wrong_kind_is_rejected(self, metric, cover, tmp_path):
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(cover, path)
        with pytest.raises(CheckpointCorruption):
            load_ft_checkpoint(path, metric)

    def test_corrupt_v1_fails_with_clear_error(self, metric, cover, tmp_path):
        path = str(tmp_path / "v1.json")
        save_cover(cover, path)
        payload = json.load(open(path))
        payload["trees"][0]["vertex_of_point"][3] = 10**9
        json.dump(payload, open(path, "w"))
        with pytest.raises(CheckpointCorruption, match="out of range"):
            load_cover_checkpoint(path, metric)

    def test_replica_pool_oversize_fails_audit(self, metric, cover, tmp_path):
        spanner = FaultTolerantSpanner(metric, f=1, k=4, cover=cover)
        path = str(tmp_path / "ft.ckpt")
        save_ft_checkpoint(spanner, path)
        payload = json.load(open(path))
        pools = payload["sections"]["replicas"]["body"]["pools"]
        pools[0][0] = list(range(min(8, N)))  # blow the f+1 bound
        _reseal(payload)
        json.dump(payload, open(path, "w"))
        with pytest.raises(InvariantViolation):
            load_ft_checkpoint(path, metric)

    def test_label_corruption_fails_audit(self, metric, cover, tmp_path):
        path = str(tmp_path / "labels.ckpt")
        save_labels_checkpoint(cover, path)
        payload = json.load(open(path))
        body = payload["sections"]["labels/0000"]["body"]
        body["labels"][0][-1][2] += 1000.0  # inflate a stored depth
        _reseal(payload)
        json.dump(payload, open(path, "w"))
        with pytest.raises(InvariantViolation):
            load_labels_checkpoint(path, metric)

    def test_navigator_fingerprint_mismatch_detected(self, metric, cover, tmp_path):
        navigator = MetricNavigator(metric, cover, 3)
        path = str(tmp_path / "nav.ckpt")
        save_navigator_checkpoint(navigator, path)
        payload = json.load(open(path))
        payload["sections"]["aux"]["body"]["per_tree"][0]["edges"] += 1
        _reseal(payload)
        json.dump(payload, open(path, "w"))
        with pytest.raises(InvariantViolation):
            load_navigator_checkpoint(path, metric)


# ----------------------------------------------------------------------
# Recovery


def _kill_tree(path: str, index: int, mode: str) -> None:
    """Corrupt exactly one tree section of a saved cover checkpoint."""
    payload = json.load(open(path))
    entry = payload["sections"][tree_section_name(index)]
    if mode == "crc":
        entry["crc32"] = (entry["crc32"] + 1) & 0xFFFFFFFF
    else:
        entry["body"]["tree"]["weights"] = [
            0.0 for _ in entry["body"]["tree"]["weights"]
        ]
        _reseal(payload)
    json.dump(payload, open(path, "w"))


class TestRecovery:
    @pytest.mark.parametrize("mode", ["crc", "semantic"])
    def test_per_tree_repair_restores_contract(
        self, metric, cover, tmp_path, mode
    ):
        """Kill one tree; repair must rebuild exactly that tree, keep
        the rest, and the repaired cover must pass the Table-1 stretch
        contract audit — without a full rebuild."""
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(
            cover, path, contract=CONTRACT,
            builder={"family": "robust", "eps": EPS},
        )
        victim = 1
        _kill_tree(path, victim, mode)
        with pytest.raises(ReproError):
            load_cover_checkpoint(path, metric)
        report = recover_cover(path, metric)
        assert report.outcome == "per-tree-repair"
        assert report.rebuilt_indexes == [victim]
        assert sum(r.action == "kept" for r in report.repairs) == cover.size - 1
        audit_cover(report.cover, contract=CONTRACT)
        worst, _ = report.cover.measured_stretch(sample_pairs(N, 150, seed=3))
        assert worst <= CONTRACT.gamma

    def test_recover_resave_round_trips(self, metric, cover, tmp_path):
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(
            cover, path, builder={"family": "robust", "eps": EPS}
        )
        _kill_tree(path, 0, "crc")
        recover_cover(path, metric, resave=True)
        loaded = load_cover_checkpoint(path, metric)  # clean again
        assert loaded.size == cover.size
        assert recover_cover(path, metric).outcome == "clean"

    def test_unreadable_checkpoint_full_rebuild(self, metric, tmp_path):
        path = str(tmp_path / "junk.ckpt")
        with open(path, "w") as handle:
            handle.write("{ not json")
        report = recover_cover(
            path, metric, builder=lambda m: robust_tree_cover(m, eps=EPS)
        )
        assert report.outcome == "full-rebuild"
        audit_cover(report.cover)

    def test_rebuild_without_builder_raises(self, metric, tmp_path):
        path = str(tmp_path / "junk.ckpt")
        with open(path, "w") as handle:
            handle.write("{ not json")
        with pytest.raises(ValueError, match="no cover builder"):
            recover_cover(path, metric)

    def test_all_trees_dead_full_rebuild(self, metric, cover, tmp_path):
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(
            cover, path, builder={"family": "robust", "eps": EPS}
        )
        payload = json.load(open(path))
        for index in range(cover.size):
            payload["sections"][tree_section_name(index)]["crc32"] ^= 1
        json.dump(payload, open(path, "w"))
        report = recover_cover(path, metric)
        assert report.outcome == "full-rebuild"


# ----------------------------------------------------------------------
# Degraded service during recovery


class TestCheckpointService:
    def test_degraded_service_then_promotion(self, metric, cover, tmp_path):
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(
            cover, path, contract=CONTRACT,
            builder={"family": "robust", "eps": EPS},
        )
        _kill_tree(path, 2, "crc")
        service = CheckpointService(metric, k=3, contract=CONTRACT).load(path)
        assert service.recovery_pending
        result = service.query(0, N - 1)
        assert result.delivered and result.degraded
        assert "recovery in progress" in result.reason
        assert result.path[0] == 0 and result.path[-1] == N - 1
        assert len(result.path) - 1 <= 3

        report = service.recover()
        assert report.outcome == "per-tree-repair"
        assert not service.recovery_pending
        clean = service.query(0, N - 1)
        assert clean.ok and not clean.degraded

    def test_intact_checkpoint_serves_full_guarantee(
        self, metric, cover, tmp_path
    ):
        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(cover, path, contract=CONTRACT)
        service = CheckpointService(metric, k=3, contract=CONTRACT).load(path)
        assert not service.recovery_pending
        result = service.query(1, 7)
        assert result.ok and result.hops <= 3

    def test_unusable_checkpoint_answers_undelivered_not_raise(
        self, metric, tmp_path
    ):
        path = str(tmp_path / "junk.ckpt")
        with open(path, "w") as handle:
            handle.write("garbage")
        service = CheckpointService(
            metric, k=3, builder=lambda m: robust_tree_cover(m, eps=EPS)
        ).load(path)
        result = service.query(0, 1)
        assert not result.delivered and result.degraded
        service.recover()
        assert service.query(0, 1).ok

    def test_query_is_thread_safe_while_recover_runs(
        self, metric, cover, tmp_path
    ):
        """Hammer ``query`` from threads while ``recover`` swaps state.

        Regression test for the serving daemon's concurrency contract:
        every concurrent answer must come from one consistent snapshot —
        delivered degraded (pre-swap navigator) or delivered clean
        (post-swap), never an exception or a torn navigator/pending
        read that would mislabel an answer.
        """
        import random as random_mod
        import threading

        path = str(tmp_path / "cover.ckpt")
        save_cover_checkpoint(
            cover, path, contract=CONTRACT,
            builder={"family": "robust", "eps": EPS},
        )
        _kill_tree(path, 1, "crc")
        service = CheckpointService(metric, k=3, contract=CONTRACT).load(path)
        assert service.recovery_pending

        stop = threading.Event()
        errors = []
        observed = []

        def hammer(seed):
            rng = random_mod.Random(seed)
            while not stop.is_set():
                u, v = rng.sample(range(N), 2)
                try:
                    result = service.query(u, v)
                except Exception as exc:  # any raise is the regression
                    errors.append(f"query({u},{v}) raised {exc!r}")
                    return
                if not result.delivered:
                    errors.append(f"query({u},{v}) undelivered mid-recovery")
                    return
                if result.path[0] != u or result.path[-1] != v:
                    errors.append(f"query({u},{v}) returned torn path")
                    return
                observed.append(result.degraded)

        threads = [
            threading.Thread(target=hammer, args=(seed,), daemon=True)
            for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        report = service.recover()
        stop.set()
        for thread in threads:
            thread.join(60)

        assert not errors, errors[:3]
        assert report.outcome == "per-tree-repair"
        assert not service.recovery_pending
        # Traffic genuinely overlapped the transition: answers from the
        # degraded generation were observed, and after recovery the
        # full contract is back.
        assert observed and any(observed)
        clean = service.query(0, N - 1)
        assert clean.ok and not clean.degraded and clean.hops <= 3
