"""Tests for metric substrates: Euclidean, general, tree, planar, nets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import random_tree
from repro.metrics import (
    EuclideanMetric,
    MatrixMetric,
    NetHierarchy,
    TreeMetric,
    aspect_ratio,
    check_metric_axioms,
    clustered_points,
    delaunay_metric,
    doubling_constant_estimate,
    graph_metric,
    greedy_net,
    grid_graph_metric,
    grid_points,
    random_graph_metric,
    random_metric,
    random_points,
    sample_pairs,
    scale_levels,
)


class TestEuclidean:
    def test_axioms(self):
        check_metric_axioms(random_points(60, dim=3, seed=0))

    def test_distance_matches_numpy(self):
        m = random_points(20, dim=2, seed=1)
        for u in range(20):
            row = m.distances_from(u)
            for v in range(20):
                assert abs(row[v] - m.distance(u, v)) < 1e-9

    def test_neighbors_within_matches_scan(self):
        m = random_points(80, dim=2, seed=2)
        for u in (0, 10, 79):
            r = 200.0
            expected = sorted(v for v in range(80) if m.distance(u, v) <= r)
            assert m.neighbors_within(u, r) == expected

    def test_grid_points_count_and_spacing(self):
        m = grid_points(5, dim=2, spacing=3.0)
        assert m.n == 25
        assert abs(m.distance(0, 1) - 3.0) < 1e-9

    def test_clustered_points_have_high_aspect_ratio(self):
        uniform = random_points(100, seed=3)
        clustered = clustered_points(100, clusters=5, seed=3)
        assert aspect_ratio(clustered, sample=300) > aspect_ratio(uniform, sample=300)

    def test_rejects_one_dimensional_input(self):
        with pytest.raises(ValueError):
            EuclideanMetric([1.0, 2.0, 3.0])


class TestGeneralMetrics:
    def test_random_metric_axioms(self):
        check_metric_axioms(random_metric(40, seed=4), trials=400)

    def test_matrix_metric_rejects_non_square(self):
        with pytest.raises(ValueError):
            MatrixMetric([[0.0, 1.0]])

    def test_graph_metric_matches_dijkstra_triangle(self):
        m = random_graph_metric(50, seed=5)
        check_metric_axioms(m, trials=400)

    def test_graph_metric_rejects_disconnected(self):
        with pytest.raises(ValueError):
            graph_metric(4, [(0, 1, 1.0), (2, 3, 1.0)])

    def test_expander_not_doubling(self):
        """Random graph metrics should look less doubling than grids."""
        expander = random_graph_metric(120, degree=6, seed=6)
        euclid = random_points(120, dim=2, seed=6)
        assert doubling_constant_estimate(expander, samples=20) >= (
            doubling_constant_estimate(euclid, samples=20)
        )


class TestTreeMetric:
    def test_matches_tree_distance(self):
        t = random_tree(60, seed=7)
        tm = TreeMetric(t)
        for u in range(0, 60, 5):
            for v in range(0, 60, 7):
                assert abs(tm.distance(u, v) - t.distance(u, v)) < 1e-9

    def test_axioms(self):
        check_metric_axioms(TreeMetric(random_tree(50, seed=8)), trials=300)

    def test_path_realizes_distance(self):
        t = random_tree(40, seed=9)
        tm = TreeMetric(t)
        path = tm.path(3, 29)
        total = sum(t.distance(a, b) for a, b in zip(path, path[1:]))
        assert abs(total - tm.distance(3, 29)) < 1e-9


class TestPlanarMetrics:
    def test_grid_graph_axioms(self):
        check_metric_axioms(grid_graph_metric(6, seed=10), trials=300)

    def test_delaunay_axioms(self):
        check_metric_axioms(delaunay_metric(60, seed=11), trials=300)

    def test_delaunay_dominates_euclidean(self):
        """Graph distances are at least the underlying point distances."""
        m = delaunay_metric(50, seed=12)
        # Reconstruct endpoints from the sssp tree weights indirectly:
        # any edge weight equals the Euclidean length, so graph distance
        # between adjacent vertices equals it, and longer routes only grow.
        for u, v, w in m.edges():
            assert abs(m.distance(u, v) - w) < 1e-9 or m.distance(u, v) <= w

    def test_sssp_tree_is_consistent(self):
        m = grid_graph_metric(5, seed=13)
        parent = m.sssp_tree(0)
        dist = m.sssp(0)
        for v in range(1, m.n):
            p = parent[v]
            assert p != -1
            assert abs(dist[p] + m.adj[p][v] - dist[v]) < 1e-9


class TestNets:
    def test_greedy_net_properties(self):
        m = random_points(100, seed=14)
        net = greedy_net(m, list(range(100)), 120.0)
        for i, a in enumerate(net):
            for b in net[i + 1 :]:
                assert m.distance(a, b) > 120.0
        for p in range(100):
            assert any(m.distance(p, q) <= 120.0 for q in net)

    def test_hierarchy_verify(self):
        m = random_points(150, seed=15)
        h = NetHierarchy(m)
        h.verify()

    def test_hierarchy_top_is_small_bottom_is_everything(self):
        m = random_points(120, seed=16)
        h = NetHierarchy(m)
        assert len(h.nets[h.i_min]) == 120
        assert len(h.nets[h.i_max]) <= 2

    def test_net_points_within_matches_scan(self):
        m = random_points(90, seed=17)
        h = NetHierarchy(m)
        mid = (h.i_min + h.i_max) // 2
        net = set(h.nets[mid])
        for p in (0, 40, 89):
            r = 2.0 ** (mid + 1)
            expected = sorted(q for q in net if m.distance(p, q) <= r)
            assert sorted(h.net_points_within(mid, p, r)) == expected

    def test_scale_levels_bracket_distances(self):
        m = random_points(60, seed=18)
        lo, hi = scale_levels(m)
        d = [m.distance(u, v) for u, v in sample_pairs(60, 200)]
        assert 2.0**lo <= min(x for x in d if x > 0)
        assert 2.0**hi >= max(d)

    def test_hierarchy_works_on_general_metric(self):
        m = random_metric(50, seed=19)
        h = NetHierarchy(m)
        h.verify()


@given(st.integers(min_value=5, max_value=60), st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_property_sample_pairs_distinct_and_in_range(n, seed):
    pairs = sample_pairs(n, 30, seed=seed)
    assert len(pairs) == len(set(pairs))
    for u, v in pairs:
        assert 0 <= u < v < n
