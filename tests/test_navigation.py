"""Tests for Theorem 1.1: the navigable tree 1-spanner.

The three guarantees under test, per query: the reported path (a) uses
only spanner edges, (b) has at most k hops, (c) has weight exactly the
tree distance and is T-monotone.  Plus the structural guarantees: size
O(n·αk(n)), recursion-tree depth O(αk(n)), O(k)-ish query work.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TreeNavigator, alpha_k, dedup_path
from repro.graphs import (
    caterpillar_tree,
    path_tree,
    random_tree,
    star_tree,
)

SHAPES = [
    ("random", lambda n, s: random_tree(n, seed=s)),
    ("path", lambda n, s: path_tree(n, seed=s)),
    ("caterpillar", lambda n, s: caterpillar_tree(n, seed=s)),
    ("star", lambda n, s: star_tree(n)),
]


class TestDedup:
    def test_removes_consecutive_duplicates_only(self):
        assert dedup_path([1, 1, 2, 2, 3, 1]) == [1, 2, 3, 1]
        assert dedup_path([5]) == [5]
        assert dedup_path([]) == []


class TestExhaustiveCorrectness:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7])
    @pytest.mark.parametrize("shape", ["random", "path", "caterpillar", "star"])
    def test_all_pairs_small_trees(self, k, shape):
        builder = dict(SHAPES)[shape]
        for seed in (0, 1):
            n = 37 + 11 * seed
            tree = builder(n, seed)
            nav = TreeNavigator(tree, k)
            for u, v in itertools.combinations(range(n), 2):
                nav.verify_path(u, v, nav.find_path(u, v))

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_sampled_pairs_medium_trees(self, k):
        tree = random_tree(600, seed=5)
        nav = TreeNavigator(tree, k)
        rng = random.Random(6)
        for _ in range(400):
            u, v = rng.randrange(600), rng.randrange(600)
            if u != v:
                nav.verify_path(u, v, nav.find_path(u, v))

    def test_tiny_trees_every_size(self):
        for n in range(2, 12):
            for k in (2, 3, 4):
                tree = random_tree(n, seed=n)
                nav = TreeNavigator(tree, k)
                for u, v in itertools.combinations(range(n), 2):
                    nav.verify_path(u, v, nav.find_path(u, v))

    def test_identity_query(self):
        nav = TreeNavigator(random_tree(20, seed=7), 2)
        assert nav.find_path(5, 5) == [5]


class TestSteinerSetting:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_required_subset(self, k):
        rng = random.Random(8)
        tree = random_tree(120, seed=9)
        required = sorted(rng.sample(range(120), 35))
        nav = TreeNavigator(tree, k, required=required)
        for u, v in itertools.combinations(required, 2):
            nav.verify_path(u, v, nav.find_path(u, v))

    def test_non_required_query_rejected(self):
        tree = random_tree(30, seed=10)
        nav = TreeNavigator(tree, 2, required=[0, 1, 2, 3, 4])
        with pytest.raises(KeyError):
            nav.find_path(0, 20)

    def test_empty_required_rejected(self):
        with pytest.raises(ValueError):
            TreeNavigator(random_tree(10, seed=0), 2, required=[])

    def test_single_required_vertex(self):
        nav = TreeNavigator(random_tree(10, seed=0), 2, required=[3])
        assert nav.find_path(3, 3) == [3]

    def test_smaller_required_set_gives_smaller_spanner(self):
        tree = random_tree(200, seed=11)
        full = TreeNavigator(tree, 2)
        partial = TreeNavigator(tree, 2, required=list(range(0, 200, 4)))
        assert partial.num_edges < full.num_edges


class TestParameterValidation:
    def test_k_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            TreeNavigator(random_tree(10, seed=0), 1)

    def test_decrement_must_be_one_or_two(self):
        with pytest.raises(ValueError):
            TreeNavigator(random_tree(10, seed=0), 2, decrement=3)


class TestLevelByLevelVariant:
    """The AS87-style ablation: budget drops by 1 per interconnection
    level, paths use up to 2(k-1) hops (Remark 5.4's other side)."""

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_correctness(self, k):
        tree = random_tree(90, seed=20)
        nav = TreeNavigator(tree, k, decrement=1)
        for u, v in itertools.combinations(range(0, 90, 4), 2):
            nav.verify_path(u, v, nav.find_path(u, v))

    def test_hop_bound_doubles(self):
        tree = path_tree(600, seed=21)
        solomon = TreeNavigator(tree, 5)
        leveled = TreeNavigator(tree, 5, decrement=1)
        assert solomon.hop_bound == 5
        assert leveled.hop_bound == 8
        rng = random.Random(22)
        worst = max(
            len(leveled.find_path(rng.randrange(600), rng.randrange(600))) - 1
            for _ in range(400)
        )
        assert 5 < worst <= 8  # really pays more hops than Solomon

    def test_k2_variants_identical(self):
        """At k = 2 both schemes are the same centroid star."""
        tree = random_tree(200, seed=23)
        assert (
            TreeNavigator(tree, 2).num_edges
            == TreeNavigator(tree, 2, decrement=1).num_edges
        )


class TestSizeBounds:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_size_tracks_n_alpha_k(self, k):
        """|E| <= C·n·αk(n): check with a uniform constant across n."""
        constant = 6.0
        for n in (128, 512, 2048):
            nav = TreeNavigator(path_tree(n, seed=1), k)
            bound = constant * n * max(1, alpha_k(k, n))
            assert nav.num_edges <= bound, (n, k, nav.num_edges, bound)

    def test_k2_size_is_about_n_log_n(self):
        n = 4096
        nav = TreeNavigator(path_tree(n, seed=2), 2)
        # Within [0.4, 1.5] of n log2 n on paths.
        assert 0.4 * n * 12 <= nav.num_edges <= 1.5 * n * 12

    def test_size_decreases_from_k2_to_k3(self):
        tree = path_tree(2048, seed=3)
        assert TreeNavigator(tree, 3).num_edges < TreeNavigator(tree, 2).num_edges

    def test_star_tree_is_cheap(self):
        """A star is already a 2-hop 1-spanner; size stays near-linear."""
        nav = TreeNavigator(star_tree(1000), 2)
        assert nav.num_edges <= 6 * 1000


class TestRecursionTreeDepth:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
    def test_phi_depth_tracks_alpha_k(self, k):
        """Observation 3.1: depth(Φ) = O(αk(n))."""
        for n in (256, 1024, 4096):
            nav = TreeNavigator(path_tree(n, seed=4), k)
            assert nav.phi_depth() <= 3 * max(1, alpha_k(k, n)) + 3

    def test_depth_grows_with_n_for_k2(self):
        d1 = TreeNavigator(path_tree(256, seed=5), 2).phi_depth()
        d2 = TreeNavigator(path_tree(4096, seed=5), 2).phi_depth()
        assert d2 > d1


class TestQueryWork:
    def test_hops_never_exceed_k(self):
        for k in (2, 3, 4, 5, 6):
            nav = TreeNavigator(path_tree(900, seed=6), k)
            rng = random.Random(7)
            for _ in range(300):
                u, v = rng.randrange(900), rng.randrange(900)
                assert len(nav.find_path(u, v)) - 1 <= k

    def test_some_query_needs_k_hops(self):
        """The hop budget is tight: on paths, some pair uses all k hops."""
        for k in (2, 3, 4):
            nav = TreeNavigator(path_tree(800, seed=8), k)
            rng = random.Random(9)
            longest = max(
                len(nav.find_path(rng.randrange(800), rng.randrange(800))) - 1
                for _ in range(500)
            )
            assert longest == k

    def test_spanner_graph_matches_edge_dict(self):
        nav = TreeNavigator(random_tree(100, seed=10), 3)
        g = nav.spanner()
        assert g.num_edges == nav.num_edges
        for (a, b), w in nav.edges.items():
            assert abs(g.adj[a][b] - w) < 1e-9


class TestEdgeWeights:
    def test_edge_weights_are_tree_distances(self):
        tree = random_tree(80, seed=11)
        nav = TreeNavigator(tree, 3)
        for (a, b), w in nav.edges.items():
            assert abs(w - tree.distance(a, b)) < 1e-9

    def test_unit_weights_hop_equals_distance_on_path(self):
        # On a unit path, spanner distance == |u - v| despite few hops.
        tree = path_tree(200, seed=12)
        tree.weights = [0.0] + [1.0] * 199
        tree._wdepth = None
        nav = TreeNavigator(tree, 2)
        path = nav.find_path(10, 150)
        total = sum(nav.edges[(min(a, b), max(a, b))] for a, b in zip(path, path[1:]))
        assert abs(total - 140.0) < 1e-9


@given(
    st.integers(min_value=2, max_value=70),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=40, deadline=None)
def test_property_random_trees_random_pairs(n, k, seed):
    tree = random_tree(n, seed=seed)
    nav = TreeNavigator(tree, k)
    rng = random.Random(seed)
    for _ in range(10):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            nav.verify_path(u, v, nav.find_path(u, v))
