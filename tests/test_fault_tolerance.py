"""Tests for the fault-tolerant spanner (Theorem 4.2) and FT navigation."""

import itertools
import random

import pytest

from repro.metrics import clustered_points, random_points, sample_pairs
from repro.spanners import FaultTolerantSpanner
from repro.spanners.spanner import measured_stretch
from repro.treecover import robust_tree_cover


class TestConstruction:
    def setup_method(self):
        self.metric = random_points(60, dim=2, seed=0)
        self.cover = robust_tree_cover(self.metric, eps=0.45)

    def test_edge_count_grows_quadratically_in_f(self):
        counts = [
            FaultTolerantSpanner(self.metric, f=f, k=2, cover=self.cover).edge_count()
            for f in (0, 1, 3)
        ]
        assert counts[0] < counts[1] < counts[2]
        # Theorem 4.2's f² factor is the worst case (both replica sets
        # full); edges incident to leaves scale linearly, so require
        # clearly superconstant growth without demanding the full f².
        assert counts[2] >= 3 * counts[0]

    def test_replica_sets_respect_f(self):
        ft = FaultTolerantSpanner(self.metric, f=2, k=2, cover=self.cover)
        for per_tree in ft.replicas:
            for pool in per_tree:
                assert len(pool) <= 3

    def test_leaf_replicas_are_the_point(self):
        ft = FaultTolerantSpanner(self.metric, f=2, k=2, cover=self.cover)
        for data_index, cover_tree in enumerate(ft.cover.trees[:5]):
            for p, vertex in enumerate(cover_tree.vertex_of_point):
                assert ft.replicas[data_index][vertex] == [p]

    def test_rejects_negative_f(self):
        with pytest.raises(ValueError):
            FaultTolerantSpanner(self.metric, f=-1, k=2, cover=self.cover)

    def test_materialized_graph_spans_metric(self):
        ft = FaultTolerantSpanner(self.metric, f=1, k=2, cover=self.cover)
        graph = ft.materialize()
        stretch = measured_stretch(graph, self.metric, sample_pairs(60, 80))
        assert stretch <= 2.5  # the (1 + O(eps)) regime


class TestFtNavigation:
    def setup_method(self):
        self.metric = random_points(50, dim=2, seed=1)
        self.cover = robust_tree_cover(self.metric, eps=0.45)

    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("f", [0, 1, 2])
    def test_paths_under_random_faults(self, k, f):
        ft = FaultTolerantSpanner(self.metric, f=f, k=k, cover=self.cover)
        rng = random.Random(2)
        for _ in range(60):
            u, v = rng.sample(range(50), 2)
            pool = [x for x in range(50) if x not in (u, v)]
            faults = set(rng.sample(pool, f))
            path = ft.find_path(u, v, faults)
            stretch = ft.verify_path(u, v, faults, path)
            assert stretch <= 30.0  # sanity: bounded, measured in benches

    def test_exhaustive_single_faults_small_instance(self):
        metric = random_points(18, dim=2, seed=3)
        cover = robust_tree_cover(metric, eps=0.45)
        ft = FaultTolerantSpanner(metric, f=1, k=2, cover=cover)
        for u, v in itertools.combinations(range(18), 2):
            for fault in range(18):
                if fault in (u, v):
                    continue
                path = ft.find_path(u, v, {fault})
                ft.verify_path(u, v, {fault}, path)

    def test_path_edges_exist_in_materialized_spanner(self):
        ft = FaultTolerantSpanner(self.metric, f=1, k=3, cover=self.cover)
        graph = ft.materialize()
        rng = random.Random(4)
        for _ in range(40):
            u, v = rng.sample(range(50), 2)
            fault = rng.choice([x for x in range(50) if x not in (u, v)])
            path = ft.find_path(u, v, {fault})
            for a, b in zip(path, path[1:]):
                assert graph.has_edge(a, b), (a, b)

    def test_fault_free_equals_plain_query(self):
        ft = FaultTolerantSpanner(self.metric, f=2, k=2, cover=self.cover)
        path = ft.find_path(0, 49)
        assert path[0] == 0 and path[-1] == 49
        assert len(path) - 1 <= 2

    def test_rejects_faulty_endpoint(self):
        ft = FaultTolerantSpanner(self.metric, f=1, k=2, cover=self.cover)
        with pytest.raises(ValueError):
            ft.find_path(0, 1, {0})

    def test_rejects_excess_faults(self):
        ft = FaultTolerantSpanner(self.metric, f=1, k=2, cover=self.cover)
        with pytest.raises(ValueError):
            ft.find_path(0, 1, {2, 3})

    def test_clustered_input(self):
        metric = clustered_points(40, clusters=4, seed=5)
        cover = robust_tree_cover(metric, eps=0.45)
        ft = FaultTolerantSpanner(metric, f=1, k=2, cover=cover)
        rng = random.Random(6)
        for _ in range(40):
            u, v = rng.sample(range(40), 2)
            fault = rng.choice([x for x in range(40) if x not in (u, v)])
            path = ft.find_path(u, v, {fault})
            ft.verify_path(u, v, {fault}, path)


class TestStretchUnderFaults:
    def test_stretch_stays_bounded_as_f_grows(self):
        """The f-FT guarantee: stretch under faults does not degrade
        with f (bigger replica sets only help)."""
        metric = random_points(45, dim=2, seed=7)
        cover = robust_tree_cover(metric, eps=0.4)
        rng = random.Random(8)
        worst = {}
        for f in (1, 3):
            ft = FaultTolerantSpanner(metric, f=f, k=2, cover=cover)
            rng_local = random.Random(9)
            worst[f] = 0.0
            for _ in range(60):
                u, v = rng_local.sample(range(45), 2)
                pool = [x for x in range(45) if x not in (u, v)]
                faults = set(rng_local.sample(pool, f))
                path = ft.find_path(u, v, faults)
                worst[f] = max(worst[f], ft.verify_path(u, v, faults, path))
        assert worst[3] <= worst[1] * 3.0 + 3.0
