"""The observability layer: registry semantics, span tracing, worker
delta merging, cache-hit accounting, and the tracing-changes-nothing
differential guarantee.

Tier-1 (the ``observability`` marker selects but does not deselect):
instruments must be cheap, correct, and — above all — inert: the same
seeded workload must produce bit-identical covers, paths and metric
outputs with tracing off, tracing on, and tracing on across a 2-worker
process pool.  The ``bench``-marked gate at the bottom measures the
disabled-mode guard cost directly and holds it under 2% of a query
workload.
"""

import json
import timeit

import pytest

from repro.cli import main as cli_main
from repro.core.metric_navigator import MetricNavigator
from repro.metrics.euclidean import random_points
from repro.metrics.kernels import CachedMetric
from repro.observability import (
    OBS,
    TRACE_SCHEMA,
    MetricsRegistry,
    format_span_tree,
    render_trace_report,
    trace,
    trace_document,
    validate_trace_json,
)
from repro.parallel import map_per_tree
from repro.treecover.dumbbell import robust_tree_cover
from repro.util.counting import CountingComparator, CountingSemigroup

pytestmark = pytest.mark.observability


@pytest.fixture(autouse=True)
def _pristine_obs():
    """Every test starts and ends with tracing off and state empty."""
    was_enabled = OBS.enabled
    OBS.disable()
    OBS.clear()
    yield
    OBS.enabled = was_enabled
    OBS.clear()


# ----------------------------------------------------------------------
# Metrics registry


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    c = reg.counter("a.calls")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert reg.counter("a.calls") is c
    g = reg.gauge("a.level")
    g.set(2.5)
    assert g.value == 2.5
    h = reg.histogram("a.sizes")
    for v in (1, 2, 3, 1000):
        h.observe(v)
    assert h.count == 4
    assert h.min == 1 and h.max == 1000
    assert h.mean == pytest.approx(1006 / 4)


def test_registry_rejects_kind_mismatch():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_histogram_buckets_are_base2_exponential():
    reg = MetricsRegistry()
    h = reg.histogram("h")
    # bucket e covers (2^{e-1}, 2^e]; values <= 1 land in bucket 0.
    for v in (1, 2, 3, 4, 9):
        h.observe(v)
    snap = reg.snapshot()["histograms"]["h"]["buckets"]
    assert snap == {"0": 1, "1": 1, "2": 2, "4": 1}


def test_snapshot_delta_merge_roundtrip():
    reg = MetricsRegistry()
    reg.counter("c").inc(3)
    reg.histogram("h").observe(5)
    before = reg.snapshot()
    reg.counter("c").inc(2)
    reg.histogram("h").observe(7)
    delta = reg.delta_since(before)
    assert delta["counters"] == {"c": 2}
    assert delta["histograms"]["h"]["count"] == 1

    other = MetricsRegistry()
    other.counter("c").inc(10)
    other.merge(delta)
    assert other.counter("c").value == 12
    assert other.histogram("h").count == 1
    assert other.histogram("h").total == 7


def test_reset_zeroes_in_place_keeping_handles_live():
    reg = MetricsRegistry()
    c = reg.counter("c")
    c.inc(9)
    reg.reset()
    assert c.value == 0
    assert reg.counter("c") is c


def test_prom_text_export():
    reg = MetricsRegistry()
    reg.counter("kernel.calls").inc(2)
    reg.histogram("navigator.hops").observe(3)
    text = reg.export_prom_text()
    assert "repro_kernel_calls 2" in text
    assert 'repro_navigator_hops_bucket{le="' in text
    assert "repro_navigator_hops_count 1" in text


# ----------------------------------------------------------------------
# Span tracing


def test_disabled_trace_is_a_shared_noop_singleton():
    assert not OBS.enabled
    assert trace("a") is trace("b", n=3)
    with trace("a") as span:
        span.set(ignored=1)  # must be a silent no-op


def test_spans_nest_record_attrs_and_errors():
    with OBS.scoped(True):
        with trace("outer", n=10) as outer:
            outer.set(extra="yes")
            with trace("inner"):
                pass
        with pytest.raises(ValueError):
            with trace("boom"):
                raise ValueError("bad")
    roots = OBS.take_roots()
    assert [r["name"] for r in roots] == ["outer", "boom"]
    outer = roots[0]
    assert outer["attrs"] == {"n": 10, "extra": "yes"}
    assert [c["name"] for c in outer["children"]] == ["inner"]
    assert outer["duration_ns"] >= outer["children"][0]["duration_ns"] >= 0
    assert roots[1]["error"] == "ValueError: bad"
    assert OBS.take_roots() == []  # drained


def test_trace_document_validates_against_checked_in_schema():
    with OBS.scoped(True):
        with trace("work", n=4):
            OBS.registry.counter("c").inc()
            OBS.registry.histogram("h").observe(2)
    doc = trace_document(OBS.take_roots(), OBS.registry.snapshot())
    assert doc["schema"] == TRACE_SCHEMA
    assert validate_trace_json(doc) == []
    # and it survives a JSON round-trip unchanged
    assert validate_trace_json(json.loads(json.dumps(doc))) == []


def test_validator_rejects_malformed_documents():
    assert validate_trace_json({"schema": TRACE_SCHEMA}) != []
    bad_span = trace_document([{"start_ns": 1}])  # missing name
    assert any("name" in e for e in validate_trace_json(bad_span))
    wrong_schema = trace_document([])
    wrong_schema["schema"] = "nonsense/v9"
    assert validate_trace_json(wrong_schema) != []


def test_report_rendering_smoke():
    with OBS.scoped(True):
        with trace("build", n=7):
            with trace("stage"):
                OBS.registry.counter("some.counter").inc(5)
    doc = trace_document(OBS.take_roots(), OBS.registry.snapshot())
    lines = format_span_tree(doc["spans"][0])
    assert lines[0].startswith("build")
    assert lines[1].lstrip().startswith("stage")
    text = render_trace_report(doc)
    assert "build" in text and "some.counter" in text


def test_trace_report_cli(tmp_path, capsys):
    with OBS.scoped(True):
        with trace("cli-span", n=1):
            OBS.registry.counter("cli.counter").inc()
    doc = trace_document(OBS.take_roots(), OBS.registry.snapshot())
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(doc))
    assert cli_main(["trace-report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "cli-span" in out and "cli.counter" in out
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "nope"}')
    assert cli_main(["trace-report", str(bad)]) == 1


# ----------------------------------------------------------------------
# Worker delta capture


def _worker_task(ctx, item):
    OBS.registry.counter("test.worker.calls").inc()
    OBS.registry.histogram("test.worker.sizes").observe(item)
    with trace("task", item=item):
        pass
    return item * 2


def test_process_pool_merges_worker_metrics_and_spans():
    with OBS.scoped(True):
        with trace("fanout"):
            results = map_per_tree(_worker_task, [1, 2, 3, 4], workers=2)
    assert results == [2, 4, 6, 8]
    assert OBS.registry.counter("test.worker.calls").value == 4
    assert OBS.registry.histogram("test.worker.sizes").count == 4
    roots = OBS.take_roots()
    assert [r["name"] for r in roots] == ["fanout"]
    children = roots[0]["children"]
    assert [c["name"] for c in children] == ["task"] * 4
    # worker spans come back in input order, not completion order
    assert [c["attrs"]["item"] for c in children] == [1, 2, 3, 4]


def test_disabled_run_ships_no_deltas_through_the_pool():
    assert not OBS.enabled
    results = map_per_tree(_worker_task, [1, 2], workers=2)
    assert results == [2, 4]
    assert OBS.registry.counter("test.worker.calls").value == 0


# ----------------------------------------------------------------------
# Cache-hit accounting (the historical double-count bug)


def test_cached_metric_hits_do_not_recount_distance_work():
    inner = random_points(40, dim=2, seed=0)
    cached = CachedMetric(inner, block_size=8)
    with OBS.scoped(True):
        OBS.registry.reset()
        batch_calls = OBS.registry.counter("kernel.euclidean.batch_calls")
        hits = OBS.registry.counter("metric.cache.hits")
        misses = OBS.registry.counter("metric.cache.misses")

        first = cached.distance(3, 17)
        assert misses.value == 1 and hits.value == 0
        inner_calls_after_miss = batch_calls.value
        assert inner_calls_after_miss >= 1

        # Same block again, many times: hits only, the inner kernel
        # counters must not move (this was the double-count bug).
        for _ in range(5):
            assert cached.distance(3, 17) == first
        assert hits.value == 5
        assert misses.value == 1
        assert batch_calls.value == inner_calls_after_miss
        assert OBS.registry.counter("metric.cache.rows_materialized").value == 8


# ----------------------------------------------------------------------
# counting.py back-compat shim


def test_counting_shim_keeps_local_counts_and_mirrors_registry():
    sg = CountingSemigroup(min)
    cmp_ = CountingComparator()
    # disabled: local counts work, registry untouched
    assert sg.fold([3, 1, 2]) == 1
    assert cmp_.less(1, 2) is True
    assert sg.ops == 2 and cmp_.comparisons == 1
    assert OBS.registry.counter("semigroup.ops").value == 0
    assert OBS.registry.counter("comparator.comparisons").value == 0
    assert sg.reset() == 2 and sg.ops == 0

    with OBS.scoped(True):
        sg(1, 2)
        cmp_.max(3, 4)
    assert sg.ops == 1
    assert OBS.registry.counter("semigroup.ops").value == 1
    assert OBS.registry.counter("comparator.comparisons").value == 1


# ----------------------------------------------------------------------
# The differential guarantee: tracing is inert


def _cover_fingerprint(cover):
    return (
        [
            (
                tuple(ct.tree.parents),
                tuple(ct.tree.weights),
                tuple(ct.rep_point),
                tuple(ct.vertex_of_point),
            )
            for ct in cover.trees
        ],
        None if cover.home is None else tuple(cover.home),
    )


def _workload(workers):
    """One seeded build-and-query workload; returns (fingerprint, paths)."""
    metric = random_points(36, dim=2, seed=7)
    cover = robust_tree_cover(metric, eps=0.5, workers=workers)
    navigator = MetricNavigator(metric, cover, 3, workers=workers)
    pairs = [(i, (7 * i + 3) % 36) for i in range(12) if i != (7 * i + 3) % 36]
    paths = [navigator.find_path(u, v) for u, v in pairs]
    return _cover_fingerprint(cover), paths


def test_tracing_off_on_and_workers_are_bit_identical():
    baseline = _workload(workers=0)

    with OBS.scoped(True):
        OBS.clear()
        traced = _workload(workers=0)
        serial_metrics = OBS.registry.snapshot()
        OBS.clear()
        pooled = _workload(workers=2)
        pooled_metrics = OBS.registry.snapshot()

    assert traced == baseline
    assert pooled == baseline
    # The robust-cover pipeline does no speculative work, so even the
    # *metrics* agree between serial and 2-worker traced runs — with one
    # structural exception: lazy derived state (the tree-metric LCA
    # index) is rebuilt once per address space, so a pooled build
    # legitimately rebuilds it in both the worker and the parent.  (The
    # other documented divergence is the Ramsey cover's surplus draws.)
    lazy = {"kernel.tree.lca_builds"}
    assert {k: v for k, v in pooled_metrics["counters"].items() if k not in lazy} \
        == {k: v for k, v in serial_metrics["counters"].items() if k not in lazy}
    assert pooled_metrics["histograms"] == serial_metrics["histograms"]


# ----------------------------------------------------------------------
# Disabled-mode overhead gate (opt in with -m bench)


@pytest.mark.bench
def test_disabled_guard_overhead_is_under_two_percent():
    """Total disabled-mode instrumentation cost of a query workload,
    measured as (guard cost per check) x (number of instrumentation
    points hit), must stay under 2% of the workload's runtime."""
    metric = random_points(300, dim=2, seed=3)
    cover = robust_tree_cover(metric, eps=0.5)
    navigator = MetricNavigator(metric, cover, 3)
    pairs = [(i, (13 * i + 5) % 300) for i in range(200)
             if i != (13 * i + 5) % 300]

    def run():
        for u, v in pairs:
            navigator.find_path(u, v)

    assert not OBS.enabled
    workload_s = min(timeit.repeat(run, number=1, repeat=5))

    # Count the instrumentation points the workload actually hits.
    with OBS.scoped(True):
        OBS.registry.reset()
        run()
        snap = OBS.registry.snapshot()
    hits = sum(snap["counters"].values()) + sum(
        h["count"] for h in snap["histograms"].values()
    )

    # The disabled cost per point is one attribute truthiness check.
    n_checks = 1_000_000
    guard_s = timeit.timeit(
        "1 if OBS.enabled else 0", globals={"OBS": OBS}, number=n_checks
    )
    baseline_s = timeit.timeit("1 if False else 0", number=n_checks)
    per_check = max(0.0, guard_s - baseline_s) / n_checks

    overhead = hits * per_check
    assert overhead < 0.02 * workload_s, (
        f"{hits} instrumentation points x {per_check * 1e9:.1f}ns "
        f"= {overhead * 1e3:.3f}ms >= 2% of {workload_s * 1e3:.1f}ms"
    )
