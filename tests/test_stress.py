"""Large randomized soak tests (marked ``stress``; run explicitly with
``pytest -m stress tests/test_stress.py``).

The default suite keeps instances small for speed; these push the
navigator and covers to larger n and many random seeds.
"""

import random

import pytest

from repro.core import MetricNavigator, TreeNavigator
from repro.graphs import random_tree
from repro.metrics import random_points, sample_pairs
from repro.treecover import robust_tree_cover

pytestmark = pytest.mark.stress


def test_tree_navigator_soak_many_seeds():
    for seed in range(40):
        rng = random.Random(seed)
        n = rng.randrange(50, 400)
        k = rng.choice([2, 3, 4, 5, 6, 7, 8])
        tree = random_tree(n, seed=seed)
        navigator = TreeNavigator(tree, k)
        for _ in range(60):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                navigator.verify_path(u, v, navigator.find_path(u, v))


def test_tree_navigator_large_instance():
    n = 60000
    tree = random_tree(n, seed=99)
    navigator = TreeNavigator(tree, 3)
    rng = random.Random(1)
    for _ in range(500):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            path = navigator.find_path(u, v)
            assert len(path) - 1 <= 3


def test_metric_navigation_soak():
    for seed in range(6):
        metric = random_points(120, dim=2, seed=seed)
        cover = robust_tree_cover(metric, eps=0.4)
        navigator = MetricNavigator(metric, cover, 2)
        for u, v in sample_pairs(120, 150, seed=seed):
            navigator.verify_query(u, v)
