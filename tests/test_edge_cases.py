"""Edge cases and failure modes across the library."""

import math

import numpy as np
import pytest

from repro.core import MetricNavigator, TreeNavigator
from repro.errors import MetricValidationError
from repro.graphs import Graph, Tree, path_tree, random_tree
from repro.metrics import (
    EuclideanMetric,
    Metric,
    MatrixMetric,
    NetHierarchy,
    check_metric_axioms,
    scale_levels,
)
from repro.spanners import hop_diameter, measured_stretch
from repro.treecover import robust_tree_cover


class TestZeroAndTinyWeights:
    def test_navigator_with_zero_weight_edges(self):
        """Zero-weight edges (co-located points in a tree metric) keep
        stretch-1 paths well defined."""
        parents = [-1] + list(range(9))
        weights = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 1.0, 0.0, 1.0]
        tree = Tree(parents, weights)
        nav = TreeNavigator(tree, 2)
        for u in range(10):
            for v in range(u + 1, 10):
                nav.verify_path(u, v, nav.find_path(u, v))

    def test_two_vertex_tree(self):
        tree = Tree([-1, 0], [0.0, 5.0])
        nav = TreeNavigator(tree, 2)
        assert nav.find_path(0, 1) == [0, 1]

    def test_k_larger_than_n(self):
        tree = random_tree(5, seed=0)
        nav = TreeNavigator(tree, 50)
        for u in range(5):
            for v in range(u + 1, 5):
                nav.verify_path(u, v, nav.find_path(u, v))


class TestDegenerateMetrics:
    def test_duplicate_points_rejected_by_scale_levels(self):
        metric = EuclideanMetric([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError):
            scale_levels(metric)

    def test_duplicate_points_rejected_by_robust_cover(self):
        metric = EuclideanMetric([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError):
            robust_tree_cover(metric, eps=0.4)

    def test_single_point_metric_rejected(self):
        with pytest.raises(ValueError):
            scale_levels(EuclideanMetric([[1.0, 2.0]]))

    def test_empty_metric_rejected(self):
        with pytest.raises(ValueError):
            MatrixMetric(np.zeros((0, 0)))

    def test_axiom_checker_catches_asymmetry(self):
        class Broken(Metric):
            def distance(self, u, v):
                return 1.0 if u < v else 2.0 if u > v else 0.0

        with pytest.raises(MetricValidationError):
            check_metric_axioms(Broken(5), trials=300)

    def test_axiom_checker_catches_triangle_violation(self):
        matrix = np.array([
            [0.0, 1.0, 10.0],
            [1.0, 0.0, 1.0],
            [10.0, 1.0, 0.0],
        ])
        with pytest.raises(MetricValidationError):
            check_metric_axioms(MatrixMetric(matrix), trials=500)


class TestCollinearAndGridGeometry:
    def test_collinear_points(self):
        """Line metrics — the lower-bound family — through the full
        doubling pipeline."""
        pts = [[float(3**i), 0.0] for i in range(10)]
        metric = EuclideanMetric(pts)
        cover = robust_tree_cover(metric, eps=0.4)
        nav = MetricNavigator(metric, cover, 2)
        for u in range(10):
            for v in range(u + 1, 10):
                nav.verify_query(u, v)

    def test_grid_ties_in_nets(self):
        from repro.metrics import grid_points

        metric = grid_points(7, dim=2, spacing=10.0)
        hierarchy = NetHierarchy(metric)
        hierarchy.verify()


class TestAdjacentCutVertices:
    def test_double_star_forces_adjacent_cuts(self):
        """Two adjacent hubs both exceed the decomposition threshold, so
        Decompose cuts neighbouring vertices — the contracted-tree corner
        case the paper's prose elides (cut-cut edges keep it connected)."""
        from repro.core.decompose import WorkTree, decompose
        import itertools

        parents = [-1, 0] + [0] * 20 + [1] * 20
        tree = Tree(parents, [0.0] + [1.0] * 41)
        wt = WorkTree.from_tree(tree)
        cuts = decompose(wt, set(range(42)), 7)
        assert 0 in cuts and 1 in cuts  # the adjacent hubs
        for k in (3, 4, 5):
            nav = TreeNavigator(tree, k)
            for u, v in itertools.combinations(range(42), 2):
                nav.verify_path(u, v, nav.find_path(u, v))


class TestSpannerMeasureEdgeCases:
    def test_hop_diameter_saturates_on_disconnected_pairs(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        metric = MatrixMetric(np.array([
            [0.0, 1.0, 1.0, 1.0],
            [1.0, 0.0, 1.0, 1.0],
            [1.0, 1.0, 0.0, 1.0],
            [1.0, 1.0, 1.0, 0.0],
        ]))
        assert hop_diameter(g, metric, 10.0, [(0, 2)], max_k=8) == 9

    def test_measured_stretch_ignores_zero_distance(self):
        metric = MatrixMetric(np.array([[0.0, 0.0], [0.0, 0.0]]))
        g = Graph(2)
        g.add_edge(0, 1, 0.0)
        assert measured_stretch(g, metric, [(0, 1)]) == 1.0


class TestPathTreeExtremes:
    def test_deep_path_k2_depth_exactly_logarithmic(self):
        n = 2048
        nav = TreeNavigator(path_tree(n, seed=0), 2)
        assert nav.phi_depth() <= math.ceil(math.log2(n)) + 1

    def test_every_k2_query_routes_through_single_cut(self):
        """On a path with k=2, every non-adjacent-in-Φ pair's middle
        vertex must separate them on the line."""
        n = 256
        tree = path_tree(n, seed=1)
        nav = TreeNavigator(tree, 2)
        import random

        rng = random.Random(2)
        for _ in range(200):
            u, v = sorted(rng.sample(range(n), 2))
            path = nav.find_path(u, v)
            if len(path) == 3:
                assert u < path[1] < v
