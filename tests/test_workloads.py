"""Tests for workload generators and the full stack on realistic inputs."""

import pytest

from repro.core import MetricNavigator
from repro.metrics import (
    aspect_ratio,
    check_metric_axioms,
    doubling_constant_estimate,
    hierarchical_points,
    power_law_graph_metric,
    random_points,
    ring_of_cliques_metric,
    road_network_points,
    sample_pairs,
)
from repro.treecover import ramsey_tree_cover, robust_tree_cover


class TestGenerators:
    def test_road_network_axioms_and_aspect(self):
        metric = road_network_points(150, seed=0)
        check_metric_axioms(metric, trials=300)
        assert aspect_ratio(metric, sample=400) > aspect_ratio(
            random_points(150, seed=0), sample=400
        )

    def test_hierarchical_axioms(self):
        check_metric_axioms(hierarchical_points(120, seed=1), trials=300)

    def test_power_law_axioms(self):
        check_metric_axioms(power_law_graph_metric(100, seed=2), trials=300)

    def test_power_law_has_hubs(self):
        """The degree distribution must be hub-dominated — doubling
        estimate larger than for a Euclidean cloud of equal size."""
        hubby = power_law_graph_metric(150, seed=3)
        flat = random_points(150, dim=2, seed=3)
        assert doubling_constant_estimate(hubby, samples=15) >= (
            0.8 * doubling_constant_estimate(flat, samples=15)
        )

    def test_ring_of_cliques_structure(self):
        metric = ring_of_cliques_metric(6, 8, seed=4)
        assert metric.n == 48
        # Intra-clique distances are tiny; cross-ring distances huge.
        assert metric.distance(0, 1) < 5.0
        half_way = 3 * 8
        assert metric.distance(0, half_way) > 50.0

    def test_deterministic_by_seed(self):
        a = road_network_points(50, seed=9).points
        b = road_network_points(50, seed=9).points
        assert (a == b).all()


class TestNavigationOnWorkloads:
    @pytest.mark.parametrize("maker", [road_network_points, hierarchical_points])
    def test_doubling_workloads_navigate(self, maker):
        metric = maker(90, seed=5)
        cover = robust_tree_cover(metric, eps=0.45)
        navigator = MetricNavigator(metric, cover, 3)
        for u, v in sample_pairs(90, 80, seed=6):
            navigator.verify_query(u, v)

    @pytest.mark.parametrize(
        "metric",
        [
            power_law_graph_metric(70, seed=7),
            ring_of_cliques_metric(7, 10, seed=8),
        ],
        ids=["power-law", "ring-of-cliques"],
    )
    def test_general_workloads_navigate(self, metric):
        cover = ramsey_tree_cover(metric, ell=2, seed=9)
        navigator = MetricNavigator(metric, cover, 2)
        for u, v in sample_pairs(metric.n, 80, seed=10):
            navigator.verify_query(u, v)

    def test_high_aspect_ratio_is_handled(self):
        """Road networks have huge aspect ratios — many net levels; the
        cover must still meet its stretch on every scale."""
        metric = road_network_points(100, seed=11)
        cover = robust_tree_cover(metric, eps=0.4)
        pairs = sample_pairs(100, 300, seed=12)
        worst, _ = cover.measured_stretch(pairs)
        assert worst <= 2.5
