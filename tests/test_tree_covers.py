"""Tests for the tree cover constructions (Table 1, Theorem 4.1)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    NetHierarchy,
    clustered_points,
    delaunay_metric,
    grid_graph_metric,
    random_graph_metric,
    random_metric,
    random_points,
    sample_pairs,
    scale_levels,
)
from repro.treecover import (
    CoverTree,
    build_pairing_covers,
    ckr_partition,
    compact_tree_cover,
    few_trees_cover,
    path_replacement_bound,
    planar_tree_cover,
    prune_cover,
    ramsey_tree_cover,
    replaced_path_weight,
    robust_tree_cover,
    robustness_certificate,
)
from repro.treecover.hst import PartitionHierarchy, build_hst


class TestPairingCovers:
    def test_definition_4_2_properties(self):
        """Each point has at most one partner per set; every close pair
        is paired in some set."""
        m = random_points(100, seed=0)
        eps = 0.4
        lo, hi = scale_levels(m)
        lo -= math.ceil(math.log2(1 / eps)) + 2
        h = NetHierarchy(m, i_min=lo, i_max=hi)
        covers = build_pairing_covers(m, h, eps)
        for cover in covers.values():
            cover.verify(m, eps)

    def test_coverage_of_close_net_pairs(self):
        from repro.treecover.dumbbell import covering_radius, pairing_radius

        m = random_points(80, seed=1)
        eps = 0.4
        h = NetHierarchy(m)
        covers = build_pairing_covers(m, h, eps)
        for i in range(h.i_min, h.i_max + 1):
            rho = pairing_radius(eps, i, covering_radius(m, h, i))
            net = h.nets[i]
            paired = set()
            for pairs in covers[i].sets:
                for x, y in pairs:
                    paired.add((min(x, y), max(x, y)))
            for a_index, a in enumerate(net):
                for b in net[a_index + 1 :]:
                    if m.distance(a, b) <= rho:
                        assert (min(a, b), max(a, b)) in paired, (i, a, b)


class TestRobustCover:
    def setup_method(self):
        self.metric = random_points(110, dim=2, seed=2)
        self.cover = robust_tree_cover(self.metric, eps=0.4)
        self.pairs = sample_pairs(110, 300)

    def test_trees_dominate(self):
        for cover_tree in self.cover.trees[: min(25, self.cover.size)]:
            cover_tree.check_dominating(self.metric, self.pairs[:60])

    def test_stretch_bounded(self):
        worst, mean = self.cover.measured_stretch(self.pairs)
        assert worst <= 2.5  # 1 + O(eps) with the construction's constants
        assert mean <= 1.3

    def test_stretch_improves_with_eps(self):
        small = robust_tree_cover(self.metric, eps=0.2)
        worst_small, _ = small.measured_stretch(self.pairs)
        worst_big, _ = self.cover.measured_stretch(self.pairs)
        assert worst_small <= worst_big + 1e-9
        assert small.size > self.cover.size  # zeta grows as eps shrinks

    def test_robustness_certificate_bounded(self):
        values = [robustness_certificate(self.cover, p, q) for p, q in self.pairs[:40]]
        assert max(values) <= 8.0  # adversarial replacement stays O(1)

    def test_random_replacement_within_certificate(self):
        rng = random.Random(3)
        for p, q in self.pairs[:25]:
            index, _ = self.cover.best_tree(p, q)
            cover_tree = self.cover.trees[index]
            descendants = cover_tree.descendant_points()
            bound = path_replacement_bound(cover_tree, self.metric, p, q, descendants)
            for _ in range(5):
                w = replaced_path_weight(
                    cover_tree, self.metric, p, q, rng, descendants
                )
                assert w <= bound + 1e-6

    def test_every_point_is_a_distinct_leaf(self):
        for cover_tree in self.cover.trees[:10]:
            hosts = cover_tree.vertex_of_point
            assert len(set(hosts)) == len(hosts)
            for p, v in enumerate(hosts):
                assert cover_tree.rep_point[v] == p

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            robust_tree_cover(self.metric, eps=0.0)
        with pytest.raises(ValueError):
            robust_tree_cover(self.metric, eps=1.0)

    def test_works_on_clustered_input(self):
        m = clustered_points(90, clusters=6, seed=4)
        cover = robust_tree_cover(m, eps=0.4)
        worst, _ = cover.measured_stretch(sample_pairs(90, 200))
        assert worst <= 2.5


class TestCoverTreeContainer:
    def test_descendant_points_partition_at_leaves(self):
        m = random_points(60, seed=5)
        cover = robust_tree_cover(m, eps=0.45)
        cover_tree = cover.trees[0]
        below = cover_tree.descendant_points()
        root = cover_tree.tree.root
        assert sorted(below[root]) == list(range(60))
        for p, v in enumerate(cover_tree.vertex_of_point):
            assert below[v] == [p]

    def test_tree_path_points_ends_match(self):
        m = random_points(40, seed=6)
        cover = robust_tree_cover(m, eps=0.45)
        points = cover.trees[0].tree_path_points(3, 17)
        assert points[0] == 3 and points[-1] == 17

    def test_best_tree_scans_when_no_home(self):
        m = random_points(40, seed=7)
        cover = robust_tree_cover(m, eps=0.45)
        index, dist = cover.best_tree(1, 2)
        assert dist == min(t.tree_distance(1, 2) for t in cover.trees)
        assert abs(cover.trees[index].tree_distance(1, 2) - dist) < 1e-12

    def test_rep_point_length_validated(self):
        from repro.graphs import random_tree

        with pytest.raises(ValueError):
            CoverTree(random_tree(5, seed=0), [0, 1, 2, 3, 4], [0, 1])


class TestHst:
    def test_ckr_partition_is_a_partition_with_bounded_diameter(self):
        m = random_metric(60, seed=8)
        rng = random.Random(9)
        scale = 20.0
        clusters = ckr_partition(m, list(range(60)), scale, rng)
        seen = sorted(v for cluster in clusters for v in cluster)
        assert seen == list(range(60))
        for cluster in clusters:
            for a in cluster:
                for b in cluster:
                    assert m.distance(a, b) <= scale + 1e-9

    def test_hst_dominates(self):
        m = random_metric(50, seed=10)
        hst, _ = build_hst(m, alpha=8.0, seed=1)
        hst.check_dominating(m, sample_pairs(50, 150))

    def test_padded_points_have_bounded_stretch(self):
        m = random_metric(60, seed=11)
        hierarchy = PartitionHierarchy(m, alpha=16.0, rng=random.Random(2))
        hst = hierarchy.to_cover_tree()
        for p in hierarchy.padded:
            for q in range(60):
                if q != p:
                    assert hst.tree_distance(p, q) <= 8 * 16.0 * m.distance(p, q)


class TestRamseyCover:
    @pytest.mark.parametrize("ell", [1, 2, 3])
    def test_home_tree_stretch(self, ell):
        m = random_graph_metric(70, seed=12)
        cover = ramsey_tree_cover(m, ell=ell, seed=3)
        assert cover.home is not None
        bound = 64.0 * ell
        fallback_ok = 0
        for p in range(70):
            tree = cover.trees[cover.home[p]]
            worst = max(
                tree.tree_distance(p, q) / m.distance(p, q)
                for q in range(70)
                if q != p
            )
            if worst > bound:
                fallback_ok += 1
        # The randomized construction may home a few leftovers by
        # empirical best; the vast majority must meet the proven bound.
        assert fallback_ok <= 70 * 0.1

    def test_best_tree_uses_home_in_constant_lookups(self):
        m = random_metric(40, seed=13)
        cover = ramsey_tree_cover(m, ell=2, seed=4)
        index, _ = cover.best_tree(5, 9)
        assert index == cover.home[5]

    def test_tradeoff_direction(self):
        """Larger ell: fewer trees (easier padding), larger stretch bound."""
        m = random_graph_metric(80, seed=14)
        z1 = ramsey_tree_cover(m, ell=1, seed=5).size
        z3 = ramsey_tree_cover(m, ell=3, seed=5).size
        assert z3 <= z1

    def test_rejects_bad_ell(self):
        with pytest.raises(ValueError):
            ramsey_tree_cover(random_metric(10, seed=0), ell=0)


class TestFewTreesCover:
    @pytest.mark.parametrize("ell", [1, 2, 3])
    def test_exactly_ell_trees(self, ell):
        m = random_metric(50, seed=15)
        cover = few_trees_cover(m, ell, seed=6)
        assert cover.size == ell
        assert cover.home is not None

    def test_stretch_decreases_with_more_trees(self):
        m = random_graph_metric(60, seed=16)
        pairs = sample_pairs(60, 150)
        worst1, _ = few_trees_cover(m, 1, seed=7).measured_stretch(pairs)
        worst4, _ = few_trees_cover(m, 4, seed=7).measured_stretch(pairs)
        assert worst4 <= worst1 + 1e-9


class TestPrunedCover:
    def setup_method(self):
        self.metric = random_points(90, dim=2, seed=21)
        self.cover = robust_tree_cover(self.metric, eps=0.4)
        self.report = prune_cover(self.cover, eps=0.05)

    def test_prune_shrinks_within_contract(self):
        assert self.report.zeta_after < self.report.zeta_before
        assert self.report.zeta_before == self.cover.size
        worst, _ = self.report.cover.measured_stretch(
            sample_pairs(90, 400, seed=3)
        )
        assert worst <= self.report.gamma + 1e-6

    def test_retained_trees_are_the_same_objects(self):
        for i, orig in enumerate(self.report.retained):
            assert self.report.cover.trees[i] is self.cover.trees[orig]

    def test_deterministic_replay(self):
        again = prune_cover(robust_tree_cover(self.metric, eps=0.4), eps=0.05)
        assert again.retained == self.report.retained
        assert again.gamma == self.report.gamma

    def test_too_tight_gamma_raises(self):
        from repro.errors import InvariantViolation

        with pytest.raises(InvariantViolation):
            prune_cover(self.cover, gamma=1.0)

    def test_refuses_retired_cover(self):
        from repro.errors import StalePackError

        cover = robust_tree_cover(random_points(40, seed=22), eps=0.45)
        cover.retire("superseded by test")
        with pytest.raises(StalePackError):
            prune_cover(cover)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            prune_cover(self.cover, eps=-0.1)
        with pytest.raises(ValueError):
            prune_cover(self.cover, max_pairs=0)

    def test_ramsey_home_trees_survive_and_remap(self):
        m = random_graph_metric(60, seed=23)
        cover = ramsey_tree_cover(m, ell=2, seed=8)
        report = prune_cover(cover, eps=0.05)
        pruned = report.cover
        assert pruned.home is not None
        for p in range(60):
            # The home tree is mandatory, so each point's home survives
            # and still names the same tree object after the remap.
            orig_tree = cover.trees[cover.home[p]]
            assert pruned.trees[pruned.home[p]] is orig_tree

    @given(
        st.integers(min_value=25, max_value=55),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=6, deadline=None)
    def test_property_pruned_cover_dominates_within_declared_stretch(
        self, n, seed
    ):
        """For every point pair, some retained tree both dominates the
        metric distance and preserves it within the declared γ."""
        metric = random_points(n, dim=2, seed=seed)
        report = prune_cover(robust_tree_cover(metric, eps=0.45), eps=0.05)
        pruned = report.cover
        pairs = [(p, q) for p in range(n) for q in range(p + 1, n)]
        for (p, q), (_, d) in zip(pairs, pruned.best_trees(pairs)):
            base = metric.distance(p, q)
            assert d >= base - 1e-6 * max(1.0, base)
            assert d <= report.gamma * base + 1e-6


class TestCompactCover:
    def test_zeta_is_independent_of_n(self):
        small = compact_tree_cover(random_points(60, seed=24), eps=0.5)
        large = compact_tree_cover(random_points(240, seed=24), eps=0.5)
        # phases × shifts: ceil(log2(1/0.5)) + 2 = 3 phases, 4 shifts.
        assert small.size == large.size == 12

    def test_trees_dominate(self):
        m = random_points(70, seed=25)
        cover = compact_tree_cover(m, eps=0.5)
        pairs = sample_pairs(70, 200)
        for cover_tree in cover.trees:
            cover_tree.check_dominating(m, pairs)

    def test_stretch_bounded(self):
        m = random_points(120, seed=26)
        cover = compact_tree_cover(m, eps=0.5)
        worst, mean = cover.measured_stretch(sample_pairs(120, 400))
        # The shifted-hierarchy scheme trades stretch for its O(1) zeta;
        # the measured constant stays far below the trivial 2^phases
        # envelope, and the declared-contract machinery records the
        # actual value per build.
        assert worst <= 16.0
        assert mean <= 4.0

    def test_more_shifts_means_more_trees(self):
        m = random_points(60, seed=27)
        assert (
            compact_tree_cover(m, eps=0.5, shifts=2).size
            < compact_tree_cover(m, eps=0.5, shifts=6).size
        )

    def test_every_point_is_a_distinct_leaf(self):
        cover = compact_tree_cover(random_points(50, seed=28), eps=0.5)
        for cover_tree in cover.trees:
            hosts = cover_tree.vertex_of_point
            assert len(set(hosts)) == len(hosts)
            for p, v in enumerate(hosts):
                assert cover_tree.rep_point[v] == p

    def test_rejects_bad_params(self):
        m = random_points(20, seed=29)
        with pytest.raises(ValueError):
            compact_tree_cover(m, eps=0.0)
        with pytest.raises(ValueError):
            compact_tree_cover(m, eps=1.0)
        with pytest.raises(ValueError):
            compact_tree_cover(m, shifts=0)

    def test_prunable_like_any_cover(self):
        m = random_points(80, seed=30)
        cover = compact_tree_cover(m, eps=0.5, shifts=6)
        report = prune_cover(cover, eps=0.05)
        assert report.zeta_after <= report.zeta_before
        worst, _ = report.cover.measured_stretch(sample_pairs(80, 200))
        assert worst <= report.gamma + 1e-6


class TestPlanarCover:
    @pytest.mark.parametrize("maker,arg", [("grid", 11), ("delaunay", 140)])
    def test_stretch_at_most_three(self, maker, arg):
        metric = grid_graph_metric(arg, seed=17) if maker == "grid" else delaunay_metric(arg, seed=17)
        cover = planar_tree_cover(metric)
        pairs = sample_pairs(metric.n, 400)
        worst, _ = cover.measured_stretch(pairs)
        assert worst <= 3.0 + 1e-6

    def test_dominating(self):
        metric = grid_graph_metric(8, seed=18)
        cover = planar_tree_cover(metric)
        pairs = sample_pairs(metric.n, 200)
        for tree in cover.trees:
            tree.check_dominating(metric, pairs)

    def test_logarithmically_many_trees(self):
        small = planar_tree_cover(grid_graph_metric(6, seed=19)).size
        large = planar_tree_cover(grid_graph_metric(14, seed=19)).size
        assert large <= small + 8  # O(log n) levels, not polynomial

    def test_max_levels_caps_trees(self):
        metric = grid_graph_metric(9, seed=20)
        cover = planar_tree_cover(metric, max_levels=2)
        assert cover.size <= 2
