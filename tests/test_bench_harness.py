"""The benchmark-regression harness: schema, emission, and (marked) gates.

The unmarked tests run at toy sizes so tier-1 stays fast; the
``bench``-marked test is the real regression gate at n=2000 (opt in
with ``-m bench``), asserting the >= 3x construction speedup the
vectorized kernels are meant to deliver.
"""

import json
import subprocess
import sys

import pytest

from repro.bench import (
    NAVIGATION_SCHEMA,
    TREE_COVERS_SCHEMA,
    bench_navigation,
    bench_tree_covers,
    validate_bench_json,
    write_bench_files,
)


@pytest.fixture(scope="module")
def tiny_tree_payload():
    return bench_tree_covers(n=60, repeats=1, robust_repeats=1, stretch_sample=40)


def test_tree_covers_payload_shape(tiny_tree_payload):
    payload = tiny_tree_payload
    validate_bench_json(payload)
    assert payload["schema"] == TREE_COVERS_SCHEMA
    names = [entry["name"] for entry in payload["results"]]
    assert names == ["net_hierarchy", "hst", "robust_cover", "cover_pruning",
                     "compact_cover"]
    by_name = {entry["name"]: entry for entry in payload["results"]}
    robust = by_name["robust_cover"]
    # The baseline must rebuild the same cover: identical zeta, and the
    # measured stretch must stay a valid (finite, >= 1) cover quality.
    assert robust["detail"]["zeta"] == robust["detail"]["zeta_seed"]
    assert 1.0 <= robust["detail"]["stretch_mean"] <= robust["detail"]["stretch_max"]
    assert robust["detail"]["cover_bytes"] > 0
    # The seed implementation has counterparts only for the first three
    # stages; the pruning/compact rows are new machinery.
    for name in ("net_hierarchy", "hst", "robust_cover"):
        assert by_name[name]["seed_seconds"] is not None
        assert by_name[name]["speedup"] is not None
    pruning = by_name["cover_pruning"]["detail"]
    assert pruning["zeta_after"] < pruning["zeta_before"] == robust["detail"]["zeta"]
    assert pruning["reduction"] > 1.0
    assert pruning["stretch_max"] <= pruning["gamma"] + 1e-6
    assert pruning["cover_bytes_after"] < pruning["cover_bytes_before"]
    assert pruning["nav_delta"]["retained_paths_identical"] is True
    assert pruning["nav_delta"]["build_pruned_s"] <= pruning["nav_delta"]["build_full_s"]
    compact = by_name["compact_cover"]["detail"]
    assert compact["zeta"] < compact["zeta_robust"]
    assert compact["reduction_vs_robust"] > 1.0
    assert 1.0 <= compact["stretch_mean"] <= compact["stretch_max"]


def test_navigation_payload_shape():
    payload = bench_navigation(n=50, queries=30)
    validate_bench_json(payload)
    assert payload["schema"] == NAVIGATION_SCHEMA
    names = [entry["name"] for entry in payload["results"]]
    assert names == ["robust_cover", "navigator_build", "query_scalar",
                     "query_batch"]
    by_name = {entry["name"]: entry for entry in payload["results"]}
    # Every row now carries a measured seed baseline (the satellite fix
    # for the formerly-null seed_seconds/speedup fields).
    for name in ("robust_cover", "navigator_build", "query_scalar",
                 "query_batch"):
        assert by_name[name]["seed_seconds"] is not None
        assert by_name[name]["speedup"] is not None
    for name in ("robust_cover", "navigator_build"):
        detail = by_name[name]["detail"]
        assert detail["serial_seconds"] is not None
        if detail["workers"] > 1:
            # A real pool ran: the parallel-vs-serial comparison exists.
            assert detail["parallel_speedup"] is not None
        else:
            # Honest serial fallback: no fabricated 1.0 speedup, and if
            # the caller *asked* for a pool the reason is recorded.
            assert detail["parallel_speedup"] is None
            if detail.get("workers_requested", 0) > 1:
                assert "workers" in detail["workers_fallback"]
    scalar = by_name["query_scalar"]["detail"]
    assert scalar["p50_us"] <= scalar["p99_us"]
    assert by_name["query_batch"]["detail"]["queries"] == scalar["queries"]


def test_validate_rejects_malformed_payloads(tiny_tree_payload):
    good = tiny_tree_payload
    bad_schema = dict(good, schema="repro.bench.unknown/v9")
    with pytest.raises(ValueError, match="schema"):
        validate_bench_json(bad_schema)
    with pytest.raises(ValueError, match="results"):
        validate_bench_json(dict(good, results=[]))
    broken = json.loads(json.dumps(good))
    broken["results"][0]["seconds"] = "fast"
    with pytest.raises(ValueError, match="seconds"):
        validate_bench_json(broken)
    broken = json.loads(json.dumps(good))
    del broken["results"][0]["name"]
    with pytest.raises(ValueError, match="name"):
        validate_bench_json(broken)
    with pytest.raises(ValueError, match="config"):
        validate_bench_json({"schema": TREE_COVERS_SCHEMA, "results": [1]})


def test_write_bench_files_roundtrip(tiny_tree_payload, tmp_path):
    out = tmp_path / "artifacts"
    paths = write_bench_files(str(out), tiny_tree_payload, None)
    assert [p.split("/")[-1] for p in paths] == ["BENCH_tree_covers.json"]
    with open(paths[0], encoding="utf-8") as handle:
        loaded = json.load(handle)
    validate_bench_json(loaded)
    assert loaded == tiny_tree_payload


def test_run_experiments_json_flag(tmp_path):
    result = subprocess.run(
        [
            sys.executable,
            "benchmarks/run_experiments.py",
            "--json",
            "--bench-n",
            "60",
            "--bench-nav-n",
            "60",
            "--out-dir",
            str(tmp_path),
        ],
        capture_output=True,
        text=True,
        timeout=560,
    )
    assert result.returncode == 0, result.stderr
    for name in ("BENCH_tree_covers.json", "BENCH_navigation.json"):
        with open(tmp_path / name, encoding="utf-8") as handle:
            validate_bench_json(json.load(handle))


@pytest.mark.bench
def test_full_size_construction_speedup_gate():
    """The PR's headline: >= 3x construction speedup at n=2000.

    Covers the doubling-metric robust tree cover and the HST hierarchy
    against the frozen seed implementations, measured in-process.
    """
    payload = bench_tree_covers(n=2000)
    validate_bench_json(payload)
    by_name = {entry["name"]: entry for entry in payload["results"]}
    assert by_name["robust_cover"]["speedup"] >= 3.0
    assert by_name["hst"]["speedup"] >= 3.0
    assert by_name["robust_cover"]["detail"]["zeta"] == (
        by_name["robust_cover"]["detail"]["zeta_seed"]
    )
    # The zeta attack: pruning must cut the cover >= 5x at full size
    # while staying within the re-verified stretch budget.
    pruning = by_name["cover_pruning"]["detail"]
    assert pruning["reduction"] >= 5.0
    assert pruning["stretch_max"] <= pruning["gamma"] + 1e-6
    assert pruning["nav_delta"]["retained_paths_identical"] is True
