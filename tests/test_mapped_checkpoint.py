"""Zero-copy checkpoint tests: raw-array region, mmap loads, sharing.

The ``packed=True`` navigator checkpoint appends a page-aligned raw
binary region after the JSON envelope line; ``mmap=True`` loads attach
to it without rebuilding anything.  These tests pin the format's
integrity story (per-array CRC32 tamper detection, envelope digest
unaffected), backward compatibility (non-mapped readers ignore the raw
region; plain v2 files refuse ``mmap=True`` with a typed error), exact
answer parity, and cross-process bit-identity under the ``spawn`` start
method.
"""

import multiprocessing

import numpy as np
import pytest

from repro.checkpoint import (
    RAW_SECTION,
    load_mapped_arrays,
    load_navigator_checkpoint,
    open_envelope,
    read_checkpoint_file,
    save_navigator_checkpoint,
)
from repro.core import MetricNavigator, PackedMetricNavigator
from repro.errors import CheckpointCorruption
from repro.metrics import random_points, sample_pairs
from repro.parallel import attach_mapped_navigator, mapped_navigator_descriptor
from repro.treecover import robust_tree_cover


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    metric = random_points(80, dim=2, seed=0)
    cover = robust_tree_cover(metric, eps=0.5)
    navigator = MetricNavigator(metric, cover, 3)
    path = str(tmp_path_factory.mktemp("ckpt") / "nav.ckpt")
    save_navigator_checkpoint(navigator, path, packed=True)
    return metric, navigator, path


class TestFormat:
    def test_envelope_is_first_line_and_verifies(self, stack):
        _, _, path = stack
        data = read_checkpoint_file(path)
        kind, meta, bodies = open_envelope(data)
        assert kind == "navigator"
        assert RAW_SECTION in bodies
        table = bodies[RAW_SECTION]
        assert table["align"] == 4096
        for spec in table["arrays"].values():
            assert spec["offset"] % 64 == 0

    def test_raw_byte_tamper_detected_at_map_time(self, stack, tmp_path):
        _, _, path = stack
        data = read_checkpoint_file(path)
        _, _, bodies = open_envelope(data)
        table = bodies[RAW_SECTION]
        raw = open(path, "rb").read()
        name, spec = next(iter(table["arrays"].items()))
        align = table["align"]
        header_len = raw.index(b"\n") + 1
        data_start = -(-header_len // align) * align
        offset = data_start + spec["offset"]
        tampered = (
            raw[:offset] + bytes([raw[offset] ^ 0xFF]) + raw[offset + 1:]
        )
        bad = str(tmp_path / "tampered.ckpt")
        with open(bad, "wb") as handle:
            handle.write(tampered)
        # The envelope (JSON line) is untouched, so digest still passes…
        open_envelope(read_checkpoint_file(bad))
        # …but the raw region's per-array CRC catches the flip.
        with pytest.raises(CheckpointCorruption, match="CRC32"):
            load_mapped_arrays(bad, table)

    def test_mapped_arrays_are_read_only(self, stack):
        _, _, path = stack
        _, _, bodies = open_envelope(read_checkpoint_file(path))
        arrays = load_mapped_arrays(path, bodies[RAW_SECTION])
        view = next(iter(arrays.values()))
        assert not view.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            view[...] = 0


class TestCompatibility:
    def test_packed_file_loads_through_legacy_path(self, stack):
        """Non-mmap loads of a packed file rebuild + audit as before."""
        metric, navigator, path = stack
        rebuilt = load_navigator_checkpoint(path, metric)
        assert isinstance(rebuilt, MetricNavigator)
        assert rebuilt.num_trees == navigator.num_trees

    def test_plain_v2_file_refuses_mmap(self, stack, tmp_path):
        metric, navigator, _ = stack
        plain = str(tmp_path / "plain.ckpt")
        save_navigator_checkpoint(navigator, plain)  # no raw region
        load_navigator_checkpoint(plain, metric)  # fine without mmap
        with pytest.raises(CheckpointCorruption, match="raw-array"):
            load_navigator_checkpoint(plain, metric, mmap=True)

    def test_mmap_rejects_wrong_metric_size(self, stack):
        _, _, path = stack
        other = random_points(81, dim=2, seed=1)
        with pytest.raises(CheckpointCorruption, match="80 points"):
            load_navigator_checkpoint(path, other, mmap=True)


class TestParity:
    def test_mapped_answers_bit_identical(self, stack):
        metric, navigator, path = stack
        mapped = load_navigator_checkpoint(path, metric, mmap=True)
        assert isinstance(mapped, PackedMetricNavigator)
        assert mapped.num_trees == navigator.num_trees
        pairs = sample_pairs(metric.n, 120, seed=2)
        for u, v in pairs:
            assert mapped.find_path_with_tree(u, v) == \
                navigator.find_path_with_tree(u, v)
            assert mapped.approx_distance(u, v) == \
                navigator.approx_distance(u, v)
        assert mapped.find_paths(pairs) == navigator.find_paths(pairs)
        assert np.array_equal(
            mapped.approx_distances(pairs), navigator.approx_distances(pairs)
        )

    def test_paths_are_json_ready_python_ints(self, stack):
        metric, _, path = stack
        mapped = load_navigator_checkpoint(path, metric, mmap=True)
        path_points, tree = mapped.find_path_with_tree(0, 79)
        assert all(type(x) is int for x in path_points)
        assert type(tree) is int


def _worker_answers(path, points, pairs, queue):
    """Spawn entry point: attach to the mapped checkpoint, answer."""
    from repro.metrics import EuclideanMetric

    metric = EuclideanMetric(points)
    navigator = attach_mapped_navigator(
        mapped_navigator_descriptor(path), metric
    )
    queue.put([navigator.find_path_with_tree(u, v) for u, v in pairs])


class TestMultiProcess:
    def test_two_spawned_processes_answer_identically(self, stack):
        """Two independent processes mapping the same checkpoint give
        bit-identical answers (and match the in-memory navigator)."""
        metric, navigator, path = stack
        pairs = sample_pairs(metric.n, 40, seed=3)
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.SimpleQueue()
        procs = [
            ctx.Process(
                target=_worker_answers,
                args=(path, metric.points, pairs, queue),
            )
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        answers = [queue.get() for _ in procs]
        for proc in procs:
            proc.join()
        expected = [navigator.find_path_with_tree(u, v) for u, v in pairs]
        # queue.get() normalizes tuples through pickling; compare shapes
        normalized = [[(list(p), t) for p, t in a] for a in answers]
        assert normalized[0] == normalized[1]
        assert normalized[0] == [(list(p), t) for p, t in expected]
