"""The process-pool fan-out engine and its serial/parallel equivalence.

The engine's contract is that worker count is *unobservable* in the
output: every parallel build path (covers, navigators, FT spanners,
checkpoint audits) must produce bit-identical structures at ``workers=0``
and ``workers=2`` (tier-1, below) and ``workers=4`` (the
``parallel``-marked scaling suite, which also gates the >= 1.5x
navigator-build speedup and therefore needs real cores — opt in with
``-m parallel``).
"""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.audit import audit_cover
from repro.core.metric_navigator import MetricNavigator
from repro.errors import ReproError
from repro.metrics.euclidean import EuclideanMetric, random_points
from repro.metrics.general import MatrixMetric
from repro.parallel import (
    ENV_WORKERS,
    derive_seed,
    export_metric,
    import_metric,
    map_per_tree,
    resolve_workers,
)
from repro.parallel.engine import _IN_WORKER_ENV
from repro.spanners.fault_tolerant import FaultTolerantSpanner
from repro.treecover.dumbbell import robust_tree_cover
from repro.treecover.ramsey import few_trees_cover, ramsey_tree_cover


def _fp_cover(cover):
    """A structural fingerprint: equal iff the covers are identical."""
    return (
        [
            (
                tuple(ct.tree.parents),
                tuple(ct.tree.weights),
                tuple(ct.rep_point),
                tuple(ct.vertex_of_point),
            )
            for ct in cover.trees
        ],
        None if cover.home is None else tuple(cover.home),
    )


def _query_pairs(n, count=12):
    return [(i % n, (3 * i + 1) % n) for i in range(count)
            if i % n != (3 * i + 1) % n]


# ----------------------------------------------------------------------
# Engine unit behavior


def _double(ctx, item):
    return 2 * item + (0 if ctx.payload is None else ctx.payload)


def _boom_on_two(ctx, item):
    if item == 2:
        raise ValueError("boom")
    return item


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.delenv(ENV_WORKERS, raising=False)
    assert resolve_workers(None) == 0
    assert resolve_workers(0) == 0
    assert resolve_workers(1) == 0
    assert resolve_workers(3) == 3
    cpus = os.cpu_count() or 1
    assert resolve_workers(-1) == (0 if cpus <= 1 else cpus)
    monkeypatch.setenv(ENV_WORKERS, "4")
    assert resolve_workers(None) == 4
    # The explicit argument wins over the environment.
    assert resolve_workers(2) == 2
    assert resolve_workers(0) == 0
    monkeypatch.setenv(ENV_WORKERS, "not-a-number")
    assert resolve_workers(None) == 0
    # Inside a worker, nested pools are refused.
    monkeypatch.setenv(ENV_WORKERS, "4")
    monkeypatch.setenv(_IN_WORKER_ENV, "1")
    assert resolve_workers(8) == 0


def test_derive_seed_is_stable_and_spread():
    assert derive_seed(0, 0) == derive_seed(0, 0)
    seen = {derive_seed(7, t) for t in range(100)}
    assert len(seen) == 100
    assert derive_seed(7, 0) != derive_seed(8, 0)


def test_map_per_tree_orders_and_matches_serial():
    items = list(range(20))
    serial = map_per_tree(_double, items, workers=0, payload=5)
    pooled = map_per_tree(_double, items, workers=2, payload=5)
    assert serial == pooled == [2 * i + 5 for i in items]


@pytest.mark.parametrize("workers", [0, 2])
def test_map_per_tree_raises_fn_errors_in_order(workers):
    with pytest.raises(ValueError, match="boom"):
        map_per_tree(_boom_on_two, [0, 2, 1], workers=workers)


def test_map_per_tree_thread_fallback_for_unpicklable_items():
    items = [lambda: 1, lambda: 2, lambda: 3]  # unpicklable work items
    results = map_per_tree(lambda ctx, item: item(), items, workers=2)
    assert results == [1, 2, 3]


def test_shared_memory_metric_roundtrip():
    metric = random_points(30, dim=2, seed=3)
    spec, owners = export_metric(metric)
    try:
        assert spec[0] == "euclidean"
        rebuilt = import_metric(spec)
        assert isinstance(rebuilt, EuclideanMetric)
        np.testing.assert_array_equal(rebuilt.points, metric.points)
        assert rebuilt.distance(0, 1) == metric.distance(0, 1)
    finally:
        for owner in owners:
            owner.close()

    rng = np.random.default_rng(0)
    raw = rng.random((8, 8))
    matrix = MatrixMetric((raw + raw.T) * 0.5 + 8 * (1 - np.eye(8)))
    spec, owners = export_metric(matrix)
    try:
        assert spec[0] == "matrix"
        rebuilt = import_metric(spec)
        np.testing.assert_array_equal(rebuilt.matrix, matrix.matrix)
    finally:
        for owner in owners:
            owner.close()


# ----------------------------------------------------------------------
# Picklability of the build products


def test_cover_tree_and_navigator_pickle_roundtrip():
    metric = random_points(40, dim=2, seed=2)
    cover = robust_tree_cover(metric, eps=0.5)
    ct = cover.trees[0]
    ct.tree_metric  # populate the lazy cache on the original
    state = ct.__getstate__()
    assert state["_tree_metric"] is None
    clone = pickle.loads(pickle.dumps(ct))
    assert clone.tree.parents == ct.tree.parents
    assert clone.tree.weights == ct.tree.weights
    assert clone.tree_metric.distance(0, 1) == ct.tree_metric.distance(0, 1)

    navigator = MetricNavigator(metric, cover, 3)
    clone = pickle.loads(pickle.dumps(navigator))
    for u, v in _query_pairs(40):
        assert clone.find_path(u, v) == navigator.find_path(u, v)


# ----------------------------------------------------------------------
# Serial/parallel equivalence of every build path (workers=2, tier-1)


def test_robust_cover_parallel_determinism():
    metric = random_points(60, dim=2, seed=5)
    fp = _fp_cover(robust_tree_cover(metric, eps=0.5, workers=0))
    assert _fp_cover(robust_tree_cover(metric, eps=0.5, workers=2)) == fp


def test_ramsey_covers_parallel_determinism():
    metric = random_points(40, dim=2, seed=6)
    fp = _fp_cover(ramsey_tree_cover(metric, ell=2, seed=9, workers=0))
    assert _fp_cover(ramsey_tree_cover(metric, ell=2, seed=9, workers=2)) == fp
    fp = _fp_cover(few_trees_cover(metric, 3, seed=9, workers=0))
    assert _fp_cover(few_trees_cover(metric, 3, seed=9, workers=2)) == fp


def test_navigator_parallel_determinism():
    metric = random_points(50, dim=2, seed=7)
    cover = robust_tree_cover(metric, eps=0.5)
    serial = MetricNavigator(metric, cover, 3, workers=0)
    pooled = MetricNavigator(metric, cover, 3, workers=2)
    assert [nav.edges for nav in pooled.navigators] == [
        nav.edges for nav in serial.navigators
    ]
    assert pooled.aux_fingerprint() == serial.aux_fingerprint()
    for u, v in _query_pairs(50):
        assert pooled.find_path(u, v) == serial.find_path(u, v)


def test_ft_spanner_parallel_determinism():
    metric = random_points(40, dim=2, seed=8)
    cover = robust_tree_cover(metric, eps=0.5)
    serial = FaultTolerantSpanner(metric, f=1, k=4, cover=cover, workers=0)
    pooled = FaultTolerantSpanner(metric, f=1, k=4, cover=cover, workers=2)
    assert pooled.replicas == serial.replicas
    assert [nav.edges for nav in pooled.navigators] == [
        nav.edges for nav in serial.navigators
    ]
    for u, v in _query_pairs(40):
        assert pooled.find_path(u, v, set()) == serial.find_path(u, v, set())


def test_audit_verdicts_parallel_determinism():
    metric = random_points(40, dim=2, seed=4)
    cover = robust_tree_cover(metric, eps=0.5)
    serial = audit_cover(cover, workers=0)
    pooled = audit_cover(cover, workers=2)
    assert pooled.checks == serial.checks

    # A broken tree must raise the same typed error in both modes.
    cover.trees[1].tree.weights[1] = -1.0
    with pytest.raises(ReproError) as serial_err:
        audit_cover(cover, workers=0)
    with pytest.raises(ReproError) as pooled_err:
        audit_cover(cover, workers=2)
    assert type(pooled_err.value) is type(serial_err.value)


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n=st.integers(min_value=24, max_value=48),
)
def test_hypothesis_parallel_equals_serial(seed, n):
    """Worker count is unobservable across the whole pipeline."""
    metric = random_points(n, dim=2, seed=seed)
    covers = {}
    for workers in (0, 2):
        covers[workers] = robust_tree_cover(metric, eps=0.5, workers=workers)
    assert _fp_cover(covers[2]) == _fp_cover(covers[0])

    navigators = {
        workers: MetricNavigator(metric, covers[0], 3, workers=workers)
        for workers in (0, 2)
    }
    assert navigators[2].aux_fingerprint() == navigators[0].aux_fingerprint()
    for u, v in _query_pairs(n, count=8):
        assert navigators[2].find_path(u, v) == navigators[0].find_path(u, v)

    reports = {
        workers: audit_cover(covers[0], workers=workers) for workers in (0, 2)
    }
    assert reports[2].checks == reports[0].checks


# ----------------------------------------------------------------------
# Multi-core scaling suite (needs real cores; excluded from tier-1)


@pytest.mark.parallel
def test_workers4_determinism_all_builders():
    metric = random_points(80, dim=2, seed=11)
    fp = _fp_cover(robust_tree_cover(metric, eps=0.5, workers=0))
    assert _fp_cover(robust_tree_cover(metric, eps=0.5, workers=4)) == fp
    cover = robust_tree_cover(metric, eps=0.5)
    serial = MetricNavigator(metric, cover, 3, workers=0)
    pooled = MetricNavigator(metric, cover, 3, workers=4)
    assert pooled.aux_fingerprint() == serial.aux_fingerprint()
    ft0 = FaultTolerantSpanner(metric, f=1, k=4, cover=cover, workers=0)
    ft4 = FaultTolerantSpanner(metric, f=1, k=4, cover=cover, workers=4)
    assert ft4.replicas == ft0.replicas
    assert audit_cover(cover, workers=4).checks == (
        audit_cover(cover, workers=0).checks
    )


@pytest.mark.parallel
def test_navigator_build_speedup_gate():
    """>= 1.5x navigator-build speedup at 2 workers (the ISSUE gate)."""
    import time

    if (os.cpu_count() or 1) < 2:
        pytest.skip("pool scaling needs at least 2 cores")
    metric = random_points(500, dim=2, seed=1)
    cover = robust_tree_cover(metric, eps=0.5)
    start = time.perf_counter()
    MetricNavigator(metric, cover, 3, workers=0)
    serial = time.perf_counter() - start
    start = time.perf_counter()
    MetricNavigator(metric, cover, 3, workers=2)
    pooled = time.perf_counter() - start
    assert serial / pooled >= 1.5, (
        f"navigator build speedup {serial / pooled:.2f}x at 2 workers "
        f"(serial {serial:.2f}s, pooled {pooled:.2f}s)"
    )
