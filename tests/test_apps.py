"""Tests for the Section 5 applications: sparsification, SPT, MST,
online tree products and MST verification."""

import random

import pytest

from repro.apps import (
    MstVerifier,
    NaiveTreeProduct,
    OnlineTreeProduct,
    approximate_mst,
    approximate_spt,
    base_mst,
    mst_weight,
    sparsify,
    sparsify_report,
    spt_as_graph,
    verify_spt,
)
from repro.core import MetricNavigator
from repro.graphs import dijkstra, path_tree, random_tree
from repro.metrics import TreeMetric, random_points, sample_pairs
from repro.spanners import complete_graph, greedy_spanner, lightness
from repro.treecover import robust_tree_cover
from repro.util import CountingSemigroup


def doubling_navigator(n=70, seed=0, eps=0.45, k=3):
    metric = random_points(n, dim=2, seed=seed)
    cover = robust_tree_cover(metric, eps=eps)
    return MetricNavigator(metric, cover, k)


class TestSparsify:
    def test_dense_input_becomes_sparse(self):
        nav = doubling_navigator(60, seed=1)
        dense = complete_graph(nav.metric)
        before, after, sparse = sparsify_report(dense, nav, t=1.0)
        assert after.edges < before.edges
        assert after.edges <= nav.num_edges  # subgraph of H_X

    def test_stretch_grows_by_at_most_gamma(self):
        nav = doubling_navigator(50, seed=2)
        pairs = sample_pairs(50, 100)
        gamma = max(nav.cover.stretch(u, v) for u, v in pairs)
        spanner = greedy_spanner(nav.metric, 1.4)
        before, after, _ = sparsify_report(spanner, nav, t=1.4, pairs=pairs)
        assert after.stretch <= gamma * before.stretch + 1e-6

    def test_lightness_grows_by_at_most_gamma(self):
        nav = doubling_navigator(50, seed=3)
        spanner = greedy_spanner(nav.metric, 1.4)
        sparse = sparsify(spanner, nav)
        gamma = max(nav.cover.stretch(u, v) for u, v in sample_pairs(50, 200))
        assert lightness(sparse, nav.metric) <= gamma * lightness(spanner, nav.metric) + 1e-6

    def test_result_is_subgraph_of_navigation_spanner(self):
        nav = doubling_navigator(40, seed=4)
        sparse = sparsify(greedy_spanner(nav.metric, 1.5), nav)
        edges = nav.spanner_edges()
        for u, v, _ in sparse.edges():
            assert (min(u, v), max(u, v)) in edges


class TestApproximateSpt:
    @pytest.mark.parametrize("root", [0, 33])
    def test_algorithm_3_guarantees(self, root):
        nav = doubling_navigator(60, seed=5)
        gamma = max(nav.cover.stretch(root, v) for v in range(60) if v != root)
        parent, dist = approximate_spt(nav, root)
        verify_spt(nav, root, parent, dist, gamma + 1e-9)

    def test_spt_beats_navigation_weight_bound(self):
        """dist[v] is at most the navigated path weight (relaxation only
        improves it)."""
        nav = doubling_navigator(50, seed=6)
        parent, dist = approximate_spt(nav, 0)
        for v in range(1, 50):
            path = nav.find_path(0, v)
            assert dist[v] <= nav.path_weight(path) + 1e-9

    def test_spt_graph_is_spanning_tree(self):
        nav = doubling_navigator(40, seed=7)
        parent, _ = approximate_spt(nav, 3)
        g = spt_as_graph(parent, nav.metric)
        assert g.num_edges == 39
        assert all(d < float("inf") for d in dijkstra(g, 3))


class TestApproximateMst:
    def test_base_mst_is_minimum(self):
        metric = random_points(40, dim=2, seed=8)
        from repro.graphs import prim_mst

        exact = mst_weight(prim_mst(40, metric.distance))
        assert abs(mst_weight(base_mst(metric)) - exact) < 1e-6

    def test_base_mst_small_input_fallback(self):
        metric = random_points(3, dim=2, seed=9)
        assert len(base_mst(metric)) == 2

    def test_approximate_mst_ratio(self):
        nav = doubling_navigator(60, seed=10)
        exact = mst_weight(base_mst(nav.metric))
        approx = mst_weight(approximate_mst(nav))
        gamma = max(nav.cover.stretch(u, v) for u, v in sample_pairs(60, 300))
        assert exact <= approx + 1e-9
        assert approx <= gamma * exact + 1e-6

    def test_approximate_mst_is_spanning_subgraph_of_spanner(self):
        nav = doubling_navigator(40, seed=11)
        edges = approximate_mst(nav)
        assert len(edges) == 39
        spanner_edges = nav.spanner_edges()
        for u, v, _ in edges:
            assert (min(u, v), max(u, v)) in spanner_edges


class TestOnlineTreeProduct:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_ops_per_query_at_most_k_minus_one(self, k):
        tree = random_tree(250, seed=12)
        values = [(v,) for v in range(250)]
        counter = CountingSemigroup(lambda a, b: a + b)
        product = OnlineTreeProduct(tree, k, counter, values)
        counter.reset()
        rng = random.Random(13)
        for _ in range(200):
            u, v = rng.sample(range(250), 2)
            product.query(u, v)
            assert counter.reset() <= k - 1

    def test_non_commutative_correctness(self):
        """Tuple concatenation is non-commutative; results must equal
        the naive edge-by-edge walk exactly."""
        tree = random_tree(150, seed=14)
        values = [(v,) for v in range(150)]
        op = lambda a, b: a + b
        product = OnlineTreeProduct(tree, 3, op, values)
        naive = NaiveTreeProduct(tree, op, values)
        rng = random.Random(15)
        for _ in range(300):
            u, v = rng.sample(range(150), 2)
            assert product.query(u, v) == naive.query(u, v)

    def test_matches_tree_distance_for_sum_semigroup(self):
        tree = random_tree(100, seed=16)
        product = OnlineTreeProduct(tree, 2, lambda a, b: a + b, list(tree.weights))
        metric = TreeMetric(tree)
        rng = random.Random(17)
        for _ in range(100):
            u, v = rng.sample(range(100), 2)
            assert abs(product.query(u, v) - metric.distance(u, v)) < 1e-6

    def test_min_semigroup_on_path(self):
        tree = path_tree(80, seed=18)
        product = OnlineTreeProduct(tree, 4, min, list(tree.weights))
        assert abs(product.query(0, 79) - min(tree.weights[1:])) < 1e-12

    def test_identity_query_rejected(self):
        tree = random_tree(20, seed=19)
        product = OnlineTreeProduct(tree, 2, min, list(tree.weights))
        with pytest.raises(ValueError):
            product.query(4, 4)

    def test_naive_ops_scale_with_path_length(self):
        tree = path_tree(200, seed=20)
        counter = CountingSemigroup(min)
        naive = NaiveTreeProduct(tree, counter, list(tree.weights))
        naive.query(0, 199)
        assert counter.ops == 198  # Θ(n), the cost Theorem 5.6 avoids


class TestMstVerification:
    def setup_method(self):
        self.tree = random_tree(200, seed=21)
        self.verifier = MstVerifier(self.tree, 2)

    def test_answers_match_brute_force(self):
        rng = random.Random(22)
        for _ in range(300):
            u, v = rng.sample(range(200), 2)
            w = rng.uniform(0.0, 15.0)
            expected = self.verifier.brute_force(u, v, w)
            by_order, _ = self.verifier.verify_by_order(u, v, w)
            generic, _ = self.verifier.verify(u, v, w)
            assert by_order == generic == expected

    def test_single_weight_comparison_by_order(self):
        rng = random.Random(23)
        for _ in range(100):
            u, v = rng.sample(range(200), 2)
            _, comparisons = self.verifier.verify_by_order(u, v, rng.uniform(0, 15))
            assert comparisons == 1

    def test_generic_variant_uses_at_most_k_comparisons(self):
        for k in (2, 3, 4):
            verifier = MstVerifier(self.tree, k)
            rng = random.Random(24)
            for _ in range(100):
                u, v = rng.sample(range(200), 2)
                _, comparisons = verifier.verify(u, v, rng.uniform(0, 15))
                assert comparisons <= k

    def test_preprocessing_comparisons_near_sorting_bound(self):
        import math

        n = 200
        assert self.verifier.preprocessing_comparisons <= 3 * n * math.log2(n)

    def test_path_max_matches_walk(self):
        rng = random.Random(25)
        depth = self.tree.depths()
        for _ in range(100):
            u, v = rng.sample(range(200), 2)
            path = self.tree.path(u, v)
            expected = max(
                self.tree.weights[b if depth[b] > depth[a] else a]
                for a, b in zip(path, path[1:])
            )
            assert abs(self.verifier.path_max(u, v) - expected) < 1e-12

    def test_mst_edges_verify_false_nontree_heavier_true(self):
        """For an actual MST, every non-tree edge is heavier than the
        tree path between its endpoints (the cycle property)."""
        metric = random_points(60, dim=2, seed=26)
        edges = base_mst(metric)
        from repro.graphs import Tree

        tree = Tree.from_edges(60, edges)
        verifier = MstVerifier(tree, 3)
        rng = random.Random(27)
        tree_pairs = {(min(u, v), max(u, v)) for u, v, _ in edges}
        for _ in range(150):
            u, v = rng.sample(range(60), 2)
            if (min(u, v), max(u, v)) in tree_pairs:
                continue
            ok, _ = verifier.verify_by_order(u, v, metric.distance(u, v))
            assert ok, f"MST cycle property violated for ({u}, {v})"
