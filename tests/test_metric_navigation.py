"""Tests for Theorem 1.2: two-step navigation over tree covers."""

import random
import time

import pytest

from repro.core import MetricNavigator
from repro.metrics import (
    grid_graph_metric,
    random_graph_metric,
    random_points,
    sample_pairs,
)
from repro.treecover import (
    planar_tree_cover,
    ramsey_tree_cover,
    robust_tree_cover,
)


def home_stretch(cover, metric):
    worst = 1.0
    for p in range(metric.n):
        tree = cover.trees[cover.home[p]]
        for q in range(0, metric.n, 5):
            if q != p:
                worst = max(worst, tree.tree_distance(p, q) / metric.distance(p, q))
    return worst


class TestDoublingNavigation:
    def setup_method(self):
        self.metric = random_points(90, dim=2, seed=0)
        self.cover = robust_tree_cover(self.metric, eps=0.45)
        self.gamma = self.cover.measured_stretch(sample_pairs(90, 300))[0]

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_queries_meet_all_guarantees(self, k):
        nav = MetricNavigator(self.metric, self.cover, k)
        pairs = sample_pairs(90, 100, seed=k)
        gamma = max(self.cover.stretch(u, v) for u, v in pairs)
        for u, v in pairs:
            nav.verify_query(u, v, gamma + 1e-9)

    def test_path_is_list_of_points(self):
        nav = MetricNavigator(self.metric, self.cover, 2)
        path = nav.find_path(0, 89)
        assert all(0 <= p < 90 for p in path)
        assert path[0] == 0 and path[-1] == 89

    def test_identity(self):
        nav = MetricNavigator(self.metric, self.cover, 2)
        assert nav.find_path(7, 7) == [7]

    def test_reported_tree_achieves_best_distance(self):
        nav = MetricNavigator(self.metric, self.cover, 2)
        _, index = nav.find_path_with_tree(3, 50)
        best_index, best = self.cover.best_tree(3, 50)
        assert index == best_index

    def test_spanner_size_scales_with_zeta(self):
        """|H_X| = O(n·αk(n)·ζ): a richer cover gives a bigger H_X."""
        rich_cover = robust_tree_cover(self.metric, eps=0.25)
        base = MetricNavigator(self.metric, self.cover, 2).num_edges
        rich = MetricNavigator(self.metric, rich_cover, 2).num_edges
        assert rich_cover.size > self.cover.size
        assert rich > base

    def test_query_stretch_helper(self):
        nav = MetricNavigator(self.metric, self.cover, 3)
        hops, stretch = nav.query_stretch(2, 77)
        assert hops <= 3
        assert 1.0 <= stretch <= self.gamma + 1e-9


class TestGeneralNavigation:
    def setup_method(self):
        self.metric = random_graph_metric(70, seed=1)
        self.cover = ramsey_tree_cover(self.metric, ell=2, seed=2)
        self.gamma = home_stretch(self.cover, self.metric)

    @pytest.mark.parametrize("k", [2, 3])
    def test_queries(self, k):
        nav = MetricNavigator(self.metric, self.cover, k)
        for u, v in sample_pairs(70, 120, seed=k):
            nav.verify_query(u, v)

    def test_constant_time_tree_choice(self):
        """Ramsey home lookup beats the O(ζ) scan structurally: the
        chosen tree is always the home tree of one endpoint."""
        nav = MetricNavigator(self.metric, self.cover, 2)
        for u, v in sample_pairs(70, 50, seed=9):
            _, index = nav.find_path_with_tree(u, v)
            assert index == self.cover.home[u]


class TestPlanarNavigation:
    def test_queries(self):
        metric = grid_graph_metric(9, seed=3)
        cover = planar_tree_cover(metric)
        for k in (2, 3):
            nav = MetricNavigator(metric, cover, k)
            pairs = sample_pairs(metric.n, 120, seed=k)
            gamma = max(cover.stretch(u, v) for u, v in pairs)
            assert gamma <= 3.0 + 1e-6
            for u, v in pairs:
                nav.verify_query(u, v, gamma + 1e-9)


class TestQueryWorkScaling:
    def _count_distance_evaluations(self, metric, cover, queries):
        """Tree-distance evaluations per find_path (the O(ζ) scan)."""
        from repro.treecover.base import CoverTree

        nav = MetricNavigator(metric, cover, 2)
        counter = {"calls": 0}
        original = CoverTree.tree_distance

        def counting(self, p, q):
            counter["calls"] += 1
            return original(self, p, q)

        CoverTree.tree_distance = counting
        try:
            for u, v in queries:
                nav.find_path(u, v)
        finally:
            CoverTree.tree_distance = original
        return counter["calls"] / len(queries)

    def test_scan_cost_is_zeta_not_n(self, monkeypatch):
        """O(k + ζ) query: legacy tree selection evaluates exactly ζ
        tree distances per query, independent of n (deterministic
        version of the paper's τ bound — wall-clock is measured in the
        benches).  The packed selection index replaces all of those
        scalar oracle calls with vectorized array ops."""
        metric = random_points(120, dim=2, seed=4)
        # Packed index disabled: the scalar scan consults every oracle.
        monkeypatch.setenv("REPRO_PACKED_INDEX_MAX_MB", "0")
        cover = robust_tree_cover(metric, eps=0.6)
        per_query = self._count_distance_evaluations(
            metric, cover, sample_pairs(120, 40, seed=5)
        )
        assert per_query == cover.size
        # Packed index enabled (the default): zero scalar oracle calls.
        monkeypatch.delenv("REPRO_PACKED_INDEX_MAX_MB")
        cover.invalidate_query_state()
        per_query = self._count_distance_evaluations(
            metric, cover, sample_pairs(120, 40, seed=5)
        )
        assert per_query == 0.0

    def test_ramsey_scan_cost_is_constant(self):
        metric = random_graph_metric(80, seed=6)
        cover = ramsey_tree_cover(metric, ell=2, seed=7)
        per_query = self._count_distance_evaluations(
            metric, cover, sample_pairs(80, 40, seed=8)
        )
        assert per_query == 1.0  # home-tree lookup only
