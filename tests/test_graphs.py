"""Tests for the weighted-graph substrate and spanner quality measures."""

import math
import random

import networkx as nx
import pytest

from repro.graphs import Graph, bfs_hops, dijkstra, prim_mst
from repro.metrics import random_points, sample_pairs
from repro.spanners import (
    bounded_hop_stretch,
    complete_graph,
    evaluate_spanner,
    greedy_spanner,
    hop_diameter,
    lightness,
    measured_stretch,
    sparsity,
    theta_graph,
)
from repro.spanners.baselines import theta_walk


def random_graph(n, extra, seed):
    rng = random.Random(seed)
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v), rng.uniform(1, 10))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v, rng.uniform(1, 10))
    return g


def to_networkx(g):
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        h.add_edge(u, v, weight=w)
    return h


class TestGraph:
    def test_parallel_edges_keep_minimum(self):
        g = Graph(3)
        g.add_edge(0, 1, 5.0)
        g.add_edge(1, 0, 2.0)
        g.add_edge(0, 1, 9.0)
        assert g.adj[0][1] == 2.0
        assert g.num_edges == 1

    def test_self_loops_ignored(self):
        g = Graph(2)
        g.add_edge(0, 0, 1.0)
        assert g.num_edges == 0

    def test_rejects_negative_weight(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1.0)

    def test_rejects_out_of_range(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 5, 1.0)

    def test_union_and_totals(self):
        a = Graph(4)
        a.add_edge(0, 1, 1.0)
        b = Graph(4)
        b.add_edge(1, 2, 2.0)
        b.add_edge(0, 1, 0.5)
        u = a.union(b)
        assert u.num_edges == 2
        assert u.adj[0][1] == 0.5
        assert abs(u.total_weight() - 2.5) < 1e-9

    def test_path_weight_validates_edges(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            g.path_weight([0, 2])
        assert g.path_weight([0, 1]) == 1.0

    def test_degree_accounting(self):
        g = random_graph(30, 40, seed=0)
        assert g.max_degree() == max(g.degree(v) for v in range(30))


class TestShortestPaths:
    @pytest.mark.parametrize("seed", range(5))
    def test_dijkstra_matches_networkx(self, seed):
        g = random_graph(40, 60, seed)
        h = to_networkx(g)
        expected = nx.single_source_dijkstra_path_length(h, 0)
        got = dijkstra(g, 0)
        for v in range(40):
            assert abs(got[v] - expected[v]) < 1e-9

    def test_dijkstra_with_target_early_exit(self):
        g = random_graph(50, 80, seed=3)
        full = dijkstra(g, 0)
        for v in (5, 17, 49):
            assert abs(dijkstra(g, 0, target=v) - full[v]) < 1e-9

    def test_bfs_hops_matches_networkx(self):
        g = random_graph(40, 50, seed=4)
        h = to_networkx(g)
        expected = nx.single_source_shortest_path_length(h, 2)
        got = bfs_hops(g, 2)
        for v in range(40):
            assert got[v] == expected[v]

    def test_prim_matches_networkx_mst_weight(self):
        m = random_points(50, seed=5)
        edges = prim_mst(50, m.distance)
        assert len(edges) == 49
        h = nx.Graph()
        for u in range(50):
            for v in range(u + 1, 50):
                h.add_edge(u, v, weight=m.distance(u, v))
        expected = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_tree(h).edges(data=True)
        )
        assert abs(sum(w for _, _, w in edges) - expected) < 1e-6


class TestSpannerMeasures:
    def test_complete_graph_is_perfect(self):
        m = random_points(30, seed=6)
        g = complete_graph(m)
        pairs = sample_pairs(30, 60)
        assert measured_stretch(g, m, pairs) <= 1.0 + 1e-9
        assert hop_diameter(g, m, 1.0, pairs) == 1

    def test_greedy_spanner_respects_stretch(self):
        m = random_points(40, seed=7)
        for t in (1.2, 1.5, 2.0):
            g = greedy_spanner(m, t)
            assert measured_stretch(g, m, sample_pairs(40, 80)) <= t + 1e-9

    def test_greedy_spanner_size_decreases_with_stretch(self):
        m = random_points(40, seed=8)
        sizes = [greedy_spanner(m, t).num_edges for t in (1.1, 1.5, 2.5)]
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_theta_graph_stretch_bound(self):
        m = random_points(60, seed=9)
        g = theta_graph(m, cones=12)
        theta = 2 * math.pi / 12
        bound = 1.0 / (math.cos(theta) - math.sin(theta))
        assert measured_stretch(g, m, sample_pairs(60, 100)) <= bound + 1e-6

    def test_theta_walk_reaches_target(self):
        m = random_points(60, seed=10)
        g = theta_graph(m, cones=10)
        rng = random.Random(0)
        for _ in range(20):
            u, v = rng.sample(range(60), 2)
            walk = theta_walk(m, g, u, v, cones=10)
            assert walk[-1] == v

    def test_bounded_hop_stretch_decreases_with_k(self):
        m = random_points(40, seed=11)
        g = greedy_spanner(m, 1.5)
        pairs = sample_pairs(40, 60)
        values = [bounded_hop_stretch(g, m, k, pairs) for k in (1, 2, 4, 40)]
        assert values == sorted(values, reverse=True)
        assert values[-1] <= 1.5 + 1e-9

    def test_hop_diameter_consistent_with_bounded_stretch(self):
        m = random_points(35, seed=12)
        g = greedy_spanner(m, 1.4)
        pairs = sample_pairs(35, 50)
        k = hop_diameter(g, m, 1.4, pairs)
        assert bounded_hop_stretch(g, m, k, pairs) <= 1.4 + 1e-9
        if k > 1:
            assert bounded_hop_stretch(g, m, k - 1, pairs) > 1.4

    def test_lightness_of_mst_is_one(self):
        m = random_points(30, seed=13)
        g = Graph(30)
        for u, v, w in prim_mst(30, m.distance):
            g.add_edge(u, v, w)
        assert abs(lightness(g, m) - 1.0) < 1e-6
        assert abs(sparsity(g) - 1.0) < 1e-9

    def test_evaluate_spanner_bundles_measures(self):
        m = random_points(30, seed=14)
        g = greedy_spanner(m, 1.5)
        report = evaluate_spanner(g, m, 1.5, sample_pairs(30, 40))
        assert report.edges == g.num_edges
        assert report.stretch <= 1.5 + 1e-9
        assert report.hops >= 1
        assert report.lightness >= 1.0
