"""Tests for shallow-light trees (Section 1.3) and the centroid ablation."""

import pytest

from repro.apps import approximate_spt, base_mst, mst_weight, shallow_light_tree
from repro.core import MetricNavigator, decompose, decompose_centroid
from repro.core.decompose import WorkTree, split_components
from repro.graphs import Graph, random_tree
from repro.metrics import random_points
from repro.treecover import robust_tree_cover


@pytest.fixture(scope="module")
def navigator():
    metric = random_points(100, dim=2, seed=0)
    cover = robust_tree_cover(metric, eps=0.45)
    return MetricNavigator(metric, cover, 3)


def tree_graph(parent, metric):
    g = Graph(len(parent))
    for v, p in enumerate(parent):
        if p != -1:
            g.add_edge(p, v, metric.distance(p, v))
    return g


class TestShallowLightTree:
    def test_is_a_spanning_tree_inside_the_spanner(self, navigator):
        parent, dist = shallow_light_tree(navigator, 0, beta=2.0)
        g = tree_graph(parent, navigator.metric)
        assert g.num_edges == navigator.metric.n - 1
        spanner_edges = navigator.spanner_edges()
        for u, v, _ in g.edges():
            assert (min(u, v), max(u, v)) in spanner_edges

    def test_root_stretch_bounded(self, navigator):
        metric = navigator.metric
        gamma = max(
            navigator.cover.stretch(0, v) for v in range(1, metric.n)
        )
        parent, dist = shallow_light_tree(navigator, 0, beta=2.0)
        worst = max(dist[v] / metric.distance(0, v) for v in range(1, metric.n))
        # Classic bound ~ gamma * (1 + beta); allow slack for the
        # approximate MST detours.
        assert worst <= gamma * 3.0 + 3.0

    def test_lightness_beats_spt(self, navigator):
        metric = navigator.metric
        mst_w = mst_weight(base_mst(metric))
        slt_parent, _ = shallow_light_tree(navigator, 0, beta=2.0)
        spt_parent, _ = approximate_spt(navigator, 0)
        slt_light = tree_graph(slt_parent, metric).total_weight() / mst_w
        spt_light = tree_graph(spt_parent, metric).total_weight() / mst_w
        assert slt_light < spt_light

    def test_beta_trades_lightness_for_depth(self, navigator):
        metric = navigator.metric
        mst_w = mst_weight(base_mst(metric))
        light = {}
        for beta in (1.2, 4.0):
            parent, _ = shallow_light_tree(navigator, 0, beta=beta)
            light[beta] = tree_graph(parent, metric).total_weight() / mst_w
        assert light[4.0] <= light[1.2] + 1e-9

    def test_rejects_beta_at_most_one(self, navigator):
        with pytest.raises(ValueError):
            shallow_light_tree(navigator, 0, beta=1.0)


class TestCentroidDecomposeAblation:
    @pytest.mark.parametrize("ell", [2, 5, 12])
    def test_same_component_guarantee(self, ell):
        wt = WorkTree.from_tree(random_tree(120, seed=1))
        required = set(range(120))
        cuts = decompose_centroid(wt, required, ell)
        components, _, _ = split_components(wt, cuts)
        for comp in components:
            assert len(set(comp.vertices()) & required) <= ell

    def test_cut_counts_comparable_to_greedy(self):
        wt = WorkTree.from_tree(random_tree(200, seed=2))
        required = set(range(200))
        for ell in (4, 10, 30):
            greedy = len(decompose(wt, required, ell))
            centroid = len(decompose_centroid(wt, required, ell))
            assert centroid <= 3 * greedy + 3
