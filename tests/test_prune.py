"""Pruned and compact covers through the persistence + serving stack.

The prune/compact machinery itself is pinned in
``tests/test_tree_covers.py`` (contract domination, determinism) and
``tests/test_packed_query.py`` (bit-identical retained paths); this
module pins the *integration* surface the ISSUE demands:

* a pruned navigator survives the packed checkpoint + mmap round trip
  with bit-identical answers,
* builder specs for both new shapes (``pruned`` block, ``compact``
  family) replay deterministically through :func:`builder_from_meta`,
* the dynamic-mutation layer refuses pruned and compact checkpoints
  with a typed error instead of corrupting patch replay,
* the pair-cache hit/miss counters ride the observability registry out
  through the Prometheus exporter (the daemon's ``/metrics``).
"""

import pytest

from repro.checkpoint import (
    CheckpointService,
    builder_from_meta,
    load_cover_checkpoint,
    load_navigator_checkpoint,
    save_cover_checkpoint,
    save_navigator_checkpoint,
)
from repro.checkpoint.format import open_envelope, read_checkpoint_file
from repro.core import MetricNavigator
from repro.metrics import random_points, sample_pairs
from repro.observability import OBS
from repro.treecover import (
    compact_tree_cover,
    prune_cover,
    robust_tree_cover,
)

N = 90
PRUNE_SPEC = {"eps": 0.05, "seed": 0, "max_pairs": 50_000}


@pytest.fixture(scope="module")
def metric():
    return random_points(N, dim=2, seed=31)


@pytest.fixture(scope="module")
def pruned(metric):
    report = prune_cover(robust_tree_cover(metric, eps=0.4), **PRUNE_SPEC)
    assert report.zeta_after < report.zeta_before
    return report.cover


class TestPrunedCheckpoints:
    def test_packed_mmap_roundtrip_is_bit_identical(self, metric, pruned, tmp_path):
        """build -> prune -> packed checkpoint -> mmap: same answers."""
        navigator = MetricNavigator(metric, pruned, 3)
        path = str(tmp_path / "pruned_nav.ckpt")
        save_navigator_checkpoint(
            navigator,
            path,
            builder={"family": "robust", "eps": 0.4, "pruned": dict(PRUNE_SPEC)},
            packed=True,
        )
        rebuilt = load_navigator_checkpoint(path, metric)
        mapped = load_navigator_checkpoint(path, metric, mmap=True)
        assert mapped.num_trees == pruned.size
        for u, v in sample_pairs(N, 60, seed=5):
            expected = navigator.find_path(u, v)
            assert rebuilt.find_path(u, v) == expected
            assert mapped.find_path(u, v) == expected

    def test_cover_spec_roundtrip_and_deterministic_replay(
        self, metric, pruned, tmp_path
    ):
        """The builder spec in meta rebuilds the identical pruned cover."""
        spec = {"family": "robust", "eps": 0.4, "pruned": dict(PRUNE_SPEC)}
        path = str(tmp_path / "pruned_cover.ckpt")
        save_cover_checkpoint(pruned, path, builder=spec)
        loaded = load_cover_checkpoint(path, metric)
        assert loaded.size == pruned.size
        _, meta, _ = open_envelope(read_checkpoint_file(path))
        builder = builder_from_meta(meta)
        assert builder is not None
        rebuilt = builder(metric)
        assert rebuilt.size == pruned.size
        for u, v in sample_pairs(N, 40, seed=7):
            # Identical retained set + deterministic tie-breaks mean the
            # rebuild answers from the same tree at the same distance —
            # which is what per-tree repair relies on.
            assert rebuilt.best_tree(u, v) == pruned.best_tree(u, v)

    def test_compact_spec_roundtrip(self, metric, tmp_path):
        cover = compact_tree_cover(metric, eps=0.5, shifts=2)
        spec = {"family": "compact", "eps": 0.5, "shifts": 2}
        path = str(tmp_path / "compact_cover.ckpt")
        save_cover_checkpoint(cover, path, builder=spec)
        loaded = load_cover_checkpoint(path, metric)
        assert loaded.size == cover.size
        _, meta, _ = open_envelope(read_checkpoint_file(path))
        rebuilt = builder_from_meta(meta)(metric)
        assert rebuilt.size == cover.size
        for u, v in sample_pairs(N, 40, seed=9):
            assert rebuilt.best_tree(u, v) == cover.best_tree(u, v)


class TestDynamicRefusals:
    def test_enable_dynamic_refuses_pruned_cover(self, metric, pruned, tmp_path):
        path = str(tmp_path / "pruned.ckpt")
        save_cover_checkpoint(
            pruned,
            path,
            builder={"family": "robust", "eps": 0.4, "pruned": dict(PRUNE_SPEC)},
        )
        service = CheckpointService(metric, 3).load(path)
        assert not service.recovery_pending
        with pytest.raises(ValueError, match="pruned"):
            service.enable_dynamic(journal_path=str(tmp_path / "j.journal"))

    def test_enable_dynamic_refuses_compact_family(self, metric, tmp_path):
        cover = compact_tree_cover(metric, eps=0.5, shifts=2)
        path = str(tmp_path / "compact.ckpt")
        save_cover_checkpoint(
            cover, path, builder={"family": "compact", "eps": 0.5, "shifts": 2}
        )
        service = CheckpointService(metric, 3).load(path)
        with pytest.raises(ValueError, match="robust cover family"):
            service.enable_dynamic(journal_path=str(tmp_path / "j.journal"))


class TestPairCacheObservability:
    def test_hit_miss_counters_reach_prom_export(self, metric):
        cover = robust_tree_cover(metric, eps=0.5)
        hits = OBS.registry.counter("cover.pair_cache_hits")
        misses = OBS.registry.counter("cover.pair_cache_misses")
        with OBS.scoped(True):
            h0, m0 = hits.value, misses.value
            cover.best_tree(0, 1)  # cold: a miss
            cover.best_tree(1, 0)  # symmetric key: a hit
            assert misses.value == m0 + 1
            assert hits.value == h0 + 1
            text = OBS.registry.export_prom_text()
        assert "repro_cover_pair_cache_hits" in text
        assert "repro_cover_pair_cache_misses" in text
