"""Tests for the Ackermann machinery (Definitions 2.1-2.3, Section 2.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ackermann import (
    ackermann_a,
    ackermann_b,
    alpha_k,
    alpha_k_prime,
    inverse_ackermann,
    pettie_lambda,
)


class TestAckermannValues:
    def test_a_row_zero_doubles(self):
        assert [ackermann_a(0, n) for n in range(6)] == [0, 2, 4, 6, 8, 10]

    def test_a_row_one_is_powers_of_two(self):
        # A(1, n) = 2^n from A(1, n) = A(0, A(1, n-1)) = 2 A(1, n-1), A(1,0)=1.
        assert [ackermann_a(1, n) for n in range(7)] == [1, 2, 4, 8, 16, 32, 64]

    def test_a_row_two_is_tower(self):
        assert [ackermann_a(2, n) for n in range(5)] == [1, 2, 4, 16, 65536]

    def test_a_saturates_at_cap(self):
        assert ackermann_a(3, 4, cap=10**9) == 10**9

    def test_b_row_zero_squares(self):
        assert [ackermann_b(0, n) for n in range(5)] == [0, 1, 4, 9, 16]

    def test_b_row_one_is_double_exponential(self):
        # B(1, n) = 2^(2^n).
        assert [ackermann_b(1, n) for n in range(4)] == [2, 4, 16, 256]

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            ackermann_a(-1, 3)
        with pytest.raises(ValueError):
            ackermann_b(0, -1)


class TestAlphaInverses:
    def test_alpha_0_is_half(self):
        for n in [0, 1, 2, 5, 10, 999]:
            assert alpha_k(0, n) == math.ceil(n / 2)

    def test_alpha_1_is_sqrt(self):
        for n in [1, 2, 4, 10, 100, 101, 10000]:
            assert alpha_k(1, n) == math.ceil(math.sqrt(n))

    def test_alpha_2_is_log(self):
        for n in [2, 3, 4, 17, 1024, 1025]:
            assert alpha_k(2, n) == math.ceil(math.log2(n))

    def test_alpha_3_is_loglog(self):
        for n in [17, 256, 65536, 10**6]:
            assert alpha_k(3, n) == math.ceil(math.log2(math.log2(n)))

    def test_alpha_4_is_log_star(self):
        # log*: 16 -> 3, 65536 -> 4, 10^6 -> 5 (tower 2,4,16,65536,...).
        assert alpha_k(4, 16) == 3
        assert alpha_k(4, 65536) == 4
        assert alpha_k(4, 10**6) == 5

    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_alpha_is_minimal(self, k, n):
        """alpha_k(n) is the least s with the row function reaching n."""
        s = alpha_k(k, n)
        half, odd = divmod(k, 2)
        evaluate = ackermann_b if odd else ackermann_a
        assert evaluate(half, s, cap=max(n, 1) + 1) >= n
        if s > 0:
            assert evaluate(half, s - 1, cap=max(n, 1) + 1) < n

    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=2, max_value=10**5))
    @settings(max_examples=60, deadline=None)
    def test_alpha_decreases_two_rows_up(self, k, n):
        # Same-parity rows are comparable: A(k+1, s) >= A(k, s), so the
        # inverse can only shrink when k grows by 2.
        assert alpha_k(k + 2, n) <= alpha_k(k, n)

    @given(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=10**5 - 1))
    @settings(max_examples=60, deadline=None)
    def test_alpha_monotone_in_n(self, k, n):
        assert alpha_k(k, n) <= alpha_k(k, n + 1)


class TestAlphaPrime:
    def test_matches_alpha_for_small_k(self):
        for n in [0, 5, 17, 1000]:
            assert alpha_k_prime(0, n) == alpha_k(0, n)
            assert alpha_k_prime(1, n) == alpha_k(1, n)

    def test_matches_alpha_for_small_n(self):
        for k in range(2, 8):
            for n in range(k + 2):
                assert alpha_k_prime(k, n) == alpha_k(k, n)

    def test_recursive_case(self):
        # alpha'_k(n) = 2 + alpha'_k(alpha'_{k-2}(n)) for n >= k + 2.
        for k in (2, 3, 4, 5):
            for n in (k + 2, 50, 1000):
                inner = alpha_k_prime(k - 2, n)
                assert alpha_k_prime(k, n) == 2 + alpha_k_prime(k, min(inner, n - 1))

    def test_paper_worked_examples(self):
        # Figure 1's caption: alpha'_2(48) = 10 and alpha'_2(10) = 6.
        assert alpha_k_prime(2, 48) == 10
        assert alpha_k_prime(2, 10) == 6

    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=10**5))
    @settings(max_examples=80, deadline=None)
    def test_sandwich_bound(self, k, n):
        """Lemma 2.4 of [Sol13]: alpha_k <= alpha'_k <= 2 alpha_k + 4."""
        low = alpha_k(k, n)
        high = 2 * low + 4
        assert low <= alpha_k_prime(k, n) <= high


class TestInverseAckermann:
    def test_small_values(self):
        assert inverse_ackermann(0) == 0
        assert inverse_ackermann(1) == 1  # A(0, 0) = 0 < 1 <= A(1, 1) = 2
        assert inverse_ackermann(2) == 1
        assert inverse_ackermann(3) == 2
        assert inverse_ackermann(10**9) <= 4

    def test_relation_to_alpha_rows(self):
        # [NS07]: alpha_{2 alpha(n) + 2}(n) <= 4.
        for n in (10, 1000, 10**6):
            a = inverse_ackermann(n)
            assert alpha_k(2 * a + 2, n) <= 4


class TestPettieLambda:
    def test_row_one_is_log(self):
        for n in (2, 3, 16, 1000):
            assert pettie_lambda(1, n) == math.ceil(math.log2(n))

    def test_lambda_bounded_by_alpha(self):
        """Section 2.2's lemma upper direction: lambda_i(n) <= alpha_{2i}(n).

        (P grows faster than A row-for-row, so its inverse is smaller;
        the paper's 1/3 lower bound concerns the asymptotic regime and
        is not a pointwise inequality for the small n tested here.)
        """
        for i in (1, 2, 3):
            for n in (10, 1000, 10**6):
                lam = pettie_lambda(i, n)
                if lam > 0:
                    assert lam <= max(alpha_k(2 * i, n), 1)

    def test_lambda_monotone(self):
        for i in (1, 2):
            values = [pettie_lambda(i, n) for n in (4, 64, 4096, 10**6)]
            assert values == sorted(values)

    def test_invalid_row(self):
        with pytest.raises(ValueError):
            pettie_lambda(0, 10)
