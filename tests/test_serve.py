"""Query-serving daemon suite (``-m serve``; runs in tier-1).

Three layers, mirroring the subsystem:

* protocol units — request decode validation and envelope round-trips;
* batcher units — flush-on-size vs flush-on-timer, bounded-queue
  shedding, deadline expiry and retry-with-backoff, all against fake
  executors so every admission behavior is deterministic;
* end-to-end — a real daemon on a background thread over a real
  checkpoint, driven by the bundled client, including the
  chaos-under-traffic scenario from the acceptance criteria: with a
  fault injected mid-traffic every response is either within-contract
  or explicitly degraded-labelled (never an unlabelled wrong answer,
  never a hang past its deadline), and after background recovery the
  service returns to full-contract responses.

The long soak variant additionally carries ``-m stress`` (opt-in).
"""

import asyncio
import json
import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.checkpoint import CheckpointService, save_cover_checkpoint
from repro.metrics import random_points
from repro.observability import OBS
from repro.serve import (
    AdmissionPolicy,
    MicroBatcher,
    ProtocolError,
    ServeClient,
    ThreadedServer,
    encode_line,
    make_response,
    parse_request,
)
from repro.treecover import robust_tree_cover

pytestmark = pytest.mark.serve

N = 48
K = 3
EPS = 0.5
BUILDER = {"family": "robust", "eps": EPS}


# ----------------------------------------------------------------------
# Protocol units


class TestProtocol:
    def test_query_request_round_trip(self):
        line = json.dumps(
            {"id": 9, "op": "path", "u": 1, "v": 2, "deadline_ms": 50}
        )
        request = parse_request(line)
        assert (request.id, request.op, request.u, request.v) == (9, "path", 1, 2)
        assert request.deadline_ms == 50.0

    def test_admin_request_keeps_extra_fields(self):
        request = parse_request(
            '{"id": "x", "op": "chaos", "kill": [1, 2], "recover": false}'
        )
        assert request.op == "chaos"
        assert request.extra == {"kill": [1, 2], "recover": False}

    @pytest.mark.parametrize("line,fragment", [
        ("not json", "not valid JSON"),
        ('["a", "list"]', "JSON object"),
        ('{"op": "explode"}', "unknown op"),
        ('{"op": "path", "u": 1}', "field 'v'"),
        ('{"op": "path", "u": 1.5, "v": 2}', "field 'u'"),
        ('{"op": "path", "u": true, "v": 2}', "field 'u'"),
        ('{"op": "path", "u": -1, "v": 2}', ">= 0"),
        ('{"op": "path", "u": 1, "v": 2, "deadline_ms": 0}', "> 0"),
        ('{"op": "path", "u": 1, "v": 2, "deadline_ms": "soon"}', "number"),
    ])
    def test_bad_requests_raise_protocol_error(self, line, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            parse_request(line)

    def test_bad_request_echoes_id(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"id": 42, "op": "explode"}')
        assert excinfo.value.request_id == 42

    def test_response_envelope_ok_semantics(self):
        assert make_response(1, "ok")["ok"] is True
        assert make_response(1, "degraded")["ok"] is True
        for status in ("overloaded", "timeout", "error", "undelivered"):
            assert make_response(1, status)["ok"] is False

    def test_encode_line_round_trips(self):
        envelope = make_response(3, "ok", result={"distance": 1.5})
        raw = encode_line(envelope)
        assert raw.endswith(b"\n")
        assert json.loads(raw) == envelope

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_batch=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(default_deadline=0)
        assert AdmissionPolicy().deadline_at(10.0, 500.0) == 10.5


# ----------------------------------------------------------------------
# Batcher units (fake executors; no navigation stack involved)


def _ok_payloads(op, pairs):
    return [
        {"status": "ok", "result": {"u": u, "v": v}} for u, v in pairs
    ]


class TestBatcher:
    def test_flush_on_size_does_not_wait_for_timer(self):
        async def main():
            batches = []

            def execute(op, pairs):
                batches.append(list(pairs))
                return _ok_payloads(op, pairs)

            policy = AdmissionPolicy(
                max_batch=4, flush_interval=5.0, default_deadline=30.0
            )
            batcher = MicroBatcher(execute, policy)
            await batcher.start()
            loop = asyncio.get_running_loop()
            started = loop.time()
            payloads = await asyncio.gather(*[
                batcher.submit("path", i, i + 1, loop.time() + 30.0)
                for i in range(4)
            ])
            elapsed = loop.time() - started
            await batcher.stop()
            return batches, payloads, elapsed

        batches, payloads, elapsed = asyncio.run(main())
        # One full batch, flushed far sooner than the 5s timer.
        assert batches == [[(i, i + 1) for i in range(4)]]
        assert [p["result"]["u"] for p in payloads] == [0, 1, 2, 3]
        assert elapsed < 2.0

    def test_flush_on_timer_for_partial_batch(self):
        async def main():
            batches = []

            def execute(op, pairs):
                batches.append(list(pairs))
                return _ok_payloads(op, pairs)

            policy = AdmissionPolicy(
                max_batch=32, flush_interval=0.05, default_deadline=30.0
            )
            batcher = MicroBatcher(execute, policy)
            await batcher.start()
            loop = asyncio.get_running_loop()
            started = loop.time()
            payload = await batcher.submit("path", 7, 8, loop.time() + 30.0)
            elapsed = loop.time() - started
            await batcher.stop()
            return batches, payload, elapsed

        batches, payload, elapsed = asyncio.run(main())
        # A lone request still flushes — after the coalescing window.
        assert batches == [[(7, 8)]]
        assert payload["status"] == "ok"
        assert elapsed >= 0.04

    def test_queue_full_sheds_with_overloaded(self):
        async def main():
            gate = threading.Event()

            def execute(op, pairs):
                gate.wait(10.0)
                return _ok_payloads(op, pairs)

            policy = AdmissionPolicy(
                max_batch=1, max_queue=2, flush_interval=0.0,
                default_deadline=30.0,
            )
            batcher = MicroBatcher(execute, policy)
            await batcher.start()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 30.0
            blocked = asyncio.ensure_future(
                batcher.submit("path", 0, 1, deadline)
            )
            await asyncio.sleep(0.05)  # r0 is now executing (blocked)
            queued = [
                asyncio.ensure_future(batcher.submit("path", i, i + 1, deadline))
                for i in (1, 2)
            ]
            await asyncio.sleep(0.05)  # r1, r2 fill the bounded queue
            shed = await batcher.submit("path", 3, 4, deadline)
            gate.set()
            served = await asyncio.gather(blocked, *queued)
            await batcher.stop()
            return shed, served

        shed, served = asyncio.run(main())
        assert shed["status"] == "overloaded"
        assert "queue full" in shed["error"]
        assert [p["status"] for p in served] == ["ok", "ok", "ok"]

    def test_deadline_expiry_returns_timeout_not_hang(self):
        async def main():
            gate = threading.Event()

            def execute(op, pairs):
                gate.wait(10.0)
                return _ok_payloads(op, pairs)

            policy = AdmissionPolicy(
                max_batch=1, max_queue=8, flush_interval=0.0,
                default_deadline=30.0,
            )
            batcher = MicroBatcher(execute, policy)
            await batcher.start()
            loop = asyncio.get_running_loop()
            blocked = asyncio.ensure_future(
                batcher.submit("path", 0, 1, loop.time() + 30.0)
            )
            await asyncio.sleep(0.05)
            # This one waits in the queue behind the stuck batch and
            # must time out there — never hang, never compute.
            started = loop.time()
            expired = await batcher.submit("path", 2, 3, loop.time() + 0.1)
            waited = loop.time() - started
            gate.set()
            first = await blocked
            await batcher.stop()
            return expired, waited, first

        expired, waited, first = asyncio.run(main())
        assert expired["status"] == "timeout"
        assert waited < 5.0  # returned at its deadline, not at batch end
        assert first["status"] == "ok"

    def test_transient_failure_retries_with_backoff(self):
        async def main():
            attempts = []

            def execute(op, pairs):
                attempts.append(len(pairs))
                if len(attempts) == 1:
                    raise RuntimeError("transient worker failure")
                return _ok_payloads(op, pairs)

            policy = AdmissionPolicy(
                max_batch=4, flush_interval=0.0, default_deadline=30.0,
                max_retries=2, backoff_base=0.001,
            )
            batcher = MicroBatcher(execute, policy)
            await batcher.start()
            loop = asyncio.get_running_loop()
            payload = await batcher.submit("path", 1, 2, loop.time() + 30.0)
            await batcher.stop()
            return attempts, payload

        attempts, payload = asyncio.run(main())
        assert len(attempts) == 2  # failed once, succeeded on retry
        assert payload["status"] == "ok"

    def test_exhausted_retries_fail_with_error(self):
        async def main():
            def execute(op, pairs):
                raise RuntimeError("permanently broken")

            policy = AdmissionPolicy(
                max_batch=4, flush_interval=0.0, default_deadline=30.0,
                max_retries=1, backoff_base=0.001,
            )
            batcher = MicroBatcher(execute, policy)
            await batcher.start()
            loop = asyncio.get_running_loop()
            payload = await batcher.submit("path", 1, 2, loop.time() + 30.0)
            await batcher.stop()
            return payload

        payload = asyncio.run(main())
        assert payload["status"] == "error"
        assert "2 attempts" in payload["error"]


# ----------------------------------------------------------------------
# End-to-end over a real checkpoint


@pytest.fixture(scope="module")
def serve_metric():
    return random_points(N, dim=2, seed=5)


@pytest.fixture(scope="module")
def serve_ckpt(serve_metric, tmp_path_factory):
    cover = robust_tree_cover(serve_metric, eps=EPS)
    path = str(tmp_path_factory.mktemp("serve") / "cover.ckpt")
    save_cover_checkpoint(cover, path, builder=BUILDER)
    return path


@pytest.fixture(scope="module")
def server(serve_metric, serve_ckpt):
    service = CheckpointService(serve_metric, k=K).load(serve_ckpt)
    with ThreadedServer(
        service,
        policy=AdmissionPolicy(max_batch=8, flush_interval=0.002),
    ) as threaded:
        yield threaded


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as serve_client:
        yield serve_client


def _pairs(count, offset=0):
    pairs = []
    for i in range(count):
        u = (i + offset) % N
        v = (i * 5 + 7 + offset) % N
        if u != v:
            pairs.append((u, v))
    return pairs


class TestServerEndToEnd:
    def test_ping_and_health(self, client):
        assert client.ping()["result"]["pong"] is True
        health = client.health()
        assert health["ready"] is True
        assert health["service"]["state"] == "ready"
        assert health["policy"]["max_batch"] == 8

    def test_path_matches_direct_navigator(self, server, client):
        navigator = server.server.service.navigator
        for u, v in _pairs(10):
            response = client.path(u, v)
            assert response["status"] == "ok"
            result = response["result"]
            assert result["path"] == navigator.find_path(u, v)
            assert result["hops"] <= K
            assert result["path"][0] == u and result["path"][-1] == v
            assert result["stretch"] >= 1.0 - 1e-9

    def test_distance_matches_direct_navigator(self, server, client):
        navigator = server.server.service.navigator
        for u, v in _pairs(10, offset=3):
            response = client.distance(u, v)
            assert response["status"] == "ok"
            assert response["result"]["distance"] == pytest.approx(
                navigator.approx_distance(u, v)
            )

    def test_route_delivers_with_stretch(self, client):
        response = client.route(2, 31)
        assert response["status"] == "ok"
        result = response["result"]
        assert result["path"][0] == 2 and result["path"][-1] == 31
        assert result["stretch"] >= 1.0 - 1e-9

    def test_pipelined_batch_keeps_request_order(self, client):
        pairs = _pairs(20)
        responses = client.query_batch("path", pairs)
        assert len(responses) == len(pairs)
        for (u, v), response in zip(pairs, responses):
            assert response["status"] == "ok"
            assert response["result"]["path"][0] == u
            assert response["result"]["path"][-1] == v

    def test_mixed_ops_on_one_connection(self, client):
        ids = client.send([
            {"op": "distance", "u": 1, "v": 2},
            {"op": "path", "u": 3, "v": 4},
            {"op": "ping"},
        ])
        distance, path, ping = client.collect(ids)
        assert "distance" in distance["result"]
        assert "path" in path["result"]
        assert ping["result"]["pong"] is True

    def test_tiny_deadline_returns_timeout(self, client):
        response = client.path(0, 1, deadline_ms=0.001)
        assert response["status"] == "timeout"
        assert response["ok"] is False

    def test_out_of_range_point_is_an_error(self, client):
        response = client.path(0, N + 100)
        assert response["status"] == "error"
        assert f"[0, {N})" in response["error"]

    def test_malformed_line_gets_error_envelope(self, client):
        client._sock.sendall(b"this is not json\n")
        response = client.collect([None])[0]
        assert response["status"] == "error"
        assert "not valid JSON" in response["error"]

    def test_unknown_op_echoes_id(self, client):
        response = client.request("explode")
        assert response["status"] == "error"
        assert response["id"] is not None

    def test_metrics_exposes_serve_instruments(self, client):
        text = client.metrics_text()
        assert "repro_serve_admitted" in text
        assert "# TYPE repro_serve_admitted counter" in text

    def test_http_facade(self, server):
        base = f"http://{server.host}:{server.port}"
        with urllib.request.urlopen(f"{base}/healthz", timeout=30) as response:
            assert response.status == 200
            assert json.load(response)["ready"] is True
        with urllib.request.urlopen(f"{base}/readyz", timeout=30) as response:
            assert response.status == 200
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as response:
            assert response.status == 200
            assert b"repro_serve" in response.read()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/bogus", timeout=30)
        assert excinfo.value.code == 404

    def test_every_envelope_carries_service_block(self, client):
        for response in client.query_batch("path", _pairs(5)):
            service = response["service"]
            assert service["state"] == "ready"
            assert service["degraded"] is False
            assert service["trees_pending"] == 0


# ----------------------------------------------------------------------
# Chaos under live traffic (the acceptance scenario)


def _assert_contract_or_labelled(response, u, v):
    """Every delivered answer is within-contract or explicitly labelled.

    ``ok`` promises the full contract (ready-generation snapshot, hop
    budget); ``degraded`` promises a delivered best-effort answer with
    the service block saying why.  Anything else here is a bug.
    """
    status = response["status"]
    assert status in ("ok", "degraded"), response
    result = response["result"]
    assert result["path"][0] == u and result["path"][-1] == v
    if status == "ok":
        assert response["service"]["state"] == "ready"
        assert result["hops"] <= K
    else:
        assert response["service"]["state"] in ("degraded", "recovering")
        assert response["service"]["trees_pending"] > 0


class TestChaosUnderTraffic:
    @pytest.fixture()
    def chaos_server(self, serve_metric, serve_ckpt):
        service = CheckpointService(serve_metric, k=K).load(serve_ckpt)
        with ThreadedServer(
            service,
            policy=AdmissionPolicy(max_batch=8, flush_interval=0.002),
        ) as threaded:
            yield threaded

    def test_kill_degrade_recover_cycle(self, chaos_server):
        with OBS.scoped(True), ServeClient(
            chaos_server.host, chaos_server.port
        ) as client:
            pairs = _pairs(16)

            # Phase 1 — full contract.
            for (u, v), response in zip(
                pairs, client.query_batch("path", pairs)
            ):
                assert response["status"] == "ok"
                assert response["result"]["hops"] <= K

            # Phase 2 — kill a tree mid-traffic: launch a pipelined wave,
            # inject the fault from a second connection while it is in
            # flight, then audit every wave response.  Whatever the
            # interleaving, each answer must be within-contract or
            # explicitly degraded-labelled.
            wave_ids = client.send(
                [{"op": "path", "u": u, "v": v} for u, v in pairs]
            )
            with ServeClient(
                chaos_server.host, chaos_server.port
            ) as chaos_client:
                outcome = chaos_client.chaos(kill=[0], recover=False)
            assert outcome["result"]["killed"] == [0]
            for (u, v), response in zip(pairs, client.collect(wave_ids)):
                _assert_contract_or_labelled(response, u, v)

            # After the kill returns, everything is labelled degraded —
            # delivered from the survivors, never an unlabelled answer.
            health = client.health()
            assert health["ready"] is False
            assert health["service"]["state"] == "degraded"
            assert health["service"]["trees_pending"] == 1
            for (u, v), response in zip(
                pairs, client.query_batch("path", pairs)
            ):
                assert response["status"] == "degraded"
                assert response["ok"] is True
                assert response["result"]["path"][0] == u
                assert response["result"]["path"][-1] == v
            base = f"http://{chaos_server.host}:{chaos_server.port}"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/readyz", timeout=30)
            assert excinfo.value.code == 503

            # Phase 3 — background recovery, traffic still flowing.
            assert client.chaos(recover=True)["result"]["recovering"] is True
            while True:
                state = client.health()["service"]["state"]
                for (u, v), response in zip(
                    pairs, client.query_batch("path", pairs)
                ):
                    _assert_contract_or_labelled(response, u, v)
                if state == "ready":
                    break

            # Phase 4 — full contract restored, readiness reflects it.
            health = client.wait_state("ready")
            assert health["ready"] is True
            for (u, v), response in zip(
                pairs, client.query_batch("path", pairs)
            ):
                assert response["status"] == "ok"
                assert response["result"]["hops"] <= K
            with urllib.request.urlopen(
                f"{base}/readyz", timeout=30
            ) as response:
                assert response.status == 200
            text = client.metrics_text()
            assert "repro_serve_chaos_trees_killed" in text

    def test_kill_random_is_seeded_and_deterministic(self, serve_metric,
                                                     serve_ckpt):
        killed = []
        for _ in range(2):
            service = CheckpointService(serve_metric, k=K).load(serve_ckpt)
            with ThreadedServer(service) as threaded:
                with ServeClient(threaded.host, threaded.port) as client:
                    outcome = client.chaos(
                        kill_random=2, seed=9, recover=False
                    )
                    killed.append(tuple(outcome["result"]["killed"]))
        assert killed[0] == killed[1]
        assert len(killed[0]) == 2

    @pytest.mark.stress
    def test_soak_kill_recover_cycles_under_threads(self, serve_metric,
                                                    serve_ckpt):
        """Opt-in soak: repeated kill/recover cycles under concurrent
        client threads; every response delivered within-contract or
        degraded-labelled, and the service always returns to ready."""
        service = CheckpointService(serve_metric, k=K).load(serve_ckpt)
        with ThreadedServer(
            service,
            policy=AdmissionPolicy(max_batch=8, flush_interval=0.002),
        ) as threaded:
            stop = threading.Event()
            failures = []

            def traffic(seed):
                rng = random.Random(seed)
                with ServeClient(threaded.host, threaded.port) as c:
                    while not stop.is_set():
                        u, v = rng.sample(range(N), 2)
                        response = c.path(u, v)
                        try:
                            _assert_contract_or_labelled(response, u, v)
                        except AssertionError as exc:
                            failures.append(str(exc))
                            return

            threads = [
                threading.Thread(target=traffic, args=(i,), daemon=True)
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            with ServeClient(threaded.host, threaded.port) as admin:
                for cycle in range(3):
                    outcome = admin.chaos(
                        kill_random=1, seed=cycle, recover=True
                    )
                    assert outcome["result"]["killed"]
                    admin.wait_state("ready", timeout=300)
            stop.set()
            for thread in threads:
                thread.join(60)
            assert not failures, failures[:3]


def test_cli_parser_accepts_serve(tmp_path):
    from repro.cli import build_parser

    args = build_parser().parse_args([
        "serve", str(tmp_path / "cover.ckpt"),
        "--n", "60", "--port", "0", "--max-batch", "16", "--flush-ms", "1.5",
    ])
    assert args.func.__name__ == "cmd_serve"
    assert args.max_batch == 16
    assert args.deadline_ms == 2000.0
