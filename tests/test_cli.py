"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tree_defaults(self):
        args = build_parser().parse_args(["tree"])
        assert args.n == 1000 and args.k == 2

    def test_navigate_family_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["navigate", "--family", "hyperbolic"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "PODC 2022" in capsys.readouterr().out

    def test_tree_command(self, capsys):
        assert main(["tree", "--n", "200", "--k", "2", "--queries", "3"]) == 0
        out = capsys.readouterr().out
        assert "hops via" in out and out.count("->") == 3

    def test_navigate_euclidean(self, capsys):
        assert main([
            "navigate", "--family", "euclidean", "--n", "60",
            "--eps", "0.5", "--queries", "2",
        ]) == 0
        assert "stretch" in capsys.readouterr().out

    def test_navigate_general(self, capsys):
        assert main([
            "navigate", "--family", "general", "--n", "50", "--queries", "2",
        ]) == 0
        assert "cover of" in capsys.readouterr().out

    def test_route_planar(self, capsys):
        assert main([
            "route", "--family", "planar", "--n", "60", "--queries", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "labels <=" in out and "hops via" in out
