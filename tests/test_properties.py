"""Cross-cutting hypothesis property tests over the core structures.

These complement the per-module tests with randomized invariants that
tie several subsystems together: navigation paths vs tree paths, cover
domination vs metric axioms, tree-product algebra, routing labels.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import OnlineTreeProduct
from repro.core import TreeNavigator
from repro.graphs import random_tree
from repro.metrics import TreeMetric, random_points
from repro.routing import HeavyPathLabeling, label_distance, lca_key
from repro.treecover import robust_tree_cover

tree_params = st.tuples(
    st.integers(min_value=2, max_value=90),
    st.integers(min_value=0, max_value=10**6),
)


@given(tree_params, st.integers(min_value=2, max_value=6))
@settings(max_examples=30, deadline=None)
def test_navigation_path_is_subsequence_of_tree_path(params, k):
    n, seed = params
    tree = random_tree(n, seed=seed)
    navigator = TreeNavigator(tree, k)
    rng = random.Random(seed)
    u, v = rng.randrange(n), rng.randrange(n)
    if u == v:
        return
    spanner_path = navigator.find_path(u, v)
    tree_path = tree.path(u, v)
    positions = {w: i for i, w in enumerate(tree_path)}
    indices = [positions[w] for w in spanner_path]
    assert indices[0] == 0 and indices[-1] == len(tree_path) - 1
    assert indices == sorted(indices)


@given(tree_params)
@settings(max_examples=30, deadline=None)
def test_spanner_never_shrinks_distances(params):
    """1-spanner edges carry exact tree distances: any spanner walk is
    at least the tree distance (domination) for every vertex pair."""
    n, seed = params
    tree = random_tree(n, seed=seed)
    navigator = TreeNavigator(tree, 3)
    metric = TreeMetric(tree)
    rng = random.Random(seed + 1)
    for _ in range(5):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        path = navigator.find_path(u, v)
        weight = sum(
            navigator.edges[(min(a, b), max(a, b))] for a, b in zip(path, path[1:])
        )
        assert weight >= metric.distance(u, v) - 1e-9


@given(tree_params, st.integers(min_value=2, max_value=5))
@settings(max_examples=25, deadline=None)
def test_tree_product_associativity_consistency(params, k):
    """Products computed through different hop decompositions agree —
    a direct consequence of associativity that exercises the per-edge
    precomputation across k values."""
    n, seed = params
    tree = random_tree(n, seed=seed)
    values = [(v % 13,) for v in range(n)]
    op = lambda a, b: a + b
    products = [
        OnlineTreeProduct(tree, kk, op, values) for kk in (2, k)
    ]
    rng = random.Random(seed + 2)
    for _ in range(5):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        assert products[0].query(u, v) == products[1].query(u, v)


@given(tree_params)
@settings(max_examples=30, deadline=None)
def test_labels_answer_lca_and_distance(params):
    n, seed = params
    tree = random_tree(n, seed=seed)
    labeling = HeavyPathLabeling(tree)
    metric = TreeMetric(tree)
    rng = random.Random(seed + 3)
    for _ in range(5):
        u, v = rng.randrange(n), rng.randrange(n)
        assert lca_key(labeling.label(u), labeling.label(v)) == labeling.key(
            metric.lca(u, v)
        )
        d = label_distance(labeling.label(u), labeling.label(v))
        assert abs(d - metric.distance(u, v)) < 1e-9


@given(st.integers(min_value=10, max_value=40), st.integers(min_value=0, max_value=50))
@settings(max_examples=8, deadline=None)
def test_cover_domination_is_universal(n, seed):
    metric = random_points(n, dim=2, seed=seed)
    cover = robust_tree_cover(metric, eps=0.5)
    rng = random.Random(seed)
    for _ in range(10):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        for tree in random.Random(seed).sample(cover.trees, min(5, cover.size)):
            assert tree.tree_distance(u, v) >= metric.distance(u, v) - 1e-6
