"""Tests for the routing schemes (Theorems 5.1, 1.3, 5.2) and labelings."""

import itertools
import math
import random

import pytest

from repro.graphs import balanced_tree, caterpillar_tree, path_tree, random_tree
from repro.metrics import (
    TreeMetric,
    grid_graph_metric,
    random_graph_metric,
    random_points,
    sample_pairs,
)
from repro.routing import (
    FaultTolerantRoutingScheme,
    HeavyPathLabeling,
    MetricRoutingScheme,
    Network,
    build_tree_network,
    header_bits,
    label_bits,
    label_distance,
    lca_key,
    tree_protocol,
)
from repro.treecover import planar_tree_cover, ramsey_tree_cover, robust_tree_cover


class TestHeavyPathLabeling:
    @pytest.mark.parametrize("builder,n", [
        (random_tree, 150), (path_tree, 100), (caterpillar_tree, 90),
    ])
    def test_lca_key_matches_direct_lca(self, builder, n):
        tree = builder(n, seed=0)
        labeling = HeavyPathLabeling(tree)
        metric = TreeMetric(tree)
        rng = random.Random(1)
        for _ in range(300):
            u, v = rng.randrange(n), rng.randrange(n)
            key = lca_key(labeling.label(u), labeling.label(v))
            assert key == labeling.key(metric.lca(u, v))

    def test_label_distance_is_exact(self):
        tree = random_tree(120, seed=2)
        labeling = HeavyPathLabeling(tree)
        metric = TreeMetric(tree)
        rng = random.Random(3)
        for _ in range(200):
            u, v = rng.randrange(120), rng.randrange(120)
            d = label_distance(labeling.label(u), labeling.label(v))
            assert abs(d - metric.distance(u, v)) < 1e-9

    def test_keys_are_unique(self):
        tree = random_tree(200, seed=4)
        labeling = HeavyPathLabeling(tree)
        keys = {labeling.key(v) for v in range(200)}
        assert len(keys) == 200

    def test_label_length_logarithmic(self):
        """Heavy-path labels have O(log n) entries on any tree."""
        for builder in (random_tree, path_tree, caterpillar_tree):
            tree = builder(1000, seed=5)
            labeling = HeavyPathLabeling(tree)
            longest = max(len(labeling.label(v)) for v in range(1000))
            assert longest <= math.ceil(math.log2(1000)) + 1

    def test_label_bits_accounting(self):
        tree = random_tree(64, seed=6)
        labeling = HeavyPathLabeling(tree)
        label = labeling.label(10)
        assert label_bits(label, 64, float_bits=0) == len(label) * 12
        assert label_bits(label, 64, float_bits=32) == len(label) * 44


class TestNetwork:
    def test_ports_are_a_permutation(self):
        from repro.graphs import Graph

        g = Graph(6)
        for u, v in [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]:
            g.add_edge(u, v, 1.0)
        net = Network(g, seed=7)
        assert sorted(net.port_to[0].values()) == list(range(5))

    def test_port_assignment_varies_with_seed(self):
        from repro.graphs import Graph

        g = Graph(8)
        for v in range(1, 8):
            g.add_edge(0, v, 1.0)
        a = Network(g, seed=1).port_to[0]
        b = Network(g, seed=2).port_to[0]
        assert a != b

    def test_route_guard_against_loops(self):
        from repro.graphs import Graph

        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        net = Network(g, seed=0)

        def bouncing(u, table, header, label):
            return 0, None  # always forward on port 0

        with pytest.raises(RuntimeError):
            net.route(0, bouncing, {}, [None, None], max_hops=5)


class TestTreeRouting:
    @pytest.mark.parametrize("builder,n", [
        (random_tree, 130),
        (path_tree, 110),
        (caterpillar_tree, 90),
    ])
    @pytest.mark.parametrize("port_seed", [0, 17])
    def test_all_routes_two_hops_stretch_one(self, builder, n, port_seed):
        tree = builder(n, seed=3)
        scheme, net = build_tree_network(tree, seed=port_seed)
        metric = TreeMetric(tree)
        for u, v in itertools.combinations(range(0, n, 4), 2):
            result = net.route(u, tree_protocol, scheme.labels[v], scheme.tables)
            assert result.path[0] == u and result.path[-1] == v
            assert result.hops <= 2
            d = metric.distance(u, v)
            assert abs(result.weight - d) <= 1e-6 * max(1.0, d)

    def test_balanced_tree_routes(self):
        tree = balanced_tree(3, 4)
        scheme, net = build_tree_network(tree, seed=9)
        metric = TreeMetric(tree)
        rng = random.Random(10)
        for _ in range(200):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            result = net.route(u, tree_protocol, scheme.labels[v], scheme.tables)
            assert result.path[-1] == v and result.hops <= 2
            assert abs(result.weight - metric.distance(u, v)) < 1e-6

    def test_self_route_is_trivial(self):
        tree = random_tree(30, seed=11)
        scheme, net = build_tree_network(tree)
        result = net.route(5, tree_protocol, scheme.labels[5], scheme.tables)
        assert result.path == [5] and result.weight == 0.0

    def test_label_and_table_bits_are_polylog(self):
        sizes = {}
        for n in (128, 1024):
            tree = path_tree(n, seed=12)
            scheme, _ = build_tree_network(tree)
            sizes[n] = max(scheme.label_size_bits(p) for p in range(n))
        # Label bits grow ~log^2: going 128 -> 1024 is less than octupling.
        assert sizes[1024] <= 8 * sizes[128]
        assert sizes[1024] <= 12 * math.log2(1024) ** 2

    def test_header_bits_at_most_one_port(self):
        assert header_bits(None, 256) == 0
        assert header_bits(("deliver",), 256) == 1
        assert header_bits(("forward", 3), 256) == 1 + 8


class TestMetricRouting:
    def test_doubling(self):
        metric = random_points(80, dim=2, seed=13)
        cover = robust_tree_cover(metric, eps=0.45)
        scheme = MetricRoutingScheme(metric, cover, seed=14)
        pairs = sample_pairs(80, 150, seed=15)
        gamma = max(cover.stretch(u, v) for u, v in pairs)
        for u, v in pairs:
            scheme.verify_route(u, v, gamma + 1e-9)

    def test_general_ramsey(self):
        metric = random_graph_metric(60, seed=16)
        cover = ramsey_tree_cover(metric, ell=2, seed=17)
        scheme = MetricRoutingScheme(metric, cover, seed=18)
        for u, v in sample_pairs(60, 150, seed=19):
            tree = cover.trees[cover.home[v]]
            bound = tree.tree_distance(u, v) / metric.distance(u, v)
            scheme.verify_route(u, v, bound + 1e-9)

    def test_planar(self):
        metric = grid_graph_metric(8, seed=20)
        cover = planar_tree_cover(metric)
        scheme = MetricRoutingScheme(metric, cover, seed=21)
        pairs = sample_pairs(metric.n, 150, seed=22)
        gamma = max(cover.stretch(u, v) for u, v in pairs)
        for u, v in pairs:
            scheme.verify_route(u, v, gamma + 1e-9)

    def test_ramsey_labels_smaller_than_scan_labels(self):
        """Ramsey labels carry one tree; scan labels carry all ζ trees."""
        metric = random_graph_metric(50, seed=23)
        ramsey = ramsey_tree_cover(metric, ell=2, seed=24)
        scheme = MetricRoutingScheme(metric, ramsey, seed=25)
        scan = MetricRoutingScheme(
            metric,
            type(ramsey)(metric, ramsey.trees, home=None),
            seed=25,
        )
        r_bits = max(scheme.label_size_bits(p) for p in range(50))
        s_bits = max(scan.label_size_bits(p) for p in range(50))
        assert r_bits < s_bits

    def test_few_trees_cover_routes(self):
        """The ell-tree general tradeoff also feeds the routing stack."""
        from repro.treecover import few_trees_cover

        metric = random_graph_metric(50, seed=40)
        cover = few_trees_cover(metric, 3, seed=41)
        scheme = MetricRoutingScheme(metric, cover, seed=42)
        for u, v in sample_pairs(50, 80, seed=43):
            result = scheme.route(u, v)
            assert result.path[-1] == v and result.hops <= 2

    def test_headers_stay_small(self):
        metric = random_points(50, dim=2, seed=26)
        cover = robust_tree_cover(metric, eps=0.5)
        scheme = MetricRoutingScheme(metric, cover, seed=27)
        for u, v in sample_pairs(50, 60, seed=28):
            result = scheme.route(u, v)
            bound = math.ceil(math.log2(50)) + max(1, len(cover.trees).bit_length()) + 1
            assert result.header_bits <= bound


class TestFaultTolerantRouting:
    def setup_method(self):
        self.metric = random_points(55, dim=2, seed=29)
        self.cover = robust_tree_cover(self.metric, eps=0.45)

    @pytest.mark.parametrize("f", [0, 1, 2, 3])
    def test_routes_avoid_faults(self, f):
        scheme = FaultTolerantRoutingScheme(self.metric, f=f, cover=self.cover, seed=30)
        rng = random.Random(31)
        for _ in range(80):
            u, v = rng.sample(range(55), 2)
            pool = [x for x in range(55) if x not in (u, v)]
            faults = set(rng.sample(pool, f))
            hops, stretch = scheme.verify_route(u, v, faults, gamma=25.0)
            assert hops <= 2

    def test_label_bits_grow_with_f(self):
        bits = []
        for f in (0, 2, 4):
            scheme = FaultTolerantRoutingScheme(
                self.metric, f=f, cover=self.cover, seed=32
            )
            bits.append(max(scheme.label_size_bits(p) for p in range(55)))
        assert bits[0] < bits[1] < bits[2]

    def test_rejects_faulty_endpoint(self):
        scheme = FaultTolerantRoutingScheme(self.metric, f=1, cover=self.cover, seed=33)
        with pytest.raises(ValueError):
            scheme.route(0, 1, faults={0})

    def test_rejects_too_many_faults(self):
        scheme = FaultTolerantRoutingScheme(self.metric, f=1, cover=self.cover, seed=34)
        with pytest.raises(ValueError):
            scheme.route(0, 1, faults={2, 3})

    def test_targeted_fault_on_intermediate(self):
        """Fail exactly the intermediate the fault-free route uses; the
        packet must still arrive in <= 2 hops."""
        scheme = FaultTolerantRoutingScheme(self.metric, f=1, cover=self.cover, seed=35)
        rng = random.Random(36)
        checked = 0
        for _ in range(200):
            u, v = rng.sample(range(55), 2)
            clean = scheme.route(u, v)
            if clean.hops != 2:
                continue
            intermediate = clean.path[1]
            rerouted = scheme.route(u, v, faults={intermediate})
            assert rerouted.path[-1] == v
            assert intermediate not in rerouted.path
            assert rerouted.hops <= 2
            checked += 1
            if checked >= 25:
                break
        assert checked >= 10


class TestPrunedAndCompactCoverRouting:
    """Theorem 1.3 routing over the *shrunk* covers: pruning and the
    compact backend must preserve the stretch contract while cutting
    the per-node label/table bits with ζ."""

    def setup_method(self):
        self.metric = random_points(60, dim=2, seed=50)
        self.cover = robust_tree_cover(self.metric, eps=0.45)

    def test_pruned_cover_keeps_the_stretch_contract(self):
        from repro.treecover import prune_cover

        report = prune_cover(self.cover, eps=0.05)
        assert len(report.cover.trees) < len(self.cover.trees)
        scheme = MetricRoutingScheme(self.metric, report.cover, seed=51)
        for u, v in sample_pairs(60, 150, seed=52):
            scheme.verify_route(u, v, report.gamma + 1e-9)

    def test_pruned_cover_shrinks_label_and_table_bits(self):
        from repro.treecover import prune_cover

        report = prune_cover(self.cover, eps=0.05)
        full = MetricRoutingScheme(self.metric, self.cover, seed=53)
        pruned = MetricRoutingScheme(self.metric, report.cover, seed=53)
        full_label = max(full.label_size_bits(p) for p in range(60))
        pruned_label = max(pruned.label_size_bits(p) for p in range(60))
        full_table = max(full.table_size_bits(p) for p in range(60))
        pruned_table = max(pruned.table_size_bits(p) for p in range(60))
        assert pruned_label < full_label
        assert pruned_table < full_table

    def test_compact_cover_routes_within_measured_gamma(self):
        from repro.treecover import compact_tree_cover

        cover = compact_tree_cover(self.metric, eps=0.5)
        scheme = MetricRoutingScheme(self.metric, cover, seed=54)
        pairs = sample_pairs(60, 120, seed=55)
        gamma = max(cover.stretch(u, v) for u, v in pairs)
        for u, v in pairs:
            result = scheme.route(u, v)
            assert result.path[0] == u and result.path[-1] == v
            assert result.hops <= 2
            d = self.metric.distance(u, v)
            assert result.weight <= (gamma + 1e-9) * d + 1e-9

    def test_compact_zeta_cuts_bits_versus_robust(self):
        from repro.treecover import compact_tree_cover

        compact = compact_tree_cover(self.metric, eps=0.5)
        assert len(compact.trees) < len(self.cover.trees)
        robust_scheme = MetricRoutingScheme(self.metric, self.cover, seed=56)
        compact_scheme = MetricRoutingScheme(self.metric, compact, seed=56)
        assert (
            max(compact_scheme.label_size_bits(p) for p in range(60))
            < max(robust_scheme.label_size_bits(p) for p in range(60))
        )


class TestEngineRouterCacheWithPrunedCovers:
    """Regression: the daemon's generation-keyed router cache must build
    its MetricRoutingScheme from the *loaded* (possibly pruned) cover
    and reuse it across batches of the same generation."""

    def test_engine_routes_pruned_checkpoint_with_parity(self, tmp_path):
        from repro.checkpoint import CheckpointService, save_cover_checkpoint
        from repro.serve import QueryEngine
        from repro.treecover import prune_cover

        metric = random_points(48, dim=2, seed=60)
        cover = robust_tree_cover(metric, eps=0.5)
        report = prune_cover(cover, eps=0.05)
        path = str(tmp_path / "pruned.ckpt")
        save_cover_checkpoint(
            report.cover, path, builder={"family": "robust", "eps": 0.5}
        )
        service = CheckpointService(metric, k=3).load(path)
        engine = QueryEngine(service, router_seed=7)
        navigator, status = service.snapshot()
        assert len(navigator.cover.trees) == len(report.cover.trees)

        pairs = sample_pairs(48, 40, seed=61)
        payloads = engine.execute("route", pairs)
        direct = MetricRoutingScheme(metric, navigator.cover, seed=7)
        for (u, v), payload in zip(pairs, payloads):
            assert payload["status"] == "ok"
            expected = direct.route(u, v)
            assert payload["result"]["path"] == list(expected.path)
            assert payload["result"]["hops"] == expected.hops

    def test_router_cache_is_generation_keyed_and_reused(self, tmp_path):
        from repro.checkpoint import CheckpointService, save_cover_checkpoint
        from repro.serve import QueryEngine
        from repro.treecover import prune_cover

        metric = random_points(40, dim=2, seed=62)
        report = prune_cover(robust_tree_cover(metric, eps=0.5), eps=0.05)
        path = str(tmp_path / "pruned.ckpt")
        save_cover_checkpoint(
            report.cover, path, builder={"family": "robust", "eps": 0.5}
        )
        service = CheckpointService(metric, k=3).load(path)
        engine = QueryEngine(service, router_seed=3)
        _, status = service.snapshot()
        generation = status["generation"]

        engine.execute("route", sample_pairs(40, 10, seed=63))
        assert set(engine._routers) == {generation}
        cached = engine._routers[generation]
        assert len(cached.cover.trees) == len(report.cover.trees)
        engine.execute("route", sample_pairs(40, 10, seed=64))
        assert engine._routers[generation] is cached
