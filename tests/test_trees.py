"""Tests for the tree substrate: Tree, LCA, level ancestors, TreeIndex."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    LadderLevelAncestor,
    LcaIndex,
    LiftingLevelAncestor,
    Tree,
    balanced_tree,
    caterpillar_tree,
    path_tree,
    random_tree,
    star_tree,
)
from repro.graphs.index import TreeIndex


def brute_lca(tree, u, v):
    depth = tree.depths()
    while depth[u] > depth[v]:
        u = tree.parents[u]
    while depth[v] > depth[u]:
        v = tree.parents[v]
    while u != v:
        u, v = tree.parents[u], tree.parents[v]
    return u


random_parents = st.integers(min_value=2, max_value=80).flatmap(
    lambda n: st.tuples(
        st.just(n), st.lists(st.randoms(use_true_random=False), min_size=1, max_size=1)
    )
)


def make_random_tree(n, seed):
    return random_tree(n, seed=seed)


class TestTreeBasics:
    def test_single_vertex(self):
        t = Tree([-1])
        assert t.n == 1 and t.root == 0
        assert t.preorder() == [0]
        assert t.distance(0, 0) == 0.0

    def test_rejects_no_root(self):
        with pytest.raises(ValueError):
            Tree([0, 0])

    def test_rejects_two_roots(self):
        with pytest.raises(ValueError):
            Tree([-1, -1])

    def test_rejects_cycle(self):
        with pytest.raises(ValueError):
            Tree([-1, 2, 1])

    def test_rejects_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            Tree([-1, 0], [0.0])

    def test_path_endpoints_and_uniqueness(self):
        t = random_tree(60, seed=5)
        rng = random.Random(1)
        for _ in range(50):
            u, v = rng.randrange(60), rng.randrange(60)
            path = t.path(u, v)
            assert path[0] == u and path[-1] == v
            assert len(set(path)) == len(path)
            for a, b in zip(path, path[1:]):
                assert t.parents[a] == b or t.parents[b] == a

    def test_distance_symmetric_and_triangle(self):
        t = random_tree(40, seed=2)
        rng = random.Random(3)
        for _ in range(40):
            u, v, w = (rng.randrange(40) for _ in range(3))
            assert abs(t.distance(u, v) - t.distance(v, u)) < 1e-9
            assert t.distance(u, v) <= t.distance(u, w) + t.distance(w, v) + 1e-9

    def test_from_edges_round_trip(self):
        t = random_tree(30, seed=7)
        rebuilt = Tree.from_edges(30, list(t.edges()), root=t.root)
        for u in range(0, 30, 3):
            for v in range(0, 30, 4):
                assert abs(t.distance(u, v) - rebuilt.distance(u, v)) < 1e-9

    def test_from_edges_rejects_disconnected(self):
        # A cycle on {0, 1, 2} plus isolated vertex 3: n - 1 edges but
        # not a tree.
        with pytest.raises(ValueError):
            Tree.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])

    def test_is_ancestor(self):
        t = balanced_tree(2, 3)
        assert t.is_ancestor(0, 14)
        assert t.is_ancestor(7, 7)
        assert not t.is_ancestor(7, 8)

    def test_weighted_depths_consistent_with_distance(self):
        t = random_tree(50, seed=9)
        wdepth = t.weighted_depths()
        for v in range(50):
            assert abs(wdepth[v] - t.distance(t.root, v)) < 1e-9


class TestBuilders:
    def test_path_tree_shape(self):
        t = path_tree(10, seed=0)
        assert t.parents == [-1] + list(range(9))
        assert max(t.depths()) == 9

    def test_star_tree_shape(self):
        t = star_tree(10)
        assert max(t.depths()) == 1
        assert len(t.children[0]) == 9

    def test_caterpillar_has_n_vertices(self):
        t = caterpillar_tree(25, seed=1)
        assert t.n == 25

    def test_balanced_tree_size(self):
        t = balanced_tree(3, 3)
        assert t.n == 1 + 3 + 9 + 27

    def test_random_tree_deterministic_by_seed(self):
        assert random_tree(40, seed=5).parents == random_tree(40, seed=5).parents
        assert random_tree(40, seed=5).parents != random_tree(40, seed=6).parents


class TestLcaAndLevelAncestor:
    @pytest.mark.parametrize("builder,n", [
        (random_tree, 120), (path_tree, 90), (caterpillar_tree, 80), (star_tree, 50),
    ])
    def test_lca_matches_brute_force(self, builder, n):
        t = builder(n) if builder is star_tree else builder(n, seed=11)
        lca = LcaIndex(t)
        rng = random.Random(4)
        for _ in range(300):
            u, v = rng.randrange(n), rng.randrange(n)
            assert lca.lca(u, v) == brute_lca(t, u, v)

    def test_lca_distance_matches_tree_distance(self):
        t = random_tree(70, seed=12)
        lca = LcaIndex(t)
        rng = random.Random(5)
        for _ in range(100):
            u, v = rng.randrange(70), rng.randrange(70)
            assert abs(lca.distance(u, v) - t.distance(u, v)) < 1e-9

    @pytest.mark.parametrize("cls", [LadderLevelAncestor, LiftingLevelAncestor])
    @pytest.mark.parametrize("builder,n", [
        (random_tree, 150), (path_tree, 100), (balanced_tree, None),
    ])
    def test_level_ancestor_matches_climbing(self, cls, builder, n):
        t = balanced_tree(2, 6) if builder is balanced_tree else builder(n, seed=13)
        la = cls(t)
        depth = t.depths()
        rng = random.Random(6)
        for _ in range(300):
            v = rng.randrange(t.n)
            d = rng.randrange(depth[v] + 1)
            expected = v
            while depth[expected] > d:
                expected = t.parents[expected]
            assert la.ancestor_at_depth(v, d) == expected

    def test_level_ancestor_rejects_deeper_target(self):
        t = path_tree(10, seed=0)
        for cls in (LadderLevelAncestor, LiftingLevelAncestor):
            with pytest.raises(ValueError):
                cls(t).ancestor_at_depth(2, 5)

    @pytest.mark.parametrize("n", [3, 30, 47, 48, 49, 200])
    def test_tree_index_both_modes_agree(self, n):
        """TreeIndex switches naive/indexed at its threshold; both agree."""
        t = random_tree(n, seed=n)
        index = TreeIndex(t)
        rng = random.Random(7)
        depth = t.depths()
        for _ in range(150):
            u, v = rng.randrange(n), rng.randrange(n)
            assert index.lca(u, v) == brute_lca(t, u, v)
            d = rng.randrange(depth[u] + 1)
            got = index.ancestor_at_depth(u, d)
            assert depth[got] == d and t.is_ancestor(got, u)


@given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_property_lca_depth_is_max_common_prefix(n, seed):
    """LCA depth equals the longest common prefix of root paths."""
    t = random_tree(n, seed=seed)
    lca = LcaIndex(t)
    rng = random.Random(seed)
    u, v = rng.randrange(n), rng.randrange(n)

    def root_path(x):
        out = [x]
        while t.parents[out[-1]] != -1:
            out.append(t.parents[out[-1]])
        return list(reversed(out))

    pu, pv = root_path(u), root_path(v)
    common = 0
    while common < min(len(pu), len(pv)) and pu[common] == pv[common]:
        common += 1
    assert lca.lca(u, v) == pu[common - 1]
