"""No correctness check in ``src/`` may rely on a bare ``assert``.

``python -O`` strips assert statements, so every guarantee-enforcing
check in the library proper must raise a real exception
(:mod:`repro.errors`).  This test walks the AST of every module under
``src/`` and fails on any ``assert`` statement, keeping the invariant
from regressing.  (Tests themselves are exempt: pytest's assertion
rewriting keeps them meaningful even under ``-O``.)
"""

import ast
import pathlib

import repro

SRC = pathlib.Path(repro.__file__).resolve().parent


def test_src_contains_no_assert_statements():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                offenders.append(f"{path.relative_to(SRC)}:{node.lineno}")
    assert not offenders, (
        "assert statements vanish under `python -O`; raise "
        "repro.errors.InvariantViolation (via errors.check) instead:\n  "
        + "\n  ".join(offenders)
    )
