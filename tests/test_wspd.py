"""Tests for fair split trees, WSPDs, and the classic applications."""

import itertools
import math
import random

import numpy as np
import pytest

from repro.metrics import FairSplitTree, grid_points, random_points, sample_pairs
from repro.spanners import (
    approximate_diameter,
    closest_pair,
    measured_stretch,
    well_separated_pairs,
    wspd_spanner,
)


class TestFairSplitTree:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_invariants(self, dim):
        metric = random_points(120, dim=dim, seed=0)
        tree = FairSplitTree(metric)
        tree.verify()

    def test_node_count_linear(self):
        metric = random_points(200, dim=2, seed=1)
        tree = FairSplitTree(metric)
        assert tree.node_count == 2 * 200 - 1  # binary with n leaves

    def test_handles_duplicate_coordinates(self):
        points = [[0.0, float(i % 3)] for i in range(12)]
        # All x equal: the degenerate split path must still terminate.
        metric_points = np.asarray(points) + np.arange(12)[:, None] * 1e-9
        from repro.metrics import EuclideanMetric

        tree = FairSplitTree(EuclideanMetric(metric_points))
        tree.verify()

    def test_depth_reasonable_on_grid(self):
        metric = grid_points(12, dim=2)
        tree = FairSplitTree(metric)
        assert tree.depth() <= 4 * math.ceil(math.log2(metric.n)) + 4


class TestWspd:
    def test_every_pair_covered_exactly_once(self):
        metric = random_points(60, dim=2, seed=2)
        tree = FairSplitTree(metric)
        pairs = well_separated_pairs(tree, 2.0)
        covered = {}
        for a, b in pairs:
            for p in a.points:
                for q in b.points:
                    key = (min(int(p), int(q)), max(int(p), int(q)))
                    covered[key] = covered.get(key, 0) + 1
        expected = {(p, q) for p, q in itertools.combinations(range(60), 2)}
        assert set(covered) == expected
        assert all(count == 1 for count in covered.values())

    def test_pairs_are_separated(self):
        metric = random_points(80, dim=2, seed=3)
        tree = FairSplitTree(metric)
        s = 3.0
        for a, b in well_separated_pairs(tree, s):
            radius = max(a.radius(), b.radius())
            for p in a.points:
                for q in b.points:
                    assert metric.distance(int(p), int(q)) >= s * radius - 2 * radius - 1e-9

    def test_pair_count_linear_in_n(self):
        sizes = {}
        for n in (100, 400):
            metric = random_points(n, dim=2, seed=4)
            sizes[n] = len(well_separated_pairs(FairSplitTree(metric), 2.0))
        assert sizes[400] <= 6 * sizes[100]  # O(n) pairs for fixed s, d

    def test_rejects_nonpositive_separation(self):
        metric = random_points(10, dim=2, seed=5)
        with pytest.raises(ValueError):
            well_separated_pairs(FairSplitTree(metric), 0.0)


class TestWspdSpanner:
    @pytest.mark.parametrize("s,bound", [(4.0, 3.0), (8.0, 2.0), (16.0, 1.5)])
    def test_stretch_bound(self, s, bound):
        metric = random_points(70, dim=2, seed=6)
        graph = wspd_spanner(metric, s=s)
        assert measured_stretch(graph, metric, sample_pairs(70, 150)) <= bound

    def test_size_grows_with_separation(self):
        metric = random_points(100, dim=2, seed=7)
        small = wspd_spanner(metric, s=2.0).num_edges
        large = wspd_spanner(metric, s=8.0).num_edges
        assert small < large


class TestProximityUtilities:
    def test_closest_pair_exact(self):
        for seed in range(5):
            metric = random_points(80, dim=2, seed=seed)
            u, v, d = closest_pair(metric)
            expected = min(
                metric.distance(p, q)
                for p, q in itertools.combinations(range(80), 2)
            )
            assert abs(d - expected) < 1e-9
            assert abs(metric.distance(u, v) - expected) < 1e-9

    def test_approximate_diameter(self):
        metric = random_points(90, dim=2, seed=8)
        exact = max(
            metric.distance(p, q) for p, q in itertools.combinations(range(90), 2)
        )
        approx = approximate_diameter(metric, eps=0.1)
        assert (1 - 0.1) * exact - 1e-9 <= approx <= exact + 1e-9
