"""Differential tests: packed query paths vs the dict-backed reference.

``TreeNavigator.find_path`` runs on the flat :class:`QueryPack` arrays;
``TreeNavigator.find_path_reference`` is the original recursive
dict/object implementation, kept verbatim as the oracle.  These tests
pin the contract that the rewrite is *bit-identical* — same paths, same
observability counter deltas — across random trees, hop parameters and
cover backends, and that the packed scalar path stays allocation-lean.
"""

import random
import tracemalloc

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MetricNavigator, TreeNavigator
from repro.graphs import random_tree
from repro.metrics import (
    grid_graph_metric,
    random_graph_metric,
    random_points,
    sample_pairs,
)
from repro.observability import OBS
from repro.treecover import (
    planar_tree_cover,
    prune_cover,
    ramsey_tree_cover,
    robust_tree_cover,
)

tree_params = st.tuples(
    st.integers(min_value=2, max_value=120),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=2, max_value=6),
)


def _counter_deltas(fn):
    """(result, {counter: delta}) for the treenav instruments."""
    names = ("treenav.queries", "treenav.nodes_touched")
    with OBS.scoped(True):
        before = {
            name: OBS.registry.counter(name).value for name in names
        }
        result = fn()
        after = {name: OBS.registry.counter(name).value for name in names}
    return result, {name: after[name] - before[name] for name in names}


@given(tree_params)
@settings(max_examples=40, deadline=None)
def test_packed_path_identical_to_reference(params):
    n, seed, k = params
    tree = random_tree(n, seed=seed)
    navigator = TreeNavigator(tree, k)
    rng = random.Random(seed)
    for _ in range(8):
        u, v = rng.randrange(n), rng.randrange(n)
        packed, packed_counts = _counter_deltas(
            lambda: navigator.find_path(u, v)
        )
        reference, reference_counts = _counter_deltas(
            lambda: navigator.find_path_reference(u, v)
        )
        assert packed == reference
        assert packed_counts == reference_counts


@given(tree_params)
@settings(max_examples=20, deadline=None)
def test_packed_path_rejects_non_required(params):
    n, seed, k = params
    tree = random_tree(n, seed=seed)
    required = list(range(0, n, 2))
    if len(required) < 2:
        return
    navigator = TreeNavigator(tree, k, required=required)
    u, v = required[0], required[-1]
    assert navigator.find_path(u, v) == navigator.find_path_reference(u, v)
    # Odd ids are outside the required list (though cut vertices may
    # still enter the home table): packed and reference must agree on
    # every outsider — same KeyError, or same path.
    for outsider in range(1, n, 2):
        for args in ((outsider, u), (u, outsider)):
            packed = reference = ("raised",)
            try:
                packed = navigator.find_path(*args)
            except KeyError:
                pass
            try:
                reference = navigator.find_path_reference(*args)
            except KeyError:
                pass
            assert packed == reference


class TestCoverBackends:
    """Full-stack identity + contract checks per cover construction."""

    def _check(self, metric, cover, k, seed):
        navigator = MetricNavigator(metric, cover, k)
        pairs = sample_pairs(metric.n, 60, seed=seed)
        gamma = max(cover.stretch(u, v) for u, v in pairs)
        for u, v in pairs:
            index, _ = cover.best_tree(u, v)
            tree_nav = navigator.navigators[index]
            cover_tree = cover.trees[index]
            a = cover_tree.vertex_of_point[u]
            b = cover_tree.vertex_of_point[v]
            assert tree_nav.find_path(a, b) == tree_nav.find_path_reference(a, b)
            navigator.verify_query(u, v, gamma + 1e-9)

    def test_robust_cover(self):
        metric = random_points(70, dim=2, seed=0)
        self._check(metric, robust_tree_cover(metric, eps=0.5), 3, seed=1)

    def test_ramsey_cover(self):
        metric = random_graph_metric(60, seed=2)
        self._check(metric, ramsey_tree_cover(metric, ell=2, seed=3), 2, seed=4)

    def test_planar_cover(self):
        metric = grid_graph_metric(7, seed=5)
        self._check(metric, planar_tree_cover(metric), 3, seed=6)


class TestPrunedDifferential:
    """Pruning must not perturb a single retained path.

    Retained trees are the *same* :class:`CoverTree` objects, so every
    query answered by a retained tree must be bit-identical — same
    packed path, same reference path — whether asked through the full
    or the pruned cover.  This is the "bit-identical query answers on
    retained trees" half of the pruning contract; the stretch half
    lives in ``tests/test_tree_covers.py``.
    """

    def _paths_identical(self, metric, cover, k, seed, expect_shrink=True):
        report = prune_cover(cover, eps=0.05, seed=3)
        pruned = report.cover
        if expect_shrink:
            assert pruned.size < cover.size
        nav_full = MetricNavigator(metric, cover, k)
        nav_pruned = MetricNavigator(metric, pruned, k)
        for u, v in sample_pairs(metric.n, 80, seed=seed):
            j, _ = pruned.best_tree(u, v)
            orig = report.retained[j]
            ct = pruned.trees[j]
            assert ct is cover.trees[orig]
            a, b = ct.vertex_of_point[u], ct.vertex_of_point[v]
            pruned_nav = nav_pruned.navigators[j]
            full_nav = nav_full.navigators[orig]
            path = pruned_nav.find_path(a, b)
            assert path == full_nav.find_path(a, b)
            assert path == pruned_nav.find_path_reference(a, b)

    def test_robust_cover_paths_survive_prune(self):
        metric = random_points(80, dim=2, seed=11)
        cover = robust_tree_cover(metric, eps=0.4)
        self._paths_identical(metric, cover, 3, seed=12)

    def test_ramsey_cover_paths_survive_prune(self):
        # A tiny Ramsey cover may be all home trees (nothing droppable);
        # the identity contract must hold regardless.
        metric = random_graph_metric(60, seed=13)
        cover = ramsey_tree_cover(metric, ell=2, seed=14)
        self._paths_identical(metric, cover, 2, seed=15, expect_shrink=False)


class TestAllocationRegression:
    def test_scalar_query_allocations_bounded(self):
        """A warm scalar query must not rebuild per-query structures.

        The packed rewrite exists to kill the per-query dict/list churn
        of the recursive path; this pins it.  The bound is loose enough
        for the result list and a few ints, tight enough that any
        return to per-query index building (thousands of allocations)
        fails loudly.
        """
        metric = random_points(150, dim=2, seed=7)
        cover = robust_tree_cover(metric, eps=0.5)
        navigator = MetricNavigator(metric, cover, 3)
        pairs = sample_pairs(150, 50, seed=8)
        for u, v in pairs:  # warm: packed index, query packs, LRU
            navigator.find_path(u, v)
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for u, v in pairs:
            navigator.find_path(u, v)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        total = sum(
            max(0, stat.size_diff)
            for stat in after.compare_to(before, "lineno")
        )
        per_query = total / len(pairs)
        # Measured ~1.5 kB/query (result lists, numpy scalar boxes);
        # the pre-rewrite path allocated tens of kB rebuilding lazy
        # dicts and touring Φ recursively.
        assert per_query < 8192, f"{per_query:.0f} bytes allocated per query"
