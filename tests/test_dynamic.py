"""Dynamic-updates-under-churn suite (``-m dynamic``; runs in tier-1).

Four layers, mirroring the subsystem:

* differential oracle — a patched :class:`DynamicRobustCover` must be
  tree-for-tree identical to a from-scratch masked rebuild on the same
  final point set, including a bounded hypothesis sweep over random
  mutation schedules and the root-anchor-deletion corner;
* journal durability — fsync-before-ack append/reload round trips,
  idempotent replay, and a hypothesis truncate-at-any-byte property:
  a crash can only ever lose the torn tail, never a valid prefix;
* service integration — ``enable_dynamic``/``insert``/``delete``/
  ``compact`` through :class:`CheckpointService`, crash-replay of a
  journaled-but-unapplied record, typed refusals in static and mapped
  modes, and the stale-pack / stale-router regressions;
* end-to-end — mutation verbs over the wire through a real daemon,
  including routing across a mutation (the generation-keyed router
  cache) and tombstone refusals.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    CheckpointService,
    save_cover_checkpoint,
    save_navigator_checkpoint,
)
from repro.core.metric_navigator import MetricNavigator
from repro.dynamic import (
    ChurnHarness,
    DynamicRobustCover,
    UpdateJournal,
    journal_path_for,
    states_identical,
)
from repro.errors import CheckpointCorruption, StalePackError
from repro.metrics import random_points
from repro.serve import AdmissionPolicy, ServeClient, ThreadedServer
from repro.treecover import robust_tree_cover

pytestmark = pytest.mark.dynamic

N = 28
EPS = 0.5
K = 3
BUILDER = {"family": "robust", "eps": EPS}


@pytest.fixture(scope="module")
def metric():
    return random_points(N, dim=2, seed=7)


def _fresh(metric, **kwargs):
    return DynamicRobustCover.from_metric(metric, eps=EPS, **kwargs)


def _insert_point(rng):
    return [float(rng.uniform(0.0, 1000.0)), float(rng.uniform(0.0, 1000.0))]


# ----------------------------------------------------------------------
# Differential oracle: patched state == from-scratch rebuild


class TestDifferentialOracle:
    def test_single_insert_matches_rebuild(self, metric):
        dyn = _fresh(metric)
        dyn.apply([("insert", [123.0, 456.0])])
        assert states_identical(dyn, dyn.rebuild())

    def test_single_delete_matches_rebuild(self, metric):
        dyn = _fresh(metric)
        dyn.apply([("delete", 3)])
        assert states_identical(dyn, dyn.rebuild())

    def test_root_anchor_deletion_matches_rebuild(self, metric):
        """Deleting the point anchoring a tree's final root must still
        converge to the same structure a from-scratch rebuild picks
        (whether the patcher re-anchors in place or falls back)."""
        dyn = _fresh(metric)
        tree = dyn.trees[0]
        victim = tree.rep_point[tree.tree.root]
        dyn.apply([("delete", victim)])
        assert victim not in dyn.active
        assert states_identical(dyn, dyn.rebuild())

    def test_repair_root_anchor_reanchors_without_replay(self, metric):
        """Direct unit for the re-anchor kernel: a dead root anchor is
        replaced by the first qualifying live component root, root-child
        edge weights are re-measured from the new anchor, and the old
        tree object is left untouched for in-flight snapshots."""
        from repro.dynamic import repair_root_anchor

        dyn = _fresh(metric)
        picked = None
        for tree in dyn.trees:
            root = tree.tree.root
            children = sorted(
                v for v, par in enumerate(tree.tree.parents) if par == root
            )
            if len(children) >= 2:
                picked = (tree, root, children)
                break
        assert picked is not None
        tree, root, children = picked
        victim = tree.rep_point[root]
        mask = [True] * metric.n
        mask[victim] = False
        repaired = repair_root_anchor(tree, metric, mask, metric.n)
        assert repaired is not tree
        assert tree.rep_point[root] == victim  # old generation untouched
        new_anchor = repaired.rep_point[root]
        assert new_anchor != victim
        survivors = [c for c in children if c >= metric.n or mask[c]]
        assert new_anchor == repaired.rep_point[survivors[0]]
        assert repaired.tree.parents == tree.tree.parents
        for c in children:
            expected = metric.distance(new_anchor, repaired.rep_point[c])
            assert repaired.tree.weights[c] == pytest.approx(expected)

    def test_mixed_batches_match_rebuild(self, metric):
        dyn = _fresh(metric)
        dyn.apply([("insert", [10.0, 20.0]), ("delete", 0), ("delete", 9)])
        dyn.apply([("insert", [900.0, 900.0]), ("delete", N)])
        assert states_identical(dyn, dyn.rebuild())

    def test_validation_failures_leave_state_untouched(self, metric):
        dyn = _fresh(metric)
        before = dyn.rebuild()
        with pytest.raises(ValueError):
            dyn.apply([("delete", 10_000)])
        with pytest.raises(ValueError):
            dyn.apply([("delete", 1), ("delete", 1)])
        assert states_identical(dyn, before)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_random_schedules_match_rebuild(self, data):
        """Bounded sweep: any short random insert/delete schedule must
        leave the patched cover identical to rebuilding from scratch."""
        metric = random_points(16, dim=2, seed=11)
        dyn = DynamicRobustCover.from_metric(metric, eps=EPS)
        batches = data.draw(st.integers(1, 2), label="batches")
        seen_points = set()
        for _ in range(batches):
            size = data.draw(st.integers(1, 3), label="batch_size")
            ops, doomed = [], set()
            for _ in range(size):
                live = [p for p in dyn.active if p not in doomed]
                if len(live) > 4 and data.draw(st.booleans(), label="delete?"):
                    victim = data.draw(st.sampled_from(live), label="victim")
                    doomed.add(victim)
                    ops.append(("delete", victim))
                else:
                    coords = data.draw(
                        st.tuples(
                            st.floats(0, 1000, allow_nan=False),
                            st.floats(0, 1000, allow_nan=False),
                        ),
                        label="point",
                    )
                    point = list(coords)
                    # Coincident inserts are refused by validation; nudge
                    # duplicates so the schedule stays applicable.
                    while tuple(point) in seen_points:
                        point[0] += 1.0
                    seen_points.add(tuple(point))
                    ops.append(("insert", point))
            dyn.apply(ops)
        assert states_identical(dyn, dyn.rebuild())


# ----------------------------------------------------------------------
# Journal durability


class TestJournal:
    def _filled(self, path, ops=4):
        with UpdateJournal(path) as journal:
            for i in range(ops):
                if i % 2 == 0:
                    journal.append("insert", point=[float(i), float(i + 1)])
                else:
                    journal.append("delete", point_id=i)
            return [dict(r) for r in journal.records]

    def test_append_reload_round_trip(self, tmp_path):
        path = str(tmp_path / "j.journal")
        written = self._filled(path)
        with UpdateJournal(path) as journal:
            assert [dict(r) for r in journal.records] == written
            assert journal.last_seq == len(written)
            assert journal.base_seq == 0

    def test_replay_is_idempotent(self, tmp_path):
        path = str(tmp_path / "j.journal")
        self._filled(path, ops=5)
        with UpdateJournal(path) as journal:
            assert [r.seq for r in journal.records_after(0)] == [1, 2, 3, 4, 5]
            assert [r.seq for r in journal.records_after(3)] == [4, 5]
            assert journal.records_after(5) == []
            assert journal.records_after(99) == []

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "j.journal")
        self._filled(path, ops=3)
        intact = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b"\x40\x00\x00\x00\xde\xad\xbe\xefpartial frame")
        with UpdateJournal(path) as journal:
            assert len(journal) == 3
        assert os.path.getsize(path) == intact

    def test_seq_gap_is_corruption(self, tmp_path):
        import json
        import struct
        import zlib

        path = str(tmp_path / "j.journal")
        self._filled(path, ops=2)
        bogus = json.dumps(
            {"kind": "op", "seq": 9, "op": "delete", "point_id": 0},
            sort_keys=True, separators=(",", ":"),
        ).encode()
        with open(path, "ab") as fh:
            fh.write(struct.pack("<II", len(bogus), zlib.crc32(bogus)) + bogus)
        with pytest.raises(CheckpointCorruption, match="gap-free"):
            UpdateJournal(path)

    def test_reset_starts_a_fresh_epoch(self, tmp_path):
        path = str(tmp_path / "j.journal")
        with UpdateJournal(path) as journal:
            journal.append("insert", point=[1.0, 2.0])
            journal.append("delete", point_id=0)
            journal.reset()
            assert len(journal) == 0
            assert journal.base_seq == 2
            record = journal.append("insert", point=[3.0, 4.0])
            assert record.seq == 3

    @settings(max_examples=25, deadline=None)
    @given(cut=st.integers(0, 400))
    def test_truncate_at_any_byte_keeps_longest_valid_prefix(self, cut):
        """Crash-safety property: chopping the file at ANY byte loses at
        most the torn tail — reopening always yields a gap-free prefix
        of the originally acked records (or rejects an empty/torn
        header outright, never serving invented state)."""
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "cut.journal")
            written = self._filled(path, ops=6)
            size = os.path.getsize(path)
            cut = min(cut, size)
            with open(path, "r+b") as fh:
                fh.truncate(cut)
            try:
                with UpdateJournal(path) as journal:
                    survived = [dict(r) for r in journal.records]
            except CheckpointCorruption:
                # The header itself was torn: refusal, not silent reset.
                assert cut < size
                return
            if cut < size:
                assert len(survived) < len(written)
            assert survived == written[: len(survived)]


# ----------------------------------------------------------------------
# Stale pack + navigator reuse units


class TestStaleness:
    def test_retired_cover_refuses_new_packed_arena(self, metric):
        cover = robust_tree_cover(metric, eps=EPS)
        cover.retire("test mutation")
        with pytest.raises(StalePackError, match="retired"):
            cover.packed_index()

    def test_prebuilt_arena_keeps_serving_after_retirement(self, metric):
        cover = robust_tree_cover(metric, eps=EPS)
        arena = cover.packed_index()
        cover.retire("test mutation")
        if arena is not None:  # size budget may skip the arena entirely
            assert cover.packed_index() is arena

    def test_mutation_retires_the_previous_generation(self, metric):
        dyn = _fresh(metric)
        prev = dyn.cover
        dyn.apply([("insert", [50.0, 60.0])])
        assert dyn.cover is not prev
        assert prev.retired
        with pytest.raises(StalePackError):
            prev.packed_index()

    def test_reuse_slots_are_identity_keyed(self, metric):
        dyn = _fresh(metric)
        same = dyn.navigator_reuse_slots(dyn.trees)
        assert same == list(range(len(dyn.trees)))
        assert dyn.navigator_reuse_slots([]) == [None] * len(dyn.trees)

    def test_metric_navigator_reuses_given_slots(self, metric):
        cover = robust_tree_cover(metric, eps=EPS)
        first = MetricNavigator(metric, cover, K)
        reused = MetricNavigator(
            metric, cover, K, _reuse=list(first.navigators)
        )
        assert all(
            a is b for a, b in zip(reused.navigators, first.navigators)
        )
        # Mismatched reuse list is ignored, not mis-aligned.
        rebuilt = MetricNavigator(metric, cover, K, _reuse=[None])
        assert len(rebuilt.navigators) == len(cover.trees)
        assert rebuilt.find_path(0, 5) == first.find_path(0, 5)


# ----------------------------------------------------------------------
# Churn harness


class TestChurnHarness:
    def test_batches_pass_stretch_and_pool_audits(self, metric):
        harness = ChurnHarness(
            _fresh(metric), gamma=None, seed=3, f=1, k=K, verify_ft=True
        )
        records = harness.run(batches=2, batch_size=3, queries=8)
        assert len(records) == 2
        for record in records:
            assert record["ft_pools_ok"] is True
            assert record["measured_stretch"] >= 0.0
            assert record["active"] >= 3

    def test_differential_oracle_gate(self, metric):
        harness = ChurnHarness(
            _fresh(metric), seed=4, verify_ft=False, verify_rebuild=True
        )
        record = harness.run_batch(batch_size=2, queries=4)
        assert record["rebuild_identical"] is True


# ----------------------------------------------------------------------
# CheckpointService integration


@pytest.fixture()
def service(metric, tmp_path):
    cover = robust_tree_cover(metric, eps=EPS)
    path = str(tmp_path / "cover.ckpt")
    save_cover_checkpoint(cover, path, builder=BUILDER)
    svc = CheckpointService(metric, k=K).load(path)
    yield svc
    svc.close()


class TestServiceDynamic:
    def test_static_service_refuses_mutations(self, service):
        with pytest.raises(ValueError, match="enable_dynamic"):
            service.insert([1.0, 2.0])
        with pytest.raises(ValueError, match="enable_dynamic"):
            service.delete(0)

    def test_mapped_service_refuses_dynamic_mode(self, metric, tmp_path):
        cover = robust_tree_cover(metric, eps=EPS)
        navigator = MetricNavigator(metric, cover, K)
        path = str(tmp_path / "nav.ckpt")
        save_navigator_checkpoint(navigator, path, builder=BUILDER, packed=True)
        svc = CheckpointService(metric, k=K).load(path, mmap=True)
        with pytest.raises(ValueError, match="read-only"):
            svc.enable_dynamic(eps=EPS, journal_path=str(tmp_path / "j"))
        with pytest.raises(ValueError, match="mapped"):
            svc.insert([1.0, 2.0])

    def test_mutate_journal_replay_compact_cycle(self, service, tmp_path, metric):
        dyn = service.enable_dynamic()
        journal = journal_path_for(service._path)
        assert os.path.exists(journal)

        inserted = service.insert([250.0, 250.0])
        assert inserted["point_id"] == N
        assert inserted["seq"] == 1
        deleted = service.delete(2)
        assert deleted["seq"] == 2
        status = service.status()
        assert status["dynamic"] is True
        assert status["applied_seq"] == 2
        assert status["journal_records"] == 2

        # Queries reach the new point on the patched generation.
        result = service.query(0, N)
        assert result.delivered and not result.degraded

        # A second service over the same files replays the journal to
        # the identical structure (acked == durable).
        twin = CheckpointService(metric, k=K).load(service._path)
        twin.enable_dynamic()
        assert states_identical(twin.dynamic, service.dynamic)
        twin.close()

        # compact folds the journal into the checkpoint...
        compacted = service.compact()
        assert compacted["applied_seq"] == 2
        assert compacted["journal_records"] == 0

        # ...and a cold reload of the compacted checkpoint (base
        # metric!) restores the same structure, continuing the seq.
        cold = CheckpointService(metric, k=K).load(service._path)
        assert cold.state == "ready"
        cold.enable_dynamic()
        assert states_identical(cold.dynamic, service.dynamic)
        assert cold.insert([750.0, 750.0])["seq"] == 3
        cold.close()

    def test_journaled_but_unapplied_record_replays(self, service, metric):
        service.enable_dynamic()
        service.insert([111.0, 222.0])
        path = service._path
        service.close()

        # Simulate a crash after the fsync-ack but before the patch
        # applied: the record exists only in the journal.
        with UpdateJournal(journal_path_for(path)) as journal:
            assert journal.last_seq == 1
            journal.append("insert", point=[333.0, 444.0])

        revived = CheckpointService(metric, k=K).load(path)
        dyn = revived.enable_dynamic()
        assert dyn.applied_seq == 2
        assert len(dyn.active) == N + 2

        reference = _fresh(metric)
        reference.apply([("insert", [111.0, 222.0])])
        reference.apply([("insert", [333.0, 444.0])])
        assert states_identical(dyn, reference)
        revived.close()

    def test_recover_in_dynamic_mode_rebuilds_current_generation(self, service):
        service.enable_dynamic()
        service.insert([10.0, 990.0])
        before = service.dynamic
        report = service.recover()
        assert report.outcome == "full-rebuild"
        assert service.state == "ready"
        assert states_identical(service.dynamic, before)


# ----------------------------------------------------------------------
# End-to-end: mutation verbs over the wire


@pytest.fixture()
def dynamic_server(metric, tmp_path):
    cover = robust_tree_cover(metric, eps=EPS)
    path = str(tmp_path / "cover.ckpt")
    save_cover_checkpoint(cover, path, builder=BUILDER)
    svc = CheckpointService(metric, k=K).load(path)
    svc.enable_dynamic()
    with ThreadedServer(
        svc, policy=AdmissionPolicy(max_batch=8, flush_interval=0.002)
    ) as threaded:
        yield threaded
    svc.close()


@pytest.mark.serve
class TestServeMutations:
    def test_mutation_lifecycle_over_the_wire(self, dynamic_server):
        with ServeClient(dynamic_server.host, dynamic_server.port) as client:
            # Routing works before any mutation, and again after an
            # insert *to the new point* — the regression for the
            # generation-keyed router cache (a stale single-slot router
            # would reject point id N as out of range).
            assert client.route(0, 1)["status"] == "ok"
            inserted = client.insert([420.0, 240.0])
            assert inserted["status"] == "ok"
            new_id = inserted["result"]["point_id"]
            assert new_id == N
            assert client.route(0, new_id)["status"] == "ok"
            assert client.path(1, new_id)["status"] == "ok"

            deleted = client.delete(4)
            assert deleted["status"] == "ok"
            refusal = client.distance(4, 7)
            assert refusal["status"] == "error"
            assert "tombstoned" in refusal["error"]

            compacted = client.compact()
            assert compacted["status"] == "ok"
            health = client.health()
            assert health["service"]["dynamic"] is True
            assert health["service"]["journal_records"] == 0
            assert health["service"]["active_points"] == N  # +1 -1

    def test_mutation_requires_well_formed_fields(self, dynamic_server):
        with ServeClient(dynamic_server.host, dynamic_server.port) as client:
            bad_point = client.request("insert", point=["x"])
            assert bad_point["status"] == "error"
            assert "coordinates" in bad_point["error"]
            bad_delete = client.request("delete")
            assert bad_delete["status"] == "error"

    def test_mapped_daemon_refuses_mutations_as_undelivered(
        self, metric, tmp_path
    ):
        cover = robust_tree_cover(metric, eps=EPS)
        navigator = MetricNavigator(metric, cover, K)
        path = str(tmp_path / "nav.ckpt")
        save_navigator_checkpoint(navigator, path, builder=BUILDER, packed=True)
        svc = CheckpointService(metric, k=K).load(path, mmap=True)
        with ThreadedServer(svc) as threaded:
            with ServeClient(threaded.host, threaded.port) as client:
                refusal = client.insert([1.0, 2.0])
                assert refusal["status"] == "undelivered"
                assert "memory-mapped" in refusal["error"]
                assert client.distance(0, 1)["status"] == "ok"
