"""Differential conformance + locality audit for the netsim package.

The simulator must be *the same algorithm* as the in-process routing
stack, just distributed: every delivered envelope's node trace must be
hop-for-hop identical to what ``Network.route`` computes in one call,
for every scheme (tree / metric over robust, Ramsey, pruned, compact
covers / fault-tolerant), at any scheduler tie-break order and seed.
The locality tests prove the other half of the claim: a simulated node
*cannot* cheat, because its state is a closed slots struct of plain
data and the decision functions close over nothing global.
"""

import ast
import math
import pathlib
import random
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvariantViolation, RoutingError
from repro.graphs import random_tree
from repro.metrics import random_graph_metric, random_points, sample_pairs
from repro.netsim import (
    DROP_REASONS,
    EventScheduler,
    Link,
    MetricsExporter,
    NetworkSimulator,
    SimNode,
    SimReport,
    TIE_BREAK_POLICIES,
    all_pairs_sample,
    audit_locality,
    audit_payload,
    audit_protocol,
    compile_ft_scheme,
    compile_metric_scheme,
    compile_tree_scheme,
    kill_schedule,
    percentile,
    uniform_pairs,
)
from repro.netsim import node as node_module
from repro.observability import OBS
from repro.resilience.injectors import RandomInjector
from repro.routing import (
    FaultTolerantRoutingScheme,
    MetricRoutingScheme,
    Network,
    build_tree_network,
    tree_protocol,
)
from repro.treecover import (
    compact_tree_cover,
    prune_cover,
    ramsey_tree_cover,
    robust_tree_cover,
)

pytestmark = pytest.mark.netsim


# -- shared builds (expensive: one per module) ----------------------------


@pytest.fixture(scope="module")
def tree_env():
    tree = random_tree(80, seed=3)
    scheme, net = build_tree_network(tree, seed=5)
    compiled = compile_tree_scheme(scheme, net)
    return scheme, net, compiled


@pytest.fixture(scope="module")
def metric_env():
    metric = random_points(50, dim=2, seed=13)
    cover = robust_tree_cover(metric, eps=0.45)
    scheme = MetricRoutingScheme(metric, cover, seed=14)
    return scheme, compile_metric_scheme(scheme)


@pytest.fixture(scope="module")
def ft_env():
    metric = random_points(44, dim=2, seed=29)
    cover = robust_tree_cover(metric, eps=0.45)
    scheme = FaultTolerantRoutingScheme(metric, f=2, cover=cover, seed=30)
    return scheme, compile_ft_scheme(scheme)


def run_sim(compiled, pairs, tie_break="fifo", seed=0, kills=()):
    sim = NetworkSimulator(compiled, tie_break=tie_break, seed=seed)
    sim.send_many(pairs, spacing=0.01)
    for when, victim in kills:
        sim.kill_at(when, victim)
    sim.run()
    return sim


def traces_by_pair(sim):
    return {(e.src, e.dst): e.trace() for e in sim.delivered}


# -- scheduler ------------------------------------------------------------


class TestEventScheduler:
    def test_time_order_is_respected(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(3.0, lambda: seen.append("late"))
        sched.schedule(1.0, lambda: seen.append("early"))
        sched.schedule(2.0, lambda: seen.append("middle"))
        assert sched.run() == 3
        assert seen == ["early", "middle", "late"]

    def test_fifo_and_lifo_order_ties(self):
        orders = {}
        for policy in ("fifo", "lifo"):
            sched = EventScheduler(tie_break=policy)
            seen = []
            for i in range(5):
                sched.schedule(1.0, lambda i=i: seen.append(i))
            sched.run()
            orders[policy] = seen
        assert orders["fifo"] == [0, 1, 2, 3, 4]
        assert orders["lifo"] == [4, 3, 2, 1, 0]

    def test_seeded_policy_is_deterministic_and_seed_sensitive(self):
        def order(seed):
            sched = EventScheduler(tie_break="seeded", seed=seed)
            seen = []
            for i in range(12):
                sched.schedule(1.0, lambda i=i: seen.append(i))
            sched.run()
            return seen

        assert order(7) == order(7)
        assert any(order(a) != order(b) for a, b in [(0, 1), (1, 2), (0, 2)])

    def test_rejects_scheduling_into_the_past(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: sched.schedule(0.5, lambda: None))
        with pytest.raises(ValueError):
            sched.run()

    def test_max_events_catches_self_rescheduling_loops(self):
        sched = EventScheduler()

        def rearm():
            sched.schedule(sched.now + 1.0, rearm)

        sched.schedule(0.0, rearm)
        with pytest.raises(RuntimeError):
            sched.run(max_events=50)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler(tie_break="random")


class TestLink:
    def test_pure_latency_never_queues(self):
        link = Link(0, 1, 0, weight=2.0, latency_scale=3.0)
        assert link.transmit(10.0) == pytest.approx(16.0)
        assert link.queued_at(10.0) == 0

    def test_serialization_builds_backlog(self):
        link = Link(0, 1, 0, weight=1.0, service_time=1.0)
        first = link.transmit(0.0)
        second = link.transmit(0.0)
        assert second == first + 1.0
        assert link.queued_at(0.0) == 2

    def test_bounded_queue_tail_drops(self):
        link = Link(0, 1, 0, weight=1.0, service_time=1.0, queue_cap=2)
        assert link.transmit(0.0) is not None
        assert link.transmit(0.0) is not None
        assert link.transmit(0.0) is None  # queue full: dropped
        assert link.sent == 2


# -- differential conformance ---------------------------------------------


class TestTreeConformance:
    def test_traces_match_in_process_routing(self, tree_env):
        scheme, net, compiled = tree_env
        pairs = all_pairs_sample(compiled.n, 250, seed=1)
        sim = run_sim(compiled, pairs, tie_break="seeded", seed=7)
        assert len(sim.delivered) == len(pairs)
        traces = traces_by_pair(sim)
        for u, v in pairs:
            result = net.route(u, tree_protocol, scheme.labels[v], scheme.tables)
            assert traces[(u, v)] == tuple(result.path)

    def test_contract_gates_hold(self, tree_env):
        _, _, compiled = tree_env
        pairs = uniform_pairs(compiled.n, 300, seed=2)
        report = SimReport(run_sim(compiled, pairs)).check_contract(
            min_delivery=1.0,
            gamma=1.0 + 1e-9,
            hop_budget=2,
            header_budget=math.ceil(math.log2(compiled.n)) ** 2,
        )
        assert report.max_hops <= 2

    @pytest.mark.parametrize("tie_break", TIE_BREAK_POLICIES)
    def test_delivered_paths_invariant_to_tie_break(self, tree_env, tie_break):
        """Decisions are pure, so interleaving cannot move a packet."""
        scheme, net, compiled = tree_env
        pairs = uniform_pairs(compiled.n, 200, seed=3)
        baseline = traces_by_pair(run_sim(compiled, pairs, "fifo", seed=0))
        other = traces_by_pair(run_sim(compiled, pairs, tie_break, seed=99))
        assert baseline == other

    def test_rerun_is_bit_identical(self, tree_env):
        _, _, compiled = tree_env
        pairs = uniform_pairs(compiled.n, 150, seed=4)
        a = run_sim(compiled, pairs, "seeded", seed=5)
        b = run_sim(compiled, pairs, "seeded", seed=5)
        assert traces_by_pair(a) == traces_by_pair(b)
        assert a.scheduler.events_run == b.scheduler.events_run
        assert a.now == b.now


class TestMetricConformance:
    def test_robust_cover_traces_match(self, metric_env):
        scheme, compiled = metric_env
        pairs = all_pairs_sample(compiled.n, 200, seed=6)
        traces = traces_by_pair(run_sim(compiled, pairs, "lifo"))
        for u, v in pairs:
            assert traces[(u, v)] == tuple(scheme.route(u, v).path)

    def test_ramsey_cover_traces_match(self):
        metric = random_graph_metric(40, seed=16)
        cover = ramsey_tree_cover(metric, ell=2, seed=17)
        scheme = MetricRoutingScheme(metric, cover, seed=18)
        compiled = compile_metric_scheme(scheme)
        audit_locality(compiled)
        pairs = all_pairs_sample(40, 150, seed=7)
        traces = traces_by_pair(run_sim(compiled, pairs))
        for u, v in pairs:
            assert traces[(u, v)] == tuple(scheme.route(u, v).path)

    def test_pruned_cover_traces_match(self, metric_env):
        """Pruning shrinks ζ but must not change delivered correctness."""
        scheme, _ = metric_env
        report = prune_cover(scheme.cover, eps=0.05)
        pruned_scheme = MetricRoutingScheme(
            scheme.metric, report.cover, seed=21
        )
        compiled = compile_metric_scheme(pruned_scheme, gamma=report.gamma)
        audit_locality(compiled)
        pairs = all_pairs_sample(compiled.n, 150, seed=8)
        sim = run_sim(compiled, pairs)
        traces = traces_by_pair(sim)
        for u, v in pairs:
            assert traces[(u, v)] == tuple(pruned_scheme.route(u, v).path)
        SimReport(sim).check_contract(
            min_delivery=1.0, gamma=report.gamma + 1e-9, hop_budget=2
        )

    def test_compact_cover_traces_match(self):
        metric = random_points(40, dim=2, seed=33)
        cover = compact_tree_cover(metric, eps=0.5)
        scheme = MetricRoutingScheme(metric, cover, seed=34)
        compiled = compile_metric_scheme(scheme)
        audit_locality(compiled)
        pairs = all_pairs_sample(40, 120, seed=9)
        traces = traces_by_pair(run_sim(compiled, pairs, "seeded", seed=2))
        for u, v in pairs:
            assert traces[(u, v)] == tuple(scheme.route(u, v).path)

    def test_stretch_gate_holds(self, metric_env):
        _, compiled = metric_env
        pairs = uniform_pairs(compiled.n, 300, seed=10)
        SimReport(run_sim(compiled, pairs)).check_contract(
            min_delivery=1.0,
            header_budget=math.ceil(math.log2(compiled.n)) ** 2,
            hop_budget=2,
        )


class TestFaultTolerantSim:
    def test_static_faults_match_in_process_routing(self, ft_env):
        """Kill before traffic == the in-process faulty-set route."""
        scheme, compiled = ft_env
        faults = {7, 11}
        pairs = [
            (u, v)
            for u, v in all_pairs_sample(compiled.n, 150, seed=11)
            if u not in faults and v not in faults
        ]
        sim = NetworkSimulator(compiled, seed=1)
        for victim in faults:
            sim.kill_at(0.0, victim)
        sim.send_many(pairs, spacing=0.01, start=1.0)
        sim.run()
        assert len(sim.delivered) == len(pairs)
        traces = traces_by_pair(sim)
        for u, v in pairs:
            expected = scheme.route(u, v, faults=faults)
            assert traces[(u, v)] == tuple(expected.path)

    def test_mid_traffic_kills_only_lose_fault_touching_messages(self, ft_env):
        scheme, compiled = ft_env
        pairs = uniform_pairs(compiled.n, 400, seed=12)
        horizon = 0.01 * len(pairs)
        kills = kill_schedule(
            RandomInjector(compiled.n, seed=13),
            count=scheme.f,
            start=horizon / 2.0,
            spacing=0.5,
        )
        sim = run_sim(compiled, pairs, "seeded", seed=3, kills=kills)
        report = SimReport(sim)
        assert report.kills == scheme.f
        # every loss is accounted to a dead node — exact accounting
        losses = {r: c for r, c in report.drop_counts.items() if c}
        assert set(losses) <= {"dead_node"}
        assert report.delivered + report.dropped == report.injected
        report.check_contract(min_delivery=0.9, hop_budget=2,
                              expected_kills=scheme.f)

    def test_kills_rearm_the_decision_function(self, ft_env):
        _, compiled = ft_env
        sim = NetworkSimulator(compiled, seed=4)
        before = sim.protocol
        sim.kill_at(0.0, 5)
        sim.run()
        assert sim.protocol is not before
        assert sim.faults == {5}


# -- hypothesis properties ------------------------------------------------


tree_instances = st.tuples(
    st.integers(min_value=2, max_value=70),
    st.integers(min_value=0, max_value=10**6),
    st.sampled_from(TIE_BREAK_POLICIES),
    st.integers(min_value=0, max_value=10**6),
)


@given(tree_instances)
@settings(max_examples=25, deadline=None)
def test_property_tree_sim_conforms_on_random_metrics(params):
    """Any tree metric, any port seed, any tie-break, any scheduler
    seed: simulated traces equal in-process routes, stretch is 1."""
    n, seed, tie_break, sched_seed = params
    tree = random_tree(n, seed=seed)
    scheme, net = build_tree_network(tree, seed=seed % 97)
    compiled = compile_tree_scheme(scheme, net)
    rng = random.Random(seed + 1)
    pairs = [
        (rng.randrange(n), rng.randrange(n)) for _ in range(min(25, n * 2))
    ]
    pairs = [(u, v) for u, v in pairs if u != v]
    sim = run_sim(compiled, pairs, tie_break, seed=sched_seed)
    assert len(sim.delivered) == len(pairs)
    traces = traces_by_pair(sim)
    for u, v in set(pairs):
        result = net.route(u, tree_protocol, scheme.labels[v], scheme.tables)
        assert traces[(u, v)] == tuple(result.path)
        assert len(traces[(u, v)]) - 1 <= 2


@given(
    st.sets(st.integers(min_value=0, max_value=43), min_size=0, max_size=2),
    st.sampled_from(TIE_BREAK_POLICIES),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=25, deadline=None)
def test_property_ft_sim_survives_any_fault_set(ft_env, faults, tie_break,
                                                sched_seed):
    """Up to f faults at any tie-break order: fault-free pairs are all
    delivered, within 2 hops, along the in-process faulty route."""
    scheme, compiled = ft_env
    pairs = [
        (u, v)
        for u, v in all_pairs_sample(compiled.n, 40, seed=sched_seed % 1009)
        if u not in faults and v not in faults
    ]
    sim = NetworkSimulator(compiled, tie_break=tie_break, seed=sched_seed)
    for victim in faults:
        sim.kill_at(0.0, victim)
    sim.send_many(pairs, spacing=0.01, start=1.0)
    sim.run()
    assert len(sim.delivered) == len(pairs)
    traces = traces_by_pair(sim)
    for u, v in pairs:
        expected = scheme.route(u, v, faults=set(faults))
        assert traces[(u, v)] == tuple(expected.path)
        assert len(traces[(u, v)]) - 1 <= 2


# -- locality audit -------------------------------------------------------


_FORBIDDEN_NODE_IMPORTS = (
    "repro.metrics", "repro.treecover", "repro.core", "repro.routing",
    "repro.observability", "repro.serve", "repro.resilience",
)


class TestLocalityAudit:
    def test_compiled_schemes_pass_the_audit(self, tree_env, metric_env,
                                             ft_env):
        for compiled in (tree_env[2], metric_env[1], ft_env[1]):
            audit_locality(compiled)

    def test_node_module_imports_no_global_machinery(self):
        """Static gate: the node module cannot even *name* the global
        structures, mirroring the test_no_bare_asserts AST sweep."""
        path = pathlib.Path(node_module.__file__)
        tree = ast.parse(path.read_text(), filename=str(path))
        offenders = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                base = "repro" if node.level else ""
                names = [(node.module or base)]
            else:
                continue
            for name in names:
                qualified = name if name.startswith("repro") else f"repro.{name}"
                if any(
                    qualified.startswith(banned)
                    for banned in _FORBIDDEN_NODE_IMPORTS
                ):
                    offenders.append(f"{path.name}:{node.lineno}: {name}")
        assert not offenders, (
            "netsim.node must stay structurally local; it imports:\n  "
            + "\n  ".join(offenders)
        )

    def test_nodes_reject_extra_attributes(self):
        node = SimNode(0, {"x": 1}, {}, frozenset({0}))
        with pytest.raises(AttributeError):
            node.metric = object()
        assert not hasattr(node, "__dict__")

    def test_smuggled_object_in_table_is_caught(self, tree_env):
        scheme, net, _ = tree_env

        class Sneaky:
            pass

        with pytest.raises(InvariantViolation):
            audit_payload({"entry": Sneaky()}, "table")
        # plain nested data passes
        audit_payload({"a": [1, (2.0, "x")], ("k",): frozenset({3})}, "ok")

    def test_bound_method_protocol_is_rejected(self, metric_env):
        scheme, _ = metric_env
        with pytest.raises(InvariantViolation):
            audit_protocol(scheme.protocol)

    def test_closure_over_global_object_is_rejected(self, metric_env):
        scheme, _ = metric_env

        def cheating(u, table, header, label, _scheme=None):
            return scheme.protocol(u, table, header, label)

        with pytest.raises(InvariantViolation):
            audit_protocol(cheating)

    def test_whitelist_drift_is_caught(self, tree_env):
        _, _, compiled = tree_env
        original = SimNode.__slots__
        try:
            SimNode.__slots__ = original + ("backdoor",)
            with pytest.raises(InvariantViolation):
                audit_locality(compiled)
        finally:
            SimNode.__slots__ = original


# -- typed routing errors (satellite: ports.py) ---------------------------


class TestRoutingErrors:
    def test_unwired_neighbor_lookup_raises_typed_error(self):
        from repro.graphs import Graph

        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        net = Network(g, seed=0)
        with pytest.raises(RoutingError) as excinfo:
            net.port(0, 2)
        assert excinfo.value.node == 0
        assert isinstance(excinfo.value, ValueError)  # historical contract

    def test_unknown_port_during_route_raises_typed_error(self):
        from repro.graphs import Graph

        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        net = Network(g, seed=0)

        def bad_protocol(u, table, header, label):
            return 42, None  # port 42 was never wired

        with pytest.raises(RoutingError) as excinfo:
            net.route(0, bad_protocol, {}, [None, None])
        assert excinfo.value.node == 0
        assert excinfo.value.port == 42

    def test_hop_exhaustion_is_a_routing_error_and_runtime_error(self):
        from repro.graphs import Graph

        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        net = Network(g, seed=0)

        def bouncing(u, table, header, label):
            return 0, None

        with pytest.raises(RoutingError):
            net.route(0, bouncing, {}, [None, None], max_hops=5)
        with pytest.raises(RuntimeError):  # historical contract
            net.route(0, bouncing, {}, [None, None], max_hops=5)

    def test_sim_accounts_routing_errors_instead_of_crashing(self, tree_env):
        _, _, compiled = tree_env
        sim = NetworkSimulator(compiled, seed=0)
        sim.protocol = lambda u, table, header, label: (10**9, None)
        sim.send(0, 1)
        sim.run()
        assert sim.drop_counts["routing_error"] == 1
        assert not sim.delivered


# -- observability + report ------------------------------------------------


class TestCountersAndExporter:
    def test_counters_match_report(self, tree_env):
        _, _, compiled = tree_env
        OBS.registry.reset()
        with OBS.scoped(True):
            pairs = uniform_pairs(compiled.n, 120, seed=17)
            sim = run_sim(compiled, pairs)
        report = SimReport(sim)
        snap = OBS.registry.snapshot()["counters"]
        assert snap["netsim.injected"] == report.injected
        assert snap["netsim.delivered"] == report.delivered
        for reason in DROP_REASONS:
            assert snap[f"netsim.dropped_{reason}"] == report.drop_counts[reason]

    def test_metrics_endpoint_scrapes(self, tree_env):
        _, _, compiled = tree_env
        OBS.registry.reset()
        with OBS.scoped(True):
            run_sim(compiled, uniform_pairs(compiled.n, 50, seed=18))
        with MetricsExporter(port=0) as exporter:
            url = f"http://127.0.0.1:{exporter.port}/metrics"
            text = urllib.request.urlopen(url).read().decode("utf-8")
            assert "repro_netsim_delivered 50" in text
            assert "repro_netsim_hops_count 50" in text
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{exporter.port}/nope"
                )


class TestSimReport:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile(values, 100) == 4.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_contract_violations_raise(self, tree_env):
        _, _, compiled = tree_env
        sim = run_sim(compiled, uniform_pairs(compiled.n, 60, seed=19))
        report = SimReport(sim)
        report.check_contract(min_delivery=1.0)  # clean run passes
        with pytest.raises(InvariantViolation):
            report.check_contract(gamma=0.5)
        with pytest.raises(InvariantViolation):
            report.check_contract(header_budget=0)
        with pytest.raises(InvariantViolation):
            report.check_contract(hop_budget=0)
        with pytest.raises(InvariantViolation):
            report.check_contract(expected_kills=3)

    def test_to_dict_is_schema_stable(self, tree_env):
        _, _, compiled = tree_env
        sim = run_sim(compiled, uniform_pairs(compiled.n, 40, seed=20))
        payload = SimReport(sim).to_dict()
        for key in ("scheme", "n", "injected", "delivered", "delivery_rate",
                    "dropped", "hops_max", "header_bits_max", "stretch_p99"):
            assert key in payload
        assert payload["delivered"] == 40


# -- full-size acceptance leg (opt in with -m bench) -----------------------


@pytest.mark.bench
def test_full_scale_acceptance_gates():
    """The ISSUE acceptance row: n=10⁴ nodes, ≥10⁵ delivered messages,
    p99 stretch within γ, headers within log²n bits, FT leg delivering
    within budget with ≤ f kills mid-traffic."""
    from repro.bench import bench_netsim, validate_bench_json

    payload = bench_netsim(seed=1)
    validate_bench_json(payload)
    rows = {row["name"]: row for row in payload["results"]}

    tree = rows["netsim_tree"]["detail"]
    assert rows["netsim_tree"]["n"] == 10_000
    assert tree["delivered"] >= 100_000
    assert tree["stretch_p99"] <= 1.0 + 1e-9
    assert tree["hops_max"] <= 2
    assert tree["header_bits_max"] <= math.ceil(math.log2(10_000)) ** 2

    metric = rows["netsim_metric"]["detail"]
    assert metric["delivery_rate"] == 1.0
    assert metric["stretch_p99"] <= metric["gamma_budget"] + 1e-9

    ft = rows["netsim_ft"]["detail"]
    assert ft["kills"] <= 2
    assert ft["delivery_rate"] >= 0.9
    losses = {r: c for r, c in ft["dropped"].items() if c}
    assert set(losses) <= {"dead_node"}
