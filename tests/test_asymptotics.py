"""Empirical asymptotics, counter-verified: Theorem 1.1's O(k) query
and Table 1's tree counts.

The observability counters turn the paper's asymptotic statements into
measurable quantities: ``treenav.nodes_touched`` is the work a
``find_path`` query does, so "O(k) time, independent of n" becomes
"nodes touched per query is bounded by a k-linear budget at n = 50,
200 and 800 alike, and does not grow with n"; ``cover.trees_consulted``
makes the Ramsey O(1) home-tree selection vs the O(ζ) scan of ordinary
covers directly visible.
"""

import math
import random

import pytest

from repro.core.metric_navigator import MetricNavigator
from repro.core.navigation import TreeNavigator
from repro.graphs import random_tree
from repro.metrics.euclidean import random_points
from repro.observability import OBS
from repro.treecover.dumbbell import robust_tree_cover
from repro.treecover.ramsey import few_trees_cover, ramsey_tree_cover

pytestmark = pytest.mark.observability

SIZES = (50, 200, 800)


@pytest.fixture(autouse=True)
def _pristine_obs():
    was_enabled = OBS.enabled
    OBS.disable()
    OBS.clear()
    yield
    OBS.enabled = was_enabled
    OBS.clear()


def _nodes_per_query(n: int, k: int, queries: int = 150) -> float:
    """Mean ``treenav.nodes_touched`` per top-level find_path call,
    asserting the <= k hop bound along the way."""
    tree = random_tree(n, seed=1)
    navigator = TreeNavigator(tree, k)
    with OBS.scoped(True):
        OBS.registry.reset()
        rng = random.Random(0)
        for _ in range(queries):
            u, v = rng.sample(range(n), 2)
            path = navigator.find_path(u, v)
            assert len(path) - 1 <= k, (u, v, path)
        nodes = OBS.registry.counter("treenav.nodes_touched").value
    return nodes / queries


@pytest.mark.parametrize("k", [2, 3, 4, 6])
def test_find_path_touches_o_of_k_nodes_independent_of_n(k):
    # Budget: every query resolves within 2k + 2 touched nodes — linear
    # in k with a small constant (measured ~k + 2), never in n.
    means = [_nodes_per_query(n, k) for n in SIZES]
    for n, mean in zip(SIZES, means):
        assert mean <= 2 * k + 2, f"n={n} k={k}: {mean:.2f} nodes/query"
    # Flat in n: 16x more points may not even double the per-query work
    # (the slack absorbs deeper recursion trees at tiny n).
    assert means[-1] <= 2.0 * means[0] + 2.0, means


def test_recursion_depth_tracks_k_not_n():
    # Each find_path level recurses once with budget k-2, so sub-queries
    # per top-level query stay under k/2 + 1 at every n.
    for n in SIZES:
        tree = random_tree(n, seed=1)
        navigator = TreeNavigator(tree, 6)
        with OBS.scoped(True):
            OBS.registry.reset()
            rng = random.Random(0)
            for _ in range(100):
                u, v = rng.sample(range(n), 2)
                navigator.find_path(u, v)
            calls = OBS.registry.counter("treenav.queries").value
        assert calls / 100 <= 6 / 2 + 1, f"n={n}: {calls / 100:.2f} calls/query"


def test_metric_navigator_hop_histogram_respects_k():
    metric = random_points(120, dim=2, seed=2)
    cover = robust_tree_cover(metric, eps=0.5)
    navigator = MetricNavigator(metric, cover, 3)
    pairs = [(i, (11 * i + 7) % 120) for i in range(40)
             if i != (11 * i + 7) % 120]
    with OBS.scoped(True):
        OBS.registry.reset()
        navigator.find_paths(pairs)
        hops = OBS.registry.histogram("navigator.hops")
        assert hops.count == len(pairs)
        assert hops.max <= 3


# ----------------------------------------------------------------------
# Table 1 tree counts


@pytest.mark.parametrize("ell", [2, 3])
@pytest.mark.parametrize("n", [60, 150])
def test_few_trees_cover_has_exactly_ell_trees(ell, n):
    metric = random_points(n, dim=2, seed=2)
    cover = few_trees_cover(metric, ell, seed=1)
    assert len(cover.trees) == ell
    assert cover.home is not None
    assert all(0 <= h < ell for h in cover.home)


@pytest.mark.parametrize("ell", [2, 3])
@pytest.mark.parametrize("n", [60, 150])
def test_ramsey_cover_tree_count_within_table1_budget(ell, n):
    metric = random_points(n, dim=2, seed=2)
    cover = ramsey_tree_cover(metric, ell=ell, seed=1)
    # ζ = O(ℓ n^{1/ℓ}) deterministically, x O(log n) for the randomized
    # substitute (DESIGN.md); the constant here is generous but finite.
    budget = ell * n ** (1.0 / ell) * math.log(n)
    assert 1 <= cover.size <= budget, (cover.size, budget)
    assert cover.home is not None and all(h is not None for h in cover.home)


def test_home_tree_selection_is_constant_vs_zeta_scan():
    metric = random_points(60, dim=2, seed=4)
    ramsey = ramsey_tree_cover(metric, ell=2, seed=1)
    scan = robust_tree_cover(metric, eps=0.5)
    pairs = [(i, i + 1) for i in range(0, 20, 2)]
    with OBS.scoped(True):
        OBS.registry.reset()
        ramsey.best_trees(pairs)
        consulted = OBS.registry.histogram("cover.trees_consulted")
        assert consulted.max == 1  # O(1): the home tree answers
        OBS.registry.reset()
        scan.best_tree(0, 1)
        consulted = OBS.registry.histogram("cover.trees_consulted")
        assert consulted.max == scan.size  # O(ζ): full scan
        assert OBS.registry.counter("cover.selections").value == 1
