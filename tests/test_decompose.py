"""Tests for Prune / Decompose / component splitting (Section 3 of [Sol13])."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decompose import WorkTree, decompose, prune, split_components
from repro.graphs import random_tree


def work_tree(n, seed):
    return WorkTree.from_tree(random_tree(n, seed=seed))


def required_sample(n, count, seed):
    rng = random.Random(seed)
    return set(rng.sample(range(n), count))


class TestWorkTree:
    def test_from_tree_preserves_structure(self):
        t = random_tree(40, seed=0)
        wt = WorkTree.from_tree(t)
        assert len(wt) == 40
        assert wt.root == t.root
        assert set(wt.preorder()) == set(range(40))

    def test_postorder_reverses_preorder(self):
        wt = work_tree(30, seed=1)
        assert wt.postorder() == list(reversed(wt.preorder()))


class TestPrune:
    def test_keeps_all_required(self):
        wt = work_tree(80, seed=2)
        req = required_sample(80, 20, seed=3)
        pruned = prune(wt, req)
        assert req <= set(pruned.vertices())

    def test_steiner_bound(self):
        """At most |R| - 1 Steiner (non-required) vertices survive."""
        for seed in range(8):
            wt = work_tree(100, seed=seed)
            req = required_sample(100, 15, seed=seed + 50)
            pruned = prune(wt, req)
            steiner = set(pruned.vertices()) - req
            assert len(steiner) <= len(req) - 1

    def test_every_steiner_vertex_branches(self):
        wt = work_tree(90, seed=4)
        req = required_sample(90, 12, seed=5)
        pruned = prune(wt, req)
        for v in pruned.vertices():
            if v not in req:
                assert len(pruned.children[v]) >= 2, f"Steiner {v} does not branch"

    def test_preserves_ancestor_order(self):
        """Parent in the pruned tree is an ancestor in the original tree."""
        t = random_tree(70, seed=6)
        wt = WorkTree.from_tree(t)
        req = required_sample(70, 18, seed=7)
        pruned = prune(wt, req)
        for v in pruned.vertices():
            p = pruned.parent[v]
            if p != -1:
                assert t.is_ancestor(p, v)

    def test_noop_when_everything_required(self):
        wt = work_tree(50, seed=8)
        pruned = prune(wt, set(range(50)))
        assert set(pruned.vertices()) == set(range(50))
        assert pruned.parent == wt.parent

    def test_rejects_empty_required(self):
        with pytest.raises(ValueError):
            prune(work_tree(10, seed=9), set())

    def test_single_required_vertex(self):
        wt = work_tree(40, seed=10)
        pruned = prune(wt, {7})
        assert set(pruned.vertices()) == {7}
        assert pruned.root == 7


class TestDecompose:
    @pytest.mark.parametrize("ell", [1, 2, 5, 10, 25])
    def test_components_bounded(self, ell):
        wt = work_tree(120, seed=11)
        req = set(range(120))
        cuts = decompose(wt, req, ell)
        components, _, _ = split_components(wt, cuts)
        for comp in components:
            assert len(set(comp.vertices()) & req) <= ell

    def test_cut_count_bound(self):
        """|CV| <= |V| / (ell + 1) (Lemma 3.1's general case)."""
        for seed in range(6):
            wt = work_tree(150, seed=seed)
            req = set(range(150))
            for ell in (3, 7, 20):
                cuts = decompose(wt, req, ell)
                assert len(cuts) <= len(wt) // (ell + 1) + 1

    def test_half_ell_gives_single_centroid_cut(self):
        """ell = ceil(n/2) yields exactly one cut vertex (the k=2 case)."""
        for seed in range(10):
            n = 20 + seed * 13
            wt = work_tree(n, seed=seed)
            req = set(range(n))
            cuts = decompose(wt, req, (n + 1) // 2)
            assert len(cuts) == 1

    def test_respects_required_subset(self):
        wt = work_tree(100, seed=12)
        req = required_sample(100, 30, seed=13)
        cuts = decompose(wt, req, 4)
        components, _, comp_of = split_components(wt, cuts)
        for comp in components:
            assert len(set(comp.vertices()) & req) <= 4

    def test_rejects_bad_ell(self):
        with pytest.raises(ValueError):
            decompose(work_tree(10, seed=14), {0}, 0)


class TestSplitComponents:
    def test_partition_of_non_cut_vertices(self):
        wt = work_tree(80, seed=15)
        cuts = decompose(wt, set(range(80)), 6)
        components, borders, comp_of = split_components(wt, cuts)
        seen = set()
        for comp in components:
            vertices = set(comp.vertices())
            assert not (vertices & seen), "components overlap"
            seen |= vertices
        assert seen | set(cuts) == set(range(80))

    def test_components_are_connected_subtrees(self):
        wt = work_tree(70, seed=16)
        cuts = decompose(wt, set(range(70)), 5)
        components, _, _ = split_components(wt, cuts)
        for comp in components:
            assert set(comp.preorder()) == set(comp.vertices())

    def test_borders_are_adjacent_cuts(self):
        wt = work_tree(90, seed=17)
        cuts = decompose(wt, set(range(90)), 8)
        components, borders, comp_of = split_components(wt, cuts)
        cut_set = set(cuts)
        for i, comp in enumerate(components):
            vertices = set(comp.vertices())
            expected = set()
            for v in vertices:
                p = wt.parent[v]
                if p in cut_set:
                    expected.add(p)
            for c in cut_set:
                if wt.parent[c] in vertices:
                    expected.add(c)
            assert borders[i] == expected

    def test_comp_of_covers_all_non_cuts(self):
        wt = work_tree(60, seed=18)
        cuts = decompose(wt, set(range(60)), 7)
        _, _, comp_of = split_components(wt, cuts)
        assert set(comp_of) == set(range(60)) - set(cuts)


@given(
    st.integers(min_value=8, max_value=120),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=50, deadline=None)
def test_property_decompose_invariant(n, ell, seed):
    """On random trees with random required sets, components hold <= ell
    required vertices and cuts plus components partition the tree."""
    rng = random.Random(seed)
    wt = work_tree(n, seed=seed)
    req = set(rng.sample(range(n), rng.randint(1, n)))
    cuts = decompose(wt, req, ell)
    components, _, comp_of = split_components(wt, cuts)
    covered = set(cuts)
    for comp in components:
        vertices = set(comp.vertices())
        assert len(vertices & req) <= ell
        covered |= vertices
    assert covered == set(range(n))
