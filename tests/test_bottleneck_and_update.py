"""Tests for the AS87 applications: bottleneck flows and MST updates."""

import random

import pytest

from repro.apps import BottleneckOracle, MstUpdater, maximum_spanning_tree
from repro.graphs import Graph, Tree, prim_mst
from repro.metrics import random_points
from repro.util import CountingSemigroup


def random_capacity_graph(n, extra, seed):
    rng = random.Random(seed)
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v), rng.uniform(1, 100))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v, rng.uniform(1, 100))
    return g


class TestMaximumSpanningTree:
    def test_is_spanning(self):
        g = random_capacity_graph(50, 80, seed=0)
        edges = maximum_spanning_tree(g)
        assert len(edges) == 49
        Tree.from_edges(50, edges)  # validates connectivity

    def test_rejects_disconnected(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        with pytest.raises(ValueError):
            maximum_spanning_tree(g)

    def test_maximality_via_cut_property(self):
        """Every non-tree edge is no heavier than the min edge on its
        tree path (cut/cycle property of maximum spanning trees)."""
        g = random_capacity_graph(40, 60, seed=1)
        edges = maximum_spanning_tree(g)
        tree = Tree.from_edges(40, edges)
        depth = tree.depths()
        tree_pairs = {(min(u, v), max(u, v)) for u, v, _ in edges}
        for u, v, w in g.edges():
            if (u, v) in tree_pairs:
                continue
            path = tree.path(u, v)
            path_min = min(
                tree.weights[b if depth[b] > depth[a] else a]
                for a, b in zip(path, path[1:])
            )
            assert w <= path_min + 1e-9


class TestBottleneckOracle:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_widest_path(self, k):
        g = random_capacity_graph(80, 150, seed=2)
        oracle = BottleneckOracle(g, k=k)
        rng = random.Random(3)
        for _ in range(100):
            u, v = rng.sample(range(80), 2)
            assert abs(oracle.bottleneck(u, v) - oracle.brute_force(u, v)) < 1e-9

    def test_ops_per_query(self):
        g = random_capacity_graph(100, 200, seed=4)
        counter = CountingSemigroup(min)
        oracle = BottleneckOracle(g, k=3, op=counter)
        counter.reset()
        rng = random.Random(5)
        for _ in range(100):
            u, v = rng.sample(range(100), 2)
            oracle.bottleneck(u, v)
            assert counter.reset() <= 2  # k - 1

    def test_identity_is_infinite(self):
        g = random_capacity_graph(10, 10, seed=6)
        assert BottleneckOracle(g).bottleneck(3, 3) == float("inf")


class TestMstUpdater:
    def setup_method(self):
        self.metric = random_points(40, dim=2, seed=7)
        mst_edges = prim_mst(40, self.metric.distance)
        self.tree = Tree.from_edges(40, mst_edges)
        tree_pairs = {(min(u, v), max(u, v)) for u, v, _ in mst_edges}
        self.non_tree = [
            (u, v, self.metric.distance(u, v))
            for u in range(40)
            for v in range(u + 1, 40)
            if (u, v) not in tree_pairs
        ]
        self.updater = MstUpdater(self.tree, self.non_tree)

    def exact_mst_weight(self, overrides):
        """Prim with per-edge weight overrides {frozenset: weight}."""

        def dist(u, v):
            return overrides.get((min(u, v), max(u, v)), self.metric.distance(u, v))

        return sum(w for _, _, w in prim_mst(40, dist))

    def test_small_increase_keeps_tree(self):
        child = next(v for v in range(40) if self.tree.parents[v] != -1)
        tiny = self.tree.weights[child] + 1e-9
        assert self.updater.replacement(child, tiny) is None

    def test_huge_increase_triggers_replacement(self):
        child = max(
            (v for v in range(40) if self.tree.parents[v] != -1),
            key=lambda v: self.tree.weights[v],
        )
        swap = self.updater.replacement(child, 10**9)
        assert swap is not None
        u, v, w = swap
        # The replacement must actually cross the cut.
        assert self.updater._on_path(child, u, v)

    @pytest.mark.parametrize("factor", [1.5, 3.0, 100.0])
    def test_updated_tree_is_optimal(self, factor):
        rng = random.Random(8)
        for _ in range(10):
            child = rng.choice([v for v in range(40) if self.tree.parents[v] != -1])
            parent = self.tree.parents[child]
            new_weight = self.tree.weights[child] * factor
            updated, _ = self.updater.apply(child, new_weight)
            overrides = {(min(parent, child), max(parent, child)): new_weight}
            expected = self.exact_mst_weight(overrides)
            got = sum(w for _, _, w in updated.edges())
            assert abs(got - expected) < 1e-6

    def test_rejects_root(self):
        with pytest.raises(ValueError):
            self.updater.replacement(self.tree.root, 5.0)
