"""End-to-end integration tests: full pipelines across subsystems.

Each test exercises a realistic chain — metric → cover → navigation →
application/routing — and checks the cross-cutting invariants the unit
tests cannot see (e.g. that routed paths live on the same overlay the
navigator reports, or that sparsified spanners remain navigable inputs).
"""

import random

import pytest

from repro.apps import (
    MstVerifier,
    approximate_mst,
    approximate_spt,
    base_mst,
    mst_weight,
    shallow_light_tree,
    sparsify,
)
from repro.core import MetricNavigator, TreeNavigator
from repro.graphs import Tree, dijkstra, random_tree
from repro.metrics import (
    TreeMetric,
    clustered_points,
    random_graph_metric,
    random_points,
    sample_pairs,
)
from repro.routing import MetricRoutingScheme, build_tree_network, tree_protocol
from repro.spanners import FaultTolerantSpanner, bounded_hop_stretch
from repro.treecover import few_trees_cover, ramsey_tree_cover, robust_tree_cover


@pytest.fixture(scope="module")
def doubling_setup():
    metric = random_points(80, dim=2, seed=0)
    cover = robust_tree_cover(metric, eps=0.45)
    return metric, cover


class TestNavigationVsSpannerMeasures:
    def test_reported_paths_match_bounded_hop_stretch(self, doubling_setup):
        """The spanner's measured k-hop stretch can never beat the
        navigator's reported paths by definition, and the navigator must
        achieve the hop budget the spanner measurement certifies."""
        metric, cover = doubling_setup
        nav = MetricNavigator(metric, cover, 3)
        spanner = nav.spanner()
        pairs = sample_pairs(80, 40, seed=1)
        best_possible = bounded_hop_stretch(spanner, metric, 3, pairs)
        reported = max(nav.query_stretch(u, v)[1] for u, v in pairs)
        assert best_possible <= reported + 1e-9

    def test_spanner_distance_at_most_path_weight(self, doubling_setup):
        metric, cover = doubling_setup
        nav = MetricNavigator(metric, cover, 2)
        spanner = nav.spanner()
        for u, v in sample_pairs(80, 30, seed=2):
            path_weight = nav.path_weight(nav.find_path(u, v))
            assert dijkstra(spanner, u, target=v) <= path_weight + 1e-9

    def test_approx_distance_consistent_with_paths(self, doubling_setup):
        metric, cover = doubling_setup
        nav = MetricNavigator(metric, cover, 2)
        for u, v in sample_pairs(80, 50, seed=3):
            oracle = nav.approx_distance(u, v)
            assert metric.distance(u, v) <= oracle + 1e-9
            assert nav.path_weight(nav.find_path(u, v)) <= oracle + 1e-9


class TestRoutingMatchesNavigation:
    def test_routed_weight_never_beats_navigated_weight_by_much(self, doubling_setup):
        """Routing picks the same best tree as navigation, so routed and
        navigated 2-hop weights agree."""
        metric, cover = doubling_setup
        nav = MetricNavigator(metric, cover, 2)
        scheme = MetricRoutingScheme(metric, cover, seed=4)
        for u, v in sample_pairs(80, 50, seed=5):
            routed = scheme.route(u, v).weight
            navigated = nav.path_weight(nav.find_path(u, v))
            assert abs(routed - navigated) <= 1e-6 * max(1.0, navigated)

    def test_tree_routing_agrees_with_tree_navigation(self):
        tree = random_tree(150, seed=6)
        scheme, net = build_tree_network(tree, seed=7)
        navigator = scheme.navigator
        metric = TreeMetric(tree)
        rng = random.Random(8)
        for _ in range(100):
            u, v = rng.sample(range(150), 2)
            result = net.route(u, tree_protocol, scheme.labels[v], scheme.tables)
            path = navigator.find_path(u, v)
            assert result.hops <= 2 and len(path) - 1 <= 2
            assert abs(result.weight - metric.distance(u, v)) < 1e-6


class TestSparsifyThenConsume:
    def test_sparsified_spanner_still_serves_spt(self, doubling_setup):
        """Pipeline: dense spanner -> sparsify -> run Dijkstra on the
        result; stretch must stay within the composition bound."""
        metric, cover = doubling_setup
        nav = MetricNavigator(metric, cover, 2)
        from repro.spanners import complete_graph

        sparse = sparsify(complete_graph(metric), nav)
        pairs = sample_pairs(80, 30, seed=9)
        gamma = max(cover.stretch(u, v) for u, v in pairs)
        for u, v in pairs:
            d = dijkstra(sparse, u, target=v)
            assert d <= gamma * metric.distance(u, v) + 1e-6


class TestTreePipeline:
    def test_navigator_feeds_verifier_and_products(self):
        """One tree, one navigator, shared by tree products and MST
        verification (navigator reuse path)."""
        tree = random_tree(120, seed=10)
        navigator = TreeNavigator(tree, 3)
        from repro.apps import OnlineTreeProduct

        product = OnlineTreeProduct(
            tree, 3, max, list(tree.weights), navigator=navigator
        )
        metric = TreeMetric(tree)
        rng = random.Random(11)
        for _ in range(60):
            u, v = rng.sample(range(120), 2)
            path = metric.path(u, v)
            depth = tree.depths()
            expected = max(
                tree.weights[b if depth[b] > depth[a] else a]
                for a, b in zip(path, path[1:])
            )
            assert abs(product.query(u, v) - expected) < 1e-12


class TestFullDoublingStack:
    def test_everything_on_one_clustered_instance(self):
        """Cover -> navigation -> SPT/MST/SLT -> FT, one instance."""
        metric = clustered_points(70, clusters=5, seed=12)
        cover = robust_tree_cover(metric, eps=0.45)
        nav = MetricNavigator(metric, cover, 3)

        parent, dist = approximate_spt(nav, 0)
        assert all(p != -1 for i, p in enumerate(parent) if i != 0)

        mst_edges = approximate_mst(nav)
        assert mst_weight(mst_edges) <= 2.0 * mst_weight(base_mst(metric))

        slt_parent, slt_dist = shallow_light_tree(nav, 0, beta=2.0, mst_edges=mst_edges)
        assert sum(1 for p in slt_parent if p == -1) == 1

        verifier = MstVerifier(Tree.from_edges(70, mst_edges), 2)
        rng = random.Random(13)
        for _ in range(40):
            u, v = rng.sample(range(70), 2)
            ok, comparisons = verifier.verify_by_order(u, v, 10**9)
            assert ok and comparisons == 1

        ft = FaultTolerantSpanner(metric, f=1, k=3, cover=cover)
        for _ in range(30):
            u, v = rng.sample(range(70), 2)
            fault = rng.choice([x for x in range(70) if x not in (u, v)])
            path = ft.find_path(u, v, {fault})
            ft.verify_path(u, v, {fault}, path)


class TestGeneralMetricStack:
    def test_ramsey_and_few_trees_agree_on_domination(self):
        metric = random_graph_metric(60, seed=14)
        for cover in (
            ramsey_tree_cover(metric, ell=2, seed=15),
            few_trees_cover(metric, 3, seed=16),
        ):
            nav = MetricNavigator(metric, cover, 2)
            for u, v in sample_pairs(60, 40, seed=17):
                weight = nav.path_weight(nav.find_path(u, v))
                assert weight >= metric.distance(u, v) - 1e-9
                assert len(nav.find_path(u, v)) - 1 <= 2
