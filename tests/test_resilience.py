"""Resilience subsystem: injectors, chaos harness, graceful degradation.

Seeded property tests for Theorem 4.2's contract under every fault
model — for all ``|F| <= f`` the FT paths must have at most ``k`` hops,
avoid ``F``, and weigh no more than the robust replacement bound of the
candidate trees (the measured γ of Theorem 4.1) — plus the edge cases
of ``find_path`` and the typed-exception / degraded-result semantics.
"""

import math

import pytest

from repro.errors import (
    FaultBudgetExceeded,
    InvariantViolation,
    MetricValidationError,
    ReproError,
)
from repro.metrics import Metric, random_points
from repro.resilience import (
    AdversarialInjector,
    ChaosHarness,
    CrashRecoverySchedule,
    DegradedResult,
    RandomInjector,
    RegionalInjector,
    find_path_degraded,
    make_injector,
    route_degraded,
    validate_metric,
    validation_enabled,
)
from repro.routing import FaultTolerantRoutingScheme
from repro.spanners import FaultTolerantSpanner
from repro.treecover import robust_tree_cover

N = 48
F = 2
K = 4


@pytest.fixture(scope="module")
def metric():
    return random_points(N, dim=2, seed=11)


@pytest.fixture(scope="module")
def cover(metric):
    return robust_tree_cover(metric, eps=0.45)


@pytest.fixture(scope="module")
def spanner(metric, cover):
    return FaultTolerantSpanner(metric, f=F, k=K, cover=cover)


@pytest.fixture(scope="module")
def router(metric, cover):
    return FaultTolerantRoutingScheme(metric, f=F, cover=cover, seed=11)


@pytest.fixture(scope="module")
def harness(spanner, router):
    return ChaosHarness(spanner, router, queries=8, seed=11)


def _all_injectors(metric, spanner):
    return [
        RandomInjector(metric.n, seed=4),
        RegionalInjector(metric, seed=4),
        AdversarialInjector(spanner, probe_pairs=40, seed=4),
    ]


class TestWithinBudgetContract:
    """For every injector and every |F| <= f: <= k hops, F avoided,
    weight within the measured robust replacement bound."""

    def test_every_injector_every_size(self, metric, spanner, harness):
        import random

        rng = random.Random(2)
        for injector in _all_injectors(metric, spanner):
            for size in range(F + 1):
                faults = injector.sample(size)
                assert len(faults) == size
                for _ in range(6):
                    u, v = rng.sample(
                        [p for p in range(N) if p not in faults], 2
                    )
                    path = spanner.find_path(u, v, faults)
                    assert path[0] == u and path[-1] == v
                    assert len(path) - 1 <= K
                    assert not set(path) & faults
                    weight = sum(
                        metric.distance(a, b) for a, b in zip(path, path[1:])
                    )
                    assert weight <= harness.pair_bound(u, v) * (1 + 1e-9)

    def test_harness_sweep_enforces_and_counts(self, metric, spanner, harness):
        for injector in _all_injectors(metric, spanner):
            report = harness.sweep(injector, sizes=[0, 1, F, F + 2])
            # 3 within-budget sizes x 8 queries x (navigation + routing)
            assert report.invariants_checked == 3 * 8 * 2
            assert report.navigation_rate(0) == 1.0
            assert report.navigation_rate(F) == 1.0
            assert report.routing_rate(F) == 1.0
            table = report.format_table()
            assert injector.name in table and "> f" in table


class TestFindPathEdgeCases:
    def test_f_zero_no_faults(self, metric, cover):
        spanner = FaultTolerantSpanner(metric, f=0, k=K, cover=cover)
        path = spanner.find_path(3, 40)
        assert path[0] == 3 and path[-1] == 40 and len(path) - 1 <= K

    def test_f_zero_any_fault_exceeds_budget(self, metric, cover):
        spanner = FaultTolerantSpanner(metric, f=0, k=K, cover=cover)
        with pytest.raises(FaultBudgetExceeded):
            spanner.find_path(3, 40, {7})

    def test_exactly_f_faults_accepted(self, spanner):
        faults = {5, 9}
        assert len(faults) == spanner.f
        path = spanner.find_path(0, 30, faults)
        assert not set(path) & faults

    def test_one_past_budget_raises_with_context(self, spanner):
        faults = {5, 9, 13}
        with pytest.raises(FaultBudgetExceeded) as info:
            spanner.find_path(0, 30, faults)
        assert info.value.f == F
        assert info.value.faults == frozenset(faults)
        assert isinstance(info.value, ValueError)  # legacy compatibility
        assert isinstance(info.value, ReproError)

    def test_faulty_endpoint_rejected(self, spanner):
        with pytest.raises(ValueError):
            spanner.find_path(5, 30, {5})

    def test_candidates_beyond_tree_count(self, spanner):
        zeta = len(spanner.cover.trees)
        assert spanner.candidate_trees(0, 1, zeta + 100) == \
            spanner.candidate_trees(0, 1, zeta)
        path = spanner.find_path(0, 30, {5, 9}, candidates=zeta + 100)
        assert path[0] == 0 and path[-1] == 30 and len(path) - 1 <= K

    def test_candidates_clamped_to_one(self, spanner):
        assert len(spanner.candidate_trees(0, 1, 0)) == 1
        assert len(spanner.candidate_trees(0, 1, -3)) == 1

    def test_fault_covering_whole_pool_falls_back_to_endpoint(self, spanner):
        """Kill every non-endpoint member of an on-path replica pool:
        the undersized-pool endpoint fallback must still deliver."""
        exercised = 0
        for u in range(0, N, 7):
            for v in range(3, N, 11):
                if u == v:
                    continue
                for t in spanner.candidate_trees(u, v, 3):
                    cover_tree = spanner.cover.trees[t]
                    vertex_path = spanner.navigators[t].find_path(
                        cover_tree.vertex_of_point[u],
                        cover_tree.vertex_of_point[v],
                    )
                    for x in vertex_path[1:-1]:
                        pool = spanner.replicas[t][x]
                        others = [p for p in pool if p not in (u, v)]
                        if not (u in pool or v in pool):
                            continue
                        if not 0 < len(others) <= spanner.f:
                            continue
                        faults = set(others)
                        path = spanner._path_in_tree(t, u, v, faults)
                        assert path[0] == u and path[-1] == v
                        assert not set(path) & faults
                        assert len(path) - 1 <= K
                        exercised += 1
        assert exercised > 0, "no pool-kill scenario found; widen the scan"

    def test_verify_path_raises_not_asserts(self, spanner):
        with pytest.raises(InvariantViolation):
            spanner.verify_path(0, 30, set(), [0, 1])  # wrong endpoint
        with pytest.raises(InvariantViolation):
            spanner.verify_path(0, 30, {1}, [0, 1, 30])  # faulty midpoint
        assert isinstance(InvariantViolation("x"), AssertionError)


class TestInjectors:
    def test_deterministic_and_sized(self, metric, spanner):
        for injector in _all_injectors(metric, spanner):
            for size in (0, 1, 3, 10):
                first = injector.sample(size)
                assert first == injector.sample(size)
                assert len(first) == size
            assert len(injector.sample(N + 50)) == N

    def test_regional_is_a_metric_ball(self, metric):
        injector = RegionalInjector(metric, seed=4)
        faults = injector.sample(6)
        assert injector.center in faults
        radius = max(metric.distance(injector.center, p) for p in faults)
        for p in range(N):
            if metric.distance(injector.center, p) < radius:
                assert p in faults or metric.distance(
                    injector.center, p
                ) == radius

    def test_adversarial_ranks_pools_first(self, spanner):
        injector = AdversarialInjector(spanner, probe_pairs=40, seed=4)
        assert injector.pools, "probing found no hot replica pools"
        hottest = set(injector.pools[0])
        assert hottest <= injector.sample(len(hottest))

    def test_crash_schedule_churns_at_constant_size(self, metric):
        base = RandomInjector(metric.n, seed=4)
        schedule = CrashRecoverySchedule(base, size=6, steps=5, seed=4)
        steps = list(schedule)
        assert len(steps) == len(schedule) == 5
        assert all(len(s) == 6 for s in steps)
        assert any(a != b for a, b in zip(steps, steps[1:]))

    def test_factory(self, metric, spanner):
        assert make_injector("random", metric).name == "random"
        assert make_injector("regional", metric).name == "regional"
        assert make_injector("adversarial", metric, spanner).name == "adversarial"
        with pytest.raises(ValueError):
            make_injector("adversarial", metric)  # needs the spanner
        with pytest.raises(ValueError):
            make_injector("byzantine", metric)


class TestGracefulDegradation:
    def test_within_budget_is_strict(self, spanner):
        result = find_path_degraded(spanner, 0, 30, {5, 9})
        assert result.ok and not result.over_budget
        assert result.hops <= K and result.weight < math.inf

    def test_over_budget_never_raises(self, metric, spanner):
        faults = RandomInjector(metric.n, seed=8).sample(4 * (F + 1))
        live = [p for p in range(N) if p not in faults]
        for u, v in zip(live[:10], live[10:20]):
            result = find_path_degraded(spanner, u, v, faults)
            assert isinstance(result, DegradedResult)
            assert result.over_budget and result.degraded
            if result.delivered:
                assert result.path[0] == u and result.path[-1] == v
                assert not set(result.path) & faults
            else:
                assert result.reason

    def test_faulty_endpoint_degrades_instead_of_raising(self, spanner):
        result = find_path_degraded(spanner, 5, 30, {5})
        assert not result.delivered and result.degraded
        assert "endpoint" in result.reason

    def test_trivial_query(self, spanner):
        result = find_path_degraded(spanner, 7, 7, {1, 2, 3, 4})
        assert result.delivered and result.hops == 0

    def test_route_degraded_over_budget(self, metric, router):
        faults = RandomInjector(metric.n, seed=8).sample(4 * (F + 1))
        live = [p for p in range(N) if p not in faults]
        for u, v in zip(live[:10], live[10:20]):
            result = route_degraded(router, u, v, faults)
            assert isinstance(result, DegradedResult)
            assert result.over_budget
            if result.delivered:
                assert result.path[0] == u and result.path[-1] == v

    def test_route_degraded_within_budget(self, router):
        result = route_degraded(router, 0, 30, {5, 9})
        assert result.delivered and result.hops <= 2


class TestValidationMode:
    def test_validate_flag_accepts_sound_metric(self, metric, cover):
        spanner = FaultTolerantSpanner(
            metric, f=1, k=K, cover=cover, validate=True
        )
        assert spanner.find_path(0, 30)

    def test_validate_metric_rejects_asymmetry(self):
        class Broken(Metric):
            def distance(self, u, v):
                return 1.0 if u < v else 2.0 if u > v else 0.0

        with pytest.raises(MetricValidationError):
            validate_metric(Broken(6))

    def test_env_var_toggles(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert not validation_enabled()
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert validation_enabled()
        monkeypatch.setenv("REPRO_VALIDATE", "off")
        assert not validation_enabled()


class TestChaosCli:
    def test_chaos_command_smoke(self, capsys):
        from repro.cli import main

        assert main([
            "chaos", "--n", "40", "--f", "1", "--k", "3", "--queries", "4",
            "--scenario", "random", "--sizes", "0,1,3", "--no-routing",
        ]) == 0
        out = capsys.readouterr().out
        assert "survival" in out and "| 3 | > f |" in out
        assert "within-budget queries satisfied" in out


@pytest.mark.chaos
class TestAdversaryBeatsRandom:
    """The acceptance comparison: at equal over-budget |F| the white-box
    adversary degrades delivery at least as much as random faults, and
    strictly more somewhere along the curve."""

    def test_adversarial_dominates_random(self, metric, spanner, harness):
        sizes = [2 * (F + 1), 4 * (F + 1), 6 * (F + 1)]
        rnd = harness.sweep(RandomInjector(metric.n, seed=11), sizes)
        adv = harness.sweep(
            AdversarialInjector(spanner, probe_pairs=120, seed=11), sizes
        )
        nav_pairs = [
            (a.delivery_rate, r.delivery_rate)
            for a, r in zip(adv.navigation, rnd.navigation)
        ]
        route_pairs = [
            (a.delivery_rate, r.delivery_rate)
            for a, r in zip(adv.routing, rnd.routing)
        ]
        deficit = sum(r - a for a, r in nav_pairs + route_pairs)
        assert deficit > 0, (
            f"adversary no worse than random: nav {nav_pairs}, "
            f"routing {route_pairs}"
        )
