"""Smoke-run every example script (opt-in: ``pytest -m stress``).

Examples are documentation; these tests keep them from rotting.  They
are in the stress tier because a few build full tree covers and FT
spanners (tens of seconds each).
"""

import importlib.util
import pathlib

import pytest

pytestmark = pytest.mark.stress

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    spec = importlib.util.spec_from_file_location(script.stem, script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates its results
