"""Batch distance-kernel parity: vectorized paths == scalar paths.

The construction rewrites (net hierarchies, HSTs, robust covers) are
only allowed to change *speed*, never *results*.  These tests pin that
down: every batch kernel must agree with the scalar ``distance`` loop
on Euclidean, tree, and general matrix metrics, ``CachedMetric`` must
be transparent, and the vectorized ``greedy_net`` must reproduce the
frozen seed implementation point for point.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._seed_baseline import (
    SeedEuclideanMetric,
    SeedNetHierarchy,
    seed_greedy_net,
)
from repro.graphs import random_tree
from repro.metrics import (
    CachedMetric,
    NetHierarchy,
    TreeMetric,
    greedy_net,
    random_graph_metric,
    random_points,
)


def _metrics(seed: int):
    """One metric of each kernel family, on ~40 points."""
    return [
        random_points(40, dim=2, seed=seed),
        random_points(40, dim=5, seed=seed + 1),
        TreeMetric(random_tree(40, seed=seed)),
        random_graph_metric(40, seed=seed),
        CachedMetric(random_points(40, dim=3, seed=seed + 2)),
    ]


def _scalar_row(metric, u, cols):
    return np.array([metric.distance(u, v) for v in cols])


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_distances_from_matches_scalar(seed):
    for metric in _metrics(seed):
        rng = random.Random(seed)
        u = rng.randrange(metric.n)
        batch = np.asarray(metric.distances_from(u))
        scalar = _scalar_row(metric, u, range(metric.n))
        np.testing.assert_allclose(batch, scalar, rtol=1e-9, atol=1e-9)


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_pairwise_and_pair_distances_match_scalar(seed):
    for metric in _metrics(seed):
        rng = random.Random(seed + 7)
        rows = [rng.randrange(metric.n) for _ in range(6)]
        cols = [rng.randrange(metric.n) for _ in range(9)]
        block = np.asarray(metric.pairwise(rows, cols))
        assert block.shape == (6, 9)
        for i, u in enumerate(rows):
            np.testing.assert_allclose(
                block[i], _scalar_row(metric, u, cols), rtol=1e-9, atol=1e-9
            )
        us = [rng.randrange(metric.n) for _ in range(12)]
        vs = [rng.randrange(metric.n) for _ in range(12)]
        elementwise = np.asarray(metric.pair_distances(us, vs))
        expected = np.array([metric.distance(u, v) for u, v in zip(us, vs)])
        np.testing.assert_allclose(elementwise, expected, rtol=1e-9, atol=1e-9)


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_ball_many_matches_scalar_membership(seed):
    for metric in _metrics(seed):
        rng = random.Random(seed + 3)
        centers = sorted({rng.randrange(metric.n) for _ in range(5)})
        sample = metric.pairwise(centers, range(metric.n))
        # Offset the radius away from any realized distance: a point
        # sitting exactly on the boundary would make the comparison
        # depend on last-ulp differences between the KD-tree and scalar
        # float paths rather than on membership logic.
        radius = float(np.median(np.asarray(sample))) * 1.001 + 0.0012345
        balls = metric.ball_many(centers, radius)
        for center, ball in zip(centers, balls):
            expected = {
                v for v in range(metric.n) if metric.distance(center, v) <= radius
            }
            assert set(ball) == expected
        within = sorted({rng.randrange(metric.n) for _ in range(15)})
        restricted = metric.ball_many(centers, radius, within=within)
        for center, ball in zip(centers, restricted):
            expected = {v for v in within if metric.distance(center, v) <= radius}
            assert set(ball) == expected


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_nearest_and_nearest_many_match_scalar_argmin(seed):
    for metric in _metrics(seed):
        rng = random.Random(seed + 11)
        candidates = sorted({rng.randrange(metric.n) for _ in range(9)})
        points = [rng.randrange(metric.n) for _ in range(7)]
        ids, dist = metric.nearest_many(points, candidates, return_distance=True)
        for p, best, d in zip(points, ids, dist):
            expected_d = min(metric.distance(p, c) for c in candidates)
            assert metric.distance(p, int(best)) == pytest.approx(expected_d)
            assert d == pytest.approx(expected_d)
            # The scalar entry point must agree on the distance too.
            chosen = metric.nearest(p, candidates)
            assert metric.distance(p, chosen) == pytest.approx(expected_d)


def test_nearest_rejects_empty_candidates():
    metric = random_points(10, dim=2, seed=0)
    with pytest.raises(ValueError):
        metric.nearest(0, [])
    with pytest.raises(ValueError):
        metric.nearest_many([0], [])


def test_cached_metric_is_transparent_and_memoizes():
    inner = random_graph_metric(30, seed=4)
    cached = CachedMetric(inner, block_size=8)
    rng = random.Random(5)
    for _ in range(50):
        u, v = rng.randrange(30), rng.randrange(30)
        assert cached.distance(u, v) == pytest.approx(inner.distance(u, v))
    np.testing.assert_allclose(cached.distances_from(3), inner.distances_from(3))
    assert cached.cached_rows > 0
    rows_before = cached.cached_rows
    cached.distance(3, 7)  # same block: no new slab materialized
    assert cached.cached_rows == rows_before


def test_cached_metric_rejects_oversized_metrics():
    inner = random_points(64, dim=2, seed=0)
    with pytest.raises(ValueError):
        CachedMetric(inner, max_points=63)


@given(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=1.0, max_value=400.0),
)
@settings(max_examples=20, deadline=None)
def test_greedy_net_matches_seed_implementation(seed, radius):
    """The vectorized greedy net is point-for-point the seed's output."""
    fast = random_points(120, dim=2, seed=seed)
    slow = SeedEuclideanMetric(fast.points)
    candidates = list(range(120))
    assert greedy_net(fast, candidates, radius) == seed_greedy_net(
        slow, candidates, radius
    )
    # Also on a strict subset of candidates (the per-level net shape).
    subset = candidates[::3]
    assert greedy_net(fast, subset, radius) == seed_greedy_net(slow, subset, radius)


def test_greedy_net_matches_seed_on_matrix_metric():
    metric = random_graph_metric(60, seed=9)
    for radius_scale in (0.1, 0.3, 0.7):
        radius = radius_scale * float(np.max(metric.matrix))
        assert greedy_net(metric, list(range(60)), radius) == seed_greedy_net(
            metric, list(range(60)), radius
        )


def test_net_hierarchy_matches_seed_hierarchy():
    """Whole hierarchies agree level by level with the seed builder."""
    for seed in (0, 1, 2):
        fast = random_points(250, dim=2, seed=seed)
        slow = SeedEuclideanMetric(fast.points)
        assert NetHierarchy(fast).nets == SeedNetHierarchy(slow).nets
