"""Run the library's embedded doctests (usage examples in docstrings)."""

import doctest

import pytest

import repro
import repro.graphs.lca
import repro.graphs.tree


@pytest.mark.parametrize(
    "module",
    [repro, repro.graphs.lca, repro.graphs.tree],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    # Modules listed here are expected to actually contain examples.
    if module is not repro.graphs.tree:
        assert results.attempted > 0
