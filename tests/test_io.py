"""Tests for cover/tree serialization."""

import io
import json

import pytest

from repro.core import MetricNavigator
from repro.graphs import random_tree
from repro.io import (
    cover_from_dict,
    cover_to_dict,
    load_cover,
    save_cover,
    tree_from_dict,
    tree_to_dict,
)
from repro.metrics import random_graph_metric, random_points, sample_pairs
from repro.treecover import ramsey_tree_cover, robust_tree_cover


class TestTreeRoundTrip:
    def test_structure_and_weights_preserved(self):
        tree = random_tree(80, seed=0)
        clone = tree_from_dict(json.loads(json.dumps(tree_to_dict(tree))))
        assert clone.parents == tree.parents
        assert clone.weights == tree.weights
        assert clone.distance(3, 77) == tree.distance(3, 77)


class TestCoverRoundTrip:
    def test_doubling_cover_round_trip(self, tmp_path):
        metric = random_points(60, dim=2, seed=1)
        cover = robust_tree_cover(metric, eps=0.5)
        path = str(tmp_path / "cover.json")
        save_cover(cover, path)
        loaded = load_cover(path, metric)
        assert loaded.size == cover.size
        for u, v in sample_pairs(60, 50, seed=2):
            assert abs(loaded.stretch(u, v) - cover.stretch(u, v)) < 1e-9

    def test_ramsey_home_preserved(self):
        metric = random_graph_metric(40, seed=3)
        cover = ramsey_tree_cover(metric, ell=2, seed=4)
        buffer = io.StringIO()
        save_cover(cover, buffer)
        buffer.seek(0)
        loaded = load_cover(buffer, metric)
        assert loaded.home == cover.home

    def test_loaded_cover_navigates_identically(self):
        metric = random_points(50, dim=2, seed=5)
        cover = robust_tree_cover(metric, eps=0.5)
        loaded = cover_from_dict(cover_to_dict(cover), metric)
        original = MetricNavigator(metric, cover, 2)
        rebuilt = MetricNavigator(metric, loaded, 2)
        for u, v in sample_pairs(50, 60, seed=6):
            assert original.find_path(u, v) == rebuilt.find_path(u, v)

    def test_rejects_wrong_metric_size(self):
        metric = random_points(30, dim=2, seed=7)
        cover = robust_tree_cover(metric, eps=0.5)
        other = random_points(31, dim=2, seed=7)
        with pytest.raises(ValueError):
            cover_from_dict(cover_to_dict(cover), other)

    def test_rejects_foreign_payload(self):
        metric = random_points(10, dim=2, seed=8)
        with pytest.raises(ValueError):
            cover_from_dict({"format": "something-else"}, metric)


class TestPayloadValidation:
    """Malformed payloads must fail with a clear ValueError naming the
    problem — never a deep IndexError/KeyError from the middle of a
    tree traversal."""

    @pytest.fixture()
    def payload(self):
        metric = random_points(20, dim=2, seed=9)
        cover = robust_tree_cover(metric, eps=0.5)
        return metric, cover_to_dict(cover)

    def test_parents_weights_length_mismatch(self, payload):
        metric, data = payload
        data["trees"][0]["tree"]["weights"].append(1.0)
        with pytest.raises(ValueError, match="malformed cover payload"):
            cover_from_dict(data, metric)

    def test_parent_index_out_of_range(self, payload):
        metric, data = payload
        data["trees"][0]["tree"]["parents"][1] = 10**6
        with pytest.raises(ValueError, match="malformed cover payload"):
            cover_from_dict(data, metric)

    def test_negative_weight_rejected(self, payload):
        metric, data = payload
        data["trees"][0]["tree"]["weights"][1] = -2.0
        with pytest.raises(ValueError, match="malformed cover payload"):
            cover_from_dict(data, metric)

    def test_vertex_of_point_out_of_range(self, payload):
        metric, data = payload
        data["trees"][0]["vertex_of_point"][0] = 10**6
        with pytest.raises(ValueError, match="malformed cover payload"):
            cover_from_dict(data, metric)

    def test_vertex_of_point_wrong_length(self, payload):
        metric, data = payload
        data["trees"][0]["vertex_of_point"].pop()
        with pytest.raises(ValueError, match="malformed cover payload"):
            cover_from_dict(data, metric)

    def test_rep_point_wrong_length(self, payload):
        metric, data = payload
        data["trees"][0]["rep_point"].pop()
        with pytest.raises(ValueError, match="malformed cover payload"):
            cover_from_dict(data, metric)

    def test_rep_point_out_of_range(self, payload):
        metric, data = payload
        data["trees"][0]["rep_point"][0] = -5
        with pytest.raises(ValueError, match="malformed cover payload"):
            cover_from_dict(data, metric)

    def test_home_out_of_range(self, payload):
        metric, data = payload
        data["home"] = [len(data["trees"]) + 7] * metric.n
        with pytest.raises(ValueError, match="malformed cover payload"):
            cover_from_dict(data, metric)

    def test_trees_not_a_list(self, payload):
        metric, data = payload
        data["trees"] = {"0": data["trees"][0]}
        with pytest.raises(ValueError, match="malformed cover payload"):
            cover_from_dict(data, metric)


class TestAtomicSave:
    def test_save_leaves_no_temp_files(self, tmp_path):
        metric = random_points(15, dim=2, seed=10)
        cover = robust_tree_cover(metric, eps=0.5)
        path = str(tmp_path / "cover.json")
        save_cover(cover, path)
        save_cover(cover, path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["cover.json"]
        assert load_cover(path, metric).size == cover.size
