"""Tests for cover/tree serialization."""

import io
import json

import pytest

from repro.core import MetricNavigator
from repro.graphs import random_tree
from repro.io import (
    cover_from_dict,
    cover_to_dict,
    load_cover,
    save_cover,
    tree_from_dict,
    tree_to_dict,
)
from repro.metrics import random_graph_metric, random_points, sample_pairs
from repro.treecover import ramsey_tree_cover, robust_tree_cover


class TestTreeRoundTrip:
    def test_structure_and_weights_preserved(self):
        tree = random_tree(80, seed=0)
        clone = tree_from_dict(json.loads(json.dumps(tree_to_dict(tree))))
        assert clone.parents == tree.parents
        assert clone.weights == tree.weights
        assert clone.distance(3, 77) == tree.distance(3, 77)


class TestCoverRoundTrip:
    def test_doubling_cover_round_trip(self, tmp_path):
        metric = random_points(60, dim=2, seed=1)
        cover = robust_tree_cover(metric, eps=0.5)
        path = str(tmp_path / "cover.json")
        save_cover(cover, path)
        loaded = load_cover(path, metric)
        assert loaded.size == cover.size
        for u, v in sample_pairs(60, 50, seed=2):
            assert abs(loaded.stretch(u, v) - cover.stretch(u, v)) < 1e-9

    def test_ramsey_home_preserved(self):
        metric = random_graph_metric(40, seed=3)
        cover = ramsey_tree_cover(metric, ell=2, seed=4)
        buffer = io.StringIO()
        save_cover(cover, buffer)
        buffer.seek(0)
        loaded = load_cover(buffer, metric)
        assert loaded.home == cover.home

    def test_loaded_cover_navigates_identically(self):
        metric = random_points(50, dim=2, seed=5)
        cover = robust_tree_cover(metric, eps=0.5)
        loaded = cover_from_dict(cover_to_dict(cover), metric)
        original = MetricNavigator(metric, cover, 2)
        rebuilt = MetricNavigator(metric, loaded, 2)
        for u, v in sample_pairs(50, 60, seed=6):
            assert original.find_path(u, v) == rebuilt.find_path(u, v)

    def test_rejects_wrong_metric_size(self):
        metric = random_points(30, dim=2, seed=7)
        cover = robust_tree_cover(metric, eps=0.5)
        other = random_points(31, dim=2, seed=7)
        with pytest.raises(ValueError):
            cover_from_dict(cover_to_dict(cover), other)

    def test_rejects_foreign_payload(self):
        metric = random_points(10, dim=2, seed=8)
        with pytest.raises(ValueError):
            cover_from_dict({"format": "something-else"}, metric)
