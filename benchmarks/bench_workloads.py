"""Workload benches: the full stack on the paper's motivating inputs.

Road networks, hierarchical deployments, and hub-dominated
communication graphs — construction and query cost on inputs with
realistic structure (high aspect ratio, fractal clustering, hubs).
"""

import random

import pytest

from repro.core import MetricNavigator
from repro.metrics import (
    hierarchical_points,
    power_law_graph_metric,
    road_network_points,
)
from repro.treecover import ramsey_tree_cover, robust_tree_cover


@pytest.fixture(scope="module")
def road():
    metric = road_network_points(150, seed=0)
    return metric, robust_tree_cover(metric, eps=0.45)


@pytest.fixture(scope="module")
def fractal():
    metric = hierarchical_points(150, seed=1)
    return metric, robust_tree_cover(metric, eps=0.45)


def test_road_cover_construction(benchmark):
    metric = road_network_points(150, seed=0)
    cover = benchmark(robust_tree_cover, metric, 0.45)
    assert cover.size > 0


def test_road_navigation_queries(benchmark, road):
    metric, cover = road
    navigator = MetricNavigator(metric, cover, 3)
    rng = random.Random(2)
    pairs = [tuple(rng.sample(range(150), 2)) for _ in range(200)]

    def run():
        hops = 0
        for u, v in pairs:
            hops += len(navigator.find_path(u, v)) - 1
        return hops

    hops = benchmark(run)
    assert hops <= 3 * len(pairs)


def test_fractal_navigation_queries(benchmark, fractal):
    metric, cover = fractal
    navigator = MetricNavigator(metric, cover, 2)
    rng = random.Random(3)
    pairs = [tuple(rng.sample(range(150), 2)) for _ in range(200)]

    def run():
        hops = 0
        for u, v in pairs:
            hops += len(navigator.find_path(u, v)) - 1
        return hops

    hops = benchmark(run)
    assert hops <= 2 * len(pairs)


def test_power_law_ramsey_cover(benchmark):
    metric = power_law_graph_metric(150, seed=4)
    cover = benchmark(ramsey_tree_cover, metric, 2, 5)
    assert cover.home is not None
