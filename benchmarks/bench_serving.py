"""Serving subsystem — cold start, admission batching, daemon round trips.

Times the moving parts of ``repro.serve``: checkpoint load to first
answered query, the engine's batch kernels at the admission batcher's
batch sizes, and full closed-loop daemon round trips.  The tracked
regression artifact (``BENCH_serving.json``) comes from
``python -m repro bench``; this file is the interactive profiler's view
of the same path.
"""

import pytest

from repro.bench import _serve_closed_loop
from repro.checkpoint import CheckpointService, save_cover_checkpoint
from repro.metrics import random_points
from repro.serve import AdmissionPolicy, QueryEngine, ServeClient, ThreadedServer
from repro.treecover import robust_tree_cover

N = 120
EPS = 0.5
K = 3


@pytest.fixture(scope="module")
def srv_metric():
    return random_points(N, dim=2, seed=7)


@pytest.fixture(scope="module")
def srv_ckpt(srv_metric, tmp_path_factory):
    cover = robust_tree_cover(srv_metric, eps=EPS)
    path = str(tmp_path_factory.mktemp("bench_serve") / "cover.ckpt")
    save_cover_checkpoint(cover, path, builder={"family": "robust", "eps": EPS})
    return path


@pytest.fixture(scope="module")
def srv_service(srv_metric, srv_ckpt):
    return CheckpointService(srv_metric, k=K).load(srv_ckpt)


def test_cold_load_to_ready(benchmark, srv_metric, srv_ckpt):
    """The deploy/restart cost: audited load until queries can flow."""

    def cold_load():
        return CheckpointService(srv_metric, k=K).load(srv_ckpt)

    service = benchmark(cold_load)
    assert service.state == "ready"


@pytest.mark.parametrize("batch_size", [1, 8, 32])
def test_engine_batch_execution(benchmark, srv_service, batch_size):
    """The executor half of admission batching, without the network."""
    engine = QueryEngine(srv_service)
    pairs = [(i % N, (i * 5 + 7) % N) for i in range(batch_size)]
    pairs = [(u, v) for u, v in pairs if u != v] or [(0, 1)]

    payloads = benchmark(engine.execute, "path", pairs)
    assert all(p["status"] == "ok" for p in payloads)


def test_daemon_round_trip(benchmark, srv_service):
    """One pipelined closed-loop wave through a live daemon."""
    policy = AdmissionPolicy(max_batch=8, flush_interval=0.001)
    with ThreadedServer(srv_service, policy=policy) as threaded:
        with ServeClient(threaded.host, threaded.port) as client:
            pairs = [(i, (i * 3 + 1) % N) for i in range(1, 17)]

            def wave():
                total, lat_us, statuses = _serve_closed_loop(
                    client, pairs, queries=32, window=8
                )
                return statuses

            statuses = benchmark(wave)
            assert statuses.get("ok", 0) == 32
