"""Resilience subsystem — injector cost, chaos sweeps, degraded queries.

Times the moving parts of ``repro.resilience``: fault-set generation
(including the adversarial path-probing injector), a full chaos sweep
with per-query invariant enforcement, and the graceful-degradation
wrappers in the over-budget regime.  Survival-curve *tables* come from
``python -m repro chaos``; this file answers "how expensive is it?".
"""

import pytest

from repro.metrics import random_points
from repro.resilience import (
    AdversarialInjector,
    ChaosHarness,
    RandomInjector,
    RegionalInjector,
    find_path_degraded,
)
from repro.routing import FaultTolerantRoutingScheme
from repro.spanners import FaultTolerantSpanner
from repro.treecover import robust_tree_cover

N = 80


@pytest.fixture(scope="module")
def res_metric():
    return random_points(N, dim=2, seed=7)


@pytest.fixture(scope="module")
def res_cover(res_metric):
    return robust_tree_cover(res_metric, eps=0.45)


@pytest.fixture(scope="module")
def res_spanner(res_metric, res_cover):
    return FaultTolerantSpanner(res_metric, f=2, k=4, cover=res_cover)


@pytest.fixture(scope="module")
def res_router(res_metric, res_cover):
    return FaultTolerantRoutingScheme(res_metric, f=2, cover=res_cover, seed=7)


def test_random_injector_sampling(benchmark, res_metric):
    injector = RandomInjector(res_metric.n, seed=3)

    def sample_many():
        total = 0
        for size in range(0, 20):
            total += len(injector.sample(size))
        return total

    assert benchmark(sample_many) == sum(range(20))


def test_regional_injector_sampling(benchmark, res_metric):
    injector = RegionalInjector(res_metric, seed=3)
    faults = benchmark(injector.sample, 12)
    assert len(faults) == 12


def test_adversarial_injector_construction(benchmark, res_spanner):
    """The expensive part: probing navigator paths to build the heat map."""
    injector = benchmark(AdversarialInjector, res_spanner, 60)
    assert len(injector.ranked()) == res_spanner.metric.n


def test_chaos_sweep_navigation_only(benchmark, res_spanner):
    harness = ChaosHarness(res_spanner, queries=10, seed=5)
    injector = RandomInjector(res_spanner.metric.n, seed=5)

    def sweep():
        return harness.sweep(injector, sizes=[0, 2, 6])

    report = benchmark(sweep)
    assert report.navigation_rate(0) == 1.0
    assert report.navigation_rate(2) == 1.0


def test_chaos_sweep_with_routing(benchmark, res_spanner, res_router):
    harness = ChaosHarness(res_spanner, res_router, queries=10, seed=5)
    injector = RandomInjector(res_spanner.metric.n, seed=5)

    def sweep():
        return harness.sweep(injector, sizes=[0, 2])

    report = benchmark(sweep)
    assert report.routing_rate(2) == 1.0


def test_degraded_queries_over_budget(benchmark, res_spanner):
    """Best-effort navigation with |F| = 4(f+1), far past the budget."""
    injector = RandomInjector(res_spanner.metric.n, seed=9)
    faults = injector.sample(12)
    live = [p for p in range(N) if p not in faults]
    pairs = list(zip(live[:20], live[20:40]))

    def degrade_all():
        delivered = 0
        for u, v in pairs:
            delivered += find_path_degraded(res_spanner, u, v, faults).delivered
        return delivered

    assert benchmark(degrade_all) >= 0
