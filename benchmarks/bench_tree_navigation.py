"""E1/E11 — Theorem 1.1: navigable tree 1-spanners.

Times construction and queries; asserts the structural claims (size
~ n·αk(n), hops <= k, recursion depth ~ αk(n)) along the way.  The full
paper-vs-measured series is produced by ``run_experiments.py --exp E1``.
"""

import random

from repro.core import TreeNavigator, alpha_k


def test_construct_k2(benchmark, big_tree):
    nav = benchmark(TreeNavigator, big_tree, 2)
    assert nav.num_edges <= 4 * big_tree.n * alpha_k(2, big_tree.n)


def test_construct_k3(benchmark, big_tree):
    nav = benchmark(TreeNavigator, big_tree, 3)
    assert nav.num_edges <= 6 * big_tree.n * alpha_k(3, big_tree.n)


def test_construct_k4(benchmark, big_tree):
    nav = benchmark(TreeNavigator, big_tree, 4)
    assert nav.num_edges <= 8 * big_tree.n * max(1, alpha_k(4, big_tree.n))


def _query_many(navigator, pairs):
    total_hops = 0
    for u, v in pairs:
        total_hops += len(navigator.find_path(u, v)) - 1
    return total_hops


def test_query_k2(benchmark, tree_navigators, big_tree):
    rng = random.Random(0)
    pairs = [(rng.randrange(big_tree.n), rng.randrange(big_tree.n)) for _ in range(2000)]
    hops = benchmark(_query_many, tree_navigators[2], pairs)
    assert hops <= 2 * len(pairs)


def test_query_k4(benchmark, tree_navigators, big_tree):
    rng = random.Random(1)
    pairs = [(rng.randrange(big_tree.n), rng.randrange(big_tree.n)) for _ in range(2000)]
    hops = benchmark(_query_many, tree_navigators[4], pairs)
    assert hops <= 4 * len(pairs)


def test_query_path_worst_case(benchmark, big_path):
    navigator = TreeNavigator(big_path, 2)
    rng = random.Random(2)
    pairs = [(rng.randrange(big_path.n), rng.randrange(big_path.n)) for _ in range(2000)]
    benchmark(_query_many, navigator, pairs)


def test_naive_tree_walk_baseline(benchmark, big_path):
    """The Ω(n)-hop baseline the paper's scheme replaces."""
    rng = random.Random(3)
    pairs = [(rng.randrange(big_path.n), rng.randrange(big_path.n)) for _ in range(50)]

    def walk_all():
        total = 0
        for u, v in pairs:
            total += len(big_path.path(u, v)) - 1
        return total

    hops = benchmark(walk_all)
    assert hops > 2 * len(pairs)  # vastly more hops than the navigator
