"""Shared fixtures for the benchmark suite.

Expensive structures (tree covers, navigators, routing schemes) are
built once per session; the pytest-benchmark targets then time the
operations the paper's theorems bound (construction, queries, routing
decisions, verification ops).
"""

import pytest

from repro.core import MetricNavigator, TreeNavigator
from repro.graphs import path_tree, random_tree
from repro.metrics import random_points, random_graph_metric
from repro.treecover import ramsey_tree_cover, robust_tree_cover


@pytest.fixture(scope="session")
def big_tree():
    return random_tree(8192, seed=1)


@pytest.fixture(scope="session")
def big_path():
    return path_tree(8192, seed=2)


@pytest.fixture(scope="session")
def tree_navigators(big_tree):
    return {k: TreeNavigator(big_tree, k) for k in (2, 3, 4)}


@pytest.fixture(scope="session")
def euclidean_200():
    return random_points(200, dim=2, seed=3)


@pytest.fixture(scope="session")
def doubling_cover(euclidean_200):
    return robust_tree_cover(euclidean_200, eps=0.45)


@pytest.fixture(scope="session")
def doubling_navigator(euclidean_200, doubling_cover):
    return MetricNavigator(euclidean_200, doubling_cover, 2)


@pytest.fixture(scope="session")
def general_120():
    return random_graph_metric(120, seed=4)


@pytest.fixture(scope="session")
def ramsey_cover(general_120):
    return ramsey_tree_cover(general_120, ell=2, seed=5)
