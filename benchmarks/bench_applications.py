"""E6-E10 — the Section 5 applications.

Sparsification (Thm 5.3), approximate SPT (Thm 5.4) vs Dijkstra on the
spanner, approximate MST (Thm 5.5), online tree products (Thm 5.6) vs
the naive walk, and online MST verification (Section 5.6.2).
"""

import random

import pytest

from repro.apps import (
    MstVerifier,
    NaiveTreeProduct,
    OnlineTreeProduct,
    approximate_mst,
    approximate_spt,
    base_mst,
    mst_weight,
    sparsify,
)
from repro.graphs import dijkstra, path_tree, random_tree
from repro.spanners import greedy_spanner


@pytest.fixture(scope="module")
def dense_light_spanner(doubling_navigator):
    return greedy_spanner(doubling_navigator.metric, 1.2)


def test_sparsify(benchmark, dense_light_spanner, doubling_navigator):
    sparse = benchmark(sparsify, dense_light_spanner, doubling_navigator)
    assert sparse.num_edges <= doubling_navigator.num_edges


def test_approximate_spt(benchmark, doubling_navigator):
    parent, dist = benchmark(approximate_spt, doubling_navigator, 0)
    assert all(d < float("inf") for d in dist)


def test_spt_baseline_dijkstra_on_spanner(benchmark, doubling_navigator):
    """The explicit-access baseline Theorem 5.4 compares against."""
    spanner = doubling_navigator.spanner()
    dist = benchmark(dijkstra, spanner, 0)
    assert max(dist) < float("inf")


def test_approximate_mst(benchmark, doubling_navigator):
    edges = benchmark(approximate_mst, doubling_navigator)
    exact = mst_weight(base_mst(doubling_navigator.metric))
    assert mst_weight(edges) <= 2.0 * exact


def test_tree_product_queries(benchmark):
    tree = random_tree(4096, seed=30)
    product = OnlineTreeProduct(tree, 3, min, list(tree.weights))
    rng = random.Random(0)
    pairs = [tuple(rng.sample(range(4096), 2)) for _ in range(1000)]

    def query_all():
        total = 0.0
        for u, v in pairs:
            total += product.query(u, v)
        return total

    benchmark(query_all)


def test_tree_product_naive_baseline(benchmark):
    tree = path_tree(4096, seed=31)
    naive = NaiveTreeProduct(tree, min, list(tree.weights))
    rng = random.Random(1)
    pairs = [tuple(rng.sample(range(4096), 2)) for _ in range(50)]

    def query_all():
        total = 0.0
        for u, v in pairs:
            total += naive.query(u, v)
        return total

    benchmark(query_all)


def test_tree_product_preprocessing(benchmark):
    tree = random_tree(4096, seed=32)
    product = benchmark(OnlineTreeProduct, tree, 2, min, list(tree.weights))
    assert product.query(0, 4095) <= max(tree.weights)


def test_mst_verification_queries(benchmark):
    tree = random_tree(4096, seed=33)
    verifier = MstVerifier(tree, 2)
    rng = random.Random(2)
    queries = [
        (*rng.sample(range(4096), 2), rng.uniform(0, 15)) for _ in range(1000)
    ]

    def verify_all():
        count = 0
        for u, v, w in queries:
            ok, comparisons = verifier.verify_by_order(u, v, w)
            assert comparisons == 1
            count += ok
        return count

    benchmark(verify_all)
