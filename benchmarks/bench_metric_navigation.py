"""E3 — Theorem 1.2: two-step navigation on metric spaces.

Query latency across metric families and k; the spanner-size series is
in ``run_experiments.py --exp E3``.
"""

import random

import pytest

from repro.core import MetricNavigator


def _query_many(navigator, pairs):
    hops = 0
    for u, v in pairs:
        hops += len(navigator.find_path(u, v)) - 1
    return hops


@pytest.fixture(scope="module")
def doubling_nav_k3(euclidean_200, doubling_cover):
    return MetricNavigator(euclidean_200, doubling_cover, 3)


def test_doubling_query_k2(benchmark, doubling_navigator):
    rng = random.Random(0)
    pairs = [(rng.randrange(200), rng.randrange(200)) for _ in range(400)]
    hops = benchmark(_query_many, doubling_navigator, pairs)
    assert hops <= 2 * len(pairs)


def test_doubling_query_k3(benchmark, doubling_nav_k3):
    rng = random.Random(1)
    pairs = [(rng.randrange(200), rng.randrange(200)) for _ in range(400)]
    hops = benchmark(_query_many, doubling_nav_k3, pairs)
    assert hops <= 3 * len(pairs)


def test_ramsey_query_k2(benchmark, general_120, ramsey_cover):
    navigator = MetricNavigator(general_120, ramsey_cover, 2)
    rng = random.Random(2)
    pairs = [(rng.randrange(120), rng.randrange(120)) for _ in range(1000)]
    hops = benchmark(_query_many, navigator, pairs)
    assert hops <= 2 * len(pairs)


def test_doubling_spanner_construction(benchmark, euclidean_200, doubling_cover):
    navigator = benchmark(MetricNavigator, euclidean_200, doubling_cover, 2)
    assert navigator.num_edges > 0
