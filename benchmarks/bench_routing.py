"""E4 — Theorems 5.1 and 1.3: 2-hop compact routing.

Times full route delivery (source decision + forwarding) on trees and
metric spaces; bit-size tables are in ``run_experiments.py --exp E4``.
"""

import random

import pytest

from repro.graphs import random_tree
from repro.routing import MetricRoutingScheme, build_tree_network, tree_protocol


@pytest.fixture(scope="module")
def tree_scheme():
    tree = random_tree(4096, seed=10)
    return build_tree_network(tree, seed=11)


@pytest.fixture(scope="module")
def metric_scheme(euclidean_200, doubling_cover):
    return MetricRoutingScheme(euclidean_200, doubling_cover, seed=12)


@pytest.fixture(scope="module")
def ramsey_scheme(general_120, ramsey_cover):
    return MetricRoutingScheme(general_120, ramsey_cover, seed=13)


def test_tree_routing_throughput(benchmark, tree_scheme):
    scheme, net = tree_scheme
    rng = random.Random(0)
    pairs = [(rng.randrange(4096), rng.randrange(4096)) for _ in range(500)]

    def route_all():
        hops = 0
        for u, v in pairs:
            hops += net.route(u, tree_protocol, scheme.labels[v], scheme.tables).hops
        return hops

    hops = benchmark(route_all)
    assert hops <= 2 * len(pairs)


def test_metric_routing_doubling(benchmark, metric_scheme):
    rng = random.Random(1)
    pairs = [(rng.randrange(200), rng.randrange(200)) for _ in range(200)]

    def route_all():
        hops = 0
        for u, v in pairs:
            hops += metric_scheme.route(u, v).hops
        return hops

    hops = benchmark(route_all)
    assert hops <= 2 * len(pairs)


def test_metric_routing_ramsey_constant_decision(benchmark, ramsey_scheme):
    """Ramsey covers skip the O(ζ) distance scan entirely."""
    rng = random.Random(2)
    pairs = [(rng.randrange(120), rng.randrange(120)) for _ in range(500)]

    def route_all():
        hops = 0
        for u, v in pairs:
            hops += ramsey_scheme.route(u, v).hops
        return hops

    hops = benchmark(route_all)
    assert hops <= 2 * len(pairs)


def test_tree_scheme_preprocessing(benchmark):
    tree = random_tree(2048, seed=14)
    scheme, _ = benchmark(build_tree_network, tree, 15)
    assert max(scheme.label_size_bits(p) for p in range(2048)) < 3000
