"""Ablation benches for the design choices DESIGN.md calls out.

* level ancestors: ladders + jumps (O(1)) vs binary lifting (O(log n));
* Decompose: greedy postorder cutter vs recursive centroid cutting;
* baseline spanners: WSPD/greedy/Θ construction cost at equal stretch.
"""

import random

import pytest

from repro.core import TreeNavigator
from repro.core.decompose import WorkTree, decompose, decompose_centroid
from repro.graphs import LadderLevelAncestor, LiftingLevelAncestor, random_tree
from repro.spanners import greedy_spanner, theta_graph, wspd_spanner


@pytest.fixture(scope="module")
def ancestor_tree():
    return random_tree(20000, seed=40)


@pytest.fixture(scope="module")
def ancestor_queries(ancestor_tree):
    depth = ancestor_tree.depths()
    rng = random.Random(0)
    queries = []
    for _ in range(5000):
        v = rng.randrange(ancestor_tree.n)
        queries.append((v, rng.randrange(depth[v] + 1)))
    return queries


def test_level_ancestor_ladders(benchmark, ancestor_tree, ancestor_queries):
    la = LadderLevelAncestor(ancestor_tree)

    def run():
        total = 0
        for v, d in ancestor_queries:
            total += la.ancestor_at_depth(v, d)
        return total

    benchmark(run)


def test_level_ancestor_lifting(benchmark, ancestor_tree, ancestor_queries):
    la = LiftingLevelAncestor(ancestor_tree)

    def run():
        total = 0
        for v, d in ancestor_queries:
            total += la.ancestor_at_depth(v, d)
        return total

    benchmark(run)


def test_decompose_greedy(benchmark):
    wt = WorkTree.from_tree(random_tree(20000, seed=41))
    required = set(range(20000))
    cuts = benchmark(decompose, wt, required, 100)
    assert len(cuts) <= 20000 // 100 + 1


def test_decompose_centroid(benchmark):
    wt = WorkTree.from_tree(random_tree(20000, seed=41))
    required = set(range(20000))
    cuts = benchmark(decompose_centroid, wt, required, 100)
    assert cuts


def test_baseline_wspd_spanner(benchmark, euclidean_200):
    graph = benchmark(wspd_spanner, euclidean_200, 8.0)
    assert graph.num_edges > 0


def test_baseline_greedy_spanner(benchmark, euclidean_200):
    graph = benchmark(greedy_spanner, euclidean_200, 2.0)
    assert graph.num_edges > 0


def test_baseline_theta_graph(benchmark, euclidean_200):
    graph = benchmark(theta_graph, euclidean_200, 8)
    assert graph.num_edges > 0


def test_navigator_on_deep_vs_shallow_trees(benchmark):
    """Construction cost is shape-robust: star vs path at equal n."""
    from repro.graphs import path_tree, star_tree

    def build_both():
        a = TreeNavigator(path_tree(4096, seed=42), 2).num_edges
        b = TreeNavigator(star_tree(4096), 2).num_edges
        return a, b

    path_edges, star_edges = benchmark(build_both)
    assert star_edges < path_edges  # stars are already 2-hop navigable
