"""E2 — Table 1: tree cover constructions.

Times each cover construction and asserts its headline guarantee
(number of trees, measured stretch).
"""

from repro.metrics import delaunay_metric, random_points, sample_pairs
from repro.treecover import (
    few_trees_cover,
    planar_tree_cover,
    ramsey_tree_cover,
    robust_tree_cover,
)


def test_robust_cover_doubling(benchmark, euclidean_200):
    cover = benchmark(robust_tree_cover, euclidean_200, 0.45)
    worst, _ = cover.measured_stretch(sample_pairs(200, 300))
    assert worst <= 2.5


def test_robust_cover_small_eps(benchmark):
    metric = random_points(120, dim=2, seed=6)
    cover = benchmark(robust_tree_cover, metric, 0.25)
    worst, _ = cover.measured_stretch(sample_pairs(120, 300))
    assert worst <= 1.8


def test_ramsey_cover_general(benchmark, general_120):
    cover = benchmark(ramsey_tree_cover, general_120, 2, 7)
    assert cover.home is not None
    worst = max(
        cover.trees[cover.home[p]].tree_distance(p, q) / general_120.distance(p, q)
        for p in range(0, 120, 7)
        for q in range(0, 120, 5)
        if p != q
    )
    assert worst <= 64 * 2 * 1.5


def test_few_trees_cover(benchmark, general_120):
    cover = benchmark(few_trees_cover, general_120, 3, 8)
    assert cover.size == 3


def test_planar_cover(benchmark):
    metric = delaunay_metric(300, seed=9)
    cover = benchmark(planar_tree_cover, metric)
    worst, _ = cover.measured_stretch(sample_pairs(300, 400))
    assert worst <= 3.0 + 1e-6
