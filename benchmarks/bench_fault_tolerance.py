"""E5/E12 — Theorems 4.1, 4.2, 5.2: robustness and fault tolerance.

Times FT spanner construction, FT navigation under faults, and FT
routing; the f-sweep tables are in ``run_experiments.py --exp E5``.
"""

import random

import pytest

from repro.metrics import random_points
from repro.routing import FaultTolerantRoutingScheme
from repro.spanners import FaultTolerantSpanner
from repro.treecover import robust_tree_cover


@pytest.fixture(scope="module")
def ft_metric():
    return random_points(80, dim=2, seed=20)


@pytest.fixture(scope="module")
def ft_cover(ft_metric):
    return robust_tree_cover(ft_metric, eps=0.45)


@pytest.fixture(scope="module")
def ft_spanner(ft_metric, ft_cover):
    return FaultTolerantSpanner(ft_metric, f=2, k=2, cover=ft_cover)


def test_ft_spanner_construction(benchmark, ft_metric, ft_cover):
    spanner = benchmark(FaultTolerantSpanner, ft_metric, 2, 2, 0.45, ft_cover)
    assert spanner.edge_count() > 0


def test_ft_navigation_under_faults(benchmark, ft_spanner):
    rng = random.Random(0)
    queries = []
    for _ in range(200):
        u, v = rng.sample(range(80), 2)
        pool = [x for x in range(80) if x not in (u, v)]
        queries.append((u, v, set(rng.sample(pool, 2))))

    def navigate_all():
        hops = 0
        for u, v, faults in queries:
            hops += len(ft_spanner.find_path(u, v, faults)) - 1
        return hops

    hops = benchmark(navigate_all)
    assert hops <= 2 * len(queries)


def test_ft_routing_under_faults(benchmark, ft_metric, ft_cover):
    scheme = FaultTolerantRoutingScheme(ft_metric, f=2, cover=ft_cover, seed=21)
    rng = random.Random(1)
    queries = []
    for _ in range(100):
        u, v = rng.sample(range(80), 2)
        pool = [x for x in range(80) if x not in (u, v)]
        queries.append((u, v, set(rng.sample(pool, 2))))

    def route_all():
        hops = 0
        for u, v, faults in queries:
            hops += scheme.route(u, v, faults).hops
        return hops

    hops = benchmark(route_all)
    assert hops <= 2 * len(queries)
