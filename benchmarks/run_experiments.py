"""Regenerate every paper table/figure as a measured table.

Usage::

    python benchmarks/run_experiments.py            # all experiments
    python benchmarks/run_experiments.py --exp E1 E4
    python benchmarks/run_experiments.py --json     # emit BENCH_*.json only

Each experiment prints a markdown table "paper claim vs measured" —
these are the tables recorded in EXPERIMENTS.md.  Paper claims are
asymptotic; the reproduction matches *shapes* (growth rates, who wins,
crossovers), not the authors' constants.

``--json`` skips the markdown experiments and runs the
benchmark-regression harness (:mod:`repro.bench`) instead, writing the
schema-stable ``BENCH_tree_covers.json`` / ``BENCH_navigation.json``
artifacts (same payloads as ``python -m repro bench``).
"""

from __future__ import annotations

import argparse
import math
import random
import time

from repro.apps import (
    MstVerifier,
    NaiveTreeProduct,
    OnlineTreeProduct,
    approximate_mst,
    approximate_spt,
    base_mst,
    mst_weight,
    sparsify_report,
    verify_spt,
)
from repro.core import MetricNavigator, TreeNavigator, alpha_k
from repro.graphs import dijkstra, path_tree, random_tree
from repro.metrics import (
    delaunay_metric,
    grid_graph_metric,
    random_graph_metric,
    random_points,
    sample_pairs,
)
from repro.routing import (
    FaultTolerantRoutingScheme,
    MetricRoutingScheme,
    build_tree_network,
    tree_protocol,
)
from repro.spanners import (
    FaultTolerantSpanner,
    complete_graph,
    greedy_spanner,
    theta_graph,
)
from repro.spanners.baselines import theta_walk
from repro.spanners.spanner import lightness, measured_stretch
from repro.treecover import (
    few_trees_cover,
    planar_tree_cover,
    ramsey_tree_cover,
    robust_tree_cover,
    robustness_certificate,
)
from repro.util import CountingSemigroup


def table(title, headers, rows):
    print(f"\n### {title}\n")
    print("| " + " | ".join(headers) + " |")
    print("|" + "---|" * len(headers))
    for row in rows:
        print("| " + " | ".join(str(c) for c in row) + " |")
    print()


def fmt(x, digits=3):
    if isinstance(x, float):
        return f"{x:.{digits}f}"
    return str(x)


# ----------------------------------------------------------------------
# E1: Theorem 1.1 — size/hop/stretch/time of tree navigators.

def experiment_e1():
    print("\n## E1 — Theorem 1.1: navigable tree 1-spanners (size ~ n·αk(n))")
    rows = []
    for n in (1024, 4096, 16384):
        tree = path_tree(n, seed=1)
        for k in (2, 3, 4, 5, 6):
            start = time.perf_counter()
            nav = TreeNavigator(tree, k)
            build = time.perf_counter() - start
            rng = random.Random(0)
            pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(800)]
            start = time.perf_counter()
            max_hops = max(len(nav.find_path(u, v)) - 1 for u, v in pairs)
            per_query = (time.perf_counter() - start) / len(pairs)
            ak = max(1, alpha_k(k, n))
            rows.append([
                n, k, nav.num_edges, ak, fmt(nav.num_edges / (n * ak), 2),
                max_hops, nav.phi_depth(), fmt(build, 2), fmt(per_query * 1e6, 1),
            ])
    table(
        "E1 (path metric — the [AS87]/[LMS22] lower-bound family; stretch is "
        "exactly 1 by construction, verified in tests)",
        ["n", "k", "edges", "αk(n)", "edges/(n·αk)", "max hops", "Φ depth",
         "build s", "query µs"],
        rows,
    )
    print("Paper: |E| = O(n·αk(n)), hops <= k, query O(k), depth(Φ) = O(αk(n)).")

    # E11 companion: size constants across tree shapes at fixed n.
    from repro.graphs import balanced_tree, caterpillar_tree

    shape_rows = []
    n = 8192
    shapes = [
        ("path", path_tree(n, seed=2)),
        ("random", random_tree(n, seed=2)),
        ("caterpillar", caterpillar_tree(n, seed=2)),
        ("balanced binary", balanced_tree(2, 12)),
    ]
    for name, tree in shapes:
        for k in (2, 4):
            nav = TreeNavigator(tree, k)
            ak = max(1, alpha_k(k, tree.n))
            shape_rows.append([
                name, tree.n, k, nav.num_edges,
                fmt(nav.num_edges / (tree.n * ak), 2), nav.phi_depth(),
            ])
    table(
        "E11 — shape robustness (Figure 1 structure: recursion depth and size "
        "constants across tree families)",
        ["shape", "n", "k", "edges", "edges/(n·αk)", "Φ depth"],
        shape_rows,
    )


# ----------------------------------------------------------------------
# E2: Table 1 — tree cover constructions.

def experiment_e2():
    print("\n## E2 — Table 1: tree covers (stretch γ, number of trees ζ)")
    rows = []

    for eps in (0.5, 0.4, 0.3, 0.2):
        metric = random_points(200, dim=2, seed=2)
        start = time.perf_counter()
        cover = robust_tree_cover(metric, eps=eps)
        build = time.perf_counter() - start
        worst, mean = cover.measured_stretch(sample_pairs(200, 600))
        rows.append([
            "doubling (robust, Thm 4.1)", f"eps={eps}", "1+O(ε)", fmt(worst),
            fmt(mean), "ε^-O(d)", cover.size, fmt(build, 1),
        ])

    for ell in (1, 2, 3):
        metric = random_graph_metric(150, seed=3)
        start = time.perf_counter()
        cover = ramsey_tree_cover(metric, ell=ell, seed=4)
        build = time.perf_counter() - start
        worst = max(
            cover.trees[cover.home[p]].tree_distance(p, q) / metric.distance(p, q)
            for p in range(150)
            for q in range(0, 150, 7)
            if p != q
        )
        rows.append([
            "general (Ramsey, MN06)", f"l={ell}", f"O(l) (<=64l={64*ell})",
            fmt(worst, 1), "-", "O(l·n^(1/l)·log n)", cover.size, fmt(build, 1),
        ])

    for ell in (2, 3, 4):
        metric = random_graph_metric(150, seed=5)
        start = time.perf_counter()
        cover = few_trees_cover(metric, ell, seed=6)
        build = time.perf_counter() - start
        worst, mean = cover.measured_stretch(sample_pairs(150, 500))
        bound = 150 ** (1 / ell) * math.log2(150) ** (1 - 1 / ell)
        rows.append([
            "general (few trees, BFN19)", f"l={ell}",
            f"O(n^(1/l)·log^(1-1/l) n)~{bound:.0f}", fmt(worst, 1), fmt(mean, 2),
            "l", cover.size, fmt(build, 1),
        ])

    for name, metric in (
        ("planar grid", grid_graph_metric(16, seed=7)),
        ("planar Delaunay", delaunay_metric(256, seed=7)),
    ):
        start = time.perf_counter()
        cover = planar_tree_cover(metric)
        build = time.perf_counter() - start
        worst, mean = cover.measured_stretch(sample_pairs(metric.n, 600))
        rows.append([
            name, f"n={metric.n}", "<=3 (ours; paper 1+ε)", fmt(worst),
            fmt(mean), "O(log n) (ours; paper (log n/ε)²)", cover.size,
            fmt(build, 1),
        ])

    table(
        "E2 (measured stretch is max over 500-600 sampled pairs)",
        ["family", "param", "paper γ", "measured γ max", "γ mean", "paper ζ",
         "measured ζ", "build s"],
        rows,
    )


# ----------------------------------------------------------------------
# E3: Theorem 1.2 — metric navigation.

def experiment_e3():
    print("\n## E3 — Theorem 1.2: k-hop navigation on metric spaces")
    rows = []
    metric = random_points(200, dim=2, seed=8)
    cover = robust_tree_cover(metric, eps=0.45)
    pairs = sample_pairs(200, 400, seed=9)
    gamma = max(cover.stretch(u, v) for u, v in pairs)
    for k in (2, 3, 4):
        nav = MetricNavigator(metric, cover, k)
        start = time.perf_counter()
        stats = [nav.query_stretch(u, v) for u, v in pairs]
        per_query = (time.perf_counter() - start) / len(pairs)
        rows.append([
            "doubling", k, cover.size, nav.num_edges,
            max(h for h, _ in stats), fmt(max(s for _, s in stats)),
            fmt(gamma), fmt(per_query * 1e6, 1),
        ])
    general = random_graph_metric(150, seed=10)
    rcover = ramsey_tree_cover(general, ell=2, seed=11)
    gpairs = sample_pairs(150, 400, seed=12)
    for k in (2, 3):
        nav = MetricNavigator(general, rcover, k)
        start = time.perf_counter()
        stats = [nav.query_stretch(u, v) for u, v in gpairs]
        per_query = (time.perf_counter() - start) / len(gpairs)
        rows.append([
            "general (Ramsey)", k, rcover.size, nav.num_edges,
            max(h for h, _ in stats), fmt(max(s for _, s in stats), 1),
            "O(l)=O(2)", fmt(per_query * 1e6, 1),
        ])
    fcover = few_trees_cover(general, 3, seed=11)
    fstats_nav = MetricNavigator(general, fcover, 2)
    fstats = [fstats_nav.query_stretch(u, v) for u, v in gpairs]
    rows.append([
        "general (few trees)", 2, fcover.size, fstats_nav.num_edges,
        max(h for h, _ in fstats), fmt(max(s for _, s in fstats), 1),
        "O(n^(1/l)·log^(1-1/l) n)", "-",
    ])
    planar = delaunay_metric(200, seed=13)
    pcover = planar_tree_cover(planar)
    ppairs = sample_pairs(200, 400, seed=14)
    pgamma = max(pcover.stretch(u, v) for u, v in ppairs)
    for k in (2, 3):
        nav = MetricNavigator(planar, pcover, k)
        stats = [nav.query_stretch(u, v) for u, v in ppairs]
        rows.append([
            "planar", k, pcover.size, nav.num_edges,
            max(h for h, _ in stats), fmt(max(s for _, s in stats)),
            fmt(pgamma), "-",
        ])
    table(
        "E3 (paper: hops <= k, path stretch <= γ, |H_X| = O(n·αk(n)·ζ), query O(k))",
        ["family", "k", "ζ", "|H_X| edges", "max hops", "max path stretch",
         "cover γ", "query µs"],
        rows,
    )
    # The baseline the introduction motivates: Θ-graph walks use Ω(n) hops.
    tg = theta_graph(metric, cones=8)
    rng = random.Random(15)
    walk_hops = max(
        len(theta_walk(metric, tg, *rng.sample(range(200), 2))) - 1 for _ in range(50)
    )
    print(f"Baseline: Θ-graph greedy walk max hops on the same input: {walk_hops} "
          f"(vs 2-4 above).")


# ----------------------------------------------------------------------
# E4: Theorem 1.3 / Table 3 — routing schemes.

def experiment_e4():
    print("\n## E4 — Theorems 5.1/1.3, Table 3: 2-hop compact routing")
    rows = []
    for n in (512, 2048, 8192):
        tree = random_tree(n, seed=16)
        scheme, net = build_tree_network(tree, seed=17)
        rng = random.Random(18)
        pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(300)]
        from repro.metrics import TreeMetric

        tm = TreeMetric(tree)
        worst_hops = 0
        worst_stretch = 1.0
        start = time.perf_counter()
        for u, v in pairs:
            res = net.route(u, tree_protocol, scheme.labels[v], scheme.tables)
            worst_hops = max(worst_hops, res.hops)
            base = tm.distance(u, v)
            if base > 0:
                worst_stretch = max(worst_stretch, res.weight / base)
        per_route = (time.perf_counter() - start) / len(pairs)
        label_bits = max(scheme.label_size_bits(p) for p in range(n))
        tab_bits = max(scheme.table_size_bits(p) for p in range(n))
        log2n2 = math.ceil(math.log2(n)) ** 2
        rows.append([
            "tree", n, worst_hops, fmt(worst_stretch), label_bits, tab_bits,
            log2n2, fmt(label_bits / log2n2, 1), fmt(per_route * 1e6, 1),
        ])
    table(
        "E4a — tree metrics (paper: 2 hops, stretch 1, labels/tables O(log² n) bits)",
        ["family", "n", "max hops", "max stretch", "label bits", "table bits",
         "log²n", "label/log²n", "route µs"],
        rows,
    )

    rows = []
    metric = random_points(150, dim=2, seed=19)
    cover = robust_tree_cover(metric, eps=0.45)
    scheme = MetricRoutingScheme(metric, cover, seed=20)
    pairs = sample_pairs(150, 300, seed=21)
    worst = [0, 1.0]
    for u, v in pairs:
        res = scheme.route(u, v)
        worst[0] = max(worst[0], res.hops)
        base = metric.distance(u, v)
        if base > 0:
            worst[1] = max(worst[1], res.weight / base)
    rows.append([
        "doubling", 150, cover.size, worst[0], fmt(worst[1]),
        max(scheme.label_size_bits(p) for p in range(150)),
        max(scheme.table_size_bits(p) for p in range(150)),
    ])
    general = random_graph_metric(150, seed=22)
    rcover = ramsey_tree_cover(general, ell=2, seed=23)
    rscheme = MetricRoutingScheme(general, rcover, seed=24)
    worst = [0, 1.0]
    for u, v in sample_pairs(150, 300, seed=25):
        res = rscheme.route(u, v)
        worst[0] = max(worst[0], res.hops)
        base = general.distance(u, v)
        if base > 0:
            worst[1] = max(worst[1], res.weight / base)
    rows.append([
        "general (Ramsey)", 150, rcover.size, worst[0], fmt(worst[1], 1),
        max(rscheme.label_size_bits(p) for p in range(150)),
        max(rscheme.table_size_bits(p) for p in range(150)),
    ])
    planar = grid_graph_metric(12, seed=26)
    pcover = planar_tree_cover(planar)
    pscheme = MetricRoutingScheme(planar, pcover, seed=27)
    worst = [0, 1.0]
    for u, v in sample_pairs(planar.n, 300, seed=28):
        res = pscheme.route(u, v)
        worst[0] = max(worst[0], res.hops)
        base = planar.distance(u, v)
        if base > 0:
            worst[1] = max(worst[1], res.weight / base)
    rows.append([
        "planar", planar.n, pcover.size, worst[0], fmt(worst[1]),
        max(pscheme.label_size_bits(p) for p in range(planar.n)),
        max(pscheme.table_size_bits(p) for p in range(planar.n)),
    ])
    table(
        "E4b — metric spaces (paper Table 3; headers ⌈log n⌉ + tree index bits)",
        ["family", "n", "ζ", "max hops", "max stretch", "label bits", "table bits"],
        rows,
    )


# ----------------------------------------------------------------------
# E5/E12: robustness + fault tolerance.

def experiment_e5():
    print("\n## E5 — Theorems 4.1/4.2: robust covers and FT spanners")
    metric = random_points(100, dim=2, seed=29)
    cover = robust_tree_cover(metric, eps=0.4)
    pairs = sample_pairs(100, 60, seed=30)
    certs = [robustness_certificate(cover, u, v) for u, v in pairs]
    print(f"\nRobustness certificate (Definition 4.1(2), adversarial leaf "
          f"replacement): max {max(certs):.2f}, mean "
          f"{sum(certs) / len(certs):.2f} over {len(pairs)} pairs "
          f"(bounded as the theory predicts; 1+O(ε) with the construction's constants).")

    rows = []
    for f in (0, 1, 2, 4):
        for k in (2, 3):
            ft = FaultTolerantSpanner(metric, f=f, k=k, cover=cover)
            rng = random.Random(31)  # identical query/fault mix per row
            worst_hops = 0
            worst_stretch = 1.0
            for _ in range(150):
                u, v = rng.sample(range(100), 2)
                pool = [x for x in range(100) if x not in (u, v)]
                faults = set(rng.sample(pool, f))
                path = ft.find_path(u, v, faults)
                worst_hops = max(worst_hops, len(path) - 1)
                worst_stretch = max(worst_stretch, ft.verify_path(u, v, faults, path))
            rows.append([f, k, ft.edge_count(), worst_hops, fmt(worst_stretch, 2)])
    table(
        "E5 — FT spanner under random faulty sets (paper: size ε^-O(d)·n·f²·αk, "
        "hops <= k, stretch 1+O(ε) after faults)",
        ["f", "k", "edges", "max hops", "max stretch under faults"],
        rows,
    )

    rows = []
    for f in (0, 1, 2):
        scheme = FaultTolerantRoutingScheme(metric, f=f, cover=cover, seed=32)
        rng = random.Random(33)
        worst_hops = 0
        worst_stretch = 1.0
        for _ in range(100):
            u, v = rng.sample(range(100), 2)
            pool = [x for x in range(100) if x not in (u, v)]
            faults = set(rng.sample(pool, f))
            res = scheme.route(u, v, faults)
            worst_hops = max(worst_hops, res.hops)
            base = metric.distance(u, v)
            worst_stretch = max(worst_stretch, res.weight / base)
        rows.append([
            f, worst_hops, fmt(worst_stretch, 2),
            max(scheme.label_size_bits(p) for p in range(100)),
            max(scheme.table_size_bits(p) for p in range(100)),
        ])
    table(
        "E12 — FT routing (Theorem 5.2: 2 hops, label/table bits grow ~x f)",
        ["f", "max hops", "max stretch", "label bits", "table bits"],
        rows,
    )


# ----------------------------------------------------------------------
# E6: sparsification.

def experiment_e6():
    print("\n## E6 — Theorem 5.3 / Table 4: spanner sparsification")
    metric = random_points(150, dim=2, seed=34)
    cover = robust_tree_cover(metric, eps=0.45)
    pairs = sample_pairs(150, 200, seed=35)
    gamma = max(cover.stretch(u, v) for u, v in pairs)
    rows = []
    for k in (2, 3):
        navigator = MetricNavigator(metric, cover, k)
        for name, graph, t in (
            ("complete graph", complete_graph(metric), 1.0),
            ("greedy 1.1-spanner", greedy_spanner(metric, 1.1), 1.1),
            ("Θ-graph", theta_graph(metric, cones=8), 1.42),
        ):
            before, after, _ = sparsify_report(graph, navigator, t, pairs=pairs)
            rows.append([
                name, k, before.edges, after.edges,
                fmt(before.stretch, 2), fmt(after.stretch, 2),
                fmt(before.lightness, 2), fmt(after.lightness, 2),
                fmt(gamma, 2),
            ])
    table(
        "E6 (paper: size drops to O(n·αk·ζ); stretch and lightness grow <= γ)",
        ["input spanner", "k", "edges before", "edges after", "stretch before",
         "stretch after", "light before", "light after", "γ"],
        rows,
    )


# ----------------------------------------------------------------------
# E7: approximate SPT.

def experiment_e7():
    print("\n## E7 — Theorem 5.4: approximate SPT via navigation")
    rows = []
    for n in (100, 200, 400):
        metric = random_points(n, dim=2, seed=36)
        cover = robust_tree_cover(metric, eps=0.5)
        for k in (2, 3):
            navigator = MetricNavigator(metric, cover, k)
            start = time.perf_counter()
            parent, dist = approximate_spt(navigator, 0)
            ours = time.perf_counter() - start
            gamma = max(cover.stretch(0, v) for v in range(1, n))
            verify_spt(navigator, 0, parent, dist, gamma + 1e-9)
            worst = max(
                dist[v] / metric.distance(0, v) for v in range(1, n)
            )
            spanner = navigator.spanner()
            start = time.perf_counter()
            dijkstra(spanner, 0)
            baseline = time.perf_counter() - start
            rows.append([
                n, k, fmt(worst), fmt(gamma), fmt(ours, 3), fmt(baseline, 3),
                spanner.num_edges,
            ])
    table(
        "E7 (paper: O(n·τ) with no explicit spanner access, stretch <= γ; "
        "baseline = Dijkstra with explicit access)",
        ["n", "k", "SPT stretch", "γ", "ours s", "Dijkstra s", "|H_X|"],
        rows,
    )


# ----------------------------------------------------------------------
# E8: approximate MST.

def experiment_e8():
    print("\n## E8 — Theorem 5.5: approximate Euclidean MST inside the spanner")
    rows = []
    for n in (100, 250, 500):
        metric = random_points(n, dim=2, seed=37)
        cover = robust_tree_cover(metric, eps=0.45)
        for k in (2, 3):
            navigator = MetricNavigator(metric, cover, k)
            exact = mst_weight(base_mst(metric))
            start = time.perf_counter()
            edges = approximate_mst(navigator)
            took = time.perf_counter() - start
            rows.append([n, k, fmt(mst_weight(edges) / exact, 4), fmt(took, 2)])
    table(
        "E8 (paper: (1+ε)-approximate MST that is a subgraph of the spanner, O(nk))",
        ["n", "k", "weight / exact MST", "time s"],
        rows,
    )


# ----------------------------------------------------------------------
# E9: online tree product.

def experiment_e9():
    print("\n## E9 — Theorem 5.6: online tree products (ops per query)")
    rows = []
    n = 8192
    tree = random_tree(n, seed=38)
    values = [(v % 97,) for v in range(n)]
    rng_pairs = random.Random(39)
    pairs = [tuple(rng_pairs.sample(range(n), 2)) for _ in range(500)]
    for k in (2, 3, 4, 6):
        counter = CountingSemigroup(lambda a, b: a + b)
        product = OnlineTreeProduct(tree, k, counter, values)
        prep_ops = counter.reset()
        worst = 0
        total = 0
        for u, v in pairs:
            product.query(u, v)
            ops = counter.reset()
            worst = max(worst, ops)
            total += ops
        rows.append([
            f"ours k={k}", product.navigator.num_edges, prep_ops, worst,
            fmt(total / len(pairs), 2), k - 1, 2 * k - 1,
        ])
    for k in (3, 4):
        counter = CountingSemigroup(lambda a, b: a + b)
        product = OnlineTreeProduct(
            tree, k, counter, values,
            navigator=__import__("repro.core", fromlist=["TreeNavigator"]).TreeNavigator(
                tree, k, decrement=1
            ),
        )
        prep_ops = counter.reset()
        worst = 0
        total = 0
        for u, v in pairs:
            product.query(u, v)
            ops = counter.reset()
            worst = max(worst, ops)
            total += ops
        rows.append([
            f"level-by-level k={k} (AS87-style)", product.navigator.num_edges,
            prep_ops, worst, fmt(total / len(pairs), 2),
            2 * (k - 1) - 1, "(is the AS87 regime)",
        ])
    counter = CountingSemigroup(lambda a, b: a + b)
    naive = NaiveTreeProduct(tree, counter, values)
    worst = 0
    total = 0
    for u, v in pairs:
        naive.query(u, v)
        ops = counter.reset()
        worst = max(worst, ops)
        total += ops
    rows.append(["naive walk", n - 1, 0, worst, fmt(total / len(pairs), 1),
                 "path len - 1", "-"])
    table(
        "E9 (paper: k-1 ops/query vs AS87's 2k-1 at the same O(n·αk(n)) size "
        "— Remark 5.4; preprocessing ops here are O(n log n) jump products)",
        ["scheme", "spanner edges", "prep ops", "worst ops/query",
         "mean ops/query", "paper bound (ours)", "AS87 bound"],
        rows,
    )


# ----------------------------------------------------------------------
# E10: online MST verification.

def experiment_e10():
    print("\n## E10 — Section 5.6.2: online MST verification (weight comparisons)")
    rows = []
    n = 8192
    tree = random_tree(n, seed=40)
    rng = random.Random(41)
    queries = [(*rng.sample(range(n), 2), rng.uniform(0, 15)) for _ in range(500)]
    for k in (2, 3, 4):
        verifier = MstVerifier(tree, k)
        worst_order = worst_generic = 0
        for u, v, w in queries:
            _, c1 = verifier.verify_by_order(u, v, w)
            _, c2 = verifier.verify(u, v, w)
            worst_order = max(worst_order, c1)
            worst_generic = max(worst_generic, c2)
        rows.append([
            k, verifier.preprocessing_comparisons,
            worst_order, worst_generic, k, 2 * k - 1,
        ])
    table(
        "E10 (paper: 2k-1 comparisons/query beating Pettie's 4k-1; with edge "
        "orders a single weight comparison per query)",
        ["k", "prep comparisons", "cmp/query (orders)", "cmp/query (generic)",
         "generic bound k", "Pettie 4k-1 → ours 2k-1 regime"],
        rows,
    )


EXPERIMENTS = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
    "E10": experiment_e10,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--exp", nargs="*", default=sorted(EXPERIMENTS),
                        help="experiment ids (default: all)")
    parser.add_argument("--json", action="store_true",
                        help="emit BENCH_*.json via repro.bench and exit")
    parser.add_argument("--bench-n", type=int, default=2000,
                        help="points for --json construction benches")
    parser.add_argument("--bench-nav-n", type=int, default=600,
                        help="points for --json navigation benches")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for per-tree fan-out "
                             "(default: REPRO_WORKERS env, else serial)")
    parser.add_argument("--out-dir", type=str, default=".",
                        help="directory for --json artifacts")
    args = parser.parse_args()
    if args.json:
        from repro.bench import bench_navigation, bench_tree_covers, write_bench_files

        tree_payload = bench_tree_covers(n=args.bench_n, workers=args.workers)
        nav_payload = bench_navigation(n=args.bench_nav_n, workers=args.workers)
        for path in write_bench_files(args.out_dir, tree_payload, nav_payload):
            print(f"wrote {path}")
        return
    for exp in args.exp:
        start = time.perf_counter()
        EXPERIMENTS[exp.upper()]()
        print(f"[{exp} done in {time.perf_counter() - start:.1f}s]")


if __name__ == "__main__":
    main()
