#!/usr/bin/env sh
# Smoke the cover-pruning + compact-backend pipeline end to end through
# the CLI: build a pruned cover checkpoint -> audit it -> build a
# pruned *packed* navigator checkpoint -> verify in-memory vs mmap
# query parity -> serve it memory-mapped and verify the daemon answers
# the identical paths -> build + audit a compact-backend checkpoint ->
# finally prove the dynamic layer refuses a pruned checkpoint with a
# typed error (non-zero exit), never silent corruption.  Fast enough
# for CI; the exhaustive suite lives in tests/test_prune.py and
# tests/test_tree_covers.py.
#
# Usage: scripts/prune_smoke.sh [work_dir]
set -eu
cd "$(dirname "$0")/.."
WORK_DIR="${1:-$(mktemp -d)}"
mkdir -p "$WORK_DIR"
COVER_CKPT="$WORK_DIR/pruned_cover.ckpt"
NAV_CKPT="$WORK_DIR/pruned_nav.ckpt"
COMPACT_CKPT="$WORK_DIR/compact_cover.ckpt"
LOG="$WORK_DIR/serve.log"
N=90
PORT=$((21000 + $$ % 20000))

# Leg 1: pruned cover checkpoint survives its own audit.  The builder
# spec in the envelope records the prune, so recovery replays it.
PYTHONPATH=src python -m repro checkpoint --family euclidean --n "$N" \
    --what cover --prune --out "$COVER_CKPT"
PYTHONPATH=src python -m repro audit --checkpoint "$COVER_CKPT" \
    --family euclidean --n "$N"
echo "pruned cover checkpoint audited"

# Leg 2: pruned packed navigator -> in-memory vs mmap bit-identity.
PYTHONPATH=src python -m repro checkpoint --family euclidean --n "$N" \
    --what navigator --prune --packed --out "$NAV_CKPT"

PYTHONPATH=src python - "$NAV_CKPT" "$N" <<'EOF'
import sys

from repro.checkpoint import load_navigator_checkpoint
from repro.metrics import random_points, sample_pairs

path, n = sys.argv[1], int(sys.argv[2])
metric = random_points(n, dim=2, seed=0)
rebuilt = load_navigator_checkpoint(path, metric)
mapped = load_navigator_checkpoint(path, metric, mmap=True)
for u, v in sample_pairs(n, 80, seed=3):
    assert mapped.find_path(u, v) == rebuilt.find_path(u, v), (u, v)
print(f"mmap parity ok: 80 pairs bit-identical across {mapped.num_trees} "
      "retained trees")
EOF

# Leg 3: serve the pruned checkpoint memory-mapped; the daemon must
# answer the same paths the local loads produced.
PYTHONPATH=src python -m repro serve "$NAV_CKPT" --family euclidean \
    --n "$N" --mmap --port "$PORT" --flush-ms 1.0 >"$LOG" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

PYTHONPATH=src python - "$NAV_CKPT" "$PORT" "$N" <<'EOF'
import sys

from repro.checkpoint import load_navigator_checkpoint
from repro.metrics import random_points, sample_pairs
from repro.serve import ServeClient, wait_for_server

path, port, n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
metric = random_points(n, dim=2, seed=0)
mapped = load_navigator_checkpoint(path, metric, mmap=True)
wait_for_server("127.0.0.1", port, timeout=120)
with ServeClient("127.0.0.1", port) as client:
    health = client.health()
    assert health["ready"], health
    assert health["service"]["mapped"] is True, health
    for u, v in sample_pairs(n, 30, seed=4):
        response = client.path(u, v)
        assert response["status"] == "ok", response
        assert response["result"]["path"] == mapped.find_path(u, v), (u, v)
    print("served parity ok: 30 daemon answers identical to the local mmap")
    client.shutdown()
EOF

if wait "$SERVE_PID"; then
    trap - EXIT
else
    echo "ERROR: daemon exited non-zero after shutdown op" >&2
    cat "$LOG" >&2
    exit 1
fi

# Leg 4: the compact doubling-metric backend rides the same checkpoint
# + audit machinery via its builder spec.
PYTHONPATH=src python -m repro checkpoint --family euclidean --n "$N" \
    --what cover --backend compact --out "$COMPACT_CKPT"
PYTHONPATH=src python -m repro audit --checkpoint "$COMPACT_CKPT" \
    --family euclidean --n "$N"
echo "compact-backend checkpoint audited"

# Leg 5: dynamic mutation on a pruned checkpoint must be a typed
# refusal — non-zero exit with the reason on stderr.
DYN_ERR="$WORK_DIR/dynamic_refusal.err"
if PYTHONPATH=src python -m repro serve "$COVER_CKPT" --family euclidean \
    --n "$N" --dynamic --port $((PORT + 1)) 2>"$DYN_ERR"; then
    echo "ERROR: serve --dynamic accepted a pruned checkpoint" >&2
    exit 1
fi
if ! grep -q "pruned" "$DYN_ERR"; then
    echo "ERROR: dynamic refusal did not name the pruned cover:" >&2
    cat "$DYN_ERR" >&2
    exit 1
fi
echo "dynamic mutation refused the pruned checkpoint as expected"

echo "prune smoke passed"
