#!/usr/bin/env sh
# Smoke the serving daemon end to end through the CLI:
# build a cover checkpoint -> start `python -m repro serve` in the
# background -> drive mixed traffic (paths, distances, a route, a
# pipelined burst) -> inject one live fault and wait for background
# recovery -> scrape /metrics over plain HTTP -> clean shutdown via the
# protocol's shutdown op.  Exercises every serving layer (admission
# batching, degraded labelling, chaos recovery, the HTTP facade) on a
# small instance; fast enough for CI.  The exhaustive suite lives in
# tests/test_serve.py behind the `serve` pytest marker.
#
# Usage: scripts/serve_smoke.sh [work_dir]
set -eu
cd "$(dirname "$0")/.."
WORK_DIR="${1:-$(mktemp -d)}"
CKPT="$WORK_DIR/cover.ckpt"
LOG="$WORK_DIR/serve.log"
N=70
PORT=$((20000 + $$ % 20000))

PYTHONPATH=src python -m repro checkpoint --family euclidean --n "$N" \
    --what cover --out "$CKPT"

PYTHONPATH=src python -m repro serve "$CKPT" --family euclidean --n "$N" \
    --port "$PORT" --flush-ms 1.0 >"$LOG" 2>&1 &
SERVE_PID=$!
# Whatever happens below, never leave the daemon running.
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

PYTHONPATH=src python - "$PORT" "$N" <<'EOF'
import sys
import urllib.request

from repro.serve import ServeClient, wait_for_server

port, n = int(sys.argv[1]), int(sys.argv[2])
wait_for_server("127.0.0.1", port, timeout=120)

with ServeClient("127.0.0.1", port) as client:
    health = client.health()
    assert health["ready"], health
    print(f"daemon ready: {health['service']['trees_serving']} trees serving")

    # Mixed traffic: scalar queries plus a pipelined burst that the
    # admission controller coalesces into micro-batches.
    for u, v in [(0, n - 1), (1, n // 2), (3, 7)]:
        response = client.path(u, v)
        assert response["status"] == "ok", response
        assert response["result"]["hops"] <= 3, response
    assert client.distance(2, n - 2)["status"] == "ok"
    assert client.route(5, n - 5)["status"] == "ok"
    burst = client.query_batch(
        "path", [(i, (i * 7 + 3) % n) for i in range(24) if i != (i * 7 + 3) % n]
    )
    assert all(r["status"] == "ok" for r in burst)
    print(f"mixed traffic ok ({len(burst)} pipelined queries)")

    # One injected fault: responses degrade with an explicit label,
    # then background recovery restores the full contract.
    outcome = client.chaos(kill=[0], recover=True)
    assert outcome["result"]["killed"] == [0], outcome
    degraded = client.path(0, n - 1)
    assert degraded["status"] in ("ok", "degraded"), degraded
    client.wait_state("ready", timeout=300)
    recovered = client.path(0, n - 1)
    assert recovered["status"] == "ok", recovered
    print("fault injected, degraded labelling observed, recovery complete")

    # The same port speaks HTTP for scraping.
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=30
    ) as response:
        text = response.read().decode()
    assert "repro_serve_admitted" in text, text[:200]
    assert "repro_serve_chaos_trees_killed" in text
    print(f"scraped /metrics: {len(text.splitlines())} series lines")

    client.shutdown()
EOF

# The shutdown op must terminate the daemon cleanly (exit code 0).
if wait "$SERVE_PID"; then
    trap - EXIT
else
    echo "ERROR: daemon exited non-zero after shutdown op" >&2
    cat "$LOG" >&2
    exit 1
fi

# Second pass: zero-copy serving.  A navigator checkpoint saved with
# --packed carries the raw query-array region; `serve --mmap` attaches
# to it without rebuilding.  Queries must answer with the full
# contract; route (which needs the cover object) must degrade to a
# labelled undelivered, never crash.
MMAP_CKPT="$WORK_DIR/nav.ckpt"
MMAP_LOG="$WORK_DIR/serve_mmap.log"
MMAP_PORT=$((PORT + 1))

PYTHONPATH=src python -m repro checkpoint --family euclidean --n "$N" \
    --what navigator --packed --out "$MMAP_CKPT"

PYTHONPATH=src python -m repro serve "$MMAP_CKPT" --family euclidean \
    --n "$N" --mmap --port "$MMAP_PORT" --flush-ms 1.0 >"$MMAP_LOG" 2>&1 &
MMAP_PID=$!
trap 'kill "$MMAP_PID" 2>/dev/null || true' EXIT

PYTHONPATH=src python - "$MMAP_PORT" "$N" <<'EOF'
import sys

from repro.serve import ServeClient, wait_for_server

port, n = int(sys.argv[1]), int(sys.argv[2])
wait_for_server("127.0.0.1", port, timeout=120)

with ServeClient("127.0.0.1", port) as client:
    health = client.health()
    assert health["ready"], health
    assert health["service"]["mapped"] is True, health
    for u, v in [(0, n - 1), (1, n // 2), (3, 7)]:
        response = client.path(u, v)
        assert response["status"] == "ok", response
        assert response["result"]["hops"] <= 3, response
        assert response["service"]["mapped"] is True, response
    assert client.distance(2, n - 2)["status"] == "ok"
    routed = client.route(5, n - 5)
    assert routed["status"] == "undelivered", routed
    assert "memory-mapped" in (routed["error"] or ""), routed
    print("mmap traffic ok: paths delivered, route labelled undelivered")
    client.shutdown()
EOF

if wait "$MMAP_PID"; then
    trap - EXIT
else
    echo "ERROR: mmap daemon exited non-zero after shutdown op" >&2
    cat "$MMAP_LOG" >&2
    exit 1
fi

echo "serve smoke passed"
