#!/usr/bin/env sh
# Smoke the message-passing simulator end to end through the CLI:
# build a 10^4-node tree scheme -> compile to per-node state (locality
# audit) -> route 10^5 messages and gate the Theorem 5.1 contract
# (100% delivery, <= 2 hops, stretch exactly 1, headers within the
# log^2 n budget) -> rerun with 5% of the nodes killed mid-traffic and
# demand exact drop accounting (every loss is dead_node, survivors
# still stretch-1) -> small metric and fault-tolerant legs through
# `--verify` -> scrape netsim.* off a live /metrics endpoint.  The
# exhaustive suite lives in tests/test_netsim.py (netsim marker; the
# full-size bench legs additionally carry -m bench).
#
# Usage: scripts/netsim_smoke.sh [work_dir]
set -eu
cd "$(dirname "$0")/.."
WORK_DIR="${1:-$(mktemp -d)}"
BIG_JSON="$WORK_DIR/netsim_tree.json"
SCRAPE_LOG="$WORK_DIR/netsim_scrape.log"
PORT=$((21000 + $$ % 20000))

# Leg 1: the headline scale — 10^4 nodes, 10^5 messages, contract-gated
# by --verify and re-checked off the --json report below.
PYTHONPATH=src python -m repro netsim --scheme tree --n 10000 \
    --messages 100000 --tie-break seeded --verify --json >"$BIG_JSON"

PYTHONPATH=src python - "$BIG_JSON" <<'EOF'
import json
import math
import sys

with open(sys.argv[1]) as fh:
    lines = fh.read().splitlines()
# The indented JSON report sits between the human summary lines and
# the contract-check verdict.
text = "\n".join(lines[lines.index("{"):])
report, _ = json.JSONDecoder().raw_decode(text)
n = report["n"]
budget = math.ceil(math.log2(n)) ** 2
assert n == 10_000, report
assert report["injected"] == 100_000, report
assert report["delivered"] == 100_000, report
assert report["hops_max"] <= 2, report
assert report["stretch_p99"] <= 1.0 + 1e-9, report
assert report["header_bits_max"] <= budget, report
print(f"tree leg ok: {report['delivered']} delivered, "
      f"hops<={report['hops_max']}, stretch p99={report['stretch_p99']}, "
      f"headers<={report['header_bits_max']} bits (budget {budget})")
EOF

# Leg 2: kill 5% of the nodes mid-traffic.  The tree scheme has no
# fault tolerance, so losses are allowed — but every single one must be
# accounted as dead_node, the books must balance exactly, and the
# messages that do get through must still be 2-hop stretch-1.
PYTHONPATH=src python - <<'EOF'
from repro.graphs import random_tree
from repro.netsim import (NetworkSimulator, SimReport, audit_locality,
                          compile_tree_scheme, kill_schedule, uniform_pairs)
from repro.resilience.injectors import RandomInjector
from repro.routing import build_tree_network

n, messages, kills = 2_000, 20_000, 100  # 5% of the field dies
tree = random_tree(n, seed=11)
scheme, net = build_tree_network(tree, seed=12)
compiled = compile_tree_scheme(scheme, net)
audit_locality(compiled)

sim = NetworkSimulator(compiled, tie_break="seeded", seed=13)
spacing = 0.001
sim.send_many(uniform_pairs(n, messages, seed=14), spacing=spacing)
horizon = spacing * messages
for when, victim in kill_schedule(
    RandomInjector(n, seed=15), count=kills,
    start=horizon / 3.0, spacing=horizon / (3.0 * kills),
):
    sim.kill_at(when, victim)
sim.run()

report = SimReport(sim)
losses = {r: c for r, c in report.drop_counts.items() if c}
assert report.kills == kills, report.kills
assert report.delivered + sum(losses.values()) == report.injected, losses
assert set(losses) <= {"dead_node"}, losses
assert report.delivery_rate >= 0.80, report.delivery_rate
assert report.max_hops <= 2, report.max_hops
assert report.stretch_percentile(99) <= 1.0 + 1e-9
print(f"kill leg ok: {kills} nodes (5%) killed mid-run, "
      f"{report.delivered}/{report.injected} delivered "
      f"({100 * report.delivery_rate:.1f}%), losses {losses} "
      "(all dead_node, books balance)")
EOF

# Leg 3: the other two theorems through the CLI's own contract gates.
PYTHONPATH=src python -m repro netsim --scheme metric --family euclidean \
    --n 150 --messages 1500 --verify
PYTHONPATH=src python -m repro netsim --scheme ft --family euclidean \
    --n 90 --f 2 --kill 2 --messages 900 --spacing 0.01 --verify

# Leg 4: the netsim.* instruments are scrapable over plain HTTP while
# a run lingers on --metrics-port.
PYTHONPATH=src python -m repro netsim --scheme tree --n 300 \
    --messages 2000 --metrics-port "$PORT" --linger 60 \
    >"$SCRAPE_LOG" 2>&1 &
SIM_PID=$!
trap 'kill "$SIM_PID" 2>/dev/null || true' EXIT

PYTHONPATH=src python - "$PORT" <<'EOF'
import sys
import time
import urllib.error
import urllib.request

port = int(sys.argv[1])
deadline = time.monotonic() + 120
while True:
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as response:
            text = response.read().decode()
        break
    except (urllib.error.URLError, ConnectionError):
        if time.monotonic() > deadline:
            raise
        time.sleep(0.2)
assert "repro_netsim_injected 2000" in text, text[:400]
assert "repro_netsim_delivered 2000" in text, text[:400]
assert "repro_netsim_hops_count 2000" in text, text[:400]
assert "repro_netsim_header_bits_sum" in text, text[:400]
print(f"scraped /metrics: {len(text.splitlines())} series lines, "
      "netsim counters present")
EOF

kill "$SIM_PID" 2>/dev/null || true
wait "$SIM_PID" 2>/dev/null || true
trap - EXIT

echo "netsim smoke passed"
