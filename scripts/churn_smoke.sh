#!/usr/bin/env sh
# Smoke the dynamic-mutation path end to end through the CLI,
# including the crash window the journal exists for:
# build a cover checkpoint -> start `python -m repro serve --dynamic`
# -> drive interleaved mutations + queries over the wire -> kill -9
# the daemon and tear the journal tail (a crash mid-append) -> restart
# -> the replay must truncate the torn tail, re-apply every acked
# record, and pass the structural audit -> compact -> clean shutdown.
# The exhaustive suite lives in tests/test_dynamic.py behind the
# `dynamic` pytest marker; BENCH_dynamic.json (scripts/bench_smoke.sh)
# carries the sustained-churn numbers.
#
# Usage: scripts/churn_smoke.sh [work_dir]
set -eu
cd "$(dirname "$0")/.."
WORK_DIR="${1:-$(mktemp -d)}"
CKPT="$WORK_DIR/cover.ckpt"
JOURNAL="$CKPT.journal"
LOG="$WORK_DIR/churn_serve.log"
N=40
PORT=$((21000 + $$ % 20000))

PYTHONPATH=src python -m repro checkpoint --family euclidean --n "$N" \
    --what cover --out "$CKPT"

PYTHONPATH=src python -m repro serve "$CKPT" --family euclidean --n "$N" \
    --dynamic --port "$PORT" --flush-ms 1.0 >"$LOG" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Phase 1: interleaved mutations and queries; record how far we got.
PYTHONPATH=src python - "$PORT" "$N" "$WORK_DIR/acked.txt" <<'EOF'
import sys

from repro.serve import ServeClient, wait_for_server

port, n, out = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
wait_for_server("127.0.0.1", port, timeout=120)

with ServeClient("127.0.0.1", port) as client:
    health = client.health()
    assert health["ready"], health
    assert health["service"]["dynamic"] is True, health

    inserted = []
    for i in range(4):
        response = client.insert([50.0 + 40.0 * i, 75.0 + 25.0 * i])
        assert response["status"] == "ok", response
        inserted.append(response["result"]["point_id"])
        # Query the fresh point immediately: the patched generation
        # (and its router) must serve it.
        for op in ("distance", "path", "route"):
            reply = client.request(op, u=i, v=inserted[-1])
            assert reply["status"] == "ok", reply
    deleted = client.delete(3)
    assert deleted["status"] == "ok", deleted
    refused = client.distance(3, 5)
    assert refused["status"] == "error" and "tombstoned" in refused["error"], refused

    status = client.health()["service"]
    assert status["applied_seq"] == 5, status
    assert status["journal_records"] == 5, status
    with open(out, "w") as fh:
        fh.write(f"{status['applied_seq']} {status['active_points']}\n")
    print(
        f"churn traffic ok: {len(inserted)} inserts + 1 delete acked, "
        f"{status['active_points']} active points"
    )
EOF

# Phase 2: crash. kill -9 gives the daemon no chance to flush or
# close anything; the torn half-frame we append simulates the power
# cut landing mid-append (after the ack of seq 5, during seq 6).
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
printf '\x99\x00\x00\x00\xde\xad\xbe\xefgarbage' >> "$JOURNAL"
echo "daemon killed -9; journal tail torn ($(wc -c < "$JOURNAL") bytes)"

# Phase 3: restart. enable_dynamic must truncate the torn tail,
# replay the five acked records, and pass the structural audit before
# the daemon reports ready.
PYTHONPATH=src python -m repro serve "$CKPT" --family euclidean --n "$N" \
    --dynamic --port "$PORT" --flush-ms 1.0 >"$LOG.2" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

PYTHONPATH=src python - "$PORT" "$N" "$WORK_DIR/acked.txt" <<'EOF'
import sys

from repro.serve import ServeClient, wait_for_server

port, n, acked = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
expect_seq, expect_active = map(int, open(acked).read().split())
wait_for_server("127.0.0.1", port, timeout=120)

with ServeClient("127.0.0.1", port) as client:
    status = client.health()["service"]
    assert status["dynamic"] is True, status
    assert status["applied_seq"] == expect_seq, (status, expect_seq)
    assert status["active_points"] == expect_active, (status, expect_active)

    # Every acked mutation survived the crash: the new points answer,
    # the tombstone still refuses.
    for u in (n, n + 1, n + 2, n + 3):
        reply = client.path(0, u)
        assert reply["status"] == "ok", reply
    refused = client.distance(3, 5)
    assert refused["status"] == "error" and "tombstoned" in refused["error"], refused
    print(
        f"replay ok: seq {status['applied_seq']} restored, "
        f"{status['journal_records']} journal records, audit passed"
    )

    # Fold the journal into the checkpoint and keep mutating: seq
    # numbering continues across the compaction epoch.
    compacted = client.compact()
    assert compacted["status"] == "ok", compacted
    assert compacted["result"]["journal_records"] == 0, compacted
    after = client.insert([500.0, 500.0])
    assert after["status"] == "ok", after
    assert after["result"]["seq"] == expect_seq + 1, after
    print("compact ok: journal folded, mutation seq continues")

    client.shutdown()
EOF

if wait "$SERVE_PID"; then
    trap - EXIT
else
    echo "ERROR: daemon exited non-zero after shutdown op" >&2
    cat "$LOG.2" >&2
    exit 1
fi

echo "churn smoke passed"
