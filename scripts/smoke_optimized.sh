#!/usr/bin/env sh
# Smoke the suite under `python -O`, which strips every `assert`
# statement.  Library correctness checks must survive (they raise
# repro.errors exceptions, enforced by tests/test_no_bare_asserts.py);
# test asserts stay live through pytest's assertion rewriting.
#
# Usage: scripts/smoke_optimized.sh [extra pytest args]
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -O -m pytest -x -q "$@"
