#!/usr/bin/env sh
# Smoke the checkpoint subsystem end to end through the CLI:
# save -> audit -> corrupt -> audit must fail -> recover -> audit clean.
# Exercises every layer (format v2 checksums, structural auditor,
# per-tree recovery) on a small instance; fast enough for CI.  The
# exhaustive property tests live in tests/test_checkpoint.py behind the
# `checkpoint` pytest marker.
#
# Usage: scripts/checkpoint_smoke.sh [work_dir]
set -eu
cd "$(dirname "$0")/.."
WORK_DIR="${1:-$(mktemp -d)}"
CKPT="$WORK_DIR/cover.ckpt"

# Run the whole pipeline through the process-pool engine: every build,
# audit and per-tree recovery below fans out across 2 workers, so the
# smoke covers the parallel paths alongside the checkpoint layers.
REPRO_WORKERS=2
export REPRO_WORKERS

PYTHONPATH=src python -m repro checkpoint --family euclidean --n 70 \
    --what cover --out "$CKPT"

PYTHONPATH=src python -m repro audit --checkpoint "$CKPT" \
    --family euclidean --n 70

# Corrupt one byte in the middle of the file; the audit must now fail
# with a typed error (non-zero exit), never a wrong answer.
PYTHONPATH=src python - "$CKPT" <<'EOF'
import sys

path = sys.argv[1]
with open(path, "rb") as handle:
    raw = bytearray(handle.read())
raw[len(raw) // 2] ^= 0xFF
with open(path, "wb") as handle:
    handle.write(raw)
print(f"flipped one byte in {path}")
EOF

if PYTHONPATH=src python -m repro audit --checkpoint "$CKPT" \
    --family euclidean --n 70; then
    echo "ERROR: audit accepted a corrupted checkpoint" >&2
    exit 1
fi
echo "corrupted checkpoint rejected as expected"

# Automatic recovery rebuilds and resaves; the audit passes again.
PYTHONPATH=src python -m repro audit --checkpoint "$CKPT" \
    --family euclidean --n 70 --recover --resave
PYTHONPATH=src python -m repro audit --checkpoint "$CKPT" \
    --family euclidean --n 70

echo "checkpoint smoke passed"
