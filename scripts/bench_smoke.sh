#!/usr/bin/env sh
# Smoke the benchmark-regression harness end to end: run a tiny-n
# `python -m repro bench --quick`, then validate the emitted
# BENCH_tree_covers.json / BENCH_navigation.json / BENCH_serving.json /
# BENCH_dynamic.json against the schema contract
# (repro.bench.validate_bench_json).  Fast enough for CI; the
# full-size >= 3x gate lives in tests/test_bench_harness.py behind the
# `bench` pytest marker, and the crash-path smoke for the dynamic rows
# (kill -9 mid-journal, restart, replay) is scripts/churn_smoke.sh.
#
# Usage: scripts/bench_smoke.sh [out_dir]
set -eu
cd "$(dirname "$0")/.."
OUT_DIR="${1:-$(mktemp -d)}"

# REPRO_WORKERS=2 routes every per-tree build through the process-pool
# engine, so the smoke also covers the shared-memory shipping path and
# the workers/parallel_speedup fields of the emitted schemas.
REPRO_WORKERS=2 PYTHONPATH=src python -m repro bench --quick --n 80 --nav-n 60 \
    --serve-n 60 --out-dir "$OUT_DIR"

PYTHONPATH=src python - "$OUT_DIR" <<'EOF'
import json
import sys

from repro.bench import validate_bench_json

out_dir = sys.argv[1]
for name in ("BENCH_tree_covers.json", "BENCH_navigation.json",
             "BENCH_serving.json", "BENCH_dynamic.json"):
    path = f"{out_dir}/{name}"
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_bench_json(payload)
    print(f"{path}: schema {payload['schema']} OK "
          f"({len(payload['results'])} results)")

# The zeta attack: the robust rebuild must never emit *more* trees than
# the frozen seed construction, and the pruning/compact rows must be
# present and actually shrinking the cover within their re-verified
# stretch budgets.
with open(f"{out_dir}/BENCH_tree_covers.json", encoding="utf-8") as handle:
    covers = json.load(handle)
rows = {entry["name"]: entry for entry in covers["results"]}
robust = rows["robust_cover"]["detail"]
if robust["zeta"] > robust["zeta_seed"]:
    raise SystemExit(
        f"robust cover grew past the seed: zeta {robust['zeta']} > "
        f"zeta_seed {robust['zeta_seed']}"
    )
pruning = rows["cover_pruning"]["detail"]
assert pruning["zeta_after"] < pruning["zeta_before"], pruning
assert pruning["reduction"] > 1.0, pruning
assert pruning["stretch_max"] <= pruning["gamma"] + 1e-6, pruning
assert pruning["nav_delta"]["retained_paths_identical"] is True, pruning
compact = rows["compact_cover"]["detail"]
assert compact["zeta"] < compact["zeta_robust"], compact
print(f"zeta gates OK (robust {robust['zeta']} <= seed "
      f"{robust['zeta_seed']}, pruned to {pruning['zeta_after']} "
      f"[{pruning['reduction']}x], compact {compact['zeta']})")

# The packed-query rewrite must keep scalar queries at least at parity
# with the frozen seed loop, even at smoke sizes — a speedup below 1.0
# here means the hot path regressed to (or below) the seed
# implementation.
with open(f"{out_dir}/BENCH_navigation.json", encoding="utf-8") as handle:
    nav = json.load(handle)
rows = {entry["name"]: entry for entry in nav["results"]}
scalar = rows["query_scalar"]
if scalar["speedup"] is not None and scalar["speedup"] < 1.0:
    raise SystemExit(
        f"query_scalar regressed below the seed baseline: "
        f"speedup {scalar['speedup']} (current {scalar['seconds']}s, "
        f"seed {scalar['seed_seconds']}s)"
    )
print(f"query_scalar speedup {scalar['speedup']}x vs seed: OK")

# The zero-copy serving rows must be present and internally consistent.
with open(f"{out_dir}/BENCH_serving.json", encoding="utf-8") as handle:
    serving = json.load(handle)
rows = {entry["name"]: entry for entry in serving["results"]}
cold = rows["cold_load_first_query"]
assert cold["detail"]["mapped"] is True, cold
assert cold["detail"]["first_query_status"] == "ok", cold
fleet = rows["multi_worker_rss"]
assert fleet["detail"]["workers"] >= 2, fleet
print(f"mapped serving rows OK (cold load {cold['seconds']}s, "
      f"pss_ratio {fleet['detail'].get('pss_ratio')})")

# The dynamic rows must carry the headline numbers: a rebuild
# baseline, sustained update throughput, and the crossover summary.
with open(f"{out_dir}/BENCH_dynamic.json", encoding="utf-8") as handle:
    dynamic = json.load(handle)
rows = {entry["name"]: entry for entry in dynamic["results"]}
assert rows["full_rebuild"]["seconds"] > 0, rows["full_rebuild"]
assert rows["update_batch_1"]["detail"]["updates_per_s"] > 0
crossover = rows["patch_vs_rebuild"]["detail"]
assert crossover["crossover_batch"] >= 1, crossover
print(f"dynamic rows OK ({rows['update_batch_1']['detail']['updates_per_s']} "
      f"updates/s at batch 1, crossover batch {crossover['crossover_batch']})")
EOF

# Second pass with --trace: the BENCH rows must now embed span trees,
# and every one of them must validate against the checked-in trace
# schema (src/repro/observability/trace_schema.json).
TRACE_DIR="$OUT_DIR/trace"
PYTHONPATH=src python -m repro bench --quick --n 80 --nav-n 60 --no-baseline \
    --no-serving --no-dynamic --trace --out-dir "$TRACE_DIR"

PYTHONPATH=src python - "$TRACE_DIR" <<'EOF'
import json
import sys

from repro.bench import validate_bench_json
from repro.observability import trace_document, validate_trace_json

out_dir = sys.argv[1]
traced_rows = 0
for name in ("BENCH_tree_covers.json", "BENCH_navigation.json"):
    path = f"{out_dir}/{name}"
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_bench_json(payload)
    if not payload["config"].get("trace"):
        raise SystemExit(f"{path}: config.trace missing from a --trace run")
    for entry in payload["results"]:
        if "trace" not in entry:
            raise SystemExit(f"{path}: result {entry['name']} lacks trace spans")
        problems = validate_trace_json(
            trace_document(entry["trace"], payload.get("trace_metrics"))
        )
        if problems:
            raise SystemExit(f"{path}: {entry['name']}: {problems}")
        traced_rows += 1
print(f"trace pass OK: {traced_rows} BENCH rows validated against the "
      "trace schema")
EOF

# And the report renderer must digest a traced artifact.
PYTHONPATH=src python -m repro trace-report "$TRACE_DIR/BENCH_navigation.json" \
    > /dev/null

echo "bench smoke passed"
