#!/usr/bin/env sh
# Smoke the benchmark-regression harness end to end: run a tiny-n
# `python -m repro bench --quick`, then validate the emitted
# BENCH_tree_covers.json / BENCH_navigation.json against the schema
# contract (repro.bench.validate_bench_json).  Fast enough for CI;
# the full-size >= 3x gate lives in tests/test_bench_harness.py
# behind the `bench` pytest marker.
#
# Usage: scripts/bench_smoke.sh [out_dir]
set -eu
cd "$(dirname "$0")/.."
OUT_DIR="${1:-$(mktemp -d)}"

# REPRO_WORKERS=2 routes every per-tree build through the process-pool
# engine, so the smoke also covers the shared-memory shipping path and
# the workers/parallel_speedup fields of the emitted schemas.
REPRO_WORKERS=2 PYTHONPATH=src python -m repro bench --quick --n 80 --nav-n 60 \
    --out-dir "$OUT_DIR"

PYTHONPATH=src python - "$OUT_DIR" <<'EOF'
import json
import sys

from repro.bench import validate_bench_json

out_dir = sys.argv[1]
for name in ("BENCH_tree_covers.json", "BENCH_navigation.json"):
    path = f"{out_dir}/{name}"
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_bench_json(payload)
    print(f"{path}: schema {payload['schema']} OK "
          f"({len(payload['results'])} results)")
EOF

echo "bench smoke passed"
