"""Masked (active-subset) robust-cover construction and patch planning.

The dynamic layer never renumbers points: every point ever inserted
keeps its index, and deletes *tombstone* an index instead of removing
it.  This module rebuilds the Theorem 4.1 machinery over the **active
subset** of a grown index space:

* :func:`build_nets` / :func:`nets_after_insert` maintain the nested
  ``2^i``-nets over active indices.  ``greedy_net`` scans candidates
  in index order, so an appended point cannot change earlier
  selections — an insert updates each level in O(1) net queries
  (prefix stability), and a delete recomputes bottom-up with an
  early stop once a level's net matches the cached one (everything
  above is reused verbatim).
* :func:`compute_sweep` re-runs the pairing-cover sweep and merge-
  group precomputation of :func:`~repro.treecover.dumbbell.robust_tree_cover`
  only on levels whose inputs (net or covering radius) changed,
  reusing per-level pairing sets, connectivity groups, gather groups,
  and KD-trees from the previous :class:`SweepState`.
* :func:`build_trees` replays the merge scripts exactly like
  ``_build_robust_tree``, with one twist in ``finish``: the anchor of
  the final root is the first *active* component root, so a
  tombstoned singleton leaf can never become a tree's representative.
* :func:`touched_task_indexes` classifies which ``(phase, set)``
  trees a mutation actually touched (their merge-script slice
  changed); untouched trees are kept verbatim by the caller.

Correctness rests on an order-isomorphism argument: the masked
construction on ``(coords, active, pinned i_min/i_max, eps)`` is
index-map-isomorphic to the plain construction on the compacted
active point set — nets, pairing sort keys, union-find shapes, and
group orders all map 1:1 — which the tier-1 differential oracle in
``tests/test_dynamic.py`` checks end to end.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import check
from ..graphs.tree import Tree
from ..metrics.base import Metric
from ..metrics.doubling import NetHierarchy, greedy_net
from ..observability import OBS, trace
from ..parallel import map_per_tree
from ..treecover.base import CoverTree
from ..treecover.dumbbell import _ForestBuilder, pairing_radius

__all__ = [
    "ActiveHierarchy",
    "SweepState",
    "active_covering_radius",
    "build_nets",
    "nets_after_insert",
    "compute_sweep",
    "build_trees",
    "touched_task_indexes",
    "repair_root_anchor",
]

_C_RESWEPT = OBS.registry.counter("dynamic.levels_reswept")
_C_REUSED = OBS.registry.counter("dynamic.levels_reused")


class ActiveHierarchy(NetHierarchy):
    """A :class:`NetHierarchy` over precomputed nets of the active set.

    Skips the base constructor (the nets are maintained incrementally
    by :func:`build_nets`/:func:`nets_after_insert`) but inherits all
    query methods, including the per-level KD-tree cache that
    :func:`compute_sweep` carries over for unchanged levels.
    """

    def __init__(self, metric: Metric, nets: Dict[int, List[int]], i_min: int, i_max: int):
        self.metric = metric
        self.i_min = i_min
        self.i_max = i_max
        self.nets = dict(nets)
        self._kdtrees = {}


def active_covering_radius(
    metric: Metric, hierarchy: NetHierarchy, level: int, active: Sequence[int]
) -> float:
    """Covering radius of the level's net over the *active* points.

    Matches :func:`~repro.treecover.dumbbell.covering_radius` float-
    for-float when every index is active (same ``nearest_many`` kernel
    over the same operands).
    """
    net = hierarchy.nets[level]
    if len(net) == len(active):
        return 0.0
    if metric.supports_batch:
        _, dist = metric.nearest_many(active, net, return_distance=True)
        return float(dist.max())
    worst = 0.0
    for p in active:
        worst = max(worst, min(metric.distance(p, q) for q in net))
    return worst


# ---------------------------------------------------------------------------
# Net maintenance


def build_nets(
    metric: Metric,
    active: Sequence[int],
    i_min: int,
    i_max: int,
    prev_nets: Optional[Dict[int, List[int]]] = None,
) -> Dict[int, List[int]]:
    """Nested nets over ``active`` (must be sorted ascending).

    With ``prev_nets`` (the nets before a mutation), recomputation
    stops as soon as a level's candidate list matches the cached run:
    identical candidates give identical greedy output, so every level
    above is reused verbatim (same list objects — :func:`compute_sweep`
    exploits the identity for KD-tree reuse).
    """
    nets: Dict[int, List[int]] = {i_min: list(active)}
    for i in range(i_min + 1, i_max + 1):
        if prev_nets is not None and nets[i - 1] == prev_nets.get(i - 1):
            nets[i] = prev_nets[i]
            continue
        nets[i] = greedy_net(metric, nets[i - 1], 2.0**i)
    return nets


def nets_after_insert(
    metric: Metric,
    prev_nets: Dict[int, List[int]],
    i_min: int,
    i_max: int,
    new_id: int,
) -> Dict[int, List[int]]:
    """Nets after appending ``new_id`` (the largest active index).

    ``greedy_net`` iterates candidates in index order, so the appended
    point never changes earlier selections: level ``i`` keeps its old
    net, plus ``new_id`` iff no old net point covers it (distance
    ``> 2^i``).  Once covered at some level it leaves the candidate
    set, and all higher nets are reused untouched.
    """
    nets: Dict[int, List[int]] = {i_min: prev_nets[i_min] + [new_id]}
    in_net = True
    for i in range(i_min + 1, i_max + 1):
        old = prev_nets[i]
        if not in_net:
            nets[i] = old
            continue
        if old:
            _, dist = metric.nearest_many([new_id], old, return_distance=True)
            if float(dist[0]) <= 2.0**i:
                in_net = False
                nets[i] = old
                continue
        nets[i] = old + [new_id]
    return nets


# ---------------------------------------------------------------------------
# The pairing + merge-group sweep, cached per level


class SweepState:
    """Everything the per-tree replays need, with per-level provenance.

    Holds the nets, measured covering radii, pairing sets, and the two
    merge-group families (connectivity and pair-gather) of one cover
    generation, plus the derived phase/task layout.  A new state built
    from a previous one shares the unchanged per-level pieces by
    object identity.
    """

    def __init__(
        self,
        metric: Metric,
        eps: float,
        i_min: int,
        i_max: int,
        nets: Dict[int, List[int]],
    ):
        self.eps = eps
        self.i_min = i_min
        self.i_max = i_max
        self.nets = nets
        self.phases = math.ceil(math.log2(1.0 / eps)) + 2
        ratio = 2.0**-self.phases
        self.gather = (2.0 + 0.5 * ratio / eps) / (1.0 - 4.0 * ratio) + 0.5
        self.top = i_max + self.phases
        self.hierarchy = ActiveHierarchy(metric, nets, i_min, i_max)
        self.covs: Dict[int, float] = {}
        self.pair_sets: Dict[int, List[List[Tuple[int, int]]]] = {}
        self.conn_groups: Dict[int, List[List[int]]] = {}
        self.pair_groups: Dict[int, List[List[List[int]]]] = {}
        self.levels_by_phase: List[List[int]] = [
            [
                i
                for i in range(i_min + 1, self.top + 1)
                if (i - (i_min + 1)) % self.phases == p % self.phases
            ]
            for p in range(self.phases)
        ]
        self.sets_per_phase: List[int] = [0] * self.phases
        self.tasks: List[Tuple[int, int]] = []
        self.levels_reswept = 0
        self.levels_reused = 0

    def _finalize_tasks(self) -> None:
        sets_per_phase = [0] * self.phases
        for i, sets in self.pair_sets.items():
            phase = (i - (self.i_min + 1)) % self.phases
            sets_per_phase[phase] = max(sets_per_phase[phase], len(sets))
        self.sets_per_phase = sets_per_phase
        self.tasks = [
            (p, j)
            for p in range(self.phases)
            for j in range(max(sets_per_phase[p], 1))
        ]


def _pairing_sets_for_level(
    metric: Metric,
    hierarchy: NetHierarchy,
    eps: float,
    i: int,
    cov: float,
) -> List[List[Tuple[int, int]]]:
    """One level of :func:`~repro.treecover.dumbbell.build_pairing_covers`,
    verbatim, against the active hierarchy."""
    net = hierarchy.nets[i]
    pair_radius = pairing_radius(eps, i, cov)
    separation = 2.0 * pair_radius + 10.0 * 2.0**i

    near_lists = hierarchy.net_points_within_many(i, net, pair_radius)
    pairs_at_level: List[Tuple[int, int]] = [
        (x, y) for x, nbrs in zip(net, near_lists) for y in nbrs if y > x
    ]
    if pairs_at_level:
        dist = metric.pair_distances(
            [x for x, _ in pairs_at_level], [y for _, y in pairs_at_level]
        )
        order = sorted(
            range(len(pairs_at_level)),
            key=lambda t: (dist[t], pairs_at_level[t]),
        )
        pairs_at_level = [pairs_at_level[t] for t in order]

    endpoints = sorted({v for pair in pairs_at_level for v in pair})
    sep_lists = hierarchy.net_points_within_many(i, endpoints, separation)
    sep_near = dict(zip(endpoints, sep_lists))

    sets: List[List[Tuple[int, int]]] = []
    endpoint_sets: Dict[int, set] = {}
    for x, y in pairs_at_level:
        blocked = set()
        for end in (x, y):
            for z in sep_near[end]:
                blocked |= endpoint_sets.get(z, set())
        index = 0
        while index in blocked:
            index += 1
        if index == len(sets):
            sets.append([])
        sets[index].append((x, y))
        for end in (x, y):
            endpoint_sets.setdefault(end, set()).add(index)
    return sets


def _clamp(level: int, i_min: int, i_max: int) -> int:
    return min(max(level, i_min), i_max)


def compute_sweep(
    metric: Metric,
    active: Sequence[int],
    eps: float,
    i_min: int,
    i_max: int,
    nets: Dict[int, List[int]],
    prev: Optional[SweepState] = None,
) -> SweepState:
    """Pairing-cover + merge-group sweep over the active set.

    Reuses every per-level artifact from ``prev`` whose inputs did not
    change: pairing sets depend on ``(net(i), cov(i))``, connectivity
    groups on ``(net(min(i, i_max)), net(i - phases))``, gather groups
    on ``(pairing sets(i), net(i - phases))``.  Covering radii are
    recomputed exactly every time (one batched ``nearest_many`` per
    level) — they are the cheap inputs that make the change flags
    exact rather than conservative.
    """
    state = SweepState(metric, eps, i_min, i_max, nets)
    same_layout = (
        prev is not None
        and prev.eps == eps
        and prev.i_min == i_min
        and prev.i_max == i_max
    )

    def same_net(level: int) -> bool:
        if not same_layout:
            return False
        old = prev.nets.get(level)
        return old is nets[level] or old == nets[level]

    # Carry KD-trees across for levels whose net is unchanged.
    if same_layout:
        for level in range(i_min, i_max + 1):
            if same_net(level) and level in prev.hierarchy._kdtrees:
                state.hierarchy._kdtrees[level] = prev.hierarchy._kdtrees[level]

    with trace("dynamic.sweep", n=len(active)):
        for i in range(i_min, i_max + 1):
            state.covs[i] = active_covering_radius(metric, state.hierarchy, i, active)

        for i in range(i_min, i_max + 1):
            if same_net(i) and prev.covs.get(i) == state.covs[i]:
                state.pair_sets[i] = prev.pair_sets[i]
                state.levels_reused += 1
            else:
                state.pair_sets[i] = _pairing_sets_for_level(
                    metric, state.hierarchy, eps, i, state.covs[i]
                )
                state.levels_reswept += 1

        phases = state.phases
        for i in range(i_min + 1, state.top + 1):
            lower = i - phases
            net_level = min(i, i_max)
            lower_level = _clamp(lower, i_min, i_max)
            if same_layout and same_net(net_level) and same_net(lower_level):
                state.conn_groups[i] = prev.conn_groups[i]
            else:
                net = state.hierarchy.net(net_level)
                near_conn = state.hierarchy.net_points_within_many(
                    lower, net, 2.0 * 2.0**i
                )
                state.conn_groups[i] = [
                    group
                    for z, nbrs in zip(net, near_conn)
                    if len(group := list(dict.fromkeys([z] + nbrs))) > 1
                ]
            sets = state.pair_sets.get(i)
            if not sets:
                continue
            if (
                same_layout
                and same_net(lower_level)
                and i in prev.pair_groups
                and prev.pair_sets.get(i) == sets
            ):
                state.pair_groups[i] = prev.pair_groups[i]
            else:
                endpoints = sorted({v for pairs in sets for pair in pairs for v in pair})
                gath_lists = state.hierarchy.net_points_within_many(
                    lower, endpoints, state.gather * 2.0**i
                )
                gath = dict(zip(endpoints, gath_lists))
                state.pair_groups[i] = [
                    [
                        list(dict.fromkeys([x, y] + gath[x] + gath[y]))
                        for x, y in pairs
                    ]
                    for pairs in sets
                ]

    state._finalize_tasks()
    if OBS.enabled:
        _C_RESWEPT.inc(state.levels_reswept)
        _C_REUSED.inc(state.levels_reused)
    return state


# ---------------------------------------------------------------------------
# Per-tree replay with the masked finish rule


class _MaskedForestBuilder(_ForestBuilder):
    """The forest builder with a tombstone-aware final-root anchor."""

    def finish_masked(self, metric: Metric, n: int, active_mask: bytes) -> CoverTree:
        root_node = self._root_node
        roots = sorted({root_node[leader] for leader in self._leaders})
        if len(roots) > 1:
            # The final root's representative must be reachable through
            # live points: anchor on the first component root that is
            # an internal node (its rep is a net point, hence active)
            # or an active leaf.  With no tombstones this is roots[0],
            # exactly the plain _ForestBuilder.finish rule.
            anchors = [r for r in roots if r >= n or active_mask[r]]
            anchor = anchors[0] if anchors else roots[0]
            node = len(self.parent_node)
            self.parent_node.append(-1)
            self.rep.append(self.rep[anchor])
            for r in roots:
                self.parent_node[r] = node
        parent_node = self.parent_node
        rep = self.rep
        children = [v for v, p in enumerate(parent_node) if p != -1]
        weights = [0.0] * len(parent_node)
        if children:
            ws = metric.pair_distances(
                [rep[parent_node[v]] for v in children], [rep[v] for v in children]
            )
            for index, v in enumerate(children):
                weights[v] = float(ws[index])
        tree = Tree(parent_node, weights, validate=False)
        return CoverTree(tree, list(range(n)), rep)


def _build_dynamic_tree(ctx, task: Tuple[int, int]) -> CoverTree:
    """Replay one (phase, set-index) merge script over the grown index
    space — byte-for-byte the loop of ``_build_robust_tree``, closed by
    the masked finish."""
    p, j = task
    levels_by_phase, conn_groups, pair_groups, n, active_mask = ctx.payload
    builder = _MaskedForestBuilder(n)
    merge = builder.merge
    for i in levels_by_phase[p]:
        groups = pair_groups.get(i)
        if groups is not None and j < len(groups):
            for group in groups[j]:
                merge(group, rep=group[0])
        for group in conn_groups[i]:
            merge(group, rep=group[0])
    return builder.finish_masked(ctx.metric, n, active_mask)


def build_trees(
    metric: Metric,
    sweep: SweepState,
    active_mask: Sequence[bool],
    workers: Optional[int] = None,
    reuse: Optional[Sequence[Optional[CoverTree]]] = None,
) -> List[CoverTree]:
    """Build the cover trees for ``sweep.tasks``.

    ``reuse[t]`` (when given) keeps that task's existing tree verbatim
    — the patch path passes the untouched trees here so only changed
    merge scripts replay.  Output order always matches ``sweep.tasks``.
    """
    n = metric.n
    mask = bytes(bytearray(1 if a else 0 for a in active_mask))
    check(len(mask) == n, "active mask must have one flag per metric point")
    if reuse is None:
        reuse = [None] * len(sweep.tasks)
    check(len(reuse) == len(sweep.tasks), "reuse list must align with tasks")
    pending = [t for t, kept in enumerate(reuse) if kept is None]
    trees: List[Optional[CoverTree]] = list(reuse)
    if pending:
        with trace("dynamic.build_trees", trees=len(pending)):
            built = map_per_tree(
                _build_dynamic_tree,
                [sweep.tasks[t] for t in pending],
                workers=workers,
                metric=metric,
                payload=(
                    sweep.levels_by_phase,
                    sweep.conn_groups,
                    sweep.pair_groups,
                    n,
                    mask,
                ),
            )
        for slot, tree in zip(pending, built):
            trees[slot] = tree
    return trees  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Patch planning


def _pair_slice(
    pair_groups: Dict[int, List[List[List[int]]]], i: int, j: int
) -> Optional[List[List[int]]]:
    groups = pair_groups.get(i)
    if groups is None or j >= len(groups):
        return None
    return groups[j]


def touched_task_indexes(sweep: SweepState, prev: SweepState) -> List[int]:
    """Task indexes whose merge script changed between two sweeps.

    A tree must replay iff any level of its phase changed its
    connectivity groups or its set-``j`` slice of the gather groups.
    Valid only when the task layout is identical (same eps, pinned
    range, and per-phase set counts); callers fall back to a full
    rebuild otherwise.
    """
    if (
        sweep.tasks != prev.tasks
        or sweep.levels_by_phase != prev.levels_by_phase
    ):
        return list(range(len(sweep.tasks)))
    changed_conn = {
        i
        for i in sweep.conn_groups
        if sweep.conn_groups[i] is not prev.conn_groups.get(i)
        and sweep.conn_groups[i] != prev.conn_groups.get(i)
    }
    touched: List[int] = []
    for t, (p, j) in enumerate(sweep.tasks):
        for i in sweep.levels_by_phase[p]:
            if i in changed_conn:
                touched.append(t)
                break
            new_slice = _pair_slice(sweep.pair_groups, i, j)
            old_slice = _pair_slice(prev.pair_groups, i, j)
            if new_slice is not old_slice and new_slice != old_slice:
                touched.append(t)
                break
    return touched


def repair_root_anchor(
    cover_tree: CoverTree,
    metric: Metric,
    active_mask: Sequence[bool],
    n: int,
) -> CoverTree:
    """Re-anchor a kept tree whose final-root representative died.

    A deleted point that appears in no merge group of a tree is a
    singleton leaf child of the final root; if it was also the anchor
    (``rep_point[root] == p``), a from-scratch replay would pick the
    next qualifying component root instead.  This reproduces exactly
    that choice — new anchor, new root rep, root-child edge weights
    from one batched kernel call — without replaying the merges, and
    returns a fresh :class:`CoverTree` (the old object keeps serving
    in-flight snapshots).
    """
    tree = cover_tree.tree
    root = tree.root
    rep = list(cover_tree.rep_point)
    children = sorted(v for v, par in enumerate(tree.parents) if par == root)
    anchors = [c for c in children if c >= n or active_mask[c]]
    check(bool(anchors), "tree root has no live component to anchor on")
    rep[root] = rep[anchors[0]]
    weights = list(tree.weights)
    ws = metric.pair_distances([rep[root]] * len(children), [rep[c] for c in children])
    for index, c in enumerate(children):
        weights[c] = float(ws[index])
    new_tree = Tree(list(tree.parents), weights, validate=False)
    return CoverTree(new_tree, list(cover_tree.vertex_of_point), rep)
