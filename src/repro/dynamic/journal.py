"""Crash-safe write-ahead journal for dynamic mutations.

The journal is a sidecar file next to the v2 checkpoint
(``<ckpt>.journal``) holding one CRC-guarded record per applied
mutation.  A mutation is acknowledged only after its record is
flushed *and* fsynced, so any acked update survives a ``kill -9``;
conversely a torn tail (partial frame from a crash mid-append) is
detected on open and truncated away, leaving the longest valid
prefix.  Reloading a dynamic checkpoint replays the surviving
records in order to converge to the same audited structure.

Record framing
--------------
Each record is ``struct.pack("<II", len(payload), crc32(payload))``
followed by the payload — canonical JSON (sorted keys, compact
separators) encoded as UTF-8.  The first record is always a header::

    {"kind": "header", "format": "repro.journal/1", "base_seq": N}

``base_seq`` is the sequence number already folded into the base
checkpoint; op records carry monotonically increasing ``seq`` values
starting at ``base_seq + 1``::

    {"kind": "op", "seq": S, "op": "insert", "point": [x, y, ...]}
    {"kind": "op", "seq": S, "op": "delete", "point_id": p}

Replay is idempotent: records with ``seq <= applied_seq`` are
skipped, so replaying twice (or replaying after a partially applied
``compact``) is a no-op.  ``reset`` atomically rewrites the journal
to a fresh header — used by ``compact`` after the checkpoint absorbs
the journal's effects.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, List, Optional

from ..errors import CheckpointCorruption, check
from ..observability import OBS

__all__ = ["JournalRecord", "UpdateJournal", "journal_path_for"]

_FRAME = struct.Struct("<II")
JOURNAL_FORMAT = "repro.journal/1"

# Counters/gauges register at import so /metrics exports them even at
# zero; journal.length tracks the op records in the open journal.
_JOURNAL_APPENDS = OBS.registry.counter("journal.appends")
_JOURNAL_TRUNCATED = OBS.registry.counter("journal.torn_tails_truncated")
_JOURNAL_LENGTH = OBS.registry.gauge("journal.length")


def journal_path_for(checkpoint_path: str) -> str:
    """Sidecar journal path for a checkpoint file."""
    return str(checkpoint_path) + ".journal"


def _encode(record: Dict[str, Any]) -> bytes:
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


class JournalRecord(dict):
    """A decoded journal record (plain dict with attribute sugar)."""

    @property
    def seq(self) -> int:
        return int(self["seq"])

    @property
    def op(self) -> str:
        return str(self["op"])


def _parse_frames(blob: bytes) -> tuple[List[Dict[str, Any]], int]:
    """Decode valid frames from ``blob``; return (records, valid_length).

    Stops at the first torn or corrupt frame — everything before it is
    the longest valid prefix, everything after is discarded by the
    caller.
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    size = len(blob)
    while offset + _FRAME.size <= size:
        length, crc = _FRAME.unpack_from(blob, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > size:
            break  # torn tail: payload shorter than the frame promised
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt frame; nothing after it can be trusted
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset


class UpdateJournal:
    """Append-only mutation journal with fsync-before-ack semantics."""

    def __init__(self, path: str, base_seq: int = 0):
        self.path = str(path)
        self.base_seq = int(base_seq)
        self.records: List[JournalRecord] = []
        self._fh = None
        self._open_or_create()

    # -- lifecycle ----------------------------------------------------

    def _open_or_create(self) -> None:
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            self._load_existing()
        else:
            self._write_fresh(self.base_seq)
        self._fh = open(self.path, "ab")
        _JOURNAL_LENGTH.set(len(self.records))

    def _load_existing(self) -> None:
        with open(self.path, "rb") as fh:
            blob = fh.read()
        parsed, valid_len = _parse_frames(blob)
        if valid_len < len(blob):
            _JOURNAL_TRUNCATED.inc()
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_len)
                fh.flush()
                os.fsync(fh.fileno())
        check(
            bool(parsed),
            f"journal {self.path!r} has no valid header record",
            CheckpointCorruption,
        )
        header = parsed[0]
        check(
            header.get("kind") == "header"
            and header.get("format") == JOURNAL_FORMAT
            and isinstance(header.get("base_seq"), int),
            f"journal {self.path!r} has a malformed header: {header!r}",
            CheckpointCorruption,
        )
        self.base_seq = int(header["base_seq"])
        last_seq = self.base_seq
        ops: List[JournalRecord] = []
        for record in parsed[1:]:
            check(
                record.get("kind") == "op"
                and isinstance(record.get("seq"), int)
                and isinstance(record.get("op"), str),
                f"journal {self.path!r} has a malformed op record: {record!r}",
                CheckpointCorruption,
            )
            check(
                record["seq"] == last_seq + 1,
                f"journal {self.path!r}: seq {record['seq']} after {last_seq} "
                "(records must be gap-free and monotone)",
                CheckpointCorruption,
            )
            last_seq = record["seq"]
            ops.append(JournalRecord(record))
        self.records = ops

    def _write_fresh(self, base_seq: int) -> None:
        header = {"kind": "header", "format": JOURNAL_FORMAT, "base_seq": int(base_seq)}
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(_encode(header))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.base_seq = int(base_seq)
        self.records = []

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "UpdateJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries ------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else self.base_seq

    def __len__(self) -> int:
        return len(self.records)

    def records_after(self, applied_seq: int) -> List[JournalRecord]:
        """Op records not yet folded into the structure (idempotent replay)."""
        return [r for r in self.records if r.seq > applied_seq]

    # -- mutation -----------------------------------------------------

    def append(self, op: str, **fields: Any) -> JournalRecord:
        """Durably record one mutation; returns only after fsync."""
        check(self._fh is not None, "journal is closed")
        record = JournalRecord({"kind": "op", "seq": self.last_seq + 1, "op": op})
        record.update(fields)
        self._fh.write(_encode(dict(record)))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records.append(record)
        _JOURNAL_APPENDS.inc()
        _JOURNAL_LENGTH.set(len(self.records))
        return record

    def reset(self, base_seq: Optional[int] = None) -> None:
        """Atomically rewrite to a fresh header (post-``compact``)."""
        if base_seq is None:
            base_seq = self.last_seq
        self.close()
        self._write_fresh(base_seq)
        self._fh = open(self.path, "ab")
        _JOURNAL_LENGTH.set(0)
