"""The dynamic robust cover: insert/delete without full rebuilds.

:class:`DynamicRobustCover` wraps the Theorem 4.1 construction in a
mutable shell.  The point-index space is append-only — inserts take
the next index, deletes tombstone one — so client-visible ids stay
stable across any mutation history, and every structure is rebuilt
*masked* over the active subset (see :mod:`repro.dynamic.builder`).

Patch-vs-rebuild policy (measured honestly in ``BENCH_dynamic.json``):

* **Inserts** replay every tree.  The new point joins the bottom net
  level and therefore enters connectivity groups across a band at
  least ``phases`` levels wide — one level per phase — so every
  ``(phase, set)`` merge script changes.  The savings on the insert
  path come from the net/sweep side: prefix-stable O(1)-per-level net
  updates, per-level pairing/gather reuse, KD-tree carry-over, and
  batch amortization via :meth:`DynamicRobustCover.apply`.
* **Deletes** genuinely patch: only trees whose merge-script slice
  mentioned the dead point replay; the rest are kept verbatim (their
  per-tree navigators are reused too), with an O(degree) root-anchor
  repair when the deleted point was a tree's representative anchor.
* When the touched fraction reaches ``rebuild_threshold`` (or the
  level range must be re-pinned because a mutation broke out of it),
  the layer falls back to a full masked rebuild — same deterministic
  output, no diff bookkeeping.

Every mutation path lands on a state *identical* (tree for tree,
float for float) to :meth:`DynamicRobustCover.rebuild` on the same
``(coords, active, pinned range)`` — the differential oracle that
tier-1 enforces.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import check
from ..metrics.doubling import scale_levels
from ..metrics.euclidean import EuclideanMetric
from ..observability import OBS, trace
from ..treecover.base import CoverTree, TreeCover
from .builder import (
    SweepState,
    build_nets,
    build_trees,
    compute_sweep,
    nets_after_insert,
    repair_root_anchor,
    touched_task_indexes,
)

__all__ = ["DynamicRobustCover", "PatchReport", "pinned_levels"]

_C_INSERTS = OBS.registry.counter("dynamic.inserts")
_C_DELETES = OBS.registry.counter("dynamic.deletes")
_C_PATCHED = OBS.registry.counter("dynamic.trees_patched")
_C_REBUILDS = OBS.registry.counter("dynamic.full_rebuilds")
_G_ACTIVE = OBS.registry.gauge("dynamic.active_points")


def pinned_levels(metric: EuclideanMetric, eps: float) -> Tuple[int, int]:
    """The level range :func:`robust_tree_cover` would use for ``metric``.

    Pinning the range is what makes mutation histories deterministic:
    the masked construction on ``(coords, active, i_min, i_max, eps)``
    is a pure function, so a journal replay converges to the identical
    structure.
    """
    lo, hi = scale_levels(metric)
    lo -= math.ceil(math.log2(1.0 / eps)) + 2
    return lo, hi


class PatchReport:
    """What one applied mutation batch did (for benches and /metrics)."""

    def __init__(
        self,
        ops: int,
        trees_total: int,
        trees_replayed: int,
        trees_repaired: int,
        levels_reswept: int,
        levels_reused: int,
        rebuilt: bool,
        repinned: bool,
    ):
        self.ops = ops
        self.trees_total = trees_total
        self.trees_replayed = trees_replayed
        self.trees_repaired = trees_repaired
        self.levels_reswept = levels_reswept
        self.levels_reused = levels_reused
        self.rebuilt = rebuilt
        self.repinned = repinned

    @property
    def touched_fraction(self) -> float:
        return self.trees_replayed / self.trees_total if self.trees_total else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "ops": self.ops,
            "trees_total": self.trees_total,
            "trees_replayed": self.trees_replayed,
            "trees_repaired": self.trees_repaired,
            "touched_fraction": round(self.touched_fraction, 4),
            "levels_reswept": self.levels_reswept,
            "levels_reused": self.levels_reused,
            "rebuilt": self.rebuilt,
            "repinned": self.repinned,
        }


class DynamicRobustCover:
    """A robust tree cover that absorbs inserts and deletes.

    Construct with :meth:`from_metric` (fresh) or :meth:`restore`
    (from compacted checkpoint metadata).  Mutate with :meth:`insert`,
    :meth:`delete`, or batched :meth:`apply`; read the current
    generation through :attr:`metric`, :attr:`cover`, and
    :attr:`active`.  Not thread-safe — callers (the serving stack)
    serialize mutations through ``CheckpointService``'s mutate lock.
    """

    def __init__(
        self,
        coords: np.ndarray,
        active: Sequence[int],
        eps: float,
        i_min: int,
        i_max: int,
        base_n: int,
        workers: Optional[int] = None,
        rebuild_threshold: float = 0.35,
        applied_seq: int = 0,
    ):
        check(0 < eps < 1, "eps must lie in (0, 1)", ValueError)
        self.coords = np.asarray(coords, dtype=float)
        self.active: List[int] = sorted(int(a) for a in active)
        check(len(self.active) >= 2, "a dynamic cover needs >= 2 active points", ValueError)
        self.eps = eps
        self.i_min = int(i_min)
        self.i_max = int(i_max)
        self.base_n = int(base_n)
        self.workers = workers
        self.rebuild_threshold = float(rebuild_threshold)
        #: Journal sequence number folded into this structure (managed
        #: by the journal-aware caller; rides into compact metadata).
        self.applied_seq = int(applied_seq)
        self.metric = EuclideanMetric(self.coords)
        self.last_report: Optional[PatchReport] = None
        self._rebuild_state()

    # -- constructors --------------------------------------------------

    @classmethod
    def from_metric(
        cls,
        metric: EuclideanMetric,
        eps: float = 0.5,
        workers: Optional[int] = None,
        rebuild_threshold: float = 0.35,
    ) -> "DynamicRobustCover":
        """Start a dynamic cover from a static metric (all points active).

        The initial generation is tree-for-tree identical to
        ``robust_tree_cover(metric, eps)``.
        """
        lo, hi = pinned_levels(metric, eps)
        return cls(
            metric.points,
            range(metric.n),
            eps,
            lo,
            hi,
            base_n=metric.n,
            workers=workers,
            rebuild_threshold=rebuild_threshold,
        )

    @classmethod
    def restore(
        cls,
        base_metric: EuclideanMetric,
        meta: Dict[str, object],
        workers: Optional[int] = None,
    ) -> "DynamicRobustCover":
        """Rebuild from the ``dynamic`` metadata of a compacted checkpoint."""
        check(
            int(meta["base_n"]) == base_metric.n,
            f"dynamic checkpoint was compacted at base_n={meta['base_n']} "
            f"but the supplied metric has n={base_metric.n}",
            ValueError,
        )
        extra = meta.get("extra_points") or []
        coords = base_metric.points
        if extra:
            coords = np.vstack([coords, np.asarray(extra, dtype=float)])
        return cls(
            coords,
            meta["active"],
            float(meta["eps"]),
            int(meta["i_min"]),
            int(meta["i_max"]),
            base_n=base_metric.n,
            workers=workers,
            applied_seq=int(meta.get("applied_seq", 0)),
        )

    def state_meta(self) -> Dict[str, object]:
        """The metadata a ``compact`` folds into the checkpoint."""
        extra = self.coords[self.base_n :]
        return {
            "format": "repro.dynamic-meta/1",
            "base_n": self.base_n,
            "extra_points": [list(map(float, row)) for row in extra],
            "active": list(self.active),
            "applied_seq": self.applied_seq,
            "eps": self.eps,
            "i_min": self.i_min,
            "i_max": self.i_max,
        }

    # -- current generation --------------------------------------------

    @property
    def n(self) -> int:
        """Size of the index space (tombstones included)."""
        return int(self.coords.shape[0])

    @property
    def active_mask(self) -> List[bool]:
        return self._mask_list()

    def is_active(self, point_id: int) -> bool:
        return 0 <= point_id < self.n and bool(self._mask[point_id])

    def _install(self, sweep: SweepState, trees: List[CoverTree]) -> None:
        old = getattr(self, "cover", None)
        self.sweep = sweep
        self.trees = trees
        self.cover = TreeCover(self.metric, list(trees))
        self._mask = self._mask_list()
        if old is not None:
            old.retire("a mutation superseded this generation")
        if OBS.enabled:
            _G_ACTIVE.set(len(self.active))

    def _rebuild_state(self) -> None:
        """Full masked build of nets, sweep, and all trees."""
        with trace("dynamic.rebuild", n=self.n, active=len(self.active)):
            nets = build_nets(self.metric, self.active, self.i_min, self.i_max)
            sweep = compute_sweep(
                self.metric, self.active, self.eps, self.i_min, self.i_max, nets
            )
            trees = build_trees(
                self.metric, sweep, self._mask_list(), workers=self.workers
            )
        self._install(sweep, trees)

    def _mask_list(self) -> List[bool]:
        mask = [False] * self.n
        for a in self.active:
            mask[a] = True
        return mask

    def rebuild(self) -> "DynamicRobustCover":
        """A from-scratch cover on this exact ``(coords, active, range)``.

        The differential oracle: any patched state must equal this,
        tree for tree.
        """
        return DynamicRobustCover(
            self.coords,
            self.active,
            self.eps,
            self.i_min,
            self.i_max,
            base_n=self.base_n,
            workers=self.workers,
            rebuild_threshold=self.rebuild_threshold,
            applied_seq=self.applied_seq,
        )

    # -- mutation ------------------------------------------------------

    def insert(self, point: Sequence[float]) -> PatchReport:
        """Insert one point; returns what the patch did."""
        return self.apply([("insert", point)])

    def delete(self, point_id: int) -> PatchReport:
        """Tombstone one active point."""
        return self.apply([("delete", point_id)])

    def apply(self, ops: Sequence[Tuple[str, object]]) -> PatchReport:
        """Apply a batch of ``("insert", coords) | ("delete", id)`` ops.

        Net maintenance runs op by op (each step is cheap and exact);
        the sweep and the tree replays run once for the whole batch —
        the amortization lever the dynamic bench measures.  Raises
        ``ValueError`` on invalid ops (duplicate of an active point,
        deleting an unknown/dead id, draining below 2 active points)
        *before* any state changes, so a failed batch is a no-op.
        """
        ops = list(ops)
        check(bool(ops), "empty mutation batch", ValueError)
        new_coords, new_active = self._validate_batch(ops)

        prev_nets = self.sweep.nets
        prev_sweep = self.sweep
        prev_trees = self.trees
        old_n = self.n
        deleted: List[int] = [op[1] for op in ops if op[0] == "delete"]  # type: ignore[misc]
        inserted = old_n < len(new_coords)

        self.coords = np.asarray(new_coords, dtype=float)
        self.active = new_active
        self.metric = EuclideanMetric(self.coords)

        repinned = not self._range_still_valid()
        if repinned:
            self.i_min, self.i_max = pinned_levels(
                EuclideanMetric(self.coords[self.active]), self.eps
            )

        with trace("dynamic.apply", ops=len(ops)):
            if repinned:
                self._rebuild_state()
                report = self._report(ops, len(self.trees), 0, rebuilt=True, repinned=True)
            else:
                nets = self._advance_nets(prev_nets, ops, old_n)
                sweep = compute_sweep(
                    self.metric,
                    self.active,
                    self.eps,
                    self.i_min,
                    self.i_max,
                    nets,
                    prev=prev_sweep,
                )
                report = self._patch_trees(
                    ops, sweep, prev_sweep, prev_trees, deleted, inserted, old_n
                )

        if OBS.enabled:
            _C_INSERTS.inc(sum(1 for op in ops if op[0] == "insert"))
            _C_DELETES.inc(len(deleted))
            _C_PATCHED.inc(report.trees_replayed + report.trees_repaired)
            if report.rebuilt:
                _C_REBUILDS.inc()
        self.last_report = report
        return report

    def _validate_batch(
        self, ops: Sequence[Tuple[str, object]]
    ) -> Tuple[np.ndarray, List[int]]:
        """Validate all ops against a simulated state; returns the new
        (coords, active) without mutating self."""
        coords = self.coords
        active = set(self.active)
        appended: List[List[float]] = []
        dim = int(coords.shape[1])
        for kind, arg in ops:
            if kind == "insert":
                row = [float(x) for x in arg]  # type: ignore[union-attr]
                check(len(row) == dim, f"insert expects {dim} coordinates", ValueError)
                check(
                    all(math.isfinite(x) for x in row),
                    "insert coordinates must be finite",
                    ValueError,
                )
                live = sorted(active)
                pts = np.vstack([coords, np.asarray(appended + [row], dtype=float)])
                d = np.linalg.norm(pts[live] - np.asarray(row, dtype=float), axis=1)
                check(
                    float(d.min()) > 0.0,
                    "insert duplicates an active point (distance 0)",
                    ValueError,
                )
                active.add(len(coords) + len(appended))
                appended.append(row)
            elif kind == "delete":
                pid = int(arg)  # type: ignore[arg-type]
                check(
                    pid in active,
                    f"delete of unknown or already-deleted point {pid}",
                    ValueError,
                )
                check(
                    len(active) > 2,
                    "refusing to delete below 2 active points",
                    ValueError,
                )
                active.discard(pid)
            else:
                raise ValueError(f"unknown mutation op {kind!r}")
        new_coords = (
            np.vstack([coords, np.asarray(appended, dtype=float)])
            if appended
            else coords
        )
        return new_coords, sorted(active)

    def _range_still_valid(self) -> bool:
        """Would the pinned range still be chosen wide enough?

        The bottom level must sit below the smallest active pairwise
        distance (so ``N_{i_min}`` = all active points is a valid net)
        and the top at or above the active diameter.
        """
        live = EuclideanMetric(self.coords[self.active])
        lo, hi = pinned_levels(live, self.eps)
        return self.i_min <= lo and self.i_max >= hi

    def _advance_nets(
        self,
        nets: Dict[int, List[int]],
        ops: Sequence[Tuple[str, object]],
        old_n: int,
    ) -> Dict[int, List[int]]:
        """Run the per-op incremental net updates for a batch."""
        next_id = old_n
        active = sorted(set(nets[self.i_min]))
        for kind, arg in ops:
            if kind == "insert":
                nets = nets_after_insert(self.metric, nets, self.i_min, self.i_max, next_id)
                active.append(next_id)
                next_id += 1
            else:
                active = [a for a in active if a != int(arg)]
                nets = build_nets(self.metric, active, self.i_min, self.i_max, prev_nets=nets)
        return nets

    def _patch_trees(
        self,
        ops: Sequence[Tuple[str, object]],
        sweep: SweepState,
        prev_sweep: SweepState,
        prev_trees: List[CoverTree],
        deleted: List[int],
        inserted: bool,
        old_n: int,
    ) -> PatchReport:
        mask = self._mask_list()
        if inserted or self.n != old_n:
            # The index space grew: every tree's leaf set changes, so
            # every merge script replays (see the module docstring).
            trees = build_trees(self.metric, sweep, mask, workers=self.workers)
            self._install(sweep, trees)
            return self._report(ops, len(trees), 0, rebuilt=True, repinned=False)

        touched = touched_task_indexes(sweep, prev_sweep)
        total = len(sweep.tasks)
        if (
            len(touched) >= total
            or total != len(prev_trees)
            or len(touched) / max(total, 1) >= self.rebuild_threshold
        ):
            trees = build_trees(self.metric, sweep, mask, workers=self.workers)
            self._install(sweep, trees)
            return self._report(ops, len(trees), 0, rebuilt=True, repinned=False)

        touched_set = set(touched)
        dead = set(deleted)
        repaired = 0
        reuse: List[Optional[CoverTree]] = []
        for t in range(total):
            if t in touched_set:
                reuse.append(None)
                continue
            kept = prev_trees[t]
            if kept.rep_point[kept.tree.root] in dead:
                # The dead point was this tree's final-root anchor; a
                # replay would pick the next live component root.
                kept = repair_root_anchor(kept, self.metric, mask, self.n)
                repaired += 1
            reuse.append(kept)
        trees = build_trees(self.metric, sweep, mask, workers=self.workers, reuse=reuse)
        self._install(sweep, trees)
        return PatchReport(
            ops=len(ops),
            trees_total=total,
            trees_replayed=len(touched),
            trees_repaired=repaired,
            levels_reswept=sweep.levels_reswept,
            levels_reused=sweep.levels_reused,
            rebuilt=False,
            repinned=False,
        )

    def _report(
        self,
        ops: Sequence[Tuple[str, object]],
        replayed: int,
        repaired: int,
        rebuilt: bool,
        repinned: bool,
    ) -> PatchReport:
        return PatchReport(
            ops=len(ops),
            trees_total=len(self.trees),
            trees_replayed=replayed,
            trees_repaired=repaired,
            levels_reswept=self.sweep.levels_reswept,
            levels_reused=self.sweep.levels_reused,
            rebuilt=rebuilt,
            repinned=repinned,
        )

    # -- verification --------------------------------------------------

    def active_pairs(self, count: int = 200, seed: int = 0) -> List[Tuple[int, int]]:
        """A deterministic sample of distinct *active* point pairs."""
        from ..metrics.base import sample_pairs

        live = self.active
        pairs = sample_pairs(len(live), count, seed=seed)
        return [(live[a], live[b]) for a, b in pairs]

    def navigator_reuse_slots(
        self, prev_trees: Sequence[CoverTree]
    ) -> List[Optional[int]]:
        """Per current tree, the previous slot whose navigator can be
        reused (same object identity), or ``None``.

        Kept-verbatim trees share object identity with the previous
        generation; repaired or replayed trees do not.
        """
        by_id = {id(t): index for index, t in enumerate(prev_trees)}
        return [by_id.get(id(t)) for t in self.trees]
