"""Dynamic updates under churn (ROADMAP item 3).

``insert(point)`` / ``delete(point)`` on the robust tree cover with
per-tree patching, a crash-safe write-ahead journal, and live mutation
through the serving daemon.  See ``docs/DYNAMIC.md``.

Layers
------
:mod:`~repro.dynamic.builder`
    Masked (active-subset) nets, pairing sweep, and tree replays over
    an append-only index space with tombstones.
:mod:`~repro.dynamic.cover`
    :class:`DynamicRobustCover` — the mutable cover with the
    patch-vs-rebuild policy and the rebuild differential oracle.
:mod:`~repro.dynamic.journal`
    :class:`UpdateJournal` — CRC-framed, fsync-before-ack, torn-tail
    truncating mutation log replayed on reload.
:mod:`~repro.dynamic.churn`
    :class:`ChurnHarness` — interleaved mutations + queries with
    per-batch Table 1 / Thm 4.2 re-verification.
"""

from .builder import (
    ActiveHierarchy,
    SweepState,
    build_nets,
    build_trees,
    compute_sweep,
    nets_after_insert,
    repair_root_anchor,
    touched_task_indexes,
)
from .churn import ChurnHarness, states_identical
from .cover import DynamicRobustCover, PatchReport, pinned_levels
from .journal import JournalRecord, UpdateJournal, journal_path_for

__all__ = [
    "ActiveHierarchy",
    "ChurnHarness",
    "DynamicRobustCover",
    "JournalRecord",
    "PatchReport",
    "SweepState",
    "UpdateJournal",
    "build_nets",
    "build_trees",
    "compute_sweep",
    "journal_path_for",
    "nets_after_insert",
    "pinned_levels",
    "repair_root_anchor",
    "states_identical",
    "touched_task_indexes",
]
