"""Churn injection: interleaved mutations + queries with per-batch audits.

The static chaos harness (:mod:`repro.resilience.chaos`) kills points
of a *fixed* structure; this injector mutates the structure itself.
Each round applies a seeded batch of inserts/deletes through
:class:`~repro.dynamic.cover.DynamicRobustCover`, fires queries at the
patched generation, and re-verifies the paper's contracts before the
next round:

* **Table 1 stretch** — the cover must dominate and γ-approximate a
  sample of active pairs (``TreeCover.verify``).
* **Thm 4.2 pool structure** — a fault-tolerant spanner built *on the
  patched cover* must pass ``validate_ft_spanner`` (every replica pool
  non-empty, ≤ f+1, duplicate-free).
* **Differential oracle** (opt-in, expensive) — the patched state must
  be tree-for-tree identical to a from-scratch rebuild on the same
  final point set.

Mid-mutation process kills are exercised one level up, in
``scripts/churn_smoke.sh`` (``kill -9`` between journal append and
patch apply, then restart + replay).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import check
from ..observability import OBS, trace
from .cover import DynamicRobustCover

__all__ = ["ChurnHarness", "states_identical"]

_C_BATCHES = OBS.registry.counter("dynamic.churn_batches")


def states_identical(a: DynamicRobustCover, b: DynamicRobustCover) -> bool:
    """Tree-for-tree, float-for-float structural equality of two covers."""
    if a.n != b.n or a.active != b.active or len(a.trees) != len(b.trees):
        return False
    for ta, tb in zip(a.trees, b.trees):
        if (
            ta.tree.parents != tb.tree.parents
            or ta.tree.weights != tb.tree.weights
            or ta.rep_point != tb.rep_point
            or ta.vertex_of_point != tb.vertex_of_point
        ):
            return False
    return True


class ChurnHarness:
    """Seeded interleaved mutation/query schedules over a dynamic cover."""

    def __init__(
        self,
        dynamic: DynamicRobustCover,
        gamma: Optional[float] = None,
        seed: int = 0,
        f: int = 1,
        k: int = 3,
        verify_ft: bool = True,
        verify_rebuild: bool = False,
    ):
        self.dynamic = dynamic
        #: Stretch bound to enforce per batch; ``None`` records the
        #: measured stretch without gating on it.
        self.gamma = gamma
        self.seed = seed
        self.f = f
        self.k = k
        self.verify_ft = verify_ft
        self.verify_rebuild = verify_rebuild
        self.rounds: List[Dict[str, object]] = []

    def _make_ops(
        self, rng: random.Random, batch_size: int, insert_fraction: float
    ) -> List[Tuple[str, object]]:
        dyn = self.dynamic
        lo = dyn.coords[dyn.active].min(axis=0)
        hi = dyn.coords[dyn.active].max(axis=0)
        span = [max(h - l, 1.0) for l, h in zip(lo, hi)]
        ops: List[Tuple[str, object]] = []
        live = set(dyn.active)
        for _ in range(batch_size):
            if rng.random() < insert_fraction or len(live) <= 3:
                point = [
                    float(l - 0.1 * s + rng.random() * 1.2 * s)
                    for l, s in zip(lo, span)
                ]
                ops.append(("insert", point))
            else:
                victim = rng.choice(sorted(live))
                live.discard(victim)
                ops.append(("delete", victim))
        return ops

    def run_batch(
        self,
        batch_size: int = 4,
        queries: int = 16,
        insert_fraction: float = 0.5,
        round_seed: Optional[int] = None,
    ) -> Dict[str, object]:
        """One churn round: mutate, query, audit.  Returns the record."""
        rng = random.Random(
            self.seed * 1_000_003 + (round_seed if round_seed is not None else len(self.rounds))
        )
        dyn = self.dynamic
        ops = self._make_ops(rng, batch_size, insert_fraction)
        with trace("dynamic.churn_batch", ops=len(ops)):
            report = dyn.apply(ops)

            pairs = dyn.active_pairs(count=queries, seed=rng.randrange(1 << 30))
            worst = 0.0
            for u, v in pairs:
                base = dyn.metric.distance(u, v)
                _, best = dyn.cover.best_tree(u, v)
                check(
                    best + 1e-9 >= base,
                    f"cover under-estimates pair ({u}, {v}) after churn",
                )
                if base > 0:
                    worst = max(worst, best / base)
            if self.gamma is not None:
                check(
                    worst <= self.gamma + 1e-9,
                    f"stretch {worst:.4f} blew the gamma={self.gamma} "
                    "contract after a churn batch",
                )

            ft_ok = None
            if self.verify_ft:
                from ..resilience.validation import validate_ft_spanner
                from ..spanners.fault_tolerant import FaultTolerantSpanner

                spanner = FaultTolerantSpanner(
                    dyn.metric, self.f, self.k, cover=dyn.cover, validate=False
                )
                validate_ft_spanner(spanner)
                ft_ok = True

            rebuild_ok = None
            if self.verify_rebuild:
                rebuild_ok = states_identical(dyn, dyn.rebuild())
                check(rebuild_ok, "patched state diverged from a from-scratch rebuild")

        record: Dict[str, object] = {
            "ops": [(kind, arg if kind == "delete" else list(arg)) for kind, arg in ops],
            "patch": report.to_dict(),
            "queries": len(pairs),
            "measured_stretch": round(worst, 6),
            "ft_pools_ok": ft_ok,
            "rebuild_identical": rebuild_ok,
            "active": len(dyn.active),
        }
        self.rounds.append(record)
        if OBS.enabled:
            _C_BATCHES.inc()
        return record

    def run(
        self,
        batches: int = 5,
        batch_size: int = 4,
        queries: int = 16,
        insert_fraction: float = 0.5,
    ) -> List[Dict[str, object]]:
        """``batches`` churn rounds; returns one record per round."""
        return [
            self.run_batch(batch_size, queries, insert_fraction)
            for _ in range(batches)
        ]
