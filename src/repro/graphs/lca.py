"""Constant-time lowest common ancestor queries.

Implements the classic Euler tour + sparse-table RMQ reduction
[BFC00/BFC04 as cited by the paper]: ``O(n log n)`` preprocessing and
``O(1)`` per query.  The sparse table is stored in numpy arrays so the
preprocessing is vectorized.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .tree import Tree

__all__ = ["LcaIndex"]


class LcaIndex:
    """LCA structure over a :class:`~repro.graphs.tree.Tree`.

    >>> from repro.graphs.tree import balanced_tree
    >>> t = balanced_tree(2, 3)
    >>> LcaIndex(t).lca(7, 8)
    3
    """

    def __init__(self, tree: Tree):
        self.tree = tree
        n = tree.n
        # Euler tour: sequence of vertices as a DFS enters/returns to them
        # (standard tour of length 2n - 1).  The walk climbs parent
        # pointers instead of keeping a (vertex, child) stack and tracks
        # the depth inline, so no tuples are allocated and tree.depths()
        # never runs — this constructor is called once per cover tree.
        tour: List[int] = []
        tour_depth_list: List[int] = []
        first = [-1] * n
        next_child = [0] * n
        children = tree.children
        parents = tree.parents
        root = tree.root
        v = root
        d = 0
        while True:
            if first[v] == -1:
                first[v] = len(tour)
            tour.append(v)
            tour_depth_list.append(d)
            index = next_child[v]
            ch = children[v]
            if index < len(ch):
                next_child[v] = index + 1
                v = ch[index]
                d += 1
            else:
                if v == root:
                    break
                v = parents[v]
                d -= 1
        self._first = first
        self._tour = np.asarray(tour, dtype=np.int64)
        tour_depth = np.asarray(tour_depth_list, dtype=np.int64)

        m = len(tour)
        levels = max(1, m.bit_length())
        # table[j] holds, for each i, the index (into the tour) of the
        # minimum-depth entry in tour[i : i + 2^j].  Built vectorized,
        # then converted to plain lists: per-query numpy scalar indexing
        # would dominate the O(1) lookups.
        table = np.empty((levels, m), dtype=np.int64)
        table[0] = np.arange(m)
        for j in range(1, levels):
            half = 1 << (j - 1)
            span = m - (1 << j) + 1
            if span <= 0:
                table[j] = table[j - 1]
                continue
            left = table[j - 1, :span]
            right = table[j - 1, half : half + span]
            choose_right = tour_depth[right] < tour_depth[left]
            table[j, :span] = np.where(choose_right, right, left)
            table[j, span:] = table[j - 1, span:]
        self._table = table.tolist()
        self._tour_depth = tour_depth.tolist()
        self._tour_list = tour
        # numpy mirrors for the batched queries (lca_many/distance_many);
        # the scalar path keeps the plain lists above.
        self._table_np = table
        self._tour_depth_np = tour_depth
        self._tour_np = self._tour
        self._first_np = np.asarray(first, dtype=np.int64)
        self._wdepth_np: "np.ndarray | None" = None

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v`` in O(1)."""
        lo, hi = self._first[u], self._first[v]
        if lo > hi:
            lo, hi = hi, lo
        length = hi - lo + 1
        j = length.bit_length() - 1
        row = self._table[j]
        a = row[lo]
        b = row[hi - (1 << j) + 1]
        depth = self._tour_depth
        best = a if depth[a] <= depth[b] else b
        return self._tour_list[best]

    def distance(self, u: int, v: int) -> float:
        """Weighted tree distance via LCA in O(1)."""
        wdepth = self.tree.weighted_depths()
        w = self.lca(u, v)
        return wdepth[u] + wdepth[v] - 2.0 * wdepth[w]

    def lca_many(self, us: "np.ndarray", vs: "np.ndarray") -> np.ndarray:
        """Vectorized :meth:`lca` over aligned id arrays."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        lo = self._first_np[us]
        hi = self._first_np[vs]
        swap = lo > hi
        lo2 = np.where(swap, hi, lo)
        hi2 = np.where(swap, lo, hi)
        length = hi2 - lo2 + 1
        # floor(log2) of a positive int64; exact for all lengths < 2^53.
        j = np.floor(np.log2(length)).astype(np.int64)
        a = self._table_np[j, lo2]
        b = self._table_np[j, hi2 - (np.int64(1) << j) + 1]
        depth = self._tour_depth_np
        best = np.where(depth[a] <= depth[b], a, b)
        return self._tour_np[best]

    def distance_many(self, us: "np.ndarray", vs: "np.ndarray") -> np.ndarray:
        """Vectorized :meth:`distance` over aligned id arrays."""
        if self._wdepth_np is None:
            self._wdepth_np = np.asarray(self.tree.weighted_depths(), dtype=float)
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        w = self.lca_many(us, vs)
        wdepth = self._wdepth_np
        return wdepth[us] + wdepth[vs] - 2.0 * wdepth[w]

    def is_ancestor(self, a: int, v: int) -> bool:
        """True iff ``a`` is an ancestor of ``v``, in O(1)."""
        return self.lca(a, v) == a
