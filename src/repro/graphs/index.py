"""A bundled LCA + level-ancestor index with a naive small-tree mode.

The navigation structure builds many trees (one recursion tree per
navigator plus one contracted tree per internal recursion node).  Most
contracted trees are tiny, where numpy sparse tables cost more than they
save; :class:`TreeIndex` switches to direct pointer chasing below a size
threshold while exposing the same O(1)-style interface.
"""

from __future__ import annotations

from .lca import LcaIndex
from .level_ancestor import LadderLevelAncestor
from .tree import Tree

__all__ = ["TreeIndex"]


class TreeIndex:
    """LCA and level-ancestor queries over one tree."""

    SMALL = 48

    def __init__(self, tree: Tree, depth: "list[int] | None" = None):
        # Builders that already know the depths (e.g. the contracted
        # trees, whose construction walks parents before children) pass
        # them in and skip the traversal in tree.depths().
        self.tree = tree
        self.depth = tree.depths() if depth is None else depth
        self._naive = tree.n <= self.SMALL
        # The sparse-table indexes are built lazily on the first query:
        # navigator construction creates one TreeIndex per recursion
        # node but only queries the ones a path lookup later routes
        # through, so eager builds dominate build time for nothing.
        self._lca: "LcaIndex | None" = None
        self._la: "LadderLevelAncestor | None" = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_lca"] = None
        state["_la"] = None
        return state

    def lca(self, u: int, v: int) -> int:
        if not self._naive:
            if self._lca is None:
                self._lca = LcaIndex(self.tree)
            return self._lca.lca(u, v)
        parents, depth = self.tree.parents, self.depth
        while depth[u] > depth[v]:
            u = parents[u]
        while depth[v] > depth[u]:
            v = parents[v]
        while u != v:
            u = parents[u]
            v = parents[v]
        return u

    def ancestor_at_depth(self, v: int, d: int) -> int:
        if not self._naive:
            if self._la is None:
                self._la = LadderLevelAncestor(self.tree)
            return self._la.ancestor_at_depth(v, d)
        parents, depth = self.tree.parents, self.depth
        if d > depth[v]:
            raise ValueError("requested depth is below the vertex")
        while depth[v] > d:
            v = parents[v]
        return v
