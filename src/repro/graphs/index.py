"""A bundled LCA + level-ancestor index with a naive small-tree mode.

The navigation structure builds many trees (one recursion tree per
navigator plus one contracted tree per internal recursion node).  Most
contracted trees are tiny, where numpy sparse tables cost more than they
save; :class:`TreeIndex` switches to direct pointer chasing below a size
threshold while exposing the same O(1)-style interface.
"""

from __future__ import annotations

from .lca import LcaIndex
from .level_ancestor import LadderLevelAncestor
from .tree import Tree

__all__ = ["TreeIndex"]


class TreeIndex:
    """LCA and level-ancestor queries over one tree."""

    SMALL = 48

    def __init__(self, tree: Tree):
        self.tree = tree
        self.depth = tree.depths()
        self._naive = tree.n <= self.SMALL
        if not self._naive:
            self._lca = LcaIndex(tree)
            self._la = LadderLevelAncestor(tree)

    def lca(self, u: int, v: int) -> int:
        if not self._naive:
            return self._lca.lca(u, v)
        parents, depth = self.tree.parents, self.depth
        while depth[u] > depth[v]:
            u = parents[u]
        while depth[v] > depth[u]:
            v = parents[v]
        while u != v:
            u = parents[u]
            v = parents[v]
        return u

    def ancestor_at_depth(self, v: int, d: int) -> int:
        if not self._naive:
            return self._la.ancestor_at_depth(v, d)
        parents, depth = self.tree.parents, self.depth
        if d > depth[v]:
            raise ValueError("requested depth is below the vertex")
        while depth[v] > d:
            v = parents[v]
        return v
