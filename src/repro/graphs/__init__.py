"""Tree and graph substrates: trees, LCA, level ancestors, weighted graphs."""

from .graph import Graph, bfs_hops, dijkstra, prim_mst
from .lca import LcaIndex
from .level_ancestor import LadderLevelAncestor, LiftingLevelAncestor
from .tree import (
    Tree,
    balanced_tree,
    caterpillar_tree,
    path_tree,
    random_tree,
    star_tree,
)

__all__ = [
    "Graph",
    "bfs_hops",
    "dijkstra",
    "prim_mst",
    "LcaIndex",
    "LadderLevelAncestor",
    "LiftingLevelAncestor",
    "Tree",
    "balanced_tree",
    "caterpillar_tree",
    "path_tree",
    "random_tree",
    "star_tree",
]
