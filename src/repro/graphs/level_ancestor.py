"""Constant-time level-ancestor queries.

Two implementations of ``LA(v, d)`` (the ancestor of ``v`` at depth
``d``):

* :class:`LadderLevelAncestor` — the classic ladder decomposition plus
  jump pointers: ``O(n log n)`` preprocessing, ``O(1)`` per query.  This
  is the structure the paper's navigation algorithm assumes
  (Property 1 of Section 3.1.1).
* :class:`LiftingLevelAncestor` — plain binary lifting: ``O(n log n)``
  preprocessing, ``O(log n)`` per query; kept as a simple reference and
  for the ablation bench.
"""

from __future__ import annotations

from typing import List

from .tree import Tree

__all__ = ["LadderLevelAncestor", "LiftingLevelAncestor"]


class LiftingLevelAncestor:
    """Binary-lifting level ancestors: O(log n) query."""

    def __init__(self, tree: Tree):
        self.tree = tree
        self.depth = tree.depths()
        n = tree.n
        levels = max(1, (max(self.depth) + 1).bit_length())
        up = [list(tree.parents)]
        for j in range(1, levels):
            prev = up[j - 1]
            up.append([prev[prev[v]] if prev[v] != -1 else -1 for v in range(n)])
        self._up = up

    def ancestor_at_depth(self, v: int, d: int) -> int:
        """The ancestor of ``v`` at depth ``d`` (requires ``d <= depth(v)``)."""
        steps = self.depth[v] - d
        if steps < 0:
            raise ValueError("requested depth is below the vertex")
        j = 0
        while steps:
            if steps & 1:
                v = self._up[j][v]
            steps >>= 1
            j += 1
        return v


class LadderLevelAncestor:
    """Ladder decomposition + jump pointers: O(1) query.

    Long-path decomposition assigns every vertex to the path toward its
    deepest descendant; each path is then extended upward ("ladder") to
    twice its length.  A jump pointer moves ``v`` up by the largest power
    of two not exceeding the remaining distance; the ladder containing
    the landing vertex is then guaranteed to contain the answer.
    """

    def __init__(self, tree: Tree):
        self.tree = tree
        self.depth = tree.depths()
        n = tree.n

        # Height of the subtree under each vertex (length of longest
        # downward path), computed in postorder.
        height = [0] * n
        for v in tree.postorder():
            for c in tree.children[v]:
                height[v] = max(height[v], height[c] + 1)

        # Long-path decomposition: each vertex picks the child with the
        # greatest height as the continuation of its path.
        path_id = [-1] * n
        paths: List[List[int]] = []
        for v in tree.preorder():
            if path_id[v] == -1:
                # v starts a new long path; follow tallest children down.
                path: List[int] = []
                cur = v
                while True:
                    path_id[cur] = len(paths)
                    path.append(cur)
                    if not tree.children[cur]:
                        break
                    cur = max(tree.children[cur], key=lambda c: height[c])
                paths.append(path)

        # Extend each path upward into a ladder of double length.  The
        # ladder is stored top-first so indexing by depth is direct.
        self._ladders: List[List[int]] = []
        self._ladder_top_depth: List[int] = []
        for path in paths:
            top = path[0]
            extension: List[int] = []
            for _ in range(len(path)):
                parent = tree.parents[top]
                if parent == -1:
                    break
                extension.append(parent)
                top = parent
            ladder = list(reversed(extension)) + path
            self._ladders.append(ladder)
            self._ladder_top_depth.append(self.depth[ladder[0]])
        self._path_id = path_id

        # Jump pointers: _jump[j][v] = ancestor of v at 2^j steps up.
        levels = max(1, (max(self.depth) + 1).bit_length())
        jump = [list(tree.parents)]
        for j in range(1, levels):
            prev = jump[j - 1]
            jump.append([prev[prev[v]] if prev[v] != -1 else -1 for v in range(n)])
        self._jump = jump

    def ancestor_at_depth(self, v: int, d: int) -> int:
        """The ancestor of ``v`` at depth ``d`` in O(1)."""
        steps = self.depth[v] - d
        if steps < 0:
            raise ValueError("requested depth is below the vertex")
        if steps == 0:
            return v
        j = steps.bit_length() - 1
        v = self._jump[j][v]  # jump 2^j <= steps, leaving < 2^j steps
        # v lies on a long path of length >= 2^j below it is not needed;
        # the ladder of v extends >= its path length above, covering the rest.
        ladder = self._ladders[self._path_id[v]]
        index = d - self._ladder_top_depth[self._path_id[v]]
        if index < 0:
            # The ladder does not reach high enough (can happen near the
            # root for shallow ladders); fall back to pointer chasing of
            # the remaining < 2^j steps via jumps — still O(log) worst
            # case but exercised only in degenerate corners.
            steps = self.depth[v] - d
            jbit = 0
            while steps:
                if steps & 1:
                    v = self._jump[jbit][v]
                steps >>= 1
                jbit += 1
            return v
        return ladder[index]
