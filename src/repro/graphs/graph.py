"""Weighted undirected graphs and classical algorithms on them.

This is the substrate used to *evaluate* spanners: Dijkstra for stretch,
BFS for hop counts, Prim for minimum spanning trees, plus the spanner
quality measures (stretch, hop-diameter, lightness, sparsity) the paper
cares about.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Graph", "prim_mst", "dijkstra", "bfs_hops"]


class Graph:
    """An undirected weighted graph on vertices ``0 .. n-1``.

    Parallel edges are collapsed to the minimum weight; self loops are
    ignored.
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("graph needs at least one vertex")
        self.n = n
        self.adj: List[Dict[int, float]] = [dict() for _ in range(n)]

    def add_edge(self, u: int, v: int, w: float) -> None:
        """Add (or relax) the undirected edge ``(u, v)`` of weight ``w``."""
        if u == v:
            return
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range")
        if w < 0:
            raise ValueError("edge weights must be non-negative")
        current = self.adj[u].get(v)
        if current is None or w < current:
            self.adj[u][v] = w
            self.adj[v][u] = w

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.adj[u]

    def edges(self) -> Iterable[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, w)`` with ``u < v``."""
        for u in range(self.n):
            for v, w in self.adj[u].items():
                if u < v:
                    yield u, v, w

    @property
    def num_edges(self) -> int:
        return sum(len(a) for a in self.adj) // 2

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    def degree(self, v: int) -> int:
        return len(self.adj[v])

    def max_degree(self) -> int:
        return max(len(a) for a in self.adj)

    def union(self, other: "Graph") -> "Graph":
        """A new graph containing the edges of both operands."""
        if other.n != self.n:
            raise ValueError("graphs must share a vertex set")
        out = Graph(self.n)
        for u, v, w in self.edges():
            out.add_edge(u, v, w)
        for u, v, w in other.edges():
            out.add_edge(u, v, w)
        return out

    # ------------------------------------------------------------------
    # Quality measures used throughout the paper

    def path_weight(self, path: Sequence[int]) -> float:
        """Total weight of a vertex path; raises if a hop is not an edge."""
        total = 0.0
        for u, v in zip(path, path[1:]):
            if v not in self.adj[u]:
                raise ValueError(f"({u}, {v}) is not an edge of the graph")
            total += self.adj[u][v]
        return total


def dijkstra(
    graph: Graph, source: int, target: Optional[int] = None
) -> "float | List[float]":
    """Single-source shortest paths; returns one distance if ``target`` given."""
    dist = [math.inf] * graph.n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if target is not None and u == target:
            return d
        for v, w in graph.adj[u].items():
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    if target is not None:
        return dist[target]
    return dist


def bfs_hops(graph: Graph, source: int) -> List[int]:
    """Hop distance (number of edges) from ``source`` to every vertex."""
    hops = [-1] * graph.n
    hops[source] = 0
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.adj[u]:
                if hops[v] == -1:
                    hops[v] = hops[u] + 1
                    nxt.append(v)
        frontier = nxt
    return hops


def prim_mst(n: int, distance) -> List[Tuple[int, int, float]]:
    """Prim's algorithm over an implicit complete graph.

    ``distance(u, v)`` is an arbitrary metric callable.  O(n^2) time,
    which is optimal for dense implicit metrics.
    """
    if n == 0:
        return []
    in_tree = [False] * n
    best = [math.inf] * n
    best_edge = [-1] * n
    best[0] = 0.0
    edges: List[Tuple[int, int, float]] = []
    for _ in range(n):
        u = min((v for v in range(n) if not in_tree[v]), key=lambda v: best[v])
        in_tree[u] = True
        if best_edge[u] != -1:
            edges.append((best_edge[u], u, best[u]))
        for v in range(n):
            if not in_tree[v]:
                d = distance(u, v)
                if d < best[v]:
                    best[v] = d
                    best_edge[v] = u
    return edges
