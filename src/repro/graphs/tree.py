"""Rooted edge-weighted trees and common tree builders.

The :class:`Tree` class is the substrate for everything in this library:
Solomon's 1-spanner, the navigation data structure, tree covers and
routing all operate on instances of it.  Vertices are integers
``0 .. n-1``; the tree is stored as a parent array plus child lists and
supports weighted depths, traversal orders, and path extraction.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Tree",
    "random_tree",
    "path_tree",
    "star_tree",
    "caterpillar_tree",
    "balanced_tree",
]


class Tree:
    """A rooted tree with non-negative edge weights.

    Parameters
    ----------
    parents:
        ``parents[v]`` is the parent of vertex ``v``; the root has parent
        ``-1``.  Exactly one root must exist and the structure must be
        acyclic and connected.
    weights:
        ``weights[v]`` is the weight of the edge ``(parents[v], v)``; the
        root's entry is ignored.  Defaults to unit weights.
    validate:
        When False, skips the O(n) connectivity check.  Only for
        internal builders whose parent arrays are trees by construction
        (e.g. the robust-cover forest assembly, which creates thousands
        of trees); external callers should keep the default.
    """

    def __init__(
        self,
        parents: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        validate: bool = True,
    ):
        self.parents: List[int] = list(parents)
        n = len(self.parents)
        if n == 0:
            raise ValueError("a tree needs at least one vertex")
        roots = [v for v, p in enumerate(self.parents) if p == -1]
        if len(roots) != 1:
            raise ValueError(f"expected exactly one root, found {len(roots)}")
        self.root: int = roots[0]
        if weights is None:
            weights = [1.0] * n
        if len(weights) != n:
            raise ValueError("weights must have one entry per vertex")
        self.weights: List[float] = [float(w) for w in weights]
        self.weights[self.root] = 0.0

        self._children: Optional[List[List[int]]] = None
        self._order: Optional[List[int]] = None
        self._depth: Optional[List[int]] = None
        self._wdepth: Optional[List[float]] = None
        if validate:
            self._validate_connected()

    # ------------------------------------------------------------------
    # Basic properties

    def __getstate__(self):
        # Only the parent and weight arrays are authoritative; child
        # lists, traversal orders and depth tables are derived caches
        # that can quadruple the pickle (worker boundary, checkpoints).
        # Drop them and let the receiving side rebuild lazily.
        state = dict(self.__dict__)
        state["_children"] = None
        state["_order"] = None
        state["_depth"] = None
        state["_wdepth"] = None
        return state

    def __len__(self) -> int:
        return len(self.parents)

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.parents)

    def _validate_connected(self) -> None:
        if len(self.preorder()) != self.n:
            raise ValueError("parent array does not describe a connected tree")

    @property
    def children(self) -> List[List[int]]:
        """Child lists per vertex; built lazily on first access.

        Tree covers create thousands of trees whose child lists are only
        needed if the tree is actually navigated, so the O(n) build is
        deferred out of the constructor.
        """
        if self._children is None:
            n = self.n
            children: List[List[int]] = [[] for _ in range(n)]
            for v, p in enumerate(self.parents):
                if p != -1:
                    if not 0 <= p < n:
                        raise ValueError(f"parent {p} of vertex {v} out of range")
                    children[p].append(v)
            self._children = children
        return self._children

    def preorder(self) -> List[int]:
        """Vertices in preorder (root first); cached."""
        if self._order is None:
            children = self.children
            order: List[int] = []
            append = order.append
            stack = [self.root]
            seen = [False] * self.n
            while stack:
                v = stack.pop()
                if seen[v]:
                    raise ValueError("cycle detected in parent array")
                seen[v] = True
                append(v)
                cs = children[v]
                if cs:
                    stack.extend(reversed(cs))
            self._order = order
        return self._order

    def postorder(self) -> List[int]:
        """Vertices in postorder (root last)."""
        return list(reversed(self.preorder()))

    def depths(self) -> List[int]:
        """Unweighted depth of every vertex (root = 0); cached."""
        if self._depth is None:
            depth = [0] * self.n
            for v in self.preorder():
                if v != self.root:
                    depth[v] = depth[self.parents[v]] + 1
            self._depth = depth
        return self._depth

    def weighted_depths(self) -> List[float]:
        """Weighted distance from the root to every vertex; cached."""
        if self._wdepth is None:
            wdepth = [0.0] * self.n
            for v in self.preorder():
                if v != self.root:
                    wdepth[v] = wdepth[self.parents[v]] + self.weights[v]
            self._wdepth = wdepth
        return self._wdepth

    def edges(self) -> Iterable[Tuple[int, int, float]]:
        """Yield ``(parent, child, weight)`` for every tree edge."""
        for v, p in enumerate(self.parents):
            if p != -1:
                yield p, v, self.weights[v]

    # ------------------------------------------------------------------
    # Paths and distances

    def path(self, u: int, v: int) -> List[int]:
        """The unique ``u``-``v`` path as a vertex list (both endpoints included)."""
        depth = self.depths()
        up_u: List[int] = []
        up_v: List[int] = []
        while depth[u] > depth[v]:
            up_u.append(u)
            u = self.parents[u]
        while depth[v] > depth[u]:
            up_v.append(v)
            v = self.parents[v]
        while u != v:
            up_u.append(u)
            up_v.append(v)
            u = self.parents[u]
            v = self.parents[v]
        return up_u + [u] + list(reversed(up_v))

    def distance(self, u: int, v: int) -> float:
        """Weighted distance between ``u`` and ``v`` (O(path length))."""
        path = self.path(u, v)
        wdepth = self.weighted_depths()
        top = min(path, key=lambda x: self.depths()[x])
        return (wdepth[path[0]] - wdepth[top]) + (wdepth[path[-1]] - wdepth[top])

    def is_ancestor(self, a: int, v: int) -> bool:
        """True iff ``a`` is an ancestor of ``v`` (every vertex is its own ancestor)."""
        depth = self.depths()
        while depth[v] > depth[a]:
            v = self.parents[v]
        return v == a

    # ------------------------------------------------------------------
    # Construction helpers

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[Tuple[int, int, float]], root: int = 0
    ) -> "Tree":
        """Build a rooted tree from an undirected edge list ``(u, v, w)``."""
        adjacency: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        count = 0
        for u, v, w in edges:
            adjacency[u].append((v, w))
            adjacency[v].append((u, w))
            count += 1
        if count != n - 1:
            raise ValueError(f"a tree on {n} vertices needs {n - 1} edges, got {count}")
        parents = [-2] * n
        weights = [0.0] * n
        parents[root] = -1
        stack = [root]
        while stack:
            u = stack.pop()
            for v, w in adjacency[u]:
                if parents[v] == -2:
                    parents[v] = u
                    weights[v] = w
                    stack.append(v)
        if any(p == -2 for p in parents):
            raise ValueError("edge list is not connected")
        return cls(parents, weights)


def random_tree(n: int, seed: Optional[int] = None, max_weight: float = 10.0) -> Tree:
    """A uniformly random labelled tree (via a random attachment process).

    Each vertex ``v >= 1`` attaches to a uniformly random earlier vertex,
    producing random recursive trees — heavy-tailed degrees and
    logarithmic depth, a good generic test distribution.
    """
    rng = random.Random(seed)
    parents = [-1] + [rng.randrange(v) for v in range(1, n)]
    weights = [0.0] + [rng.uniform(1.0, max_weight) for _ in range(1, n)]
    return Tree(parents, weights)


def path_tree(n: int, seed: Optional[int] = None) -> Tree:
    """A path ``0 - 1 - ... - n-1`` with random weights (worst case for naive navigation)."""
    rng = random.Random(seed)
    parents = [-1] + list(range(n - 1))
    weights = [0.0] + [rng.uniform(1.0, 10.0) for _ in range(1, n)]
    return Tree(parents, weights)


def star_tree(n: int) -> Tree:
    """A star with center 0 (best case: already hop-diameter 2)."""
    return Tree([-1] + [0] * (n - 1), [0.0] + [1.0] * (n - 1))


def caterpillar_tree(n: int, seed: Optional[int] = None) -> Tree:
    """A caterpillar: a spine path with a leaf hanging off every spine vertex."""
    rng = random.Random(seed)
    parents = [-1]
    for v in range(1, n):
        if v % 2 == 1:
            parents.append(max(0, v - 2))  # spine continues
        else:
            parents.append(v - 1)  # leaf off the previous spine vertex
    weights = [0.0] + [rng.uniform(1.0, 10.0) for _ in range(1, n)]
    return Tree(parents, weights)


def balanced_tree(branching: int, depth: int) -> Tree:
    """A complete ``branching``-ary tree of the given depth, unit weights."""
    parents = [-1]
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for node in frontier:
            for _ in range(branching):
                parents.append(node)
                new_frontier.append(len(parents) - 1)
        frontier = new_frontier
    return Tree(parents)
