"""Zero-dependency observability: span tracing, a metrics registry, and
profiling hooks for the build/query/recovery paths.

Quickstart::

    from repro.observability import OBS, trace

    OBS.enable()                      # or REPRO_TRACE=1 / --trace
    with trace("workload"):
        navigator.find_path(u, v, k=4)
    spans = OBS.take_roots()          # jsonable span trees
    metrics = OBS.registry.export_json()

See ``docs/OBSERVABILITY.md`` for the span model, the metric-name
table, and the CLI flags.
"""

from .metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import (
    format_span_tree,
    load_trace_schema,
    render_trace_report,
    trace_document,
    validate_trace_json,
)
from .tracing import OBS, TRACE_SCHEMA, Observability, Span, trace

__all__ = [
    "OBS",
    "Observability",
    "Span",
    "trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "trace_document",
    "format_span_tree",
    "render_trace_report",
    "load_trace_schema",
    "validate_trace_json",
]
