"""Counter-backed metrics: counters, gauges, histograms, one registry.

The paper's contracts are budget statements — ``FindPath(u, v, k)``
answers in O(k) time with at most ``k`` hops (Theorem 1.1), covers obey
the Table 1 ``(stretch, #trees)`` tradeoffs — so the telemetry that
verifies them empirically is *counts*: distance-kernel invocations,
cut-vertex recursions, hops per query, trees consulted per selection.
This module is the zero-dependency registry those counts live in.

Design rules:

* **Stable handles.**  Instrumented modules obtain their instruments
  once at import time (``_C_QUERIES = counter("navigator.queries")``)
  and keep the object; :meth:`MetricsRegistry.reset` zeroes values *in
  place* so handles never dangle.
* **Cheap when off.**  Instruments do no enabled-checking themselves;
  every instrumentation point guards with a single truthiness check
  (``if OBS.enabled:``) before touching an instrument — see
  :mod:`repro.observability.tracing`.
* **Deterministic merges.**  Worker processes ship
  :meth:`MetricsRegistry.delta_since` dicts back through
  :func:`repro.parallel.map_per_tree`, which merges them in input
  order, so serial and parallel runs of the same work produce the same
  totals (speculative work — e.g. surplus Ramsey draws — is the one
  documented exception: parallel runs count the work they actually
  did).

Counters are plain ``+=`` (single-opcode best effort under threads;
process-boundary merges are exact); histograms update several fields
and therefore take a per-instance lock.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_SCHEMA",
]

METRICS_SCHEMA = "repro.observability.metrics/v1"


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A last-write-wins observed value (pool sizes, tree counts, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = None


def _bucket_exp(value: float) -> int:
    """The exponent ``e`` of the smallest power-of-two bucket ``2^e``
    holding ``value`` (values <= 1 share bucket 0)."""
    if value <= 1.0:
        return 0
    return max(0, math.ceil(math.log2(value)))


class Histogram:
    """A base-2 exponential histogram plus count/sum/min/max.

    Bucket ``e`` counts observations in ``(2^(e-1), 2^e]`` (bucket 0
    holds everything <= 1).  Exponential buckets keep the memory bounded
    for any value range — hop counts, microsecond latencies and
    kernel batch sizes all share the same shape.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        e = _bucket_exp(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self.buckets[e] = self.buckets.get(e, 0) + 1

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self.buckets = {}

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __getstate__(self):
        state = {slot: getattr(self, slot) for slot in self.__slots__ if slot != "_lock"}
        return state

    def __setstate__(self, state):
        for key, value in state.items():
            setattr(self, key, value)
        self._lock = threading.Lock()


class MetricsRegistry:
    """Create-or-get registry of named instruments.

    Names are dotted lowercase paths (``navigator.hops``); the JSON and
    prom-text exporters derive their keys from them.  Requesting an
    existing name with a different instrument kind raises — a name
    means one thing forever.
    """

    def __init__(self):
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # -- instrument access -------------------------------------------------

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.setdefault(name, cls(name))
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        for instrument in list(self._instruments.values()):
            instrument.reset()

    # -- snapshots and deltas ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The current state of every instrument, as plain JSON types."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                if instrument.value is not None:
                    gauges[name] = instrument.value
            else:
                histograms[name] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                    "buckets": {str(e): c for e, c in sorted(instrument.buckets.items())},
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def delta_since(self, before: Dict[str, Any]) -> Dict[str, Any]:
        """What changed since a :meth:`snapshot` (ships across workers).

        Counter and histogram deltas subtract exactly; a histogram
        delta's min/max are the instrument's current bounds (the exact
        per-window extrema are not reconstructible from two snapshots,
        and telemetry tolerates the slightly wider range).
        """
        after = self.snapshot()
        b_counters = before.get("counters", {})
        counters = {
            name: value - b_counters.get(name, 0)
            for name, value in after["counters"].items()
            if value != b_counters.get(name, 0)
        }
        gauges = dict(after["gauges"])
        b_hists = before.get("histograms", {})
        histograms = {}
        for name, h in after["histograms"].items():
            prev = b_hists.get(name, {})
            d_count = h["count"] - prev.get("count", 0)
            if d_count == 0:
                continue
            prev_buckets = prev.get("buckets", {})
            histograms[name] = {
                "count": d_count,
                "sum": h["sum"] - prev.get("sum", 0.0),
                "min": h["min"],
                "max": h["max"],
                "buckets": {
                    e: c - prev_buckets.get(e, 0)
                    for e, c in h["buckets"].items()
                    if c != prev_buckets.get(e, 0)
                },
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a :meth:`delta_since` dict into this registry."""
        for name, value in delta.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, h in delta.get("histograms", {}).items():
            histogram = self.histogram(name)
            with histogram._lock:
                histogram.count += h["count"]
                histogram.total += h["sum"]
                for bound in ("min", "max"):
                    theirs = h.get(bound)
                    if theirs is None:
                        continue
                    ours = getattr(histogram, bound)
                    if ours is None:
                        setattr(histogram, bound, theirs)
                    elif bound == "min":
                        histogram.min = min(ours, theirs)
                    else:
                        histogram.max = max(ours, theirs)
                for e, c in h.get("buckets", {}).items():
                    e = int(e)
                    histogram.buckets[e] = histogram.buckets.get(e, 0) + c

    # -- export ------------------------------------------------------------

    def export_json(self) -> Dict[str, Any]:
        """The snapshot wrapped with a schema id (for BENCH rows, files)."""
        payload = self.snapshot()
        payload["schema"] = METRICS_SCHEMA
        return payload

    def export_prom_text(self) -> str:
        """The registry in Prometheus text exposition format.

        Names are prefixed ``repro_`` with dots mapped to underscores;
        histograms emit cumulative ``_bucket{le=...}`` series plus
        ``_sum``/``_count``, as the format requires.
        """
        lines: List[str] = []
        snapshot = self.snapshot()
        for name, value in snapshot["counters"].items():
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {value}")
        for name, value in snapshot["gauges"].items():
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_float(value)}")
        for name, h in snapshot["histograms"].items():
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for e in sorted(int(k) for k in h["buckets"]):
                cumulative += h["buckets"][str(e)]
                lines.append(
                    f'{prom}_bucket{{le="{_prom_float(2.0 ** e)}"}} {cumulative}'
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {h["count"]}')
            lines.append(f"{prom}_sum {_prom_float(h['sum'])}")
            lines.append(f"{prom}_count {h['count']}")
        return "\n".join(lines) + "\n"


def _prom_name(name: str) -> str:
    safe = "".join(c if c.isalnum() else "_" for c in name)
    return f"repro_{safe}"


def _prom_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
