"""Hierarchical span tracing with a guarded no-op disabled mode.

The instrumentation contract, used identically at every call site::

    from repro.observability import OBS, trace

    _C_QUERIES = OBS.registry.counter("navigator.queries")

    def find_path(...):
        if OBS.enabled:                 # the ONLY disabled-mode cost
            _C_QUERIES.inc()
        with trace("find_path", k=k):   # no-op singleton when disabled
            ...

When disabled (the default), every instrumentation point costs one
truthiness check: ``OBS.enabled`` is a plain bool attribute, and
``trace()`` returns a shared do-nothing context manager without
allocating.  The bench gate in ``tests/test_observability.py`` holds
this to <2% of navigator query latency.

When enabled (``REPRO_TRACE=1``, ``--trace`` on the CLIs, or
``OBS.enable()``), ``trace(name, **attrs)`` opens a :class:`Span` with
nanosecond timings.  Spans nest per thread (thread-local stacks);
completed top-level spans collect in a lock-protected root list drained
by :meth:`Observability.take_roots`.

Process boundaries: :func:`repro.parallel.map_per_tree` workers call
:meth:`begin_task_capture` / :meth:`end_task_capture` around each task
and ship the resulting delta (metric changes + completed span trees as
plain dicts) back with the result; the parent merges deltas in input
order via :meth:`merge_task_delta`, attaching worker spans as children
of whatever span was open at the call site.  Serial and parallel runs
therefore produce the same aggregated telemetry for deterministic
workloads.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Union

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "Observability",
    "OBS",
    "trace",
    "TRACE_SCHEMA",
]

TRACE_SCHEMA = "repro.observability.trace/v1"

Jsonable = Dict[str, Any]


class Span:
    """One timed, attributed node in a trace tree.

    ``children`` may hold both :class:`Span` objects (same-process
    nesting) and already-jsonable dicts (spans merged back from
    workers); :meth:`to_jsonable` normalises both.
    """

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children", "error")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.start_ns = 0
        self.end_ns = 0
        self.children: List[Union["Span", Jsonable]] = []
        self.error: Optional[str] = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span after it was opened."""
        self.attrs.update(attrs)

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    def to_jsonable(self) -> Jsonable:
        node: Jsonable = {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            node["attrs"] = _jsonable_attrs(self.attrs)
        if self.error is not None:
            node["error"] = self.error
        if self.children:
            node["children"] = [
                child if isinstance(child, dict) else child.to_jsonable()
                for child in self.children
            ]
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ns}ns, {len(self.children)} children)"


def _jsonable_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


class _SpanContext:
    """Context manager that opens/closes one span on the caller's stack."""

    __slots__ = ("_span",)

    def __init__(self, span: Span):
        self._span = span

    def __enter__(self) -> Span:
        OBS._push(self._span)
        self._span.start_ns = time.perf_counter_ns()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.end_ns = time.perf_counter_ns()
        if exc is not None:
            self._span.error = f"{exc_type.__name__}: {exc}"
        OBS._pop(self._span)
        return False


class _NoopSpan:
    """Shared do-nothing stand-in returned by ``trace()`` when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NOOP = _NoopSpan()


class _SpanStack(threading.local):
    def __init__(self):
        self.stack: List[Span] = []


class Observability:
    """Process-wide instrumentation state: the enabled flag, the metrics
    registry, per-thread span stacks, and the completed-root buffer."""

    def __init__(self):
        self.enabled = _env_enabled()
        self.registry = MetricsRegistry()
        self._tls = _SpanStack()
        self._roots: List[Union[Span, Jsonable]] = []
        self._roots_lock = threading.Lock()

    # -- enablement --------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def scoped(self, enabled: bool = True):
        """Temporarily flip the enabled flag (tests, CLI ``--trace``)."""
        previous = self.enabled
        self.enabled = enabled
        try:
            yield self
        finally:
            self.enabled = previous

    # -- span stack --------------------------------------------------------

    def _push(self, span: Span) -> None:
        stack = self._tls.stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._tls.stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit (abandoned generator, ...)
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        # A span closing with no enclosing span is a completed root; spans
        # with parents were attached to parent.children at push time.
        if not stack:
            with self._roots_lock:
                self._roots.append(span)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._tls.stack
        return stack[-1] if stack else None

    @contextmanager
    def under_span(self, parent: Optional[Span]):
        """Run this thread's spans as children of ``parent`` (used by the
        thread-pool fallback in the parallel engine; no timing of its own)."""
        if parent is None:
            yield
            return
        stack = self._tls.stack
        stack.append(parent)
        try:
            yield
        finally:
            if stack and stack[-1] is parent:
                stack.pop()

    # -- completed roots ---------------------------------------------------

    def take_roots(self) -> List[Jsonable]:
        """Drain completed top-level spans as jsonable trees."""
        with self._roots_lock:
            roots, self._roots = self._roots, []
        return [
            root if isinstance(root, dict) else root.to_jsonable() for root in roots
        ]

    def clear(self) -> None:
        """Drop all collected spans and open stacks (this thread's) and
        zero the registry.  Used by tests and worker initialisation."""
        with self._roots_lock:
            self._roots = []
        self._tls.stack = []
        self.registry.reset()

    # -- worker task capture ----------------------------------------------

    def begin_task_capture(self) -> Dict[str, Any]:
        """Mark the start of one worker task; pair with
        :meth:`end_task_capture`.  Single-threaded per worker process."""
        with self._roots_lock:
            mark = len(self._roots)
        return {"metrics": self.registry.snapshot(), "roots_mark": mark}

    def end_task_capture(self, token: Dict[str, Any]) -> Dict[str, Any]:
        """Everything this task recorded, as a picklable delta dict."""
        metrics = self.registry.delta_since(token["metrics"])
        mark = token["roots_mark"]
        with self._roots_lock:
            new_roots = self._roots[mark:]
            del self._roots[mark:]
        spans = [
            root if isinstance(root, dict) else root.to_jsonable()
            for root in new_roots
        ]
        return {"metrics": metrics, "spans": spans}

    def merge_task_delta(self, delta: Optional[Dict[str, Any]]) -> None:
        """Fold a worker task delta into this process, attaching its span
        trees under the caller's open span (or as new roots)."""
        if not delta:
            return
        self.registry.merge(delta.get("metrics") or {})
        spans = delta.get("spans") or []
        if not spans:
            return
        parent = self.current()
        if parent is not None:
            parent.children.extend(spans)
        else:
            with self._roots_lock:
                self._roots.extend(spans)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "") not in ("", "0", "false", "no")


OBS = Observability()


def trace(name: str, **attrs: Any):
    """Open a span when observability is enabled, else a shared no-op.

    Usage: ``with trace("robust_cover", n=len(points)) as sp: ...``.
    """
    if not OBS.enabled:
        return _NOOP
    return _SpanContext(Span(name, attrs))
