"""Trace rendering and validation: the ``trace-report`` pretty-printer
and a dependency-free validator for the checked-in trace schema.

The validator interprets the small JSON-Schema subset used by
``trace_schema.json`` (type / required / properties /
additionalProperties / items / minimum / enum / ``$ref`` into
``#/definitions``) rather than pulling in the ``jsonschema`` package —
the repo is zero-dependency by charter.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .tracing import TRACE_SCHEMA

__all__ = [
    "trace_document",
    "format_span_tree",
    "render_trace_report",
    "load_trace_schema",
    "validate_trace_json",
]

_SCHEMA_PATH = Path(__file__).with_name("trace_schema.json")


def trace_document(spans: List[Dict[str, Any]],
                   metrics: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Wrap jsonable span trees (from ``OBS.take_roots()``) into the
    versioned document shape ``trace_schema.json`` describes."""
    doc: Dict[str, Any] = {"schema": TRACE_SCHEMA, "spans": spans}
    if metrics is not None:
        doc["metrics"] = metrics
    return doc


def load_trace_schema() -> Dict[str, Any]:
    with open(_SCHEMA_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# mini JSON-Schema-subset validation


def validate_trace_json(doc: Any, schema: Optional[Dict[str, Any]] = None) -> List[str]:
    """Validate ``doc`` against the trace schema; return a list of
    human-readable problems (empty means valid)."""
    if schema is None:
        schema = load_trace_schema()
    errors: List[str] = []
    _validate(doc, schema, schema, "$", errors)
    return errors


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: Dict[str, Any]) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref {ref!r}")
    node: Any = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def _validate(value: Any, schema: Dict[str, Any], root: Dict[str, Any],
              path: str, errors: List[str]) -> None:
    if "$ref" in schema:
        _validate(value, _resolve_ref(schema["$ref"], root), root, path, errors)
        return
    expected = schema.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                _validate(value[key], sub, root, f"{path}.{key}", errors)
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in properties:
                    errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], root, f"{path}[{i}]", errors)


# ---------------------------------------------------------------------------
# pretty-printing


def _format_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{int(ns)}ns"


def _format_attrs(attrs: Dict[str, Any]) -> str:
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def format_span_tree(span: Dict[str, Any], indent: int = 0,
                     total_ns: Optional[int] = None) -> List[str]:
    """Render one span tree as indented lines with duration shares."""
    if total_ns is None:
        total_ns = max(1, span.get("duration_ns", 0))
    duration = span.get("duration_ns", 0)
    share = 100.0 * duration / total_ns
    line = (
        f"{'  ' * indent}{span['name']:<{max(1, 32 - 2 * indent)}} "
        f"{_format_ns(duration):>10}  {share:5.1f}%"
    )
    attrs = span.get("attrs")
    if attrs:
        line += f"  [{_format_attrs(attrs)}]"
    if span.get("error"):
        line += f"  !! {span['error']}"
    lines = [line]
    for child in span.get("children", []):
        lines.extend(format_span_tree(child, indent + 1, total_ns))
    return lines


def render_trace_report(doc: Dict[str, Any], top_metrics: int = 20) -> str:
    """The ``python -m repro trace-report`` body for one trace document."""
    lines: List[str] = []
    spans = doc.get("spans", [])
    if not spans:
        lines.append("(no spans recorded)")
    for span in spans:
        lines.extend(format_span_tree(span))
        lines.append("")
    metrics = doc.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("counters:")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, value in ranked[:top_metrics]:
            lines.append(f"  {name:<40} {value}")
        if len(ranked) > top_metrics:
            lines.append(f"  ... {len(ranked) - top_metrics} more")
    histograms = metrics.get("histograms") or {}
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            count = h.get("count", 0)
            mean = (h.get("sum", 0.0) / count) if count else 0.0
            lines.append(
                f"  {name:<40} n={count} mean={mean:.3g} "
                f"min={h.get('min')} max={h.get('max')}"
            )
    return "\n".join(lines).rstrip() + "\n"
