"""Structured exception hierarchy for the whole library.

Historically the code base signalled broken guarantees through bare
``assert`` statements (silently stripped under ``python -O``) and
ad-hoc ``ValueError`` / ``AssertionError`` raises.  Every correctness
check now raises one of the typed exceptions below, so guarantees
survive optimized interpreters and callers can react to *which*
contract failed (the resilience subsystem relies on this to degrade
gracefully instead of crashing).

Design notes
------------
* :class:`FaultBudgetExceeded` and :class:`MetricValidationError` also
  subclass :class:`ValueError`, and :class:`InvariantViolation` also
  subclasses :class:`AssertionError`, so code (and tests) written
  against the historical exception types keeps working.
* None of the raises below live behind ``assert``; ``python -O`` does
  not change the library's behaviour (enforced by
  ``tests/test_no_bare_asserts.py`` and the ``scripts/smoke_optimized.sh``
  smoke job).
"""

from __future__ import annotations

from typing import Iterable, Optional, Type

__all__ = [
    "ReproError",
    "MetricValidationError",
    "FaultBudgetExceeded",
    "InvariantViolation",
    "CheckpointCorruption",
    "StalePackError",
    "RoutingError",
    "check",
]


class ReproError(Exception):
    """Base class of every exception the library raises on purpose."""


class MetricValidationError(ReproError, ValueError):
    """A metric input is malformed: NaN/inf, negative, asymmetric
    distances, nonzero self-distance, or a triangle violation."""


class FaultBudgetExceeded(ReproError, ValueError):
    """A query supplied more faults than the structure was built for.

    Strict APIs (:meth:`FaultTolerantSpanner.find_path`,
    :meth:`FaultTolerantRoutingScheme.route`) raise this when
    ``|F| > f``; the graceful alternatives in
    :mod:`repro.resilience.degradation` return a
    :class:`~repro.resilience.degradation.DegradedResult` instead.
    """

    def __init__(self, f: int, faults: Optional[Iterable[int]] = None, message: str = ""):
        self.f = f
        self.faults = frozenset(faults) if faults is not None else frozenset()
        if not message:
            message = (
                f"{len(self.faults)} faults supplied but the structure "
                f"only supports f={f}"
            )
        super().__init__(message)


class CheckpointCorruption(ReproError, ValueError):
    """A persisted artifact failed an integrity check on load.

    Raised by :mod:`repro.checkpoint` for every *format-level* problem:
    unparseable JSON, an unknown format tag, a per-section CRC32
    mismatch, a whole-file digest mismatch, or a payload whose shape
    does not decode into the declared structure.  Semantic problems in
    a structurally sound payload (a tree that no longer dominates its
    metric, a blown stretch contract) raise
    :class:`InvariantViolation` from the auditor instead.  The recovery
    orchestrator (:mod:`repro.checkpoint.recovery`) catches both and
    repairs or rebuilds; callers that load directly should treat either
    as "do not trust this file".

    ``section`` names the first offending checkpoint section when the
    damage is localized (enables per-tree repair), or is ``None`` when
    the whole envelope is unusable.
    """

    def __init__(self, message: str, section: Optional[str] = None):
        self.section = section
        if section is not None:
            message = f"section {section!r}: {message}"
        super().__init__(message)


class StalePackError(ReproError, RuntimeError):
    """A packed query arena was requested from a superseded cover.

    The dynamic mutation layer (:mod:`repro.dynamic`) retires the
    pre-mutation :class:`~repro.treecover.base.TreeCover` when it swaps
    in a patched generation: preorder positions, Euler tours, and home
    tables baked into a :class:`PackedCoverIndex` describe the *old*
    tree shapes, so silently building a fresh arena from the retired
    cover would serve stale answers.  Arenas built *before* the
    retirement keep working (in-flight batches answer against the
    snapshot they started with); only constructing a *new* arena is
    refused.  ``hint`` tells the caller where the current generation
    lives.
    """

    def __init__(self, message: str, hint: str = ""):
        self.hint = hint or (
            "rebuild via TreeCover.packed_index() on the current "
            "generation's cover (CheckpointService.snapshot() returns it)"
        )
        super().__init__(f"{message} [{self.hint}]")


class RoutingError(ReproError, RuntimeError, ValueError):
    """A packet could not be moved along the fixed-port overlay.

    Raised by :class:`repro.routing.ports.Network` and the
    :mod:`repro.netsim` simulator when a port lookup names a link that
    was never wired, when a hop targets a node the fault plane has
    killed, or when a packet exhausts its hop budget.  Subclasses both
    :class:`RuntimeError` and :class:`ValueError` because the historical
    code paths raised one or the other (bare ``KeyError`` for unwired
    ports, ``RuntimeError`` for hop exhaustion); callers written against
    either keep working, new callers should catch :class:`RoutingError`.

    ``node`` and ``port`` locate the failing hop when known, so the
    simulator's drop accounting can attribute the loss.
    """

    def __init__(self, message: str, node: Optional[int] = None,
                 port: Optional[int] = None):
        self.node = node
        self.port = port
        super().__init__(message)


class InvariantViolation(ReproError, AssertionError):
    """A structural guarantee the paper proves did not hold at runtime.

    Raised by the ``verify_*`` helpers, the chaos harness, and internal
    sanity checks (e.g. a replica pool with no live member under
    ``|F| <= f``, which Theorem 4.2 rules out).
    """


def check(condition: bool, message: str, exc: Type[ReproError] = InvariantViolation) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds.

    The ``assert``-statement replacement used throughout ``src/`` —
    unlike ``assert`` it survives ``python -O``.
    """
    if not condition:
        raise exc(message)
