"""Well-separated pair decompositions and the WSPD spanner.

A *WSPD* with separation ``s`` is a set of node pairs of a fair split
tree such that (a) every pair of distinct points is covered by exactly
one node pair and (b) the two nodes of each pair are ``s``-separated
(distance at least ``s`` times the larger bounding-ball radius).
Callahan–Kosaraju produce ``O(s^d · n)`` pairs.

Picking one representative edge per pair yields the classic
``(1 + 8/s)``-spanner — a baseline with *unbounded* hop-diameter that
the paper's navigable spanners improve on; the WSPD also powers the
exact closest-pair and (1+ε)-diameter utilities used in tests.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..metrics.euclidean import EuclideanMetric
from ..metrics.splittree import FairSplitTree, SplitTreeNode

__all__ = ["well_separated_pairs", "wspd_spanner", "closest_pair", "approximate_diameter"]


def _separated(a: SplitTreeNode, b: SplitTreeNode, s: float) -> bool:
    radius = max(a.radius(), b.radius())
    gap = float(np.linalg.norm(a.center() - b.center())) - 2.0 * radius
    return gap >= s * radius


def well_separated_pairs(
    tree: FairSplitTree, s: float
) -> List[Tuple[SplitTreeNode, SplitTreeNode]]:
    """The Callahan–Kosaraju WSPD of the split tree with separation ``s``."""
    if s <= 0:
        raise ValueError("separation must be positive")
    pairs: List[Tuple[SplitTreeNode, SplitTreeNode]] = []
    stack: List[Tuple[SplitTreeNode, SplitTreeNode]] = []

    def enqueue(a: SplitTreeNode, b: SplitTreeNode) -> None:
        stack.append((a, b))

    # Seed with the children pairs of every internal node.
    walk = [tree.root]
    while walk:
        node = walk.pop()
        if node.is_leaf:
            continue
        enqueue(node.left, node.right)
        walk.append(node.left)
        walk.append(node.right)

    while stack:
        a, b = stack.pop()
        if _separated(a, b, s):
            pairs.append((a, b))
            continue
        # Split the node with the larger radius (ties: the bigger one).
        if (a.radius(), a.size()) < (b.radius(), b.size()):
            a, b = b, a
        enqueue(a.left, b)
        enqueue(a.right, b)
    return pairs


def wspd_spanner(metric: EuclideanMetric, s: float = 8.0) -> Graph:
    """The (1 + 8/s)-spanner with one representative edge per WSPD pair."""
    tree = FairSplitTree(metric)
    graph = Graph(metric.n)
    for a, b in well_separated_pairs(tree, s):
        u, v = a.rep, b.rep
        graph.add_edge(u, v, metric.distance(u, v))
    return graph


def closest_pair(metric: EuclideanMetric) -> Tuple[int, int, float]:
    """The exact closest pair via a WSPD with separation > 2.

    With ``s > 2`` the closest pair must be the representative pair of
    some singleton-singleton WSPD pair.
    """
    tree = FairSplitTree(metric)
    best = (0, 1, float("inf"))
    for a, b in well_separated_pairs(tree, 2.1):
        if a.size() == 1 and b.size() == 1:
            u, v = a.rep, b.rep
            d = metric.distance(u, v)
            if d < best[2]:
                best = (min(u, v), max(u, v), d)
    return best


def approximate_diameter(metric: EuclideanMetric, eps: float = 0.1) -> float:
    """A (1 - eps)-approximate diameter from a WSPD with s = 4/eps."""
    tree = FairSplitTree(metric)
    worst = 0.0
    for a, b in well_separated_pairs(tree, 4.0 / eps):
        worst = max(worst, metric.distance(a.rep, b.rep))
    return worst
