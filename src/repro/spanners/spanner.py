"""Spanner quality measures: stretch, hop-diameter, sparsity, lightness.

These are the four properties the paper's introduction singles out; every
benchmark reports them.  All evaluators work on
:class:`repro.graphs.graph.Graph` instances against an arbitrary metric.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from ..graphs.graph import Graph, dijkstra, prim_mst
from ..metrics.base import Metric, sample_pairs

__all__ = [
    "measured_stretch",
    "hop_diameter",
    "bounded_hop_stretch",
    "lightness",
    "sparsity",
    "SpannerReport",
    "evaluate_spanner",
]


def measured_stretch(
    graph: Graph, metric: Metric, pairs: Optional[Iterable[Tuple[int, int]]] = None
) -> float:
    """Max over pairs of (spanner distance / metric distance)."""
    if pairs is None:
        pairs = sample_pairs(metric.n, 300)
    worst = 1.0
    for u, v in pairs:
        base = metric.distance(u, v)
        if base == 0:
            continue
        worst = max(worst, dijkstra(graph, u, target=v) / base)
    return worst


def bounded_hop_stretch(
    graph: Graph, metric: Metric, k: int, pairs: Iterable[Tuple[int, int]]
) -> float:
    """Max stretch achievable with at most ``k`` hops (Bellman-Ford style).

    This is the quantity a hop-diameter-k t-spanner bounds by t: the
    weight of the best <= k-edge path, divided by the metric distance.
    """
    worst = 1.0
    for u, v in pairs:
        base = metric.distance(u, v)
        if base == 0:
            continue
        dist = [math.inf] * graph.n
        dist[u] = 0.0
        frontier = {u}
        for _ in range(k):
            updates = {}
            for a in frontier:
                da = dist[a]
                for b, w in graph.adj[a].items():
                    nd = da + w
                    if nd < dist[b] and nd < updates.get(b, math.inf):
                        updates[b] = nd
            for b, nd in updates.items():
                if nd < dist[b]:
                    dist[b] = nd
            frontier = set(updates)
            if not frontier:
                break
        worst = max(worst, dist[v] / base)
    return worst


def hop_diameter(
    graph: Graph,
    metric: Metric,
    t: float,
    pairs: Iterable[Tuple[int, int]],
    max_k: int = 64,
) -> int:
    """Smallest ``k`` such that every pair has a <= k-hop t-spanner path.

    Evaluated on the given pairs (exhaustive evaluation is quadratic).
    """
    worst_k = 1
    for u, v in pairs:
        base = metric.distance(u, v)
        budget = t * base + 1e-9 * max(1.0, base)
        dist = [math.inf] * graph.n
        dist[u] = 0.0
        frontier = {u}
        k = 0
        while dist[v] > budget:
            k += 1
            if k > max_k:
                return max_k + 1
            updates = {}
            for a in frontier:
                da = dist[a]
                for b, w in graph.adj[a].items():
                    nd = da + w
                    if nd < dist[b] and nd < updates.get(b, math.inf):
                        updates[b] = nd
            for b, nd in updates.items():
                dist[b] = nd
            frontier = set(updates)
            if not frontier:
                return max_k + 1
        worst_k = max(worst_k, max(k, 1))
    return worst_k


def lightness(graph: Graph, metric: Metric) -> float:
    """Spanner weight over MST weight."""
    mst_weight = sum(w for _, _, w in prim_mst(metric.n, metric.distance))
    if mst_weight == 0:
        return 1.0
    return graph.total_weight() / mst_weight


def sparsity(graph: Graph) -> float:
    """Edges over (n - 1), the size of a spanning tree."""
    return graph.num_edges / max(1, graph.n - 1)


class SpannerReport:
    """A bundle of the four quality measures for one spanner."""

    def __init__(self, edges: int, stretch: float, hops: int, light: float, sparse: float):
        self.edges = edges
        self.stretch = stretch
        self.hops = hops
        self.lightness = light
        self.sparsity = sparse

    def __repr__(self) -> str:
        return (
            f"SpannerReport(edges={self.edges}, stretch={self.stretch:.3f}, "
            f"hops={self.hops}, lightness={self.lightness:.2f}, "
            f"sparsity={self.sparsity:.2f})"
        )


def evaluate_spanner(
    graph: Graph,
    metric: Metric,
    t: float,
    pairs: Optional[List[Tuple[int, int]]] = None,
) -> SpannerReport:
    """Measure all four spanner quality figures on sampled pairs."""
    if pairs is None:
        pairs = sample_pairs(metric.n, 200)
    return SpannerReport(
        edges=graph.num_edges,
        stretch=measured_stretch(graph, metric, pairs),
        hops=hop_diameter(graph, metric, t, pairs),
        light=lightness(graph, metric),
        sparse=sparsity(graph),
    )
