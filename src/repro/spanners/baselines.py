"""Baseline spanner constructions the paper compares against.

* :func:`greedy_spanner` — the path-greedy (1+ε)-spanner [ADD+93]:
  optimal stretch/size tradeoff, but hop-diameter Ω(n) in the worst
  case; the poster child for "good weights, terrible hops".
* :func:`theta_graph` — the Θ-graph [Cla87, Kei88]: simple cone-based
  Euclidean spanner with easy navigation but Ω(n)-hop paths
  (Section 1.1 of the paper).
* :func:`complete_graph` — the metric itself: 1 hop, stretch 1,
  Θ(n²) edges; the trivial upper baseline.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..graphs.graph import Graph, dijkstra
from ..metrics.base import Metric
from ..metrics.euclidean import EuclideanMetric

__all__ = ["greedy_spanner", "theta_graph", "complete_graph", "theta_walk"]


def greedy_spanner(metric: Metric, t: float) -> Graph:
    """The path-greedy t-spanner: consider pairs by distance; add an edge
    whenever the current graph misses the t guarantee for the pair.

    O(n² log n + n·m) time — fine for the evaluation sizes used here.
    """
    if t < 1:
        raise ValueError("stretch must be at least 1")
    pairs: List[Tuple[float, int, int]] = []
    for u in range(metric.n):
        for v in range(u + 1, metric.n):
            pairs.append((metric.distance(u, v), u, v))
    pairs.sort()
    graph = Graph(metric.n)
    for d, u, v in pairs:
        if dijkstra(graph, u, target=v) > t * d:
            graph.add_edge(u, v, d)
    return graph


def theta_graph(metric: EuclideanMetric, cones: int = 8) -> Graph:
    """The Θ-graph for planar Euclidean point sets.

    Each point connects, in each of ``cones`` angular sectors, to the
    point whose projection on the sector bisector is nearest.  Stretch
    is 1/(cos θ - sin θ) for θ = 2π/cones.
    """
    if metric.dim != 2:
        raise ValueError("theta_graph is implemented for 2-D point sets")
    if cones < 4:
        raise ValueError("need at least 4 cones")
    points = metric.points
    graph = Graph(metric.n)
    theta = 2.0 * math.pi / cones
    for u in range(metric.n):
        delta = points - points[u]
        angles = np.arctan2(delta[:, 1], delta[:, 0]) % (2.0 * math.pi)
        sector = (angles / theta).astype(int)
        for c in range(cones):
            bisector = (c + 0.5) * theta
            direction = np.array([math.cos(bisector), math.sin(bisector)])
            members = np.nonzero((sector == c) & (np.arange(metric.n) != u))[0]
            if len(members) == 0:
                continue
            projections = delta[members] @ direction
            valid = members[projections > 0]
            if len(valid) == 0:
                continue
            best = valid[np.argmin((delta[valid] @ direction))]
            graph.add_edge(u, int(best), metric.distance(u, int(best)))
    return graph


def theta_walk(metric: EuclideanMetric, graph: Graph, u: int, v: int, cones: int = 8) -> List[int]:
    """The classic Θ-graph navigation: repeatedly step to the Θ-neighbor
    in the cone of the target.  Returns the full walked path — its hop
    count is the Ω(n) cost the paper's scheme eliminates.
    """
    theta = 2.0 * math.pi / cones
    path = [u]
    points = metric.points
    guard = 4 * metric.n
    while path[-1] != v and len(path) < guard:
        cur = path[-1]
        delta = points[v] - points[cur]
        angle = math.atan2(delta[1], delta[0]) % (2.0 * math.pi)
        sector = int(angle / theta)
        # step to the neighbor inside the target's cone minimizing the
        # projection (the Θ-graph edge of that cone), falling back to the
        # neighbor closest to the target.
        best = None
        best_key = math.inf
        for w in graph.adj[cur]:
            dw = points[w] - points[cur]
            aw = math.atan2(dw[1], dw[0]) % (2.0 * math.pi)
            if int(aw / theta) == sector:
                key = float(np.linalg.norm(points[v] - points[w]))
                if key < best_key:
                    best_key = key
                    best = w
        if best is None:
            best = min(
                graph.adj[cur],
                key=lambda w: float(np.linalg.norm(points[v] - points[w])),
            )
        if best in path[-2:]:
            break  # defensive: avoid 2-cycles on degenerate inputs
        path.append(best)
    return path


def complete_graph(metric: Metric) -> Graph:
    """The metric as a graph: the Θ(n²)-edge, 1-hop baseline."""
    graph = Graph(metric.n)
    for u in range(metric.n):
        for v in range(u + 1, metric.n):
            graph.add_edge(u, v, metric.distance(u, v))
    return graph
