"""Spanners: quality measures, baselines, and fault tolerance."""

from .baselines import complete_graph, greedy_spanner, theta_graph, theta_walk
from .wspd import approximate_diameter, closest_pair, well_separated_pairs, wspd_spanner
from .fault_tolerant import FaultTolerantSpanner
from .spanner import (
    SpannerReport,
    bounded_hop_stretch,
    evaluate_spanner,
    hop_diameter,
    lightness,
    measured_stretch,
    sparsity,
)

__all__ = [
    "approximate_diameter",
    "closest_pair",
    "well_separated_pairs",
    "wspd_spanner",
    "complete_graph",
    "greedy_spanner",
    "theta_graph",
    "theta_walk",
    "FaultTolerantSpanner",
    "SpannerReport",
    "bounded_hop_stretch",
    "evaluate_spanner",
    "hop_diameter",
    "lightness",
    "measured_stretch",
    "sparsity",
]
