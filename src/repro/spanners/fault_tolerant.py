"""Fault-tolerant spanners of bounded hop-diameter (Theorem 4.2).

Construction: take a robust tree cover 𝒯 (Theorem 4.1); for each tree
``T`` build Solomon's k-hop 1-spanner ``K_T`` (Theorem 1.1's navigator);
assign every tree vertex ``v`` a replica set ``R(v)`` of ``f + 1``
descendant leaf points (all of them if the subtree is smaller); replace
every edge ``(u, v)`` of ``K_T`` by the biclique ``R(u) × R(v)`` with
metric weights.

For any faulty set ``F`` (|F| <= f) and non-faulty pair ``x, y``, walking
the k-hop ``K_T`` path and substituting a non-faulty replica at every
vertex yields a k-hop path in ``H \\ F``; robustness of the cover keeps
its weight within (1 + O(ε)) of δ(x, y).  Every vertex on a 1-spanner
path is an ancestor of ``x`` or ``y``, so undersized replica sets always
contain one of the (non-faulty) endpoints — the key observation in the
paper's proof.

The fault-tolerant navigation scheme of Section 4.4 is
:meth:`FaultTolerantSpanner.find_path`: same O(k) query as the non-FT
navigator plus an O(f) scan per vertex for a live replica.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..core.navigation import TreeNavigator, dedup_path
from ..errors import FaultBudgetExceeded, InvariantViolation, check
from ..graphs.graph import Graph
from ..metrics.base import Metric
from ..observability import OBS, trace
from ..parallel import map_per_tree
from ..treecover.base import TreeCover
from ..treecover.dumbbell import robust_tree_cover

_C_QUERIES = OBS.registry.counter("ft.queries")
_C_TREES_PROBED = OBS.registry.counter("ft.trees_probed")
_C_REPLICA_SUBS = OBS.registry.counter("ft.replica_substitutions")
_C_ENDPOINT_FALLBACKS = OBS.registry.counter("ft.endpoint_fallbacks")

__all__ = ["FaultTolerantSpanner"]


def _build_ft_tree(ctx, index: int):
    """Per-tree fan-out unit: navigator K_T plus replica pools R(v).

    Both derive from the cover tree alone, so the trees of the cover can
    build on independent workers; the replica pools are the ``f + 1``
    prefixes of the descendant lists (Theorem 4.2).
    """
    trees, k, f = ctx.payload
    cover_tree = trees[index]
    navigator = TreeNavigator(
        cover_tree.tree,
        k,
        required=cover_tree.vertex_of_point,
        _metric=cover_tree.tree_metric,
    )
    pools = [pool[: f + 1] for pool in cover_tree.descendant_points()]
    return navigator, pools


class FaultTolerantSpanner:
    """An f-FT spanner with hop-diameter k over a doubling metric.

    With ``validate=True`` (or the environment variable
    ``REPRO_VALIDATE`` set to a truthy value) the constructor runs the
    opt-in invariant-checking mode of
    :mod:`repro.resilience.validation`: the metric is screened for
    NaN/negative/asymmetric distances before the build, and the replica
    pools are checked against Theorem 4.2's structure afterwards.
    """

    def __init__(
        self,
        metric: Metric,
        f: int,
        k: int,
        eps: float = 0.4,
        cover: Optional[TreeCover] = None,
        validate: Optional[bool] = None,
        replicas: Optional[List[List[List[int]]]] = None,
        workers: Optional[int] = None,
    ):
        if f < 0:
            raise ValueError("f must be non-negative")
        if validate is None:
            from ..resilience.validation import validation_enabled

            validate = validation_enabled()
        if validate:
            from ..resilience.validation import validate_metric

            validate_metric(metric)
        self.metric = metric
        self.f = f
        self.k = k
        self.cover = (
            cover if cover is not None else robust_tree_cover(metric, eps, workers=workers)
        )
        if replicas is not None and len(replicas) != len(self.cover.trees):
            raise ValueError(
                f"{len(replicas)} replica tables supplied for "
                f"{len(self.cover.trees)} cover trees"
            )
        with trace("ft.build", n=metric.n, f=f, k=k, trees=len(self.cover.trees)):
            built = map_per_tree(
                _build_ft_tree,
                range(len(self.cover.trees)),
                workers=workers,
                payload=(self.cover.trees, k, f),
            )
        self.navigators: List[TreeNavigator] = [navigator for navigator, _ in built]
        #: replicas[t][v] = the replica set R(v) of tree t's vertex v.
        #: Normally derived from the cover (prefixes of the descendant
        #: lists, Theorem 4.2); checkpoint restores pass the saved pools
        #: in via ``replicas=`` to skip the recomputation — the loader
        #: audits them against the theorem's structure instead.
        self.replicas: List[List[List[int]]] = []
        for index, cover_tree in enumerate(self.cover.trees):
            if replicas is not None:
                pools = replicas[index]
                if len(pools) != cover_tree.tree.n:
                    raise ValueError(
                        f"tree {index}: {len(pools)} replica pools for "
                        f"{cover_tree.tree.n} vertices"
                    )
                self.replicas.append([list(pool) for pool in pools])
            else:
                self.replicas.append(built[index][1])
        if validate:
            from ..resilience.validation import validate_ft_spanner

            validate_ft_spanner(self)

    # ------------------------------------------------------------------
    # Size accounting (edges are counted analytically; the biclique
    # blow-up is materialized only on demand).

    def edge_count(self) -> int:
        """|E(H)| = Σ_T Σ_{(u,v) in K_T} |R(u)|·|R(v)|, deduplicated lazily.

        Upper bound without dedup — the number the f²-scaling claim of
        Theorem 4.2 is about.
        """
        total = 0
        for navigator, reps in zip(self.navigators, self.replicas):
            for (a, b) in navigator.edges:
                total += len(reps[a]) * len(reps[b])
        return total

    def materialize(self) -> Graph:
        """The FT spanner H as an explicit graph on the metric's points."""
        graph = Graph(self.metric.n)
        for navigator, reps in zip(self.navigators, self.replicas):
            for (a, b) in navigator.edges:
                for p in reps[a]:
                    for q in reps[b]:
                        if p != q:
                            graph.add_edge(p, q, self.metric.distance(p, q))
        return graph

    # ------------------------------------------------------------------
    # FT navigation (Section 4.4)

    def find_path(
        self, u: int, v: int, faults: Iterable[int] = (), candidates: int = 12
    ) -> List[int]:
        """A <= k-hop u-v path avoiding the faulty points.

        ``u`` and ``v`` must be non-faulty and ``|faults| <= f``.

        The covering tree of the robustness analysis is not identified
        by stored tree distances alone (replacement cost depends on the
        subtree radii along the path), so the query materializes the
        replaced path in the ``candidates`` trees with the smallest
        stored distance and returns the lightest — still O(ζ + k·f)
        work, and every candidate obeys the hop/fault guarantees.
        """
        faulty: Set[int] = set(faults)
        if u in faulty or v in faulty:
            raise ValueError("query endpoints must be non-faulty")
        if len(faulty) > self.f:
            raise FaultBudgetExceeded(self.f, faulty)
        if u == v:
            return [u]
        obs = OBS.enabled
        if obs:
            _C_QUERIES.inc()
        best_path: List[int] = []
        best_weight = float("inf")
        for index in self.candidate_trees(u, v, candidates):
            if obs:
                _C_TREES_PROBED.inc()
            path = self._path_in_tree(index, u, v, faulty)
            weight = sum(
                self.metric.distance(a, b) for a, b in zip(path, path[1:])
            )
            if weight < best_weight:
                best_weight = weight
                best_path = path
        return best_path

    def candidate_trees(self, u: int, v: int, candidates: int = 12) -> List[int]:
        """The ``candidates`` cover trees with the smallest stored u-v
        distance, in order.  A ``candidates`` larger than ζ simply
        returns every tree; values below 1 are clamped to 1."""
        order = sorted(
            range(len(self.cover.trees)),
            key=lambda t: self.cover.trees[t].tree_distance(u, v),
        )
        return order[: max(1, candidates)]

    def _path_in_tree(
        self, index: int, u: int, v: int, faulty: Set[int], strict: bool = True
    ) -> Optional[List[int]]:
        """The replica-substituted k-hop path through one cover tree.

        With ``strict`` (the default, valid whenever ``|F| <= f``) a
        replica pool with no live member is a broken construction
        invariant and raises :class:`InvariantViolation`.  The
        degradation layer passes ``strict=False`` to probe trees in the
        over-budget regime ``|F| > f``, where a fully-dead pool is an
        expected outcome: the tree is skipped by returning ``None``.
        """
        cover_tree = self.cover.trees[index]
        vertex_path = self.navigators[index].find_path(
            cover_tree.vertex_of_point[u], cover_tree.vertex_of_point[v]
        )
        reps = self.replicas[index]
        obs = OBS.enabled
        points: List[int] = [u]
        for x in vertex_path[1:-1]:
            if obs:
                _C_REPLICA_SUBS.inc()
            live = [p for p in reps[x] if p not in faulty]
            if not live:
                # Undersized replica sets always contain an endpoint.
                live = [p for p in (u, v) if p in reps[x] and p not in faulty]
                if obs and live:
                    _C_ENDPOINT_FALLBACKS.inc()
            if not live:
                if strict:
                    raise InvariantViolation(
                        f"no live replica at tree vertex {x} with "
                        f"{len(faulty)} <= f={self.f} faults; "
                        "construction invariant broken"
                    )
                return None
            # Any live replica preserves the guarantees; greedily taking
            # the one nearest the previous point improves the constant.
            previous = points[-1]
            points.append(min(live, key=lambda p: self.metric.distance(previous, p)))
        points.append(v)
        return dedup_path(points)

    def verify_path(self, u: int, v: int, faults: Set[int], path: List[int]) -> float:
        """Check FT-path validity; returns its stretch.

        Checks endpoints, hop budget, and no faulty intermediates;
        raises :class:`InvariantViolation` (so the checks survive
        ``python -O``) on the first broken guarantee.
        """
        check(bool(path), f"empty path returned for ({u}, {v})")
        check(
            path[0] == u and path[-1] == v,
            f"path endpoints {path[0]}, {path[-1]} differ from query ({u}, {v})",
        )
        check(len(path) - 1 <= self.k, f"{len(path) - 1} hops exceed k={self.k}")
        check(not (set(path) & set(faults)), "path visits a faulty point")
        weight = sum(
            self.metric.distance(a, b) for a, b in zip(path, path[1:])
        )
        base = self.metric.distance(u, v)
        return weight / base if base > 0 else 1.0
