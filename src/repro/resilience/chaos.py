"""The chaos harness: scenario sweeps with invariants checked per query.

Drives :meth:`FaultTolerantSpanner.find_path` (through the graceful
:func:`~repro.resilience.degradation.find_path_degraded` wrapper) and
:meth:`FaultTolerantRoutingScheme.route` across fault sets produced by
an injector, growing ``|F|`` from zero through the over-budget regime
``|F| > f``, and records the *survival curve*: delivery rate, degraded
rate and stretch as a function of ``|F|``.

For every query with ``|F| <= f`` the harness enforces Theorem 4.2's
contract — delivered, at most ``k`` hops, no faulty intermediate, and
path weight within the robust-replacement bound of the candidate trees
(the measured γ of Theorem 4.1's robustness analysis) — raising
:class:`~repro.errors.InvariantViolation` on the spot rather than
averaging a violation away.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import InvariantViolation, check
from ..observability import OBS, trace
from ..treecover.dumbbell import path_replacement_bound
from .degradation import DegradedResult, find_path_degraded, route_degraded
from .injectors import CrashRecoverySchedule, FaultInjector

__all__ = ["ChaosHarness", "ChaosReport", "SurvivalPoint"]

_MIX = 1000003

# Chaos survival telemetry: every query the harness fires, split by how
# it came back, plus the over-budget queries that survived anyway (the
# graceful-degradation events the resilience subsystem exists for).
_C_QUERIES = OBS.registry.counter("chaos.queries")
_C_DELIVERED = OBS.registry.counter("chaos.delivered")
_C_DEGRADED = OBS.registry.counter("chaos.degraded")
_C_OVER_BUDGET_SURVIVED = OBS.registry.counter("chaos.over_budget_survived")
_C_INVARIANTS = OBS.registry.counter("chaos.invariants_checked")


@dataclass
class SurvivalPoint:
    """Aggregated outcomes of all queries at one fault-set size."""

    size: int
    queries: int
    delivered: int
    degraded: int
    mean_stretch: float
    max_stretch: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.queries if self.queries else 1.0

    @property
    def degraded_rate(self) -> float:
        return self.degraded / self.queries if self.queries else 0.0


@dataclass
class ChaosReport:
    """One injector's survival curves for navigation and routing."""

    injector: str
    f: int
    k: int
    queries_per_size: int
    navigation: List[SurvivalPoint] = field(default_factory=list)
    routing: List[SurvivalPoint] = field(default_factory=list)
    #: queries with |F| <= f whose full strict contract was enforced.
    invariants_checked: int = 0

    def navigation_rate(self, size: int) -> float:
        for point in self.navigation:
            if point.size == size:
                return point.delivery_rate
        raise KeyError(f"no navigation sweep at |F|={size}")

    def routing_rate(self, size: int) -> float:
        for point in self.routing:
            if point.size == size:
                return point.delivery_rate
        raise KeyError(f"no routing sweep at |F|={size}")

    def format_table(self) -> str:
        """The survival curve as a markdown table."""
        lines = [
            f"injector={self.injector}  f={self.f}  k={self.k}  "
            f"queries/size={self.queries_per_size}  "
            f"checked={self.invariants_checked}",
        ]
        has_routing = bool(self.routing)
        header = "| |F| | regime | nav delivery | nav degraded | nav stretch max |"
        rule = "|----:|--------|-------------:|-------------:|----------------:|"
        if has_routing:
            header += " route delivery | route stretch max |"
            rule += "---------------:|------------------:|"
        lines.append(header)
        lines.append(rule)
        for i, point in enumerate(self.navigation):
            regime = "<= f" if point.size <= self.f else "> f"
            row = (
                f"| {point.size} | {regime} | {point.delivery_rate:7.1%} "
                f"| {point.degraded_rate:7.1%} | {point.max_stretch:10.3f} |"
            )
            if has_routing:
                rp = self.routing[i] if i < len(self.routing) else None
                if rp is None:
                    row += " — | — |"
                else:
                    row += f" {rp.delivery_rate:7.1%} | {rp.max_stretch:10.3f} |"
            lines.append(row)
        return "\n".join(lines)


def _aggregate(size: int, outcomes: Sequence[DegradedResult]) -> SurvivalPoint:
    delivered = [o for o in outcomes if o.delivered]
    stretches = [o.stretch for o in delivered] or [0.0]
    return SurvivalPoint(
        size=size,
        queries=len(outcomes),
        delivered=len(delivered),
        degraded=sum(1 for o in outcomes if o.degraded),
        mean_stretch=sum(stretches) / len(stretches),
        max_stretch=max(stretches),
    )


class ChaosHarness:
    """Scenario sweeps over an FT spanner and (optionally) FT routing.

    Parameters
    ----------
    spanner:
        The :class:`~repro.spanners.FaultTolerantSpanner` under test.
    router:
        Optional :class:`~repro.routing.FaultTolerantRoutingScheme`
        sharing the metric; adds routing survival curves.
    queries:
        Non-faulty query pairs sampled per fault-set size.
    candidates:
        Candidate-tree budget forwarded to ``find_path``; also the set
        of trees whose robust-replacement bound defines the enforced
        stretch ceiling.
    routing_gamma:
        Sanity ceiling on routing stretch within budget (the routing
        path detours through one replica, so its rigorous bound is the
        replacement bound of the single chosen tree; a generous scalar
        keeps the check tree-choice agnostic).
    """

    def __init__(
        self,
        spanner,
        router=None,
        queries: int = 40,
        seed: int = 0,
        candidates: int = 12,
        routing_gamma: float = 25.0,
    ):
        self.spanner = spanner
        self.router = router
        self.queries = queries
        self.seed = seed
        self.candidates = candidates
        self.routing_gamma = routing_gamma
        self.metric = spanner.metric
        self._descendants: Dict[int, List[List[int]]] = {}

    # ------------------------------------------------------------------
    # The enforced stretch bound (Theorem 4.1's robustness, measured)

    def _tree_descendants(self, index: int) -> List[List[int]]:
        pools = self._descendants.get(index)
        if pools is None:
            pools = self.spanner.cover.trees[index].descendant_points()
            self._descendants[index] = pools
        return pools

    def pair_bound(self, u: int, v: int) -> float:
        """Upper bound on any substituted path weight ``find_path`` may
        return for (u, v): the minimum, over its candidate trees, of the
        arbitrary-leaf replacement bound of Theorem 4.1."""
        return min(
            path_replacement_bound(
                self.spanner.cover.trees[t], self.metric, u, v,
                descendants=self._tree_descendants(t),
            )
            for t in self.spanner.candidate_trees(u, v, self.candidates)
        )

    # ------------------------------------------------------------------
    # Invariant enforcement (the |F| <= f contract)

    def enforce_navigation(self, result: DegradedResult) -> None:
        """Raise :class:`InvariantViolation` unless the strict Theorem
        4.2 contract held for one within-budget query outcome."""
        u, v, faults = result.u, result.v, result.faults
        label = f"({u}, {v}) with |F|={len(faults)} <= f={self.spanner.f}"
        check(result.delivered, f"undelivered within budget {label}: {result.reason}")
        check(not result.degraded, f"degraded within budget {label}: {result.reason}")
        check(
            result.hops <= self.spanner.k,
            f"{result.hops} hops exceed k={self.spanner.k} for {label}",
        )
        check(
            not (set(result.path) & faults),
            f"path visits a faulty point for {label}",
        )
        bound = self.pair_bound(u, v)
        check(
            result.weight <= bound * (1 + 1e-6) + 1e-9,
            f"path weight {result.weight:.6g} exceeds the robust replacement "
            f"bound {bound:.6g} for {label}",
        )

    def enforce_routing(self, result: DegradedResult) -> None:
        """Theorem 5.2's contract for one within-budget routed packet."""
        u, v, faults = result.u, result.v, result.faults
        label = f"({u}, {v}) with |F|={len(faults)} <= f={self.router.f}"
        check(result.delivered, f"undelivered within budget {label}: {result.reason}")
        check(result.hops <= 2, f"{result.hops} hops exceed 2 for {label}")
        check(
            not (set(result.path) & faults),
            f"route visits a faulty point for {label}",
        )
        check(
            result.stretch <= self.routing_gamma + 1e-6,
            f"routing stretch {result.stretch:.3f} exceeds "
            f"{self.routing_gamma} for {label}",
        )

    # ------------------------------------------------------------------
    # Sweeps

    def default_sizes(self) -> List[int]:
        """0 through the over-budget regime, capped so two live points
        always remain."""
        f = self.spanner.f
        raw = {0, max(1, f // 2), f, f + 1, 2 * (f + 1), 4 * (f + 1)}
        cap = max(0, self.metric.n - 3)
        return sorted({min(size, cap) for size in raw})

    def _query_pairs(self, faults: Set[int], salt: int) -> List[Tuple[int, int]]:
        live = [p for p in range(self.metric.n) if p not in faults]
        check(len(live) >= 2, "fewer than two live points; nothing to query")
        rng = random.Random(self.seed * _MIX + salt)
        pairs = []
        for _ in range(self.queries):
            u, v = rng.sample(live, 2)
            pairs.append((u, v))
        return pairs

    @staticmethod
    def _count_outcome(outcome: DegradedResult, over_budget: bool) -> None:
        _C_QUERIES.inc()
        if outcome.delivered:
            _C_DELIVERED.inc()
            if over_budget:
                _C_OVER_BUDGET_SURVIVED.inc()
        if outcome.degraded:
            _C_DEGRADED.inc()

    def _run_one(
        self, faults: Set[int], salt: int, report: ChaosReport
    ) -> Tuple[SurvivalPoint, Optional[SurvivalPoint]]:
        pairs = self._query_pairs(faults, salt)
        within_budget = len(faults) <= self.spanner.f
        obs = OBS.enabled
        nav_outcomes = []
        for u, v in pairs:
            outcome = find_path_degraded(
                self.spanner, u, v, faults, candidates=self.candidates
            )
            if within_budget:
                self.enforce_navigation(outcome)
                report.invariants_checked += 1
                if obs:
                    _C_INVARIANTS.inc()
            if obs:
                self._count_outcome(outcome, not within_budget)
            nav_outcomes.append(outcome)
        nav_point = _aggregate(len(faults), nav_outcomes)
        route_point = None
        if self.router is not None:
            route_outcomes = []
            within_route_budget = len(faults) <= self.router.f
            for u, v in pairs:
                outcome = route_degraded(self.router, u, v, faults)
                if within_route_budget:
                    self.enforce_routing(outcome)
                    report.invariants_checked += 1
                    if obs:
                        _C_INVARIANTS.inc()
                if obs:
                    self._count_outcome(outcome, not within_route_budget)
                route_outcomes.append(outcome)
            route_point = _aggregate(len(faults), route_outcomes)
        return nav_point, route_point

    def sweep(
        self,
        injector: FaultInjector,
        sizes: Optional[Iterable[int]] = None,
    ) -> ChaosReport:
        """Survival curves for one injector across fault-set sizes."""
        sizes = self.default_sizes() if sizes is None else sorted(set(sizes))
        report = ChaosReport(
            injector=injector.name, f=self.spanner.f, k=self.spanner.k,
            queries_per_size=self.queries,
        )
        with trace("chaos.sweep", injector=injector.name, sizes=len(sizes)):
            for salt, size in enumerate(sizes):
                faults = injector.sample(size) if size else set()
                with trace("chaos.size", size=size):
                    nav_point, route_point = self._run_one(faults, salt, report)
                report.navigation.append(nav_point)
                if route_point is not None:
                    report.routing.append(route_point)
        return report

    def run_schedule(self, schedule: CrashRecoverySchedule) -> ChaosReport:
        """Drive a time-stepped crash/recovery schedule; one survival
        point per step (sizes in the report are step indexes' |F|)."""
        report = ChaosReport(
            injector=f"crash({schedule.injector.name})",
            f=self.spanner.f, k=self.spanner.k,
            queries_per_size=self.queries,
        )
        with trace("chaos.schedule", injector=schedule.injector.name):
            for step, faults in enumerate(schedule):
                with trace("chaos.step", step=step, faults=len(faults)):
                    nav_point, route_point = self._run_one(
                        faults, 1000 + step, report
                    )
                report.navigation.append(nav_point)
                if route_point is not None:
                    report.routing.append(route_point)
        return report
