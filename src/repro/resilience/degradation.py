"""Graceful degradation: best-effort queries past the fault budget.

The strict APIs promise Theorem 4.2 / 5.2 guarantees and therefore
refuse ``|F| > f`` outright (:class:`~repro.errors.FaultBudgetExceeded`)
and treat a dead replica pool as a broken invariant
(:class:`~repro.errors.InvariantViolation`).  A production system wants
neither crash: when the fault budget is blown it should return whatever
service level is still achievable, *labelled as such*.  The two
``*_degraded`` entry points here do exactly that — they never raise for
over-budget fault sets; they return a :class:`DegradedResult` carrying
the best-effort path plus the guarantees it actually achieved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from ..errors import InvariantViolation

__all__ = ["DegradedResult", "find_path_degraded", "route_degraded"]


@dataclass
class DegradedResult:
    """Outcome of a best-effort query, with achieved (not promised)
    guarantees.

    ``degraded`` is True whenever the theorem's preconditions did not
    hold (over-budget faults, faulty endpoint) or a guarantee was lost;
    ``delivered and not degraded`` means the full strict guarantee held.
    """

    u: int
    v: int
    path: Optional[List[int]]
    delivered: bool
    degraded: bool
    over_budget: bool
    hops: int = -1
    weight: float = math.inf
    stretch: float = math.inf
    reason: str = ""
    faults: Set[int] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        """Delivered with every strict guarantee intact."""
        return self.delivered and not self.degraded


def _measure(metric, u: int, v: int, path: List[int]):
    weight = sum(metric.distance(a, b) for a, b in zip(path, path[1:]))
    base = metric.distance(u, v)
    stretch = weight / base if base > 0 else 1.0
    return len(path) - 1, weight, stretch


def find_path_degraded(
    spanner,
    u: int,
    v: int,
    faults: Iterable[int] = (),
    candidates: int = 12,
) -> DegradedResult:
    """Best-effort FT navigation that never raises on bad fault sets.

    Within budget (``|F| <= f``) this is exactly
    :meth:`FaultTolerantSpanner.find_path` wrapped in a non-degraded
    result.  Over budget, every candidate tree is probed leniently —
    trees that lost a whole replica pool are skipped — and the lightest
    surviving substituted path is returned with ``degraded=True``.  If
    every candidate tree lost a pool, the result is undelivered (with
    the reason recorded) instead of an exception.
    """
    faulty = set(faults)
    if u in faulty or v in faulty:
        return DegradedResult(
            u, v, None, delivered=False, degraded=True,
            over_budget=len(faulty) > spanner.f,
            reason="query endpoint is faulty", faults=faulty,
        )
    if u == v:
        return DegradedResult(
            u, v, [u], delivered=True, degraded=False,
            over_budget=len(faulty) > spanner.f,
            hops=0, weight=0.0, stretch=1.0, faults=faulty,
        )
    over = len(faulty) > spanner.f
    if not over:
        path = spanner.find_path(u, v, faulty, candidates=candidates)
        hops, weight, stretch = _measure(spanner.metric, u, v, path)
        return DegradedResult(
            u, v, path, delivered=True, degraded=False, over_budget=False,
            hops=hops, weight=weight, stretch=stretch, faults=faulty,
        )
    best: Optional[List[int]] = None
    best_weight = math.inf
    dead_trees = 0
    for index in spanner.candidate_trees(u, v, candidates):
        path = spanner._path_in_tree(index, u, v, faulty, strict=False)
        if path is None:
            dead_trees += 1
            continue
        weight = sum(
            spanner.metric.distance(a, b) for a, b in zip(path, path[1:])
        )
        if weight < best_weight:
            best_weight = weight
            best = path
    if best is None:
        return DegradedResult(
            u, v, None, delivered=False, degraded=True, over_budget=True,
            reason=f"all {dead_trees} candidate trees lost a replica pool",
            faults=faulty,
        )
    hops, weight, stretch = _measure(spanner.metric, u, v, best)
    return DegradedResult(
        u, v, best, delivered=True, degraded=True, over_budget=True,
        hops=hops, weight=weight, stretch=stretch,
        reason=(
            f"over budget (|F|={len(faulty)} > f={spanner.f}); "
            f"best effort across {dead_trees} dead / "
            "surviving candidate trees"
        ),
        faults=faulty,
    )


def route_degraded(
    scheme,
    u: int,
    v: int,
    faults: Iterable[int] = (),
) -> DegradedResult:
    """Best-effort FT routing that never raises on bad fault sets.

    Launches the packet regardless of ``|F|``; a routing dead end
    (every replica of a needed cut vertex is faulty) or a hop-count
    blow-up is reported as an undelivered :class:`DegradedResult`
    rather than an exception.
    """
    faulty = set(faults)
    over = len(faulty) > scheme.f
    if u in faulty or v in faulty:
        return DegradedResult(
            u, v, None, delivered=False, degraded=True, over_budget=over,
            reason="route endpoint is faulty", faults=faulty,
        )
    try:
        result = scheme.route(u, v, faulty, enforce_budget=False)
    except InvariantViolation as exc:
        if not over:  # within budget this is a real construction bug
            raise
        return DegradedResult(
            u, v, None, delivered=False, degraded=True, over_budget=True,
            reason=str(exc), faults=faulty,
        )
    except RuntimeError as exc:
        return DegradedResult(
            u, v, None, delivered=False, degraded=True, over_budget=over,
            reason=str(exc), faults=faulty,
        )
    base = scheme.metric.distance(u, v)
    stretch = result.weight / base if base > 0 else 1.0
    delivered = bool(result.path) and result.path[0] == u and result.path[-1] == v
    lost_guarantee = (
        not delivered
        or result.hops > 2
        or bool(set(result.path) & faulty)
    )
    return DegradedResult(
        u, v, list(result.path), delivered=delivered,
        degraded=over or lost_guarantee, over_budget=over,
        hops=result.hops, weight=result.weight, stretch=stretch,
        reason="over budget best effort" if over else "",
        faults=faulty,
    )
