"""Opt-in runtime invariant checking.

The constructions assume well-formed inputs (finite, symmetric,
positive distances) and produce structures with provable invariants
(replica pools of size ``min(f + 1, |subtree|)``, dominating cover
trees).  This module validates both — at construction time, behind an
explicit ``validate=`` flag or the ``REPRO_VALIDATE`` environment
variable — so corrupted inputs surface as typed
:class:`~repro.errors.MetricValidationError` /
:class:`~repro.errors.InvariantViolation` instead of garbage paths deep
inside a query.
"""

from __future__ import annotations

import math
import os
import random
from typing import Optional

from ..errors import InvariantViolation, MetricValidationError, check
from ..metrics.base import Metric, check_metric_axioms, sample_pairs

__all__ = [
    "validation_enabled",
    "validate_metric",
    "validate_cover",
    "validate_ft_spanner",
]

_TRUTHY = {"1", "true", "yes", "on"}


def validation_enabled(env: str = "REPRO_VALIDATE") -> bool:
    """Whether the opt-in validation mode is switched on globally."""
    return os.environ.get(env, "").strip().lower() in _TRUTHY


def validate_metric(
    metric: Metric, trials: int = 300, seed: int = 0
) -> None:
    """Screen a metric for malformed distances.

    Checks, on a deterministic sample: NaN and infinite values, negative
    distances, asymmetry, nonzero self-distances, and (via
    :func:`~repro.metrics.base.check_metric_axioms`) the triangle
    inequality.  Raises :class:`MetricValidationError` on the first
    problem found.
    """
    n = metric.n
    rng = random.Random(seed)
    for _ in range(min(trials, 4 * n)):
        u = rng.randrange(n)
        v = rng.randrange(n)
        d = metric.distance(u, v)
        check(not math.isnan(d), f"distance ({u}, {v}) is NaN", MetricValidationError)
        check(
            not math.isinf(d),
            f"distance ({u}, {v}) is infinite",
            MetricValidationError,
        )
        check(d >= 0, f"distance ({u}, {v}) is negative", MetricValidationError)
        back = metric.distance(v, u)
        check(
            abs(d - back) <= 1e-9 * max(1.0, abs(d)),
            f"asymmetric distances for ({u}, {v}): {d} vs {back}",
            MetricValidationError,
        )
        du = metric.distance(u, u)
        check(
            du == 0,
            f"self distance of {u} is {du}, expected 0",
            MetricValidationError,
        )
    check_metric_axioms(metric, trials=trials, seed=seed)


def validate_cover(cover, sample: int = 150, gamma: Optional[float] = None) -> None:
    """Check a tree cover's structural invariants on sampled pairs.

    Every tree must dominate the metric; with ``gamma`` given, the
    cover's measured stretch must stay below it.  Raises
    :class:`InvariantViolation` on violation.
    """
    pairs = sample_pairs(cover.metric.n, sample)
    for cover_tree in cover.trees:
        cover_tree.check_dominating(cover.metric, pairs)
    worst, _ = cover.measured_stretch(pairs)
    check(math.isfinite(worst), "cover stretch is unbounded on sampled pairs")
    if gamma is not None:
        check(worst <= gamma + 1e-6, f"cover stretch {worst} exceeds gamma {gamma}")


def validate_ft_spanner(spanner) -> None:
    """Check Theorem 4.2's replica-pool structure after construction.

    For every tree: each pool holds between 1 and ``f + 1`` in-range
    points, and the pool of a point's own host vertex starts with that
    point (the property the undersized-pool endpoint fallback of
    ``find_path`` relies on).  Raises :class:`InvariantViolation` on
    violation.
    """
    n = spanner.metric.n
    limit = spanner.f + 1
    for t, (cover_tree, pools) in enumerate(zip(spanner.cover.trees, spanner.replicas)):
        for v, pool in enumerate(pools):
            check(pool, f"tree {t} vertex {v} has an empty replica pool")
            check(
                len(pool) <= limit,
                f"tree {t} vertex {v} pool has {len(pool)} > f+1 = {limit} replicas",
            )
            check(
                all(0 <= p < n for p in pool),
                f"tree {t} vertex {v} pool contains out-of-range points",
            )
            check(
                len(set(pool)) == len(pool),
                f"tree {t} vertex {v} pool contains duplicates",
            )
        for p, host in enumerate(cover_tree.vertex_of_point):
            check(
                p in pools[host],
                f"tree {t}: point {p} missing from its host vertex pool",
            )
