"""Fault injection, chaos testing, graceful degradation, validation.

The resilience subsystem turns the fault-tolerant theory (Theorems 4.2
and 5.2) into an operationally testable stack:

* :mod:`~repro.resilience.injectors` — random, regional, adversarial
  and time-stepped crash/recovery fault models;
* :mod:`~repro.resilience.chaos` — the harness that sweeps fault-set
  sizes through the over-budget regime while enforcing the paper's
  guarantees on every within-budget query;
* :mod:`~repro.resilience.degradation` — best-effort query wrappers
  returning typed :class:`DegradedResult` instead of raising;
* :mod:`~repro.resilience.validation` — opt-in construction-time input
  and invariant validation (``validate=`` / ``REPRO_VALIDATE``).

CLI: ``python -m repro chaos --scenario adversarial --f 2 --k 4``.
"""

from .chaos import ChaosHarness, ChaosReport, SurvivalPoint
from .degradation import DegradedResult, find_path_degraded, route_degraded
from .injectors import (
    AdversarialInjector,
    CrashRecoverySchedule,
    FaultInjector,
    RandomInjector,
    RegionalInjector,
    make_injector,
)
from .validation import (
    validate_cover,
    validate_ft_spanner,
    validate_metric,
    validation_enabled,
)

__all__ = [
    "ChaosHarness",
    "ChaosReport",
    "SurvivalPoint",
    "DegradedResult",
    "find_path_degraded",
    "route_degraded",
    "AdversarialInjector",
    "CrashRecoverySchedule",
    "FaultInjector",
    "RandomInjector",
    "RegionalInjector",
    "make_injector",
    "validate_cover",
    "validate_ft_spanner",
    "validate_metric",
    "validation_enabled",
]
