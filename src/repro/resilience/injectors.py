"""Fault injectors: who dies, and in what order.

Four adversary models drive the chaos harness
(:mod:`repro.resilience.chaos`):

* :class:`RandomInjector` — uniform faults, the model E5/E12 always
  used;
* :class:`RegionalInjector` — correlated failures: all points inside a
  metric ball die together (a rack, a region, a cut fiber);
* :class:`AdversarialInjector` — a white-box adversary that greedily
  kills the replica pools ``R(v)`` sitting on the hottest navigator
  paths, the worst case Theorem 4.2's ``f + 1`` replication is sized
  against;
* :class:`CrashRecoverySchedule` — a time-stepped churn process
  (crash + recovery) layered over any of the above.

Injectors are deterministic: ``sample(size)`` depends only on the
constructor arguments and ``size``, so every sweep is reproducible.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Iterator, List, Optional, Set

from ..metrics.base import Metric, sample_pairs

__all__ = [
    "FaultInjector",
    "RandomInjector",
    "RegionalInjector",
    "AdversarialInjector",
    "CrashRecoverySchedule",
    "make_injector",
]

_MIX = 1000003  # seed mixer keeping per-size draws independent


class FaultInjector:
    """Base class: a deterministic source of faulty point sets."""

    name = "injector"

    def __init__(self, n: int, seed: int = 0):
        self.n = n
        self.seed = seed

    def ranked(self) -> List[int]:
        """All points in kill-priority order (most damaging first).

        The default ranking replays ``sample`` at full size; subclasses
        with a natural ordering override this.
        """
        return sorted(self.sample(self.n))

    def sample(self, size: int) -> Set[int]:
        """A faulty set of ``size`` points (all points when ``size >= n``)."""
        raise NotImplementedError

    def __call__(self, size: int) -> Set[int]:
        return self.sample(size)


class RandomInjector(FaultInjector):
    """Uniformly random faults — the baseline adversary."""

    name = "random"

    def sample(self, size: int) -> Set[int]:
        size = min(size, self.n)
        rng = random.Random(self.seed * _MIX + size)
        return set(rng.sample(range(self.n), size))

    def ranked(self) -> List[int]:
        rng = random.Random(self.seed * _MIX)
        order = list(range(self.n))
        rng.shuffle(order)
        return order


class RegionalInjector(FaultInjector):
    """Correlated regional faults: a metric ball around a center dies.

    ``sample(size)`` kills the ``size`` points nearest to the center
    (the center included), i.e. the smallest metric ball holding
    ``size`` points.
    """

    name = "regional"

    def __init__(self, metric: Metric, seed: int = 0, center: Optional[int] = None):
        super().__init__(metric.n, seed)
        self.metric = metric
        if center is None:
            center = random.Random(seed).randrange(metric.n)
        self.center = center
        self._order = sorted(
            range(metric.n), key=lambda p: (metric.distance(self.center, p), p)
        )

    def ranked(self) -> List[int]:
        return list(self._order)

    def sample(self, size: int) -> Set[int]:
        return set(self._order[: min(size, self.n)])


class AdversarialInjector(FaultInjector):
    """A white-box adversary against a :class:`FaultTolerantSpanner`.

    Probes the structure with sampled fault-free queries, counts how
    often each (tree, vertex) shows up as an intermediate on the k-hop
    navigator paths of the best candidate trees, then kills replica
    pools ``R(v)`` whole, hottest first.  Killing a full pool is exactly
    what forces ``find_path`` into its endpoint fallback (within budget)
    or kills the tree outright (over budget), so at equal ``|F|`` this
    degrades service far more than random faults.
    """

    name = "adversarial"

    def __init__(
        self,
        spanner,
        probe_pairs: int = 150,
        candidates: int = 4,
        seed: int = 0,
    ):
        super().__init__(spanner.metric.n, seed)
        self.spanner = spanner
        heat: Counter = Counter()
        for u, v in sample_pairs(self.n, probe_pairs, seed=seed):
            for t in spanner.candidate_trees(u, v, candidates):
                cover_tree = spanner.cover.trees[t]
                vertex_path = spanner.navigators[t].find_path(
                    cover_tree.vertex_of_point[u], cover_tree.vertex_of_point[v]
                )
                for x in vertex_path[1:-1]:
                    heat[(t, x)] += 1
        #: Replica pools in decreasing heat order; `sample` drains them.
        self.pools: List[List[int]] = [
            list(spanner.replicas[t][x]) for (t, x), _ in heat.most_common()
        ]

    def ranked(self) -> List[int]:
        order: List[int] = []
        seen: Set[int] = set()
        for pool in self.pools:
            for p in pool:
                if p not in seen:
                    seen.add(p)
                    order.append(p)
        for p in range(self.n):  # cold points last
            if p not in seen:
                order.append(p)
        return order

    def sample(self, size: int) -> Set[int]:
        return set(self.ranked()[: min(size, self.n)])


class CrashRecoverySchedule:
    """A time-stepped crash/recovery schedule over a base injector.

    Iterating yields one faulty set per step.  Step 0 is
    ``injector.sample(size)``; each later step recovers a fraction of
    the currently-faulty points and crashes fresh ones from the
    injector's kill-priority ranking, keeping ``|F|`` at ``size``.
    """

    def __init__(
        self,
        injector: FaultInjector,
        size: int,
        steps: int,
        recover_fraction: float = 0.5,
        seed: int = 0,
    ):
        if steps < 1:
            raise ValueError("a schedule needs at least one step")
        if not 0.0 <= recover_fraction <= 1.0:
            raise ValueError("recover_fraction must lie in [0, 1]")
        self.injector = injector
        self.size = min(size, injector.n)
        self.steps = steps
        self.recover_fraction = recover_fraction
        self.seed = seed

    def __iter__(self) -> Iterator[Set[int]]:
        rng = random.Random(self.seed)
        ranking = self.injector.ranked()
        current = set(ranking[: self.size])
        yield set(current)
        for _ in range(self.steps - 1):
            churn = max(1, round(self.recover_fraction * len(current)))
            recovered = set(rng.sample(sorted(current), min(churn, len(current))))
            current -= recovered
            # Refill with the hottest points that are neither still down
            # nor just recovered — without the `recovered` exclusion the
            # ranking would hand the same points straight back and the
            # schedule would never churn.
            for p in ranking:
                if len(current) >= self.size:
                    break
                if p not in current and p not in recovered:
                    current.add(p)
            for p in ranking:  # n too small for fresh points: re-crash
                if len(current) >= self.size:
                    break
                if p not in current:
                    current.add(p)
            yield set(current)

    def __len__(self) -> int:
        return self.steps


def make_injector(
    name: str,
    metric: Metric,
    spanner=None,
    seed: int = 0,
) -> FaultInjector:
    """Factory used by the CLI and tests: injector by scenario name."""
    if name == "random":
        return RandomInjector(metric.n, seed=seed)
    if name == "regional":
        return RegionalInjector(metric, seed=seed)
    if name == "adversarial":
        if spanner is None:
            raise ValueError("the adversarial injector needs the spanner to attack")
        return AdversarialInjector(spanner, seed=seed)
    raise ValueError(f"unknown injector {name!r}")
