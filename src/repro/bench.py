"""Benchmark-regression harness (``python -m repro bench``).

Times the vectorized construction and query paths against the frozen
pre-vectorization implementations in :mod:`repro._seed_baseline` on
identical inputs, and emits schema-stable JSON artifacts:

* ``BENCH_tree_covers.json`` — construction time of the net hierarchy,
  the CKR/HST hierarchy, and the Theorem 4.1 robust tree cover, each
  with its seed-baseline time and speedup, plus output invariants
  (ζ, measured stretch) so a regression in either speed or quality is
  visible in version control diffs.
* ``BENCH_navigation.json`` — navigator build time, scalar query
  p50/p99 latency, and batched :meth:`MetricNavigator.find_paths`
  per-query latency, plus spanner edge counts.
* ``BENCH_dynamic.json`` — sustained insert/delete throughput with
  interleaved queries through :class:`repro.dynamic.DynamicRobustCover`,
  journal fsync latency, and the patch-vs-rebuild crossover.

Schema stability contract: the ``schema`` field names the payload
version (``repro.bench.tree_covers/v1``, ``repro.bench.navigation/v1``).
Consumers may rely on the keys checked by :func:`validate_bench_json`;
anything else (the ``detail`` dicts, ``meta``) is informational and may
grow without a version bump.  Removing or retyping a checked key
requires bumping the version suffix.
"""

from __future__ import annotations

import json
import math
import os
import platform
import random
import time
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy

from . import __version__
from ._seed_baseline import (
    SeedEuclideanMetric,
    SeedMetricNavigator,
    SeedNetHierarchy,
    seed_build_hst,
    seed_robust_tree_cover,
)
from .core.metric_navigator import MetricNavigator
from .metrics.base import sample_pairs
from .metrics.doubling import NetHierarchy
from .metrics.euclidean import random_points
from .observability import OBS
from .parallel import resolve_workers
from .treecover.dumbbell import robust_tree_cover
from .treecover.hst import build_hst

__all__ = [
    "TREE_COVERS_SCHEMA",
    "NAVIGATION_SCHEMA",
    "SERVING_SCHEMA",
    "DYNAMIC_SCHEMA",
    "NETSIM_SCHEMA",
    "bench_tree_covers",
    "bench_navigation",
    "bench_serving",
    "bench_dynamic",
    "bench_netsim",
    "validate_bench_json",
    "write_bench_files",
]

TREE_COVERS_SCHEMA = "repro.bench.tree_covers/v1"
NAVIGATION_SCHEMA = "repro.bench.navigation/v1"
SERVING_SCHEMA = "repro.bench.serving/v1"
DYNAMIC_SCHEMA = "repro.bench.dynamic/v1"
NETSIM_SCHEMA = "repro.bench.netsim/v1"


def _best_of(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best = math.inf
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _meta() -> Dict[str, str]:
    return {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def _result(
    name: str,
    n: int,
    seconds: float,
    seed_seconds: Optional[float],
    detail: Dict,
    spans: Optional[List[Dict]] = None,
) -> Dict:
    out = {
        "name": name,
        "n": n,
        "seconds": round(seconds, 6),
        "seed_seconds": None if seed_seconds is None else round(seed_seconds, 6),
        "speedup": (
            None
            if seed_seconds is None or seconds <= 0
            else round(seed_seconds / seconds, 3)
        ),
        "detail": detail,
    }
    if spans is not None:
        out["trace"] = spans
    return out


def _trace_context(trace: bool):
    """Scope tracing on for a traced bench run (and start it clean)."""
    if not trace:
        return nullcontext()
    OBS.clear()
    return OBS.scoped(True)


def _drain_spans(trace: bool) -> Optional[List[Dict]]:
    """Root spans accumulated since the previous drain, or ``None``.

    Called after each timed stage so the stage's span trees land on its
    own BENCH row.  Traced runs measure the instrumented code path —
    timings carry the (small) tracing overhead by design.
    """
    return OBS.take_roots() if trace else None


def _timing_workers(workers: Optional[int]) -> Tuple[int, Optional[str]]:
    """Resolve ``workers`` for the *timed* build stages.

    A process pool wider than the machine can only add serialization
    overhead to a wall-clock measurement, so the timed stages cap the
    fan-out at ``os.cpu_count()`` and fall back to the serial path on a
    single-core box.  This is a measurement policy only: the engine's
    own :func:`repro.parallel.resolve_workers` semantics are unchanged,
    and the determinism tests still force real pools at any requested
    width regardless of core count.

    Returns ``(workers_used, fallback_reason)``: the second element is
    ``None`` when the stages run exactly as requested, else a sentence
    naming what the clamp did — callers record it in row detail so a
    serial run can never masquerade as a parallel measurement.
    """
    resolved = resolve_workers(workers)
    cores = os.cpu_count() or 1
    if resolved <= 1:
        return 0, None
    if cores <= 1:
        return 0, (
            f"requested {resolved} workers but cpu_count={cores}; "
            "timed stages ran serial"
        )
    if resolved > cores:
        return cores, f"requested {resolved} workers, capped to cpu_count={cores}"
    return resolved, None


def _parallel_detail(
    detail: Dict,
    workers: int,
    seconds: float,
    serial_seconds: float,
    requested: Optional[int] = None,
    fallback: Optional[str] = None,
) -> Dict:
    """Record the worker count and parallel-vs-serial speedup of a stage.

    ``workers`` is what the timed stage actually used after the
    core-count clamp of :func:`_timing_workers`; ``requested`` is what
    the caller asked for (``--workers`` / ``REPRO_WORKERS``) and
    ``fallback`` is the clamp's reason when they differ.  A stage that
    ran serial has no pool to compare against, so its
    ``parallel_speedup`` is ``None`` — never a fabricated 1.0.
    """
    detail["workers"] = workers
    if requested is not None:
        detail["workers_requested"] = requested
    if fallback is not None:
        detail["workers_fallback"] = fallback
    detail["serial_seconds"] = round(serial_seconds, 6)
    if workers > 1 and seconds > 0:
        detail["parallel_speedup"] = round(serial_seconds / seconds, 3)
    else:
        detail["parallel_speedup"] = None
    return detail


def _cover_pruning_row(
    metric,
    cover,
    n: int,
    seed: int,
    prune_eps: float,
    stretch_sample: int,
    nav_delta_n: int,
    eps: float,
    workers: int,
    trace: bool,
) -> Dict:
    """The ``cover_pruning`` row: zeta before/after the greedy set-cover
    prune, the contract it was re-verified against, and the downstream
    navigator-build/query deltas at ``min(n, nav_delta_n)`` (capped so
    the full-size bench does not pay a second full navigator build)."""
    from .treecover.prune import prune_cover

    report = prune_cover(cover, eps=prune_eps, workers=workers)
    pruned = report.cover
    worst, mean = pruned.measured_stretch(
        sample_pairs(n, stretch_sample, seed=seed)
    )

    dn = min(n, nav_delta_n)
    if dn == n:
        d_metric, d_cover, d_report = metric, cover, report
    else:
        d_metric = random_points(dn, dim=2, seed=seed)
        d_cover = robust_tree_cover(d_metric, eps=eps, workers=workers)
        d_report = prune_cover(d_cover, eps=prune_eps, workers=workers)
    d_pruned = d_report.cover

    k = 3
    start = time.perf_counter()
    nav_full = MetricNavigator(d_metric, d_cover, k, workers=workers)
    build_full = time.perf_counter() - start
    start = time.perf_counter()
    nav_pruned = MetricNavigator(d_metric, d_pruned, k, workers=workers)
    build_pruned = time.perf_counter() - start

    rng = random.Random(seed)
    pairs = [(rng.randrange(dn), rng.randrange(dn)) for _ in range(200)]
    pairs = [(u, v) for u, v in pairs if u != v]

    def _p50_us(nav) -> float:
        lat = []
        for u, v in pairs:
            t0 = time.perf_counter()
            nav.find_path(u, v)
            lat.append((time.perf_counter() - t0) * 1e6)
        return round(float(np.percentile(np.asarray(lat), 50)), 2)

    p50_full = _p50_us(nav_full)
    p50_pruned = _p50_us(nav_pruned)

    # Retained trees are the same objects, so the per-tree navigator
    # paths must match the full navigator's on the original tree index
    # bit for bit; a False here means the prune changed answers it
    # promised not to touch.
    identical = True
    for u, v in pairs[:50]:
        j, _ = d_pruned.best_tree(u, v)
        ct = d_pruned.trees[j]
        a, b = ct.vertex_of_point[u], ct.vertex_of_point[v]
        if nav_pruned.navigators[j].find_path(a, b) != nav_full.navigators[
            d_report.retained[j]
        ].find_path(a, b):
            identical = False
            break

    detail = {
        "zeta_before": report.zeta_before,
        "zeta_after": report.zeta_after,
        "reduction": round(report.reduction, 2),
        "gamma": round(report.gamma, 4),
        "prune_eps": prune_eps,
        "pairs_evaluated": report.pairs_evaluated,
        "exact_pairs": report.exact,
        "stretch_max": round(worst, 4),
        "stretch_mean": round(mean, 4),
        "cover_bytes_before": cover.memory_bytes(),
        "cover_bytes_after": pruned.memory_bytes(),
        "nav_delta": {
            "n": dn,
            "k": k,
            "build_full_s": round(build_full, 6),
            "build_pruned_s": round(build_pruned, 6),
            "build_speedup": (
                round(build_full / build_pruned, 3) if build_pruned > 0 else None
            ),
            "query_full_p50_us": p50_full,
            "query_pruned_p50_us": p50_pruned,
            "retained_paths_identical": identical,
        },
    }
    return _result(
        "cover_pruning", n, report.seconds, None, detail,
        spans=_drain_spans(trace),
    )


def _compact_cover_row(
    metric,
    cover,
    n: int,
    seed: int,
    eps: float,
    shifts: int,
    robust_repeats: int,
    stretch_sample: int,
    robust_secs: float,
    workers: int,
    trace: bool,
) -> Dict:
    """The ``compact_cover`` row: the shifted-hierarchy backend at the
    same eps as the robust cover, with its (n-independent) zeta and the
    stretch it trades for it."""
    from .treecover.compact import compact_tree_cover

    secs, compact = _best_of(
        lambda: compact_tree_cover(metric, eps=eps, shifts=shifts, workers=workers),
        robust_repeats,
    )
    worst, mean = compact.measured_stretch(
        sample_pairs(n, stretch_sample, seed=seed)
    )
    detail = {
        "eps": eps,
        "shifts": shifts,
        "zeta": compact.size,
        "zeta_robust": cover.size,
        "reduction_vs_robust": round(cover.size / max(1, compact.size), 2),
        "stretch_max": round(worst, 4),
        "stretch_mean": round(mean, 4),
        "cover_bytes": compact.memory_bytes(),
        "robust_seconds": round(robust_secs, 6),
    }
    return _result(
        "compact_cover", n, secs, None, detail, spans=_drain_spans(trace)
    )


def bench_tree_covers(
    n: int = 2000,
    dim: int = 2,
    seed: int = 1,
    eps: float = 0.5,
    alpha: float = 8.0,
    repeats: int = 3,
    robust_repeats: int = 1,
    include_baseline: bool = True,
    stretch_sample: int = 300,
    workers: Optional[int] = None,
    trace: bool = False,
    prune: bool = True,
    prune_eps: float = 0.05,
    compact_shifts: int = 4,
    nav_delta_n: int = 600,
) -> Dict:
    """Construction benchmarks on ``random_points(n, dim)``.

    The baseline runs re-execute the frozen seed implementations on the
    same points, so the reported speedups are measured in this process,
    on this machine — not copied from a past run.  ``robust_repeats``
    is separate because the seed Theorem 4.1 construction is by far the
    slowest entry (minutes at n=2000).  ``workers`` fans the robust
    cover's per-tree merges out across processes; when it resolves to a
    pool, the serial path is timed too and the row's detail records the
    parallel-vs-serial speedup alongside the seed-baseline speedup.
    With ``trace=True`` observability is scoped on for the run and each
    row carries the span trees of its timed stage under ``"trace"``
    (timings then include the tracing overhead by design).

    ``prune=True`` adds the ``cover_pruning`` and ``compact_cover``
    rows: zeta before/after the greedy set-cover prune (with the
    navigator-build and query deltas measured at
    ``min(n, nav_delta_n)``), and the compact shifted-hierarchy backend
    at the same eps.  Both carry ``seed_seconds=None`` — the frozen
    seed implementation has no counterpart stage.
    """
    with _trace_context(trace):
        return _bench_tree_covers(
            n, dim, seed, eps, alpha, repeats, robust_repeats,
            include_baseline, stretch_sample, workers, trace,
            prune, prune_eps, compact_shifts, nav_delta_n,
        )


def _bench_tree_covers(
    n: int,
    dim: int,
    seed: int,
    eps: float,
    alpha: float,
    repeats: int,
    robust_repeats: int,
    include_baseline: bool,
    stretch_sample: int,
    workers: Optional[int],
    trace: bool,
    prune: bool,
    prune_eps: float,
    compact_shifts: int,
    nav_delta_n: int,
) -> Dict:
    metric = random_points(n, dim=dim, seed=seed)
    requested_workers = resolve_workers(workers)
    resolved_workers, workers_fallback = _timing_workers(workers)
    seed_metric = SeedEuclideanMetric(metric.points) if include_baseline else None
    results: List[Dict] = []

    secs, hierarchy = _best_of(lambda: NetHierarchy(metric), repeats)
    base = (
        _best_of(lambda: SeedNetHierarchy(seed_metric), repeats)[0]
        if include_baseline
        else None
    )
    results.append(
        _result(
            "net_hierarchy",
            n,
            secs,
            base,
            {"levels": hierarchy.i_max - hierarchy.i_min + 1},
            spans=_drain_spans(trace),
        )
    )

    secs, (hst, padded) = _best_of(lambda: build_hst(metric, alpha, seed=0), repeats)
    base = (
        _best_of(lambda: seed_build_hst(seed_metric, alpha, seed=0), repeats)[0]
        if include_baseline
        else None
    )
    results.append(
        _result(
            "hst",
            n,
            secs,
            base,
            {"alpha": alpha, "vertices": hst.tree.n, "padded": len(padded)},
            spans=_drain_spans(trace),
        )
    )

    secs, cover = _best_of(
        lambda: robust_tree_cover(metric, eps=eps, workers=resolved_workers),
        robust_repeats,
    )
    serial_secs = secs
    if resolved_workers > 1:
        serial_secs, _ = _best_of(
            lambda: robust_tree_cover(metric, eps=eps, workers=0), robust_repeats
        )
    detail: Dict = _parallel_detail(
        {"eps": eps, "zeta": cover.size, "cover_bytes": cover.memory_bytes()},
        resolved_workers, secs, serial_secs,
        requested=requested_workers, fallback=workers_fallback,
    )
    if include_baseline:
        base, seed_cover = _best_of(
            lambda: seed_robust_tree_cover(seed_metric, eps=eps), robust_repeats
        )
        detail["zeta_seed"] = seed_cover.size
    else:
        base = None
    worst, mean = cover.measured_stretch(
        sample_pairs(n, stretch_sample, seed=seed)
    )
    detail["stretch_max"] = round(worst, 4)
    detail["stretch_mean"] = round(mean, 4)
    results.append(
        _result("robust_cover", n, secs, base, detail, spans=_drain_spans(trace))
    )

    if prune:
        results.append(
            _cover_pruning_row(
                metric, cover, n, seed, prune_eps, stretch_sample,
                nav_delta_n, eps, resolved_workers, trace,
            )
        )
        results.append(
            _compact_cover_row(
                metric, cover, n, seed, eps, compact_shifts, robust_repeats,
                stretch_sample, secs, resolved_workers, trace,
            )
        )

    payload = {
        "schema": TREE_COVERS_SCHEMA,
        "config": {
            "n": n,
            "dim": dim,
            "seed": seed,
            "eps": eps,
            "alpha": alpha,
            "repeats": repeats,
            "robust_repeats": robust_repeats,
            "include_baseline": include_baseline,
            "workers": resolved_workers,
            "workers_requested": requested_workers,
            "workers_fallback": workers_fallback,
            "prune": prune,
            "prune_eps": prune_eps,
            "compact_shifts": compact_shifts,
            "trace": trace,
        },
        "results": results,
        "meta": _meta(),
    }
    if trace:
        payload["trace_metrics"] = OBS.registry.snapshot()
    return payload


def bench_navigation(
    n: int = 600,
    dim: int = 2,
    seed: int = 1,
    eps: float = 0.5,
    k: int = 3,
    queries: int = 400,
    include_baseline: bool = True,
    workers: Optional[int] = None,
    trace: bool = False,
) -> Dict:
    """Navigator construction and query-latency benchmarks.

    Every row carries a seed baseline measured in-process: the robust
    cover and the navigator build re-run the frozen pre-vectorization
    implementations (:mod:`repro._seed_baseline` — eager LCA indexes,
    scalar per-edge distances), and the scalar query loop re-runs on the
    seed navigator.  ``workers`` fans the cover and navigator builds out
    across processes; the detail dicts then also record the
    parallel-vs-serial speedup of each build stage.  With ``trace=True``
    observability is scoped on and each row carries its stage's span
    trees under ``"trace"`` (query stages emit counters, not spans, so
    their lists may be empty).
    """
    with _trace_context(trace):
        return _bench_navigation(
            n, dim, seed, eps, k, queries, include_baseline, workers, trace
        )


def _bench_navigation(
    n: int,
    dim: int,
    seed: int,
    eps: float,
    k: int,
    queries: int,
    include_baseline: bool,
    workers: Optional[int],
    trace: bool,
) -> Dict:
    metric = random_points(n, dim=dim, seed=seed)
    requested_workers = resolve_workers(workers)
    resolved_workers, workers_fallback = _timing_workers(workers)
    results: List[Dict] = []

    start = time.perf_counter()
    cover = robust_tree_cover(metric, eps=eps, workers=resolved_workers)
    cover_secs = time.perf_counter() - start
    cover_serial = cover_secs
    if resolved_workers > 1:
        start = time.perf_counter()
        robust_tree_cover(metric, eps=eps, workers=0)
        cover_serial = time.perf_counter() - start
    seed_cover_secs = None
    if include_baseline:
        seed_metric = SeedEuclideanMetric(metric.points)
        start = time.perf_counter()
        seed_robust_tree_cover(seed_metric, eps=eps)
        seed_cover_secs = time.perf_counter() - start
    results.append(
        _result(
            "robust_cover",
            n,
            cover_secs,
            seed_cover_secs,
            _parallel_detail(
                {"eps": eps, "zeta": cover.size,
                 "cover_bytes": cover.memory_bytes()},
                resolved_workers, cover_secs, cover_serial,
                requested=requested_workers, fallback=workers_fallback,
            ),
            spans=_drain_spans(trace),
        )
    )

    start = time.perf_counter()
    navigator = MetricNavigator(metric, cover, k, workers=resolved_workers)
    build = time.perf_counter() - start
    build_serial = build
    if resolved_workers > 1:
        start = time.perf_counter()
        MetricNavigator(metric, cover, k, workers=0)
        build_serial = time.perf_counter() - start
    seed_navigator = None
    seed_build = None
    if include_baseline:
        start = time.perf_counter()
        seed_navigator = SeedMetricNavigator(metric, cover, k)
        seed_build = time.perf_counter() - start
    results.append(
        _result(
            "navigator_build",
            n,
            build,
            seed_build,
            _parallel_detail(
                {"k": k, "zeta": cover.size, "edges": navigator.num_edges},
                resolved_workers, build, build_serial,
                requested=requested_workers, fallback=workers_fallback,
            ),
            spans=_drain_spans(trace),
        )
    )

    rng = random.Random(seed)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(queries)]
    pairs = [(u, v) for u, v in pairs if u != v]

    lat_us: List[float] = []
    start_all = time.perf_counter()
    for u, v in pairs:
        start = time.perf_counter()
        navigator.find_path(u, v)
        lat_us.append((time.perf_counter() - start) * 1e6)
    scalar_total = time.perf_counter() - start_all
    seed_scalar = None
    if seed_navigator is not None:
        start_all = time.perf_counter()
        for u, v in pairs:
            seed_navigator.find_path(u, v)
        seed_scalar = time.perf_counter() - start_all
    lat = np.asarray(lat_us)
    results.append(
        _result(
            "query_scalar",
            n,
            scalar_total,
            seed_scalar,
            {
                "queries": len(pairs),
                "p50_us": round(float(np.percentile(lat, 50)), 2),
                "p99_us": round(float(np.percentile(lat, 99)), 2),
            },
            spans=_drain_spans(trace),
        )
    )

    start = time.perf_counter()
    navigator.find_paths(pairs)
    batch_total = time.perf_counter() - start
    results.append(
        _result(
            "query_batch",
            n,
            batch_total,
            # The frozen seed baseline, like every other row; the batch
            # kernel's edge over this run's scalar loop is still
            # visible via detail.scalar_seconds.
            seed_scalar,
            {
                "queries": len(pairs),
                "per_query_us": round(batch_total / max(1, len(pairs)) * 1e6, 2),
                "scalar_seconds": round(scalar_total, 6),
            },
            spans=_drain_spans(trace),
        )
    )

    payload = {
        "schema": NAVIGATION_SCHEMA,
        "config": {
            "n": n,
            "dim": dim,
            "seed": seed,
            "eps": eps,
            "k": k,
            "queries": queries,
            "include_baseline": include_baseline,
            "workers": resolved_workers,
            "workers_requested": requested_workers,
            "workers_fallback": workers_fallback,
            "trace": trace,
        },
        "results": results,
        "meta": _meta(),
    }
    if trace:
        payload["trace_metrics"] = OBS.registry.snapshot()
    return payload


def _serve_closed_loop(
    client, pairs: List[Tuple[int, int]], queries: int, window: int
) -> Tuple[float, List[float], Dict[str, int]]:
    """Drive ``queries`` requests keeping ``window`` in flight.

    Offered load is fixed by the window: every completion immediately
    triggers the next send, so the daemon always sees ``window``
    outstanding requests (the regime where admission batching matters).
    Returns (total seconds, per-request latency in µs, status counts).
    """
    inflight: Dict[object, float] = {}
    lat_us: List[float] = []
    statuses: Dict[str, int] = {}
    sent = 0

    def send_one() -> None:
        nonlocal sent
        u, v = pairs[sent % len(pairs)]
        request_id = client.send([{"op": "path", "u": u, "v": v}])[0]
        inflight[request_id] = time.perf_counter()
        sent += 1

    start = time.perf_counter()
    for _ in range(min(window, queries)):
        send_one()
    for _ in range(queries):
        response = client.recv()
        lat_us.append((time.perf_counter() - inflight.pop(response["id"])) * 1e6)
        statuses[response["status"]] = statuses.get(response["status"], 0) + 1
        if sent < queries:
            send_one()
    return time.perf_counter() - start, lat_us, statuses


def _proc_pss_kb() -> Optional[int]:
    """This process's proportional set size in kB, or ``None``.

    PSS (``/proc/self/smaps_rollup``) charges each resident page
    divided by the number of processes mapping it — exactly the
    accounting that distinguishes N workers *sharing* one mapped
    checkpoint from N workers each holding a private pickled clone.
    """
    try:
        with open("/proc/self/smaps_rollup", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def _rss_fanout_worker(mode, payload, metric, pairs, barrier, queue) -> None:
    """One serving worker of the RSS fleet (spawn entry point).

    Touches the full query surface (so the pages are resident), then
    rendezvous at the barrier so every worker reads its PSS while *all*
    of them hold their query state — shared pages are charged
    fractionally only while they are actually shared.
    """
    if mode == "mapped":
        from .parallel.sharedmem import attach_mapped_navigator

        navigator = attach_mapped_navigator(payload, metric)
    else:
        navigator = payload
    for u, v in pairs:
        navigator.find_path(u, v)
    barrier.wait()
    pss = _proc_pss_kb()
    barrier.wait()
    queue.put(pss)


def _measure_worker_fleet(
    mode: str, payload, metric, pairs, num_workers: int
) -> Tuple[float, List[Optional[int]]]:
    """Wall seconds + per-worker PSS for ``num_workers`` spawned workers.

    Uses the ``spawn`` start method deliberately: ``fork`` would share
    the parent's pages copy-on-write, making pickled clones look as
    cheap as the mapped checkpoint and voiding the comparison.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(num_workers)
    queue = ctx.SimpleQueue()
    procs = [
        ctx.Process(
            target=_rss_fanout_worker,
            args=(mode, payload, metric, pairs, barrier, queue),
        )
        for _ in range(num_workers)
    ]
    start = time.perf_counter()
    for proc in procs:
        proc.start()
    pss = [queue.get() for _ in procs]
    for proc in procs:
        proc.join()
    return time.perf_counter() - start, pss


def bench_serving(
    n: int = 300,
    dim: int = 2,
    seed: int = 1,
    eps: float = 0.5,
    k: int = 3,
    queries: int = 240,
    window: int = 32,
    batch_sizes: Tuple[int, ...] = (1, 8, 32),
    workers: Optional[int] = None,
    rss_workers: int = 4,
) -> Dict:
    """Serving-daemon benchmarks: cold start and closed-loop latency.

    Rows:

    * ``cold_start`` — checkpoint load (audit included) through daemon
      bind to the first answered query, the time-to-first-byte of a
      deploy or a recovery restart.
    * ``cold_load_first_query`` — the same deploy path through a
      ``packed=True`` navigator checkpoint attached with ``mmap=True``:
      no rebuild, CRC-verify + map + first answered query.
      ``seed_seconds`` is the rebuild-based ``cold_start`` time, so the
      zero-copy win is a tracked speedup.
    * ``multi_worker_rss`` — ``rss_workers`` spawned serving processes
      attach to the mapped checkpoint, versus the same fleet each
      unpickling a private clone of the in-memory navigator; the detail
      records per-worker and aggregate PSS for both fleets (mapped
      aggregate should stay sub-linear in N; clones grow ~linearly).
    * ``serve_batch_{b}`` for each ``b`` in ``batch_sizes`` — a fresh
      daemon per admission batch size, driven closed-loop with
      ``window`` requests always in flight; the detail carries
      p50/p99 per-request latency (client-observed, queueing included)
      and per-query throughput.  ``seed_seconds``/``speedup`` on the
      ``b > 1`` rows compare against the ``batch=1`` row, so the win
      from micro-batching into ``find_paths`` is a tracked number.
    """
    import tempfile

    from .checkpoint import (
        CheckpointService,
        save_cover_checkpoint,
        save_navigator_checkpoint,
    )
    from .parallel.sharedmem import mapped_navigator_descriptor
    from .serve import AdmissionPolicy, ServeClient, ThreadedServer

    metric = random_points(n, dim=dim, seed=seed)
    resolved_workers, workers_fallback = _timing_workers(workers)
    requested_workers = resolve_workers(workers)
    cover = robust_tree_cover(metric, eps=eps, workers=resolved_workers)
    handle, path = tempfile.mkstemp(suffix=".ckpt")
    os.close(handle)
    handle, packed_path = tempfile.mkstemp(suffix=".packed.ckpt")
    os.close(handle)
    results: List[Dict] = []
    try:
        save_cover_checkpoint(
            cover, path, builder={"family": "euclidean-robust", "eps": eps}
        )

        start = time.perf_counter()
        service = CheckpointService(
            metric, k=k, workers=resolved_workers
        ).load(path)
        load_secs = time.perf_counter() - start
        with ThreadedServer(service) as threaded:
            with ServeClient(threaded.host, threaded.port) as client:
                first = client.path(0, n - 1)
        cold_secs = time.perf_counter() - start
        results.append(
            _result(
                "cold_start",
                n,
                cold_secs,
                None,
                {
                    "load_seconds": round(load_secs, 6),
                    "zeta": cover.size,
                    "k": k,
                    "first_query_status": first["status"],
                },
            )
        )

        # Zero-copy deploy path: write the packed navigator checkpoint
        # (off the clock — that is build/save-time work), then time
        # attach-by-mmap through the first answered query.
        navigator = service.navigator
        save_navigator_checkpoint(navigator, packed_path, packed=True)
        start = time.perf_counter()
        mapped_service = CheckpointService(metric, k=k).load(
            packed_path, mmap=True
        )
        mapped_load_secs = time.perf_counter() - start
        with ThreadedServer(mapped_service) as threaded:
            with ServeClient(threaded.host, threaded.port) as client:
                first = client.path(0, n - 1)
        mapped_cold_secs = time.perf_counter() - start
        results.append(
            _result(
                "cold_load_first_query",
                n,
                mapped_cold_secs,
                cold_secs,
                {
                    "load_seconds": round(mapped_load_secs, 6),
                    "zeta": cover.size,
                    "k": k,
                    "first_query_status": first["status"],
                    "mapped": True,
                    "checkpoint_bytes": os.path.getsize(packed_path),
                },
            )
        )

        rng = random.Random(seed)
        rss_pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(48)]
        rss_pairs = [(u, v) for u, v in rss_pairs if u != v] or [(0, n - 1)]
        mapped_secs, mapped_pss = _measure_worker_fleet(
            "mapped",
            mapped_navigator_descriptor(packed_path),
            metric,
            rss_pairs,
            rss_workers,
        )
        cloned_secs, cloned_pss = _measure_worker_fleet(
            "cloned", navigator, metric, rss_pairs, rss_workers
        )
        have_pss = all(p is not None for p in mapped_pss + cloned_pss)
        results.append(
            _result(
                "multi_worker_rss",
                n,
                mapped_secs,
                cloned_secs,
                {
                    "workers": rss_workers,
                    "pss_mapped_kb": mapped_pss,
                    "pss_cloned_kb": cloned_pss,
                    "aggregate_pss_mapped_kb": (
                        sum(mapped_pss) if have_pss else None
                    ),
                    "aggregate_pss_cloned_kb": (
                        sum(cloned_pss) if have_pss else None
                    ),
                    "pss_ratio": (
                        round(sum(cloned_pss) / sum(mapped_pss), 3)
                        if have_pss and sum(mapped_pss) > 0 else None
                    ),
                },
            )
        )

        rng = random.Random(seed)
        pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(queries)]
        pairs = [(u, v) for u, v in pairs if u != v] or [(0, n - 1)]
        batch1_secs: Optional[float] = None
        for batch_size in batch_sizes:
            policy = AdmissionPolicy(
                max_batch=batch_size,
                max_queue=max(256, window * 4),
                flush_interval=0.001,
            )
            with ThreadedServer(service, policy=policy) as threaded:
                with ServeClient(threaded.host, threaded.port) as client:
                    total, lat_us, statuses = _serve_closed_loop(
                        client, pairs, queries, window
                    )
            lat = np.asarray(lat_us)
            results.append(
                _result(
                    f"serve_batch_{batch_size}",
                    n,
                    total,
                    batch1_secs,
                    {
                        "queries": queries,
                        "window": window,
                        "max_batch": batch_size,
                        "p50_us": round(float(np.percentile(lat, 50)), 2),
                        "p99_us": round(float(np.percentile(lat, 99)), 2),
                        "per_query_us": round(total / queries * 1e6, 2),
                        "statuses": statuses,
                    },
                )
            )
            if batch1_secs is None:
                batch1_secs = total
    finally:
        os.unlink(path)
        os.unlink(packed_path)

    return {
        "schema": SERVING_SCHEMA,
        "config": {
            "n": n,
            "dim": dim,
            "seed": seed,
            "eps": eps,
            "k": k,
            "queries": queries,
            "window": window,
            "batch_sizes": list(batch_sizes),
            "workers": resolved_workers,
            "workers_requested": requested_workers,
            "workers_fallback": workers_fallback,
            "rss_workers": rss_workers,
        },
        "results": results,
        "meta": _meta(),
    }


def bench_dynamic(
    n: int = 150,
    dim: int = 2,
    seed: int = 1,
    eps: float = 0.5,
    batch_sizes: Tuple[int, ...] = (1, 8, 32),
    rounds: int = 3,
    queries: int = 16,
    workers: Optional[int] = None,
) -> Dict:
    """Dynamic-update benchmarks: sustained churn with interleaved queries.

    Rows:

    * ``full_rebuild`` — a from-scratch masked rebuild of the current
      generation: what *every* update would cost without the dynamic
      layer, and the patch path's fallback.
    * ``journal_append`` — p50/p99 of one write-ahead journal record
      (CRC frame + fsync-before-ack), the floor of any mutation's
      acknowledged latency.
    * ``update_batch_{b}`` for each ``b`` in ``batch_sizes`` —
      ``rounds`` seeded mutation batches of ``b`` ops (50/50
      insert/delete) applied through ``DynamicRobustCover.apply``, with
      ``queries`` cover queries interleaved after every batch.  The
      detail carries sustained ``updates_per_s``, the mean patched
      ``touched_fraction`` (honest number: single mutations touch every
      tree in the Theorem 4.1 construction — see ``docs/DYNAMIC.md``),
      per-level sweep reuse, and interleaved query p50.
      ``seed_seconds``/``speedup`` compare against paying one full
      rebuild *per op* — the batch-amortization win.
    * ``patch_vs_rebuild`` — the crossover summary: the measured
      apply-time/rebuild-time ratio per batch size and the batch size
      past which batching beats rebuild-per-op.
    """
    import random as random_mod
    import tempfile

    from .dynamic import DynamicRobustCover, UpdateJournal

    metric = random_points(n, dim=dim, seed=seed)
    resolved_workers, workers_fallback = _timing_workers(workers)
    requested_workers = resolve_workers(workers)
    dyn = DynamicRobustCover.from_metric(metric, eps=eps, workers=resolved_workers)
    results: List[Dict] = []

    rebuild_secs, _ = _best_of(dyn.rebuild, 1)
    results.append(
        _result(
            "full_rebuild",
            n,
            rebuild_secs,
            None,
            {"zeta": len(dyn.trees), "active": len(dyn.active), "eps": eps},
        )
    )

    handle, journal_path = tempfile.mkstemp(suffix=".journal")
    os.close(handle)
    os.unlink(journal_path)
    try:
        append_lat: List[float] = []
        with UpdateJournal(journal_path) as journal:
            for i in range(64):
                start = time.perf_counter()
                journal.append("insert", point=[float(i), float(i)])
                append_lat.append((time.perf_counter() - start) * 1e6)
        lat = np.asarray(append_lat)
        results.append(
            _result(
                "journal_append",
                n,
                float(lat.sum()) / 1e6,
                None,
                {
                    "appends": len(append_lat),
                    "p50_us": round(float(np.percentile(lat, 50)), 2),
                    "p99_us": round(float(np.percentile(lat, 99)), 2),
                },
            )
        )
    finally:
        if os.path.exists(journal_path):
            os.unlink(journal_path)

    def make_ops(state: DynamicRobustCover, rng, batch: int):
        lo = state.coords[state.active].min(axis=0)
        hi = state.coords[state.active].max(axis=0)
        live = set(state.active)
        ops = []
        for _ in range(batch):
            if rng.random() < 0.5 or len(live) <= 3:
                ops.append((
                    "insert",
                    [float(l + rng.random() * max(h - l, 1.0))
                     for l, h in zip(lo, hi)],
                ))
            else:
                victim = rng.choice(sorted(live))
                live.discard(victim)
                ops.append(("delete", victim))
        return ops

    ratios: Dict[str, float] = {}
    for batch in batch_sizes:
        state = DynamicRobustCover.from_metric(
            metric, eps=eps, workers=resolved_workers
        )
        rng = random_mod.Random(seed * 7919 + batch)
        mutate_secs = 0.0
        query_lat: List[float] = []
        touched: List[float] = []
        reused: List[int] = []
        for round_index in range(rounds):
            ops = make_ops(state, rng, batch)
            start = time.perf_counter()
            report = state.apply(ops)
            mutate_secs += time.perf_counter() - start
            touched.append(report.touched_fraction if not report.rebuilt else 1.0)
            reused.append(report.levels_reused)
            pairs = state.active_pairs(queries, seed=rng.randrange(1 << 30))
            for u, v in pairs:
                q0 = time.perf_counter()
                state.cover.best_tree(u, v)
                query_lat.append((time.perf_counter() - q0) * 1e6)
        ops_total = rounds * batch
        per_op_rebuild = ops_total * rebuild_secs
        lat = np.asarray(query_lat)
        ratios[str(batch)] = round(
            mutate_secs / rounds / rebuild_secs if rebuild_secs > 0 else 0.0, 3
        )
        results.append(
            _result(
                f"update_batch_{batch}",
                n,
                mutate_secs,
                per_op_rebuild,
                {
                    "batch": batch,
                    "rounds": rounds,
                    "updates_per_s": round(ops_total / mutate_secs, 2)
                    if mutate_secs > 0 else None,
                    "touched_fraction": round(
                        float(np.mean(touched)), 4
                    ),
                    "levels_reused_mean": round(float(np.mean(reused)), 2),
                    "interleaved_query_p50_us": round(
                        float(np.percentile(lat, 50)), 2
                    ),
                    "active_final": len(state.active),
                },
            )
        )

    # One apply costs ~ratio rebuilds regardless of batch size (the
    # merge replays dominate), so batching beats rebuild-per-op once
    # the batch is larger than the worst measured ratio.
    worst_ratio = max(ratios.values()) if ratios else 1.0
    results.append(
        _result(
            "patch_vs_rebuild",
            n,
            rebuild_secs,
            None,
            {
                "rebuild_seconds": round(rebuild_secs, 6),
                "apply_over_rebuild_ratio": ratios,
                "crossover_batch": int(math.ceil(worst_ratio)) or 1,
            },
        )
    )

    return {
        "schema": DYNAMIC_SCHEMA,
        "config": {
            "n": n,
            "dim": dim,
            "seed": seed,
            "eps": eps,
            "batch_sizes": list(batch_sizes),
            "rounds": rounds,
            "queries": queries,
            "workers": resolved_workers,
            "workers_requested": requested_workers,
            "workers_fallback": workers_fallback,
        },
        "results": results,
        "meta": _meta(),
    }


def bench_netsim(
    tree_n: int = 10_000,
    tree_messages: int = 120_000,
    metric_n: int = 400,
    metric_messages: int = 4_000,
    ft_n: int = 160,
    ft_messages: int = 2_000,
    ft_f: int = 2,
    seed: int = 1,
    workers: Optional[int] = None,
    tie_break: str = "seeded",
) -> Dict:
    """Simulator benchmarks: routed messages across compiled networks.

    Three legs, each locality-audited before traffic and contract-gated
    after (a failed gate raises — a silently degraded row never lands
    in the artifact):

    * ``netsim_tree`` — Theorem 5.1 at scale: 10⁴ nodes, ≥10⁵ routed
      messages, gates on 100% delivery, exact stretch, ≤2 hops and
      headers within log²n bits;
    * ``netsim_metric`` — Theorem 1.3 over a robust cover: delivery,
      p99 stretch within the measured γ budget;
    * ``netsim_ft`` — Theorem 5.2 with ``ft_f`` nodes killed
      mid-traffic: the fault plane re-arms the decision function per
      kill, and the gate checks every undelivered message died at a
      killed node (drop accounting), with delivery within budget.
    """
    from .graphs import random_tree
    from .netsim import (
        NetworkSimulator,
        SimReport,
        audit_locality,
        compile_ft_scheme,
        compile_metric_scheme,
        compile_tree_scheme,
        kill_schedule,
        uniform_pairs,
    )
    from .resilience.injectors import RandomInjector
    from .routing import (
        FaultTolerantRoutingScheme,
        MetricRoutingScheme,
        build_tree_network,
    )

    results: List[Dict] = []

    def _row(name, n, build_seconds, sim_seconds, report, extra=None):
        detail = report.to_dict()
        detail["build_seconds"] = round(build_seconds, 6)
        detail["messages_per_s"] = (
            round(report.injected / sim_seconds, 1) if sim_seconds > 0 else None
        )
        detail["tie_break"] = tie_break
        if extra:
            detail.update(extra)
        results.append(_result(name, n, sim_seconds, None, detail))

    def _header_budget(n: int) -> int:
        return max(1, math.ceil(math.log2(max(2, n)))) ** 2

    # -- tree leg (Theorem 5.1) ------------------------------------------
    start = time.perf_counter()
    tree = random_tree(tree_n, seed=seed)
    scheme, net = build_tree_network(tree, seed=seed + 1)
    compiled = compile_tree_scheme(scheme, net)
    audit_locality(compiled)
    build_seconds = time.perf_counter() - start
    sim = NetworkSimulator(compiled, tie_break=tie_break, seed=seed)
    sim.send_many(uniform_pairs(tree_n, tree_messages, seed=seed + 2))
    start = time.perf_counter()
    sim.run()
    sim_seconds = time.perf_counter() - start
    report = SimReport(sim).check_contract(
        min_delivery=1.0,
        gamma=1.0 + 1e-9,
        header_budget=_header_budget(tree_n),
        hop_budget=2,
    )
    _row("netsim_tree", tree_n, build_seconds, sim_seconds, report)

    # -- metric leg (Theorem 1.3) ----------------------------------------
    start = time.perf_counter()
    metric = random_points(metric_n, dim=2, seed=seed + 3)
    cover = robust_tree_cover(metric, eps=0.45, workers=workers)
    mscheme = MetricRoutingScheme(metric, cover, seed=seed + 4)
    mcompiled = compile_metric_scheme(mscheme)
    audit_locality(mcompiled)
    build_seconds = time.perf_counter() - start
    msim = NetworkSimulator(mcompiled, tie_break=tie_break, seed=seed)
    msim.send_many(uniform_pairs(metric_n, metric_messages, seed=seed + 5))
    start = time.perf_counter()
    msim.run()
    sim_seconds = time.perf_counter() - start
    mreport = SimReport(msim).check_contract(
        min_delivery=1.0,
        header_budget=_header_budget(metric_n),
        hop_budget=2,
    )
    _row("netsim_metric", metric_n, build_seconds, sim_seconds, mreport)

    # -- FT leg (Theorem 5.2, kills mid-traffic) -------------------------
    start = time.perf_counter()
    fmetric = random_points(ft_n, dim=2, seed=seed + 6)
    fcover = robust_tree_cover(fmetric, eps=0.45, workers=workers)
    fscheme = FaultTolerantRoutingScheme(fmetric, f=ft_f, cover=fcover, seed=seed + 7)
    fcompiled = compile_ft_scheme(fscheme, gamma_seed=seed)
    audit_locality(fcompiled)
    build_seconds = time.perf_counter() - start
    fsim = NetworkSimulator(fcompiled, tie_break=tie_break, seed=seed)
    pairs = uniform_pairs(ft_n, ft_messages, seed=seed + 8)
    # Spread traffic over sim time so the kills land mid-stream.
    fsim.send_many(pairs, spacing=0.01)
    horizon = 0.01 * ft_messages
    kills = kill_schedule(
        RandomInjector(ft_n, seed=seed + 9),
        count=ft_f,
        start=horizon / 3.0,
        spacing=horizon / (3.0 * max(1, ft_f)),
    )
    for when, victim in kills:
        fsim.kill_at(when, victim)
    start = time.perf_counter()
    fsim.run()
    sim_seconds = time.perf_counter() - start
    freport = SimReport(fsim).check_contract(
        min_delivery=0.9,
        header_budget=_header_budget(ft_n),
        hop_budget=2,
        expected_kills=ft_f,
    )
    # Exact drop accounting: with kills <= f the only legitimate loss
    # is traffic that touched a dead node; anything else is a bug.
    unexplained = {
        reason: count
        for reason, count in freport.drop_counts.items()
        if count and reason != "dead_node"
    }
    if unexplained:
        raise ValueError(
            f"netsim_ft dropped messages for non-fault reasons: {unexplained}"
        )
    _row(
        "netsim_ft", ft_n, build_seconds, sim_seconds, freport,
        extra={"killed": [v for _, v in kills]},
    )

    return {
        "schema": NETSIM_SCHEMA,
        "config": {
            "tree_n": tree_n,
            "tree_messages": tree_messages,
            "metric_n": metric_n,
            "metric_messages": metric_messages,
            "ft_n": ft_n,
            "ft_messages": ft_messages,
            "ft_f": ft_f,
            "seed": seed,
            "tie_break": tie_break,
            "workers": workers,
        },
        "results": results,
        "meta": _meta(),
    }


def validate_bench_json(payload: Dict) -> None:
    """Raise ``ValueError`` unless ``payload`` honors the bench schema.

    Checks the stability contract consumers rely on: schema id, config
    and meta dicts, and per-result ``name``/``n``/``seconds`` (plus
    optional numeric ``seed_seconds``/``speedup`` and a ``detail``
    dict).  Used by tests and ``scripts/bench_smoke.sh``.
    """
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a JSON object")
    schema = payload.get("schema")
    if schema not in (
        TREE_COVERS_SCHEMA,
        NAVIGATION_SCHEMA,
        SERVING_SCHEMA,
        DYNAMIC_SCHEMA,
        NETSIM_SCHEMA,
    ):
        raise ValueError(f"unknown bench schema: {schema!r}")
    for key in ("config", "meta"):
        if not isinstance(payload.get(key), dict):
            raise ValueError(f"bench payload field {key!r} must be an object")
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("bench payload must carry a non-empty results list")
    for entry in results:
        if not isinstance(entry, dict):
            raise ValueError("each result must be an object")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            raise ValueError("each result needs a non-empty string name")
        if not isinstance(entry.get("n"), int) or entry["n"] <= 0:
            raise ValueError(f"result {entry.get('name')}: n must be a positive int")
        seconds = entry.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise ValueError(
                f"result {entry.get('name')}: seconds must be non-negative"
            )
        for optional in ("seed_seconds", "speedup"):
            value = entry.get(optional)
            if value is not None and not isinstance(value, (int, float)):
                raise ValueError(
                    f"result {entry.get('name')}: {optional} must be numeric or null"
                )
        if "detail" in entry and not isinstance(entry["detail"], dict):
            raise ValueError(f"result {entry.get('name')}: detail must be an object")
        if "trace" in entry and not isinstance(entry["trace"], list):
            raise ValueError(
                f"result {entry.get('name')}: trace must be a span list"
            )


def write_bench_files(
    out_dir: str,
    tree_payload: Optional[Dict] = None,
    nav_payload: Optional[Dict] = None,
    serving_payload: Optional[Dict] = None,
    dynamic_payload: Optional[Dict] = None,
    netsim_payload: Optional[Dict] = None,
) -> List[str]:
    """Validate and write the BENCH_*.json artifacts; returns the paths."""
    import os

    os.makedirs(out_dir, exist_ok=True)
    paths: List[str] = []
    for payload, filename in (
        (tree_payload, "BENCH_tree_covers.json"),
        (nav_payload, "BENCH_navigation.json"),
        (serving_payload, "BENCH_serving.json"),
        (dynamic_payload, "BENCH_dynamic.json"),
        (netsim_payload, "BENCH_netsim.json"),
    ):
        if payload is None:
            continue
        validate_bench_json(payload)
        path = os.path.join(out_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        paths.append(path)
    return paths
