"""Frozen pre-vectorization reference implementations, for benchmarking.

These are verbatim-behavior copies of the construction paths as they
existed before the batch distance-kernel layer (one scalar
``metric.distance`` / ``metric.ball`` call at a time).  The regression
harness (:mod:`repro.bench`) times them against the current vectorized
paths on identical inputs, so every ``python -m repro bench`` run
reports an honest before/after comparison instead of trusting numbers
recorded once in a document.

The classes here are intentionally *not* subclasses of
:class:`~repro.metrics.euclidean.EuclideanMetric`: the optimized code
dispatches on ``isinstance``/``supports_batch``, and the baseline must
never take those fast paths.

Nothing outside benchmarks and parity tests should import this module.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.spatial import cKDTree

from .graphs.tree import Tree
from .metrics.base import Metric
from .treecover.base import CoverTree, TreeCover

__all__ = [
    "SeedEuclideanMetric",
    "seed_greedy_net",
    "seed_scale_levels",
    "SeedNetHierarchy",
    "seed_ckr_partition",
    "SeedPartitionHierarchy",
    "seed_build_hst",
    "seed_robust_tree_cover",
]


class SeedEuclideanMetric(Metric):
    """The seed Euclidean metric: per-call numpy norm, scalar kernels only."""

    supports_batch = False

    def __init__(self, points: np.ndarray):
        self.points = np.asarray(points, dtype=float)
        super().__init__(len(self.points))
        self._kdtree: Optional[cKDTree] = None

    @property
    def kdtree(self) -> cKDTree:
        if self._kdtree is None:
            self._kdtree = cKDTree(self.points)
        return self._kdtree

    def distance(self, u: int, v: int) -> float:
        return float(np.linalg.norm(self.points[u] - self.points[v]))

    def distances_from(self, u: int) -> np.ndarray:
        return np.linalg.norm(self.points - self.points[u], axis=1)

    def ball(self, center: int, radius: float) -> List[int]:
        return sorted(self.kdtree.query_ball_point(self.points[center], radius))


def seed_greedy_net(metric: Metric, candidates: Sequence[int], radius: float) -> List[int]:
    """The seed greedy net: one python-level ball query per net point."""
    candidate_set = set(candidates)
    covered: Set[int] = set()
    net: List[int] = []
    for p in candidates:
        if p in covered:
            continue
        net.append(p)
        for q in metric.ball(p, radius):
            if q in candidate_set:
                covered.add(q)
    return net


def seed_scale_levels(metric: SeedEuclideanMetric) -> Tuple[int, int]:
    dist, _ = metric.kdtree.query(metric.points, k=2)
    d_min = float(np.min(dist[:, 1]))
    lo = metric.points.min(axis=0)
    hi = metric.points.max(axis=0)
    d_max = float(np.linalg.norm(hi - lo))
    if d_min == 0:
        raise ValueError("metric has duplicate points or a single point")
    i_min = math.floor(math.log2(d_min)) - 1
    i_max = math.ceil(math.log2(max(d_max, d_min))) + 1
    return i_min, i_max


class SeedNetHierarchy:
    """The seed net hierarchy (scalar greedy net per level)."""

    def __init__(
        self,
        metric: SeedEuclideanMetric,
        i_min: Optional[int] = None,
        i_max: Optional[int] = None,
    ):
        self.metric = metric
        if i_min is None or i_max is None:
            lo, hi = seed_scale_levels(metric)
            i_min = lo if i_min is None else i_min
            i_max = hi if i_max is None else i_max
        self.i_min = i_min
        self.i_max = i_max
        self.nets: Dict[int, List[int]] = {}
        self._kdtrees: Dict[int, cKDTree] = {}

        current = list(range(metric.n))
        self.nets[i_min] = current
        for i in range(i_min + 1, i_max + 1):
            current = seed_greedy_net(metric, current, 2.0**i)
            self.nets[i] = current

    def net(self, i: int) -> List[int]:
        return self.nets[min(max(i, self.i_min), self.i_max)]

    def net_points_within(self, i: int, point: int, radius: float) -> List[int]:
        level = min(max(i, self.i_min), self.i_max)
        tree = self._kdtrees.get(level)
        if tree is None:
            tree = cKDTree(self.metric.points[self.nets[level]])
            self._kdtrees[level] = tree
        hits = tree.query_ball_point(self.metric.points[point], radius)
        net = self.nets[level]
        return [net[j] for j in hits]


# ----------------------------------------------------------------------
# Seed HST construction


def seed_ckr_partition(
    metric: Metric, members: Sequence[int], scale: float, rng: random.Random
) -> List[List[int]]:
    """The seed CKR decomposition: a full distance row per center."""
    member_array = np.asarray(sorted(members), dtype=np.int64)
    radius = rng.uniform(scale / 4.0, scale / 2.0)
    order = list(range(len(member_array)))
    rng.shuffle(order)
    owner = np.full(len(member_array), -1, dtype=np.int64)
    remaining = len(member_array)
    for rank, position in enumerate(order):
        if remaining == 0:
            break
        center = int(member_array[position])
        dist = metric.distances_from(center)[member_array]
        take = (owner == -1) & (dist <= radius)
        owner[take] = rank
        remaining -= int(take.sum())
    clusters: dict = {}
    for index, own in enumerate(owner):
        clusters.setdefault(int(own), []).append(int(member_array[index]))
    return list(clusters.values())


class _SeedHierarchyNode:
    __slots__ = ("members", "scale", "children", "rep")

    def __init__(self, members: List[int], scale: float):
        self.members = members
        self.scale = scale
        self.children: List["_SeedHierarchyNode"] = []
        self.rep = members[0]


class SeedPartitionHierarchy:
    """The seed partition hierarchy: per-point padding rows."""

    def __init__(self, metric: Metric, alpha: float, rng: random.Random):
        self.metric = metric
        self.alpha = alpha
        far = max(range(metric.n), key=lambda v: metric.distance(0, v))
        diameter = 2.0 * metric.distance(0, far)
        top_scale = 2.0 ** math.ceil(math.log2(max(diameter, 1e-12)))
        self.root = _SeedHierarchyNode(list(range(metric.n)), top_scale)
        self.padded: Set[int] = set(range(metric.n))
        self._build(self.root, rng)

    def _build(self, node: _SeedHierarchyNode, rng: random.Random) -> None:
        if len(node.members) == 1:
            return
        clusters = seed_ckr_partition(self.metric, node.members, node.scale, rng)
        cluster_of = {}
        for index, cluster in enumerate(clusters):
            for v in cluster:
                cluster_of[v] = index
        pad_radius = node.scale / self.alpha
        member_array = np.asarray(node.members, dtype=np.int64)
        cluster_ids = np.asarray([cluster_of[int(v)] for v in member_array])
        for v in node.members:
            if v not in self.padded:
                continue
            dist = self.metric.distances_from(v)[member_array]
            cut = (dist <= pad_radius) & (cluster_ids != cluster_of[v])
            if bool(cut.any()):
                self.padded.discard(v)
        for cluster in clusters:
            child = _SeedHierarchyNode(cluster, node.scale / 2.0)
            node.children.append(child)
            self._build(child, rng)

    def to_cover_tree(self) -> CoverTree:
        parents: List[int] = []
        weights: List[float] = []
        reps: List[int] = []
        vertex_of_point = [-1] * self.metric.n

        def visit(node: _SeedHierarchyNode, parent_id: int) -> None:
            node_id = len(parents)
            parents.append(parent_id)
            weights.append(node.scale * 4.0 if parent_id != -1 else 0.0)
            reps.append(node.rep)
            if len(node.members) == 1:
                vertex_of_point[node.members[0]] = node_id
            for child in node.children:
                visit(child, node_id)

        visit(self.root, -1)
        return CoverTree(Tree(parents, weights), vertex_of_point, reps)


def seed_build_hst(metric: Metric, alpha: float, seed: int = 0):
    rng = random.Random(seed)
    hierarchy = SeedPartitionHierarchy(metric, alpha, rng)
    return hierarchy.to_cover_tree(), hierarchy.padded


# ----------------------------------------------------------------------
# Seed robust tree cover (Theorem 4.1)


def _seed_covering_radius(
    metric: SeedEuclideanMetric, hierarchy: SeedNetHierarchy, level: int
) -> float:
    net = hierarchy.nets[level]
    if len(net) == metric.n:
        return 0.0
    tree = cKDTree(metric.points[net])
    dist, _ = tree.query(metric.points)
    return float(dist.max())


def _seed_pairing_radius(eps: float, level: int, cov: float) -> float:
    return (0.5 / eps) * 2.0**level + 2.0 * cov + 1e-9


def _seed_build_pairing_covers(
    metric: SeedEuclideanMetric, hierarchy: SeedNetHierarchy, eps: float
) -> Dict[int, List[List[Tuple[int, int]]]]:
    covers: Dict[int, List[List[Tuple[int, int]]]] = {}
    for i in range(hierarchy.i_min, hierarchy.i_max + 1):
        net = hierarchy.nets[i]
        cov = _seed_covering_radius(metric, hierarchy, i)
        pair_radius = _seed_pairing_radius(eps, i, cov)
        separation = 2.0 * pair_radius + 10.0 * 2.0**i

        pairs_at_level: List[Tuple[int, int]] = []
        for x in net:
            for y in hierarchy.net_points_within(i, x, pair_radius):
                if y > x:
                    pairs_at_level.append((x, y))
        pairs_at_level.sort(key=lambda xy: (metric.distance(*xy), xy))

        sets: List[List[Tuple[int, int]]] = []
        endpoint_sets: Dict[int, set] = {}
        for x, y in pairs_at_level:
            blocked = set()
            for end in (x, y):
                for z in hierarchy.net_points_within(i, end, separation):
                    blocked |= endpoint_sets.get(z, set())
            index = 0
            while index in blocked:
                index += 1
            if index == len(sets):
                sets.append([])
            sets[index].append((x, y))
            for end in (x, y):
                endpoint_sets.setdefault(end, set()).add(index)
        covers[i] = sets
    return covers


class _SeedForestBuilder:
    def __init__(self, n: int):
        self.parent_node: List[int] = [-1] * n
        self.rep: List[int] = list(range(n))
        self._uf: List[int] = list(range(n))
        self._root_node: List[int] = list(range(n))

    def find(self, p: int) -> int:
        while self._uf[p] != p:
            self._uf[p] = self._uf[self._uf[p]]
            p = self._uf[p]
        return p

    def root_of(self, p: int) -> int:
        return self._root_node[self.find(p)]

    def merge(self, points: Sequence[int], rep: int) -> None:
        leaders = {self.find(p) for p in points}
        if len(leaders) <= 1:
            return
        roots = {self._root_node[leader] for leader in leaders}
        node = len(self.parent_node)
        self.parent_node.append(-1)
        self.rep.append(rep)
        for r in roots:
            self.parent_node[r] = node
        leader_list = list(leaders)
        head = leader_list[0]
        for other in leader_list[1:]:
            self._uf[other] = head
        self._root_node[head] = node

    def finish(self, metric: Metric, n: int) -> CoverTree:
        roots = sorted({self.root_of(p) for p in range(n)})
        if len(roots) > 1:
            node = len(self.parent_node)
            self.parent_node.append(-1)
            self.rep.append(self.rep[roots[0]])
            for r in roots:
                self.parent_node[r] = node
        weights = [0.0] * len(self.parent_node)
        for v, p in enumerate(self.parent_node):
            if p != -1:
                weights[v] = metric.distance(self.rep[p], self.rep[v])
        tree = Tree(self.parent_node, weights)
        return CoverTree(tree, list(range(n)), self.rep)


def seed_robust_tree_cover(metric: SeedEuclideanMetric, eps: float = 0.5) -> TreeCover:
    """The seed Theorem 4.1 construction: scalar merges and edge weights."""
    lo, hi = seed_scale_levels(metric)
    lo -= math.ceil(math.log2(1.0 / eps)) + 2
    hierarchy = SeedNetHierarchy(metric, i_min=lo, i_max=hi)
    covers = _seed_build_pairing_covers(metric, hierarchy, eps)
    phases = math.ceil(math.log2(1.0 / eps)) + 2
    ratio = 2.0**-phases
    gather = (2.0 + 0.5 * ratio / eps) / (1.0 - 4.0 * ratio) + 0.5

    cache: Dict[Tuple[int, int, float], List[int]] = {}

    def near(level: int, point: int, radius: float) -> List[int]:
        key = (level, point, radius)
        hit = cache.get(key)
        if hit is None:
            hit = hierarchy.net_points_within(level, point, radius)
            cache[key] = hit
        return hit

    sets_per_phase = [0] * phases
    for i, sets in covers.items():
        phase = (i - (hierarchy.i_min + 1)) % phases
        sets_per_phase[phase] = max(sets_per_phase[phase], len(sets))

    trees: List[CoverTree] = []
    top = hierarchy.i_max + phases
    for p in range(phases):
        for j in range(max(sets_per_phase[p], 1)):
            builder = _SeedForestBuilder(metric.n)
            for i in range(hierarchy.i_min + 1, top + 1):
                if (i - (hierarchy.i_min + 1)) % phases != p % phases:
                    continue
                lower = i - phases
                sets = covers.get(i)
                if sets is not None and j < len(sets):
                    for x, y in sets[j]:
                        gathered = [x, y]
                        gathered.extend(near(lower, x, gather * 2.0**i))
                        gathered.extend(near(lower, y, gather * 2.0**i))
                        builder.merge(gathered, rep=x)
                for z in hierarchy.net(min(i, hierarchy.i_max)):
                    gathered = [z]
                    gathered.extend(near(lower, z, 2.0 * 2.0**i))
                    builder.merge(gathered, rep=z)
            trees.append(builder.finish(metric, metric.n))
    return TreeCover(metric, trees)


# ----------------------------------------------------------------------
# Seed navigator (Theorem 1.1 / 1.2 construction as of the pre-parallel
# engine revision): eager LCA / level-ancestor indexes built per tree
# and per contracted node, one scalar tree-metric distance per spanner
# edge, and the original dict-based Prune / Decompose passes.

from collections import deque

from .core.ackermann import alpha_k_prime
from .errors import InvariantViolation
from .graphs.lca import LcaIndex
from .graphs.level_ancestor import LadderLevelAncestor

__all__ += [
    "SeedTreeIndex",
    "SeedTreeMetric",
    "SeedWorkTree",
    "SeedTreeNavigator",
    "SeedMetricNavigator",
]


def _seed_dedup(path: Sequence[int]) -> List[int]:
    out: List[int] = []
    for v in path:
        if not out or out[-1] != v:
            out.append(v)
    return out


class SeedTreeIndex:
    """The seed LCA/level-ancestor bundle: sparse tables built eagerly."""

    SMALL = 48

    def __init__(self, tree):
        self.tree = tree
        self.depth = tree.depths()
        self._naive = tree.n <= self.SMALL
        if not self._naive:
            self._lca = LcaIndex(tree)
            self._la = LadderLevelAncestor(tree)

    def lca(self, u: int, v: int) -> int:
        if not self._naive:
            return self._lca.lca(u, v)
        parents, depth = self.tree.parents, self.depth
        while depth[u] > depth[v]:
            u = parents[u]
        while depth[v] > depth[u]:
            v = parents[v]
        while u != v:
            u = parents[u]
            v = parents[v]
        return u

    def ancestor_at_depth(self, v: int, d: int) -> int:
        if not self._naive:
            return self._la.ancestor_at_depth(v, d)
        parents, depth = self.tree.parents, self.depth
        if d > depth[v]:
            raise ValueError("requested depth is below the vertex")
        while depth[v] > d:
            v = parents[v]
        return v


class SeedTreeMetric(Metric):
    """The seed tree metric: LCA index built eagerly at construction."""

    supports_batch = False

    def __init__(self, tree):
        super().__init__(tree.n)
        self.tree = tree
        self._lca = LcaIndex(tree)

    def distance(self, u: int, v: int) -> float:
        return self._lca.distance(u, v)


class SeedWorkTree:
    """The seed rooted-tree view: children dicts materialized up front."""

    __slots__ = ("parent", "children", "root")

    def __init__(self, parent: Dict[int, int], root: int):
        self.parent = parent
        self.root = root
        self.children: Dict[int, List[int]] = {v: [] for v in parent}
        for v, p in parent.items():
            if p != -1:
                self.children[p].append(v)

    def __len__(self) -> int:
        return len(self.parent)

    def vertices(self):
        return self.parent.keys()

    def preorder(self) -> List[int]:
        order: List[int] = []
        stack = [self.root]
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(reversed(self.children[v]))
        return order

    def postorder(self) -> List[int]:
        return list(reversed(self.preorder()))

    @classmethod
    def from_tree(cls, tree) -> "SeedWorkTree":
        parent = {v: tree.parents[v] for v in range(tree.n)}
        return cls(parent, tree.root)


def _seed_prune(wt: SeedWorkTree, required: Set[int]) -> SeedWorkTree:
    if not required:
        raise ValueError("prune needs at least one required vertex")
    has_req: Dict[int, bool] = {}
    for v in wt.postorder():
        flag = v in required
        for c in wt.children[v]:
            flag = flag or has_req[c]
        has_req[v] = flag

    keep: Set[int] = set()
    for v in wt.vertices():
        if v in required:
            keep.add(v)
            continue
        busy_children = sum(1 for c in wt.children[v] if has_req[c])
        if busy_children >= 2:
            keep.add(v)

    new_parent: Dict[int, int] = {}
    nearest_kept: Dict[int, int] = {}
    new_root = -1
    for v in wt.preorder():
        p = wt.parent[v]
        anc = nearest_kept.get(p, -1) if p != -1 else -1
        if v in keep:
            new_parent[v] = anc
            if anc == -1:
                new_root = v
            nearest_kept[v] = v
        else:
            nearest_kept[v] = anc
    roots = [v for v, p in new_parent.items() if p == -1]
    if len(roots) != 1:
        raise InvariantViolation(f"prune produced {len(roots)} roots")
    return SeedWorkTree(new_parent, new_root)


def _seed_decompose(wt: SeedWorkTree, required: Set[int], ell: int) -> List[int]:
    if ell < 1:
        raise ValueError("ell must be at least 1")
    cuts: List[int] = []
    pending: Dict[int, int] = {}
    for v in wt.postorder():
        count = 1 if v in required else 0
        for c in wt.children[v]:
            count += pending[c]
        if count > ell:
            cuts.append(v)
            count = 0
        pending[v] = count
    return cuts


def _seed_split_components(wt: SeedWorkTree, cuts: Sequence[int]):
    cut_set = set(cuts)
    comp_of: Dict[int, int] = {}
    components: List[SeedWorkTree] = []
    borders: List[Set[int]] = []
    for v in wt.preorder():
        if v in cut_set:
            continue
        p = wt.parent[v]
        if p == -1 or p in cut_set:
            index = len(components)
            parent: Dict[int, int] = {v: -1}
            comp_of[v] = index
            stack = [v]
            while stack:
                u = stack.pop()
                for c in wt.children[u]:
                    if c in cut_set:
                        continue
                    parent[c] = u
                    comp_of[c] = index
                    stack.append(c)
            components.append(SeedWorkTree(parent, v))
            borders.append(set())

    for c in cut_set:
        p = wt.parent[c]
        if p != -1 and p not in cut_set:
            borders[comp_of[p]].add(c)
        for child in wt.children[c]:
            if child not in cut_set:
                borders[comp_of[child]].add(c)
    return components, borders, comp_of


class _SeedPhiNode:
    __slots__ = (
        "id", "parent", "level", "is_leaf", "cut_vertices",
        "base_adjacency", "contracted", "sub_navigator", "child_component",
    )

    def __init__(self, node_id: int):
        self.id = node_id
        self.parent = -1
        self.level = 0
        self.is_leaf = False
        self.cut_vertices: List[int] = []
        self.base_adjacency: Optional[Dict[int, List[int]]] = None
        self.contracted: Optional["_SeedContractedTree"] = None
        self.sub_navigator: Optional["SeedTreeNavigator"] = None
        self.child_component: Dict[int, int] = {}


class _SeedContractedTree:
    __slots__ = ("index", "node_of_comp", "node_of_cut", "cut_of_node", "depth")

    def __init__(self, wt: SeedWorkTree, cuts: Sequence[int],
                 comp_of: Dict[int, int], p: int):
        cut_set = set(cuts)
        self.node_of_comp: List[int] = list(range(p))
        self.node_of_cut: Dict[int, int] = {c: p + j for j, c in enumerate(cuts)}
        self.cut_of_node: Dict[int, int] = {
            n: c for c, n in self.node_of_cut.items()
        }

        def contracted_id(v: int) -> int:
            if v in cut_set:
                return self.node_of_cut[v]
            return comp_of[v]

        m = p + len(cuts)
        parent = [-1] * m
        seen = [False] * m
        root_node = contracted_id(wt.root)
        seen[root_node] = True
        for v in wt.preorder():
            pv = wt.parent[v]
            if pv == -1:
                continue
            a, b = contracted_id(pv), contracted_id(v)
            if a != b and not seen[b]:
                parent[b] = a
                seen[b] = True
        self.index = SeedTreeIndex(Tree(parent))
        self.depth = self.index.depth


class SeedTreeNavigator:
    """The seed Theorem 1.1 construction + query path."""

    def __init__(
        self,
        tree,
        k: int,
        required: Optional[Sequence[int]] = None,
        _worktree: Optional[SeedWorkTree] = None,
        _metric: Optional[SeedTreeMetric] = None,
        _edges: Optional[Dict[Tuple[int, int], float]] = None,
    ):
        if k < 2:
            raise ValueError("hop-diameter parameter k must be at least 2")
        self.tree = tree
        self.k = k
        self.metric = _metric if _metric is not None else SeedTreeMetric(tree)
        if required is None:
            required = range(tree.n)
        self.required: Set[int] = set(required)
        if not self.required:
            raise ValueError("need at least one required vertex")
        self.edges: Dict[Tuple[int, int], float] = (
            _edges if _edges is not None else {}
        )
        self._phi_nodes: List[_SeedPhiNode] = []
        self.home: Dict[int, int] = {}
        worktree = (
            _worktree if _worktree is not None else SeedWorkTree.from_tree(tree)
        )
        self._preprocess(worktree, set(self.required))
        self._build_phi_index()

    def _new_phi_node(self) -> _SeedPhiNode:
        node = _SeedPhiNode(len(self._phi_nodes))
        self._phi_nodes.append(node)
        return node

    def _add_edge(self, u: int, v: int) -> None:
        if u == v:
            return
        key = (u, v) if u < v else (v, u)
        if key not in self.edges:
            self.edges[key] = self.metric.distance(u, v)

    def _preprocess(self, wt: SeedWorkTree, req: Set[int]) -> int:
        wt = _seed_prune(wt, req)
        n = len(req)
        if n <= self.k + 1:
            return self._handle_base_case(req)

        ell_index = 0 if self.k == 2 else self.k - 2
        ell = alpha_k_prime(ell_index, n)
        cuts = _seed_decompose(wt, req, ell)
        beta = self._new_phi_node()
        beta.cut_vertices = list(cuts)
        for c in cuts:
            self.home[c] = beta.id

        if self.k == 3:
            for i, a in enumerate(cuts):
                for b in cuts[i + 1:]:
                    self._add_edge(a, b)
        elif self.k >= 4:
            beta.sub_navigator = SeedTreeNavigator(
                self.tree,
                max(2, self.k - 2),
                required=cuts,
                _worktree=wt,
                _metric=self.metric,
                _edges=self.edges,
            )

        components, borders, comp_of = _seed_split_components(wt, cuts)
        comp_required: List[List[int]] = [[] for _ in components]
        for v in req:
            if v in comp_of:
                comp_required[comp_of[v]].append(v)
        for i, border in enumerate(borders):
            for c in border:
                for u in comp_required[i]:
                    self._add_edge(c, u)

        for i, comp in enumerate(components):
            if not comp_required[i]:
                continue
            child_id = self._preprocess(comp, set(comp_required[i]))
            self._phi_nodes[child_id].parent = beta.id
            beta.child_component[child_id] = i

        if self.k >= 3:
            beta.contracted = _SeedContractedTree(
                wt, cuts, comp_of, len(components)
            )
        return beta.id

    def _handle_base_case(self, req: Set[int]) -> int:
        leaf = self._new_phi_node()
        leaf.is_leaf = True
        ordered = sorted(req)
        leaf.cut_vertices = ordered
        adjacency: Dict[int, List[int]] = {u: [] for u in ordered}
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                self._add_edge(a, b)
                adjacency[a].append(b)
                adjacency[b].append(a)
        leaf.base_adjacency = adjacency
        for u in ordered:
            self.home[u] = leaf.id
        return leaf.id

    def _build_phi_index(self) -> None:
        parents = [node.parent for node in self._phi_nodes]
        self._phi = SeedTreeIndex(Tree(parents))
        for node, depth in zip(self._phi_nodes, self._phi.depth):
            node.level = depth

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def find_path(self, u: int, v: int) -> List[int]:
        if u not in self.home or v not in self.home:
            raise KeyError("find_path endpoints must be required vertices")
        if u == v:
            return [u]
        hu = self._phi_nodes[self.home[u]]
        hv = self._phi_nodes[self.home[v]]
        if hu.id == hv.id and hu.is_leaf:
            return self._base_case_bfs(hu, u, v)
        beta = self._phi_nodes[self._phi.lca(hu.id, hv.id)]
        if self.k == 2:
            w = beta.cut_vertices[0]
            return _seed_dedup([u, w, v])

        contracted = beta.contracted
        u_node = self._locate_contracted(u, beta)
        v_node = self._locate_contracted(v, beta)
        c = contracted.index.lca(u_node, v_node)
        x_node = self._find_cut(u, u_node, v_node, beta, c)
        y_node = self._find_cut(v, v_node, u_node, beta, c)
        x = contracted.cut_of_node[x_node]
        y = contracted.cut_of_node[y_node]
        if beta.sub_navigator is None:
            return _seed_dedup([u, x, y, v])
        middle = beta.sub_navigator.find_path(x, y)
        return _seed_dedup([u] + middle + [v])

    def _base_case_bfs(self, leaf: _SeedPhiNode, u: int, v: int) -> List[int]:
        adjacency = leaf.base_adjacency
        parent: Dict[int, int] = {u: u}
        queue = deque([u])
        while queue:
            a = queue.popleft()
            if a == v:
                path = [v]
                while path[-1] != u:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            for b in adjacency[a]:
                if b not in parent:
                    parent[b] = a
                    queue.append(b)
        raise InvariantViolation("base-case subgraph must connect its vertices")

    def _locate_contracted(self, u: int, beta: _SeedPhiNode) -> int:
        home_id = self.home[u]
        if home_id == beta.id:
            return beta.contracted.node_of_cut[u]
        child = self._phi.ancestor_at_depth(home_id, beta.level + 1)
        comp = beta.child_component[child]
        return beta.contracted.node_of_comp[comp]

    def _find_cut(self, u: int, u_node: int, v_node: int,
                  beta: _SeedPhiNode, c: int) -> int:
        contracted = beta.contracted
        if self.home[u] == beta.id:
            return u_node
        if u_node == c:
            return contracted.index.ancestor_at_depth(
                v_node, contracted.depth[u_node] + 1
            )
        return contracted.index.ancestor_at_depth(
            u_node, contracted.depth[u_node] - 1
        )


class SeedMetricNavigator:
    """The seed Theorem 1.2 build: one serial eager navigator per tree."""

    def __init__(self, metric: Metric, cover: TreeCover, k: int):
        self.metric = metric
        self.cover = cover
        self.k = k
        self.navigators: List[SeedTreeNavigator] = []
        for cover_tree in cover.trees:
            required = list(cover_tree.vertex_of_point)
            self.navigators.append(
                SeedTreeNavigator(cover_tree.tree, k, required=required)
            )

    def _best_tree(self, u: int, v: int) -> int:
        """The seed-era tree selection, pinned.

        The seed's ``TreeCover.best_tree`` was this O(ζ) python scan
        over scalar per-tree oracles; the live implementation has since
        grown a packed vectorized index and a result LRU.  Delegating to
        the live cover would let those optimizations (and a cache warmed
        by the measured run) leak into the baseline timing, so the scan
        is frozen here alongside the rest of the seed code.
        """
        if self.cover.home is not None:
            return self.cover.home[u]
        best_index = -1
        best = float("inf")
        for index, cover_tree in enumerate(self.cover.trees):
            d = cover_tree.tree_distance(u, v)
            if d < best:
                best = d
                best_index = index
        return best_index

    def find_path(self, u: int, v: int) -> List[int]:
        if u == v:
            return [u]
        index = self._best_tree(u, v)
        cover_tree = self.cover.trees[index]
        vertex_path = self.navigators[index].find_path(
            cover_tree.vertex_of_point[u], cover_tree.vertex_of_point[v]
        )
        return _seed_dedup([cover_tree.rep_point[x] for x in vertex_path])

    @property
    def num_edges(self) -> int:
        return sum(nav.num_edges for nav in self.navigators)
