"""Frozen pre-vectorization reference implementations, for benchmarking.

These are verbatim-behavior copies of the construction paths as they
existed before the batch distance-kernel layer (one scalar
``metric.distance`` / ``metric.ball`` call at a time).  The regression
harness (:mod:`repro.bench`) times them against the current vectorized
paths on identical inputs, so every ``python -m repro bench`` run
reports an honest before/after comparison instead of trusting numbers
recorded once in a document.

The classes here are intentionally *not* subclasses of
:class:`~repro.metrics.euclidean.EuclideanMetric`: the optimized code
dispatches on ``isinstance``/``supports_batch``, and the baseline must
never take those fast paths.

Nothing outside benchmarks and parity tests should import this module.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.spatial import cKDTree

from .graphs.tree import Tree
from .metrics.base import Metric
from .treecover.base import CoverTree, TreeCover

__all__ = [
    "SeedEuclideanMetric",
    "seed_greedy_net",
    "seed_scale_levels",
    "SeedNetHierarchy",
    "seed_ckr_partition",
    "SeedPartitionHierarchy",
    "seed_build_hst",
    "seed_robust_tree_cover",
]


class SeedEuclideanMetric(Metric):
    """The seed Euclidean metric: per-call numpy norm, scalar kernels only."""

    supports_batch = False

    def __init__(self, points: np.ndarray):
        self.points = np.asarray(points, dtype=float)
        super().__init__(len(self.points))
        self._kdtree: Optional[cKDTree] = None

    @property
    def kdtree(self) -> cKDTree:
        if self._kdtree is None:
            self._kdtree = cKDTree(self.points)
        return self._kdtree

    def distance(self, u: int, v: int) -> float:
        return float(np.linalg.norm(self.points[u] - self.points[v]))

    def distances_from(self, u: int) -> np.ndarray:
        return np.linalg.norm(self.points - self.points[u], axis=1)

    def ball(self, center: int, radius: float) -> List[int]:
        return sorted(self.kdtree.query_ball_point(self.points[center], radius))


def seed_greedy_net(metric: Metric, candidates: Sequence[int], radius: float) -> List[int]:
    """The seed greedy net: one python-level ball query per net point."""
    candidate_set = set(candidates)
    covered: Set[int] = set()
    net: List[int] = []
    for p in candidates:
        if p in covered:
            continue
        net.append(p)
        for q in metric.ball(p, radius):
            if q in candidate_set:
                covered.add(q)
    return net


def seed_scale_levels(metric: SeedEuclideanMetric) -> Tuple[int, int]:
    dist, _ = metric.kdtree.query(metric.points, k=2)
    d_min = float(np.min(dist[:, 1]))
    lo = metric.points.min(axis=0)
    hi = metric.points.max(axis=0)
    d_max = float(np.linalg.norm(hi - lo))
    if d_min == 0:
        raise ValueError("metric has duplicate points or a single point")
    i_min = math.floor(math.log2(d_min)) - 1
    i_max = math.ceil(math.log2(max(d_max, d_min))) + 1
    return i_min, i_max


class SeedNetHierarchy:
    """The seed net hierarchy (scalar greedy net per level)."""

    def __init__(
        self,
        metric: SeedEuclideanMetric,
        i_min: Optional[int] = None,
        i_max: Optional[int] = None,
    ):
        self.metric = metric
        if i_min is None or i_max is None:
            lo, hi = seed_scale_levels(metric)
            i_min = lo if i_min is None else i_min
            i_max = hi if i_max is None else i_max
        self.i_min = i_min
        self.i_max = i_max
        self.nets: Dict[int, List[int]] = {}
        self._kdtrees: Dict[int, cKDTree] = {}

        current = list(range(metric.n))
        self.nets[i_min] = current
        for i in range(i_min + 1, i_max + 1):
            current = seed_greedy_net(metric, current, 2.0**i)
            self.nets[i] = current

    def net(self, i: int) -> List[int]:
        return self.nets[min(max(i, self.i_min), self.i_max)]

    def net_points_within(self, i: int, point: int, radius: float) -> List[int]:
        level = min(max(i, self.i_min), self.i_max)
        tree = self._kdtrees.get(level)
        if tree is None:
            tree = cKDTree(self.metric.points[self.nets[level]])
            self._kdtrees[level] = tree
        hits = tree.query_ball_point(self.metric.points[point], radius)
        net = self.nets[level]
        return [net[j] for j in hits]


# ----------------------------------------------------------------------
# Seed HST construction


def seed_ckr_partition(
    metric: Metric, members: Sequence[int], scale: float, rng: random.Random
) -> List[List[int]]:
    """The seed CKR decomposition: a full distance row per center."""
    member_array = np.asarray(sorted(members), dtype=np.int64)
    radius = rng.uniform(scale / 4.0, scale / 2.0)
    order = list(range(len(member_array)))
    rng.shuffle(order)
    owner = np.full(len(member_array), -1, dtype=np.int64)
    remaining = len(member_array)
    for rank, position in enumerate(order):
        if remaining == 0:
            break
        center = int(member_array[position])
        dist = metric.distances_from(center)[member_array]
        take = (owner == -1) & (dist <= radius)
        owner[take] = rank
        remaining -= int(take.sum())
    clusters: dict = {}
    for index, own in enumerate(owner):
        clusters.setdefault(int(own), []).append(int(member_array[index]))
    return list(clusters.values())


class _SeedHierarchyNode:
    __slots__ = ("members", "scale", "children", "rep")

    def __init__(self, members: List[int], scale: float):
        self.members = members
        self.scale = scale
        self.children: List["_SeedHierarchyNode"] = []
        self.rep = members[0]


class SeedPartitionHierarchy:
    """The seed partition hierarchy: per-point padding rows."""

    def __init__(self, metric: Metric, alpha: float, rng: random.Random):
        self.metric = metric
        self.alpha = alpha
        far = max(range(metric.n), key=lambda v: metric.distance(0, v))
        diameter = 2.0 * metric.distance(0, far)
        top_scale = 2.0 ** math.ceil(math.log2(max(diameter, 1e-12)))
        self.root = _SeedHierarchyNode(list(range(metric.n)), top_scale)
        self.padded: Set[int] = set(range(metric.n))
        self._build(self.root, rng)

    def _build(self, node: _SeedHierarchyNode, rng: random.Random) -> None:
        if len(node.members) == 1:
            return
        clusters = seed_ckr_partition(self.metric, node.members, node.scale, rng)
        cluster_of = {}
        for index, cluster in enumerate(clusters):
            for v in cluster:
                cluster_of[v] = index
        pad_radius = node.scale / self.alpha
        member_array = np.asarray(node.members, dtype=np.int64)
        cluster_ids = np.asarray([cluster_of[int(v)] for v in member_array])
        for v in node.members:
            if v not in self.padded:
                continue
            dist = self.metric.distances_from(v)[member_array]
            cut = (dist <= pad_radius) & (cluster_ids != cluster_of[v])
            if bool(cut.any()):
                self.padded.discard(v)
        for cluster in clusters:
            child = _SeedHierarchyNode(cluster, node.scale / 2.0)
            node.children.append(child)
            self._build(child, rng)

    def to_cover_tree(self) -> CoverTree:
        parents: List[int] = []
        weights: List[float] = []
        reps: List[int] = []
        vertex_of_point = [-1] * self.metric.n

        def visit(node: _SeedHierarchyNode, parent_id: int) -> None:
            node_id = len(parents)
            parents.append(parent_id)
            weights.append(node.scale * 4.0 if parent_id != -1 else 0.0)
            reps.append(node.rep)
            if len(node.members) == 1:
                vertex_of_point[node.members[0]] = node_id
            for child in node.children:
                visit(child, node_id)

        visit(self.root, -1)
        return CoverTree(Tree(parents, weights), vertex_of_point, reps)


def seed_build_hst(metric: Metric, alpha: float, seed: int = 0):
    rng = random.Random(seed)
    hierarchy = SeedPartitionHierarchy(metric, alpha, rng)
    return hierarchy.to_cover_tree(), hierarchy.padded


# ----------------------------------------------------------------------
# Seed robust tree cover (Theorem 4.1)


def _seed_covering_radius(
    metric: SeedEuclideanMetric, hierarchy: SeedNetHierarchy, level: int
) -> float:
    net = hierarchy.nets[level]
    if len(net) == metric.n:
        return 0.0
    tree = cKDTree(metric.points[net])
    dist, _ = tree.query(metric.points)
    return float(dist.max())


def _seed_pairing_radius(eps: float, level: int, cov: float) -> float:
    return (0.5 / eps) * 2.0**level + 2.0 * cov + 1e-9


def _seed_build_pairing_covers(
    metric: SeedEuclideanMetric, hierarchy: SeedNetHierarchy, eps: float
) -> Dict[int, List[List[Tuple[int, int]]]]:
    covers: Dict[int, List[List[Tuple[int, int]]]] = {}
    for i in range(hierarchy.i_min, hierarchy.i_max + 1):
        net = hierarchy.nets[i]
        cov = _seed_covering_radius(metric, hierarchy, i)
        pair_radius = _seed_pairing_radius(eps, i, cov)
        separation = 2.0 * pair_radius + 10.0 * 2.0**i

        pairs_at_level: List[Tuple[int, int]] = []
        for x in net:
            for y in hierarchy.net_points_within(i, x, pair_radius):
                if y > x:
                    pairs_at_level.append((x, y))
        pairs_at_level.sort(key=lambda xy: (metric.distance(*xy), xy))

        sets: List[List[Tuple[int, int]]] = []
        endpoint_sets: Dict[int, set] = {}
        for x, y in pairs_at_level:
            blocked = set()
            for end in (x, y):
                for z in hierarchy.net_points_within(i, end, separation):
                    blocked |= endpoint_sets.get(z, set())
            index = 0
            while index in blocked:
                index += 1
            if index == len(sets):
                sets.append([])
            sets[index].append((x, y))
            for end in (x, y):
                endpoint_sets.setdefault(end, set()).add(index)
        covers[i] = sets
    return covers


class _SeedForestBuilder:
    def __init__(self, n: int):
        self.parent_node: List[int] = [-1] * n
        self.rep: List[int] = list(range(n))
        self._uf: List[int] = list(range(n))
        self._root_node: List[int] = list(range(n))

    def find(self, p: int) -> int:
        while self._uf[p] != p:
            self._uf[p] = self._uf[self._uf[p]]
            p = self._uf[p]
        return p

    def root_of(self, p: int) -> int:
        return self._root_node[self.find(p)]

    def merge(self, points: Sequence[int], rep: int) -> None:
        leaders = {self.find(p) for p in points}
        if len(leaders) <= 1:
            return
        roots = {self._root_node[leader] for leader in leaders}
        node = len(self.parent_node)
        self.parent_node.append(-1)
        self.rep.append(rep)
        for r in roots:
            self.parent_node[r] = node
        leader_list = list(leaders)
        head = leader_list[0]
        for other in leader_list[1:]:
            self._uf[other] = head
        self._root_node[head] = node

    def finish(self, metric: Metric, n: int) -> CoverTree:
        roots = sorted({self.root_of(p) for p in range(n)})
        if len(roots) > 1:
            node = len(self.parent_node)
            self.parent_node.append(-1)
            self.rep.append(self.rep[roots[0]])
            for r in roots:
                self.parent_node[r] = node
        weights = [0.0] * len(self.parent_node)
        for v, p in enumerate(self.parent_node):
            if p != -1:
                weights[v] = metric.distance(self.rep[p], self.rep[v])
        tree = Tree(self.parent_node, weights)
        return CoverTree(tree, list(range(n)), self.rep)


def seed_robust_tree_cover(metric: SeedEuclideanMetric, eps: float = 0.5) -> TreeCover:
    """The seed Theorem 4.1 construction: scalar merges and edge weights."""
    lo, hi = seed_scale_levels(metric)
    lo -= math.ceil(math.log2(1.0 / eps)) + 2
    hierarchy = SeedNetHierarchy(metric, i_min=lo, i_max=hi)
    covers = _seed_build_pairing_covers(metric, hierarchy, eps)
    phases = math.ceil(math.log2(1.0 / eps)) + 2
    ratio = 2.0**-phases
    gather = (2.0 + 0.5 * ratio / eps) / (1.0 - 4.0 * ratio) + 0.5

    cache: Dict[Tuple[int, int, float], List[int]] = {}

    def near(level: int, point: int, radius: float) -> List[int]:
        key = (level, point, radius)
        hit = cache.get(key)
        if hit is None:
            hit = hierarchy.net_points_within(level, point, radius)
            cache[key] = hit
        return hit

    sets_per_phase = [0] * phases
    for i, sets in covers.items():
        phase = (i - (hierarchy.i_min + 1)) % phases
        sets_per_phase[phase] = max(sets_per_phase[phase], len(sets))

    trees: List[CoverTree] = []
    top = hierarchy.i_max + phases
    for p in range(phases):
        for j in range(max(sets_per_phase[p], 1)):
            builder = _SeedForestBuilder(metric.n)
            for i in range(hierarchy.i_min + 1, top + 1):
                if (i - (hierarchy.i_min + 1)) % phases != p % phases:
                    continue
                lower = i - phases
                sets = covers.get(i)
                if sets is not None and j < len(sets):
                    for x, y in sets[j]:
                        gathered = [x, y]
                        gathered.extend(near(lower, x, gather * 2.0**i))
                        gathered.extend(near(lower, y, gather * 2.0**i))
                        builder.merge(gathered, rep=x)
                for z in hierarchy.net(min(i, hierarchy.i_max)):
                    gathered = [z]
                    gathered.extend(near(lower, z, 2.0 * 2.0**i))
                    builder.merge(gathered, rep=z)
            trees.append(builder.finish(metric, metric.n))
    return TreeCover(metric, trees)
