"""Command-line interface: build, navigate and route on generated instances.

Examples::

    python -m repro navigate   --family euclidean --n 300 --k 3 --queries 5
    python -m repro route      --family general   --n 150 --queries 10
    python -m repro tree       --n 2000 --k 2 --queries 5
    python -m repro chaos      --scenario adversarial --f 2 --k 4
    python -m repro checkpoint --family euclidean --n 120 --what ft --out ft.ckpt
    python -m repro audit      --checkpoint ft.ckpt --family euclidean --n 120
    python -m repro serve cover.ckpt --family euclidean --n 120 --port 7421
    python -m repro bench --quick --trace
    python -m repro chaos --trace --trace-out TRACE_chaos.json
    python -m repro trace-report TRACE_chaos.json
    python -m repro info
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List

from . import __version__
from .core import MetricNavigator, TreeNavigator
from .graphs import random_tree
from .metrics import (
    Metric,
    delaunay_metric,
    random_graph_metric,
    random_points,
)
from .routing import MetricRoutingScheme
from .treecover import planar_tree_cover, ramsey_tree_cover, robust_tree_cover

__all__ = ["main", "build_parser"]


def _make_metric(family: str, n: int, seed: int) -> Metric:
    if family == "euclidean":
        return random_points(n, dim=2, seed=seed)
    if family == "general":
        return random_graph_metric(n, seed=seed)
    if family == "planar":
        return delaunay_metric(n, seed=seed)
    raise ValueError(f"unknown metric family {family!r}")


def _make_cover(family: str, metric: Metric, eps: float, ell: int, seed: int,
                workers: int = None, backend: str = "robust", shifts: int = 4):
    if family == "euclidean":
        if backend == "compact":
            from .treecover import compact_tree_cover

            return compact_tree_cover(
                metric, eps=eps, shifts=shifts, workers=workers
            )
        return robust_tree_cover(metric, eps=eps, workers=workers)
    if family == "general":
        return ramsey_tree_cover(metric, ell=ell, seed=seed, workers=workers)
    return planar_tree_cover(metric)


def _cover_builder(args: argparse.Namespace):
    """Cover builder honoring --backend and --prune, for rebuild paths.

    The same construction the checkpoint records in its builder spec, so
    an explicit-builder recovery lands on the identical cover a
    meta-driven one would.
    """
    backend = getattr(args, "backend", "robust")
    shifts = getattr(args, "shifts", 4)
    prune = getattr(args, "prune", False)
    prune_eps = getattr(args, "prune_eps", 0.05)

    def build(metric: Metric):
        cover = _make_cover(
            args.family, metric, args.eps, args.ell, args.seed,
            workers=args.workers, backend=backend, shifts=shifts,
        )
        if prune:
            from .treecover import prune_cover

            report = prune_cover(cover, eps=prune_eps, workers=args.workers)
            print(report.format_summary())
            cover = report.cover
        return cover

    return build


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _non_negative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_cover_flags(cmd: argparse.ArgumentParser) -> None:
    """--backend / --prune flags shared by checkpoint, audit and serve."""
    cmd.add_argument(
        "--backend", choices=["robust", "compact"], default="robust",
        help="euclidean tree-cover backend: 'robust' (Thm 4.1, "
             "fault-tolerant, ζ grows with n) or 'compact' "
             "(net-tree + shifted hierarchies, ζ = O(1) in n)",
    )
    cmd.add_argument(
        "--shifts", type=_positive_int, default=4,
        help="radius shifts per phase for --backend compact "
             "(ζ = phases × shifts; more shifts, less stretch)",
    )
    cmd.add_argument(
        "--prune", action="store_true",
        help="drop trees whose within-stretch pair coverage is dominated "
             "by the retained set (greedy set cover), re-verifying the "
             "stretch contract on the result",
    )
    cmd.add_argument(
        "--prune-eps", type=_non_negative_float, default=0.05,
        help="stretch headroom for --prune: retained trees must cover "
             "every pair within measured-stretch × (1 + prune-eps)",
    )


def _add_workers_flag(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for per-tree fan-out (default: the "
             "REPRO_WORKERS env var, else serial; 0/1 serial, -1 per-CPU)",
    )


def _add_trace_flags(cmd: argparse.ArgumentParser, default_out: str) -> None:
    cmd.add_argument(
        "--trace", action="store_true",
        help="enable observability for this run (same as REPRO_TRACE=1) "
             "and write the span trees + metrics as a trace JSON document",
    )
    cmd.add_argument(
        "--trace-out", type=str, default=default_out,
        help=f"trace document path for --trace (default: {default_out})",
    )


def _traced_command(args: argparse.Namespace) -> int:
    """Run ``args.func`` with tracing scoped on, then write the trace
    document (spans + metrics snapshot) to ``args.trace_out``."""
    import json

    from .observability import OBS, trace_document, validate_trace_json

    OBS.clear()
    with OBS.scoped(True):
        code = args.func(args)
        doc = trace_document(OBS.take_roots(), OBS.registry.snapshot())
    errors = validate_trace_json(doc)
    if errors:
        for problem in errors:
            print(f"trace validation: {problem}", file=sys.stderr)
        return code or 1
    with open(args.trace_out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote trace document {args.trace_out} "
          f"(render with: python -m repro trace-report {args.trace_out})")
    return code


def cmd_tree(args: argparse.Namespace) -> int:
    tree = random_tree(args.n, seed=args.seed)
    start = time.perf_counter()
    navigator = TreeNavigator(tree, args.k)
    print(f"built k={args.k} navigator for n={args.n}: "
          f"{navigator.num_edges} edges in {time.perf_counter() - start:.2f}s")
    rng = random.Random(args.seed)
    for _ in range(args.queries):
        u, v = rng.sample(range(args.n), 2)
        path = navigator.find_path(u, v)
        print(f"  {u} -> {v}: {len(path) - 1} hops via {path}")
    return 0


def cmd_navigate(args: argparse.Namespace) -> int:
    metric = _make_metric(args.family, args.n, args.seed)
    start = time.perf_counter()
    cover = _make_cover(args.family, metric, args.eps, args.ell, args.seed)
    navigator = MetricNavigator(metric, cover, args.k)
    print(f"{args.family} n={args.n}: cover of {cover.size} trees, "
          f"spanner H_X with {navigator.num_edges} edges "
          f"({time.perf_counter() - start:.1f}s)")
    rng = random.Random(args.seed)
    for _ in range(args.queries):
        u, v = rng.sample(range(args.n), 2)
        hops, stretch = navigator.query_stretch(u, v)
        print(f"  {u} -> {v}: {hops} hops, stretch {stretch:.3f}, "
              f"path {navigator.find_path(u, v)}")
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    metric = _make_metric(args.family, args.n, args.seed)
    cover = _make_cover(args.family, metric, args.eps, args.ell, args.seed)
    scheme = MetricRoutingScheme(metric, cover, seed=args.seed)
    label_bits = max(scheme.label_size_bits(p) for p in range(args.n))
    table_bits = max(scheme.table_size_bits(p) for p in range(args.n))
    print(f"{args.family} n={args.n}: ζ={cover.size}, labels <= {label_bits} bits, "
          f"tables <= {table_bits} bits")
    rng = random.Random(args.seed)
    for _ in range(args.queries):
        u, v = rng.sample(range(args.n), 2)
        result = scheme.route(u, v)
        base = metric.distance(u, v)
        stretch = result.weight / base if base else 1.0
        print(f"  {u} -> {v}: {result.hops} hops via {result.path}, "
              f"stretch {stretch:.3f}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience import (
        ChaosHarness,
        CrashRecoverySchedule,
        make_injector,
    )
    from .routing import FaultTolerantRoutingScheme
    from .spanners import FaultTolerantSpanner

    metric = _make_metric(args.family, args.n, args.seed)
    start = time.perf_counter()
    cover = robust_tree_cover(metric, eps=args.eps, workers=args.workers)
    spanner = FaultTolerantSpanner(
        metric, f=args.f, k=args.k, cover=cover, workers=args.workers
    )
    router = None
    if not args.no_routing:
        router = FaultTolerantRoutingScheme(
            metric, f=args.f, cover=cover, seed=args.seed
        )
    print(
        f"{args.family} n={args.n}: f={args.f} k={args.k} cover of "
        f"{cover.size} trees, FT spanner with {spanner.edge_count()} "
        f"biclique edges ({time.perf_counter() - start:.1f}s)"
    )
    if not args.no_checkpoint:
        # Chaos runs also verify reloaded state: round-trip the FT
        # spanner through a v2 checkpoint and audit the reload, so a
        # serialization regression fails the same run that exercises
        # the fault model.
        import os
        import tempfile

        from .checkpoint import load_ft_checkpoint, save_ft_checkpoint

        fd, ckpt_path = tempfile.mkstemp(suffix=".ckpt")
        os.close(fd)
        try:
            envelope = save_ft_checkpoint(spanner, ckpt_path)
            reloaded = load_ft_checkpoint(ckpt_path, metric)
            spanner = reloaded
            print(
                f"checkpoint round-trip: FT spanner saved, reloaded and "
                f"audited ok (digest {envelope['digest'][:16]}…); chaos "
                f"sweeps run on the reloaded structure"
            )
        finally:
            os.unlink(ckpt_path)
    harness = ChaosHarness(spanner, router, queries=args.queries, seed=args.seed)
    sizes = None
    if args.sizes:
        try:
            sizes = sorted({int(s) for s in args.sizes.split(",")})
        except ValueError:
            print(f"error: --sizes must be comma-separated integers, "
                  f"got {args.sizes!r}", file=sys.stderr)
            return 2
        if any(s < 0 for s in sizes):
            print("error: --sizes values must be non-negative", file=sys.stderr)
            return 2

    if args.scenario == "crash":
        base = make_injector("random", metric, spanner, seed=args.seed)
        size = max(sizes) if sizes else 2 * (args.f + 1)
        schedule = CrashRecoverySchedule(
            base, size=size, steps=args.steps, seed=args.seed
        )
        report = harness.run_schedule(schedule)
        print(f"\n## crash/recovery timeline — |F|={size}, {args.steps} steps")
        print(report.format_table())
        print(
            f"\nall {report.invariants_checked} within-budget queries satisfied "
            f"hop <= k, fault avoidance and the robust stretch bound"
        )
        return 0

    reports = {}
    scenarios = [args.scenario] if args.scenario == "random" else ["random", args.scenario]
    for name in scenarios:
        injector = make_injector(name, metric, spanner, seed=args.seed)
        reports[name] = harness.sweep(injector, sizes)
        print(f"\n## survival — scenario={name}")
        print(reports[name].format_table())
    if args.scenario in reports and "random" in reports and args.scenario != "random":
        adv, rnd = reports[args.scenario], reports["random"]
        worse = 0
        for i, (a, r) in enumerate(zip(adv.navigation, rnd.navigation)):
            nav_worse = a.delivery_rate < r.delivery_rate
            route_worse = (
                i < len(adv.routing) and i < len(rnd.routing)
                and adv.routing[i].delivery_rate < rnd.routing[i].delivery_rate
            )
            worse += nav_worse or route_worse
        print(
            f"\n{args.scenario} injector degraded delivery below the random "
            f"baseline at {worse}/{len(adv.navigation)} fault-set sizes"
        )
    checked = sum(r.invariants_checked for r in reports.values())
    print(
        f"all {checked} within-budget queries satisfied hop <= k, "
        "fault avoidance and the robust stretch bound"
    )
    return 0


def _builder_spec(args: argparse.Namespace) -> dict:
    """The cover builder metadata recorded in checkpoints, so recovery
    can rebuild without the caller re-supplying construction params."""
    if args.family == "euclidean":
        if getattr(args, "backend", "robust") == "compact":
            spec = {"family": "compact", "eps": args.eps,
                    "shifts": getattr(args, "shifts", 4)}
        else:
            spec = {"family": "robust", "eps": args.eps}
    elif args.family == "general":
        spec = {"family": "ramsey", "ell": args.ell, "seed": args.seed}
    else:
        spec = {"family": "planar"}
    if getattr(args, "prune", False):
        from .treecover.prune import DEFAULT_MAX_PAIRS

        # Everything a recovery needs to replay the (deterministic)
        # prune and land on the same retained tree indexes.
        spec["pruned"] = {
            "eps": getattr(args, "prune_eps", 0.05),
            "seed": 0,
            "max_pairs": DEFAULT_MAX_PAIRS,
        }
    return spec


def _declared_contract(args: argparse.Namespace, cover):
    """The (α, ζ) contract stored in checkpoint meta.

    ``--gamma`` declares α explicitly; otherwise the measured stretch
    plus 10% headroom is declared, so a later audit catches regressions
    against what this build actually achieved (Table 1's constants are
    asymptotic; DESIGN.md records the measured ones).
    """
    from .checkpoint import CoverContract

    if args.gamma > 0:
        gamma = args.gamma
    else:
        worst, _ = cover.measured_stretch(sample=300)
        gamma = round(1.1 * worst, 3)
    return CoverContract(gamma=gamma, max_trees=cover.size)


def cmd_checkpoint(args: argparse.Namespace) -> int:
    from .checkpoint import (
        save_cover_checkpoint,
        save_ft_checkpoint,
        save_labels_checkpoint,
        save_navigator_checkpoint,
    )
    from .core import MetricNavigator as Navigator
    from .spanners import FaultTolerantSpanner

    metric = _make_metric(args.family, args.n, args.seed)
    start = time.perf_counter()
    cover = _cover_builder(args)(metric)
    contract = _declared_contract(args, cover)
    builder = _builder_spec(args)
    if args.what == "cover":
        envelope = save_cover_checkpoint(
            cover, args.out, contract=contract, builder=builder
        )
    elif args.what == "navigator":
        navigator = Navigator(metric, cover, args.k, workers=args.workers)
        envelope = save_navigator_checkpoint(
            navigator, args.out, contract=contract, builder=builder,
            packed=args.packed,
        )
    elif args.what == "ft":
        spanner = FaultTolerantSpanner(
            metric, f=args.f, k=args.k, cover=cover, workers=args.workers
        )
        envelope = save_ft_checkpoint(
            spanner, args.out, contract=contract, builder=builder
        )
    else:
        envelope = save_labels_checkpoint(
            cover, args.out, contract=contract, builder=builder
        )
    print(
        f"wrote {args.what} checkpoint {args.out}: {cover.size} trees, "
        f"contract α={contract.gamma} ζ<={contract.max_trees}, "
        f"digest {envelope['digest'][:16]}… "
        f"({time.perf_counter() - start:.1f}s)"
    )
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from .checkpoint import audit_checkpoint, recover_cover
    from .errors import CheckpointCorruption, InvariantViolation

    metric = _make_metric(args.family, args.n, args.seed)
    try:
        report = audit_checkpoint(args.checkpoint, metric, workers=args.workers)
    except (CheckpointCorruption, InvariantViolation) as exc:
        print(f"AUDIT FAILED [{type(exc).__name__}]: {exc}")
        if not args.recover:
            return 1
        report = recover_cover(
            args.checkpoint,
            metric,
            builder=_cover_builder(args),
            resave=args.resave,
            workers=args.workers,
        )
        print(report.format_summary())
        if args.resave:
            print(f"repaired checkpoint written back to {args.checkpoint}")
        return 0
    print(report.format_lines())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .checkpoint import CheckpointService
    from .observability import OBS
    from .serve import AdmissionPolicy, SpannerServer

    metric = _make_metric(args.family, args.n, args.seed)
    service = CheckpointService(
        metric,
        k=args.k,
        builder=_cover_builder(args),
        workers=args.workers,
    )
    start = time.perf_counter()
    service.load(args.checkpoint, mmap=args.mmap)
    print(
        f"loaded {args.checkpoint} in {time.perf_counter() - start:.2f}s: "
        f"{service.status()['trees_serving']} trees serving, "
        f"state={service.state}"
        + (" (memory-mapped)" if args.mmap else "")
    )
    if args.dynamic:
        if args.mmap:
            print("error: --dynamic is incompatible with --mmap (mapped "
                  "service is read-only)", file=sys.stderr)
            return 2
        start = time.perf_counter()
        try:
            service.enable_dynamic(journal_path=args.journal or None)
        except ValueError as exc:
            # Typed refusals from the dynamic layer (pruned covers,
            # non-robust families) — same exit contract as --mmap above.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        status = service.status()
        print(
            f"dynamic mode on in {time.perf_counter() - start:.2f}s: "
            f"{status['active_points']} active points, "
            f"journal at seq {status['applied_seq']} with "
            f"{status['journal_records']} pending records replayed"
        )
    if not args.no_obs:
        # The daemon's /metrics endpoint serves the observability
        # registry, so instrumentation is on by default while serving.
        OBS.enable()
    policy = AdmissionPolicy(
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        flush_interval=args.flush_ms / 1000.0,
        default_deadline=args.deadline_ms / 1000.0,
        max_retries=args.max_retries,
    )
    server = SpannerServer(
        service, policy, host=args.host, port=args.port, router_seed=args.seed
    )
    if service.recovery_pending:
        print("checkpoint damaged: serving degraded responses from the "
              "survivors while recovery runs in the background")
        server.chaos.start_recovery()

    def ready(host: str, port: int) -> None:
        status = service.status()
        print(
            f"READY {host} {port} state={status['state']} "
            f"trees={status['trees_serving']}/{status['trees_total']} "
            f"k={args.k} max_batch={policy.max_batch}",
            flush=True,
        )

    return server.run(ready=ready)


def cmd_netsim(args: argparse.Namespace) -> int:
    """Compile a scheme and drive routed messages through the simulator."""
    import json as json_mod

    from .netsim import (
        MetricsExporter,
        NetworkSimulator,
        SimReport,
        audit_locality,
        compile_ft_scheme,
        compile_metric_scheme,
        compile_tree_scheme,
        kill_schedule,
        uniform_pairs,
    )
    from .observability import OBS
    from .resilience.injectors import RandomInjector, make_injector
    from .routing import (
        FaultTolerantRoutingScheme,
        build_tree_network,
    )

    OBS.enable()
    build_start = time.perf_counter()
    if args.scheme == "tree":
        tree = random_tree(args.n, seed=args.seed)
        scheme, net = build_tree_network(tree, seed=args.seed + 1)
        compiled = compile_tree_scheme(
            scheme, net, service_time=args.service_time,
            queue_cap=args.queue_cap,
        )
        metric = None
    else:
        metric = _make_metric(args.family, args.n, args.seed)
        cover = _make_cover(
            args.family, metric, args.eps, args.ell, args.seed,
            workers=args.workers,
        )
        if args.scheme == "metric":
            scheme = MetricRoutingScheme(metric, cover, seed=args.seed + 1)
            compiled = compile_metric_scheme(
                scheme, service_time=args.service_time,
                queue_cap=args.queue_cap,
            )
        else:
            scheme = FaultTolerantRoutingScheme(
                metric, f=args.f, cover=cover, seed=args.seed + 1
            )
            compiled = compile_ft_scheme(
                scheme, service_time=args.service_time,
                queue_cap=args.queue_cap, gamma_seed=args.seed,
            )
    audit_locality(compiled)
    build_seconds = time.perf_counter() - build_start
    print(
        f"compiled {compiled.name} scheme: n={compiled.n}, "
        f"{compiled.num_links()} links, zeta={compiled.zeta}, "
        f"gamma budget={compiled.gamma:.3f} ({build_seconds:.2f}s); "
        "locality audit passed"
    )

    sim = NetworkSimulator(compiled, tie_break=args.tie_break, seed=args.seed)
    pairs = uniform_pairs(compiled.n, args.messages, seed=args.seed + 2)
    sim.send_many(pairs, spacing=args.spacing)
    if args.kill > 0:
        horizon = max(args.spacing * args.messages, 1.0)
        if metric is None:
            # Tree overlays have no ambient metric; regional kills
            # need one, so the tree scheme always draws uniformly.
            injector = RandomInjector(compiled.n, seed=args.seed + 3)
        else:
            injector = make_injector(
                args.kill_scenario, metric, seed=args.seed + 3
            )
        for when, victim in kill_schedule(
            injector, count=args.kill, start=horizon / 3.0,
            spacing=horizon / (3.0 * args.kill),
        ):
            sim.kill_at(when, victim)

    run_start = time.perf_counter()
    sim.run()
    run_seconds = time.perf_counter() - run_start
    report = SimReport(sim)
    print(report.summary())
    print(f"simulated {report.events} events in {run_seconds:.2f}s "
          f"({report.injected / max(run_seconds, 1e-9):.0f} msgs/s)")
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2, sort_keys=True))
    code = 0
    if args.verify:
        min_delivery = 1.0 if args.kill == 0 and args.queue_cap is None else 0.9
        try:
            report.check_contract(min_delivery=min_delivery, hop_budget=2)
            print("contract check passed")
        except Exception as exc:  # InvariantViolation carries the details
            print(f"contract check FAILED: {exc}", file=sys.stderr)
            code = 1
    if args.metrics_port is not None:
        with MetricsExporter(port=args.metrics_port) as exporter:
            print(f"serving /metrics on http://127.0.0.1:{exporter.port}/metrics "
                  f"for {args.linger:.0f}s (ctrl-c to stop)")
            try:
                time.sleep(args.linger)
            except KeyboardInterrupt:
                pass
    return code


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        bench_dynamic,
        bench_navigation,
        bench_netsim,
        bench_serving,
        bench_tree_covers,
        write_bench_files,
    )

    if args.quick:
        n = args.n or 400
        nav_n = args.nav_n or 200
        serve_n = args.serve_n or 150
        serve_queries = 120
        dyn_n = 120
        dyn_rounds = 2
        robust_repeats = 1
    else:
        n = args.n or 2000
        nav_n = args.nav_n or 600
        serve_n = args.serve_n or 300
        serve_queries = 240
        dyn_n = 200
        dyn_rounds = 3
        robust_repeats = args.robust_repeats
    print(f"tree-cover construction benchmarks (n={n}, "
          f"baseline={'on' if not args.no_baseline else 'off'}) ...")
    tree_payload = bench_tree_covers(
        n=n,
        seed=args.seed,
        repeats=args.repeats,
        robust_repeats=robust_repeats,
        include_baseline=not args.no_baseline,
        workers=args.workers,
        trace=args.trace,
        prune=args.prune,
        prune_eps=args.prune_eps,
    )
    for entry in tree_payload["results"]:
        speed = (
            f"{entry['speedup']:.2f}x vs seed {entry['seed_seconds']:.3f}s"
            if entry["speedup"] is not None
            else "no baseline"
        )
        print(f"  {entry['name']:>14}: {entry['seconds']:.3f}s  ({speed})")
    print(f"navigation benchmarks (n={nav_n}) ...")
    nav_payload = bench_navigation(
        n=nav_n, seed=args.seed, workers=args.workers,
        include_baseline=not args.no_baseline, trace=args.trace,
    )
    for entry in nav_payload["results"]:
        detail = entry["detail"]
        extra = ", ".join(
            f"{key}={value}" for key, value in detail.items()
            if key in ("p50_us", "p99_us", "per_query_us", "edges", "zeta")
        )
        print(f"  {entry['name']:>14}: {entry['seconds']:.3f}s  ({extra})")
    serving_payload = None
    if not args.no_serving:
        print(f"serving benchmarks (n={serve_n}, batch sizes 1/8/32) ...")
        serving_payload = bench_serving(
            n=serve_n, seed=args.seed, queries=serve_queries,
            workers=args.workers,
        )
        for entry in serving_payload["results"]:
            detail = entry["detail"]
            extra = ", ".join(
                f"{key}={value}" for key, value in detail.items()
                if key in ("p50_us", "p99_us", "per_query_us", "zeta")
            )
            print(f"  {entry['name']:>14}: {entry['seconds']:.3f}s  ({extra})")
    dynamic_payload = None
    if not args.no_dynamic:
        print(f"dynamic-update benchmarks (n={dyn_n}, batch sizes 1/8/32) ...")
        dynamic_payload = bench_dynamic(
            n=dyn_n, seed=args.seed, rounds=dyn_rounds, workers=args.workers,
        )
        for entry in dynamic_payload["results"]:
            detail = entry["detail"]
            extra = ", ".join(
                f"{key}={value}" for key, value in detail.items()
                if key in ("updates_per_s", "touched_fraction",
                           "p50_us", "p99_us", "crossover_batch", "zeta")
            )
            print(f"  {entry['name']:>16}: {entry['seconds']:.3f}s  ({extra})")
    netsim_payload = None
    if not args.no_netsim:
        if args.quick:
            netsim_sizes = dict(
                tree_n=300, tree_messages=1500, metric_n=120,
                metric_messages=600, ft_n=80, ft_messages=400,
            )
        else:
            netsim_sizes = dict(
                tree_n=10_000, tree_messages=120_000, metric_n=400,
                metric_messages=4_000, ft_n=160, ft_messages=2_000,
            )
        print(f"netsim benchmarks (tree n={netsim_sizes['tree_n']}, "
              f"{netsim_sizes['tree_messages']} messages) ...")
        netsim_payload = bench_netsim(
            seed=args.seed, workers=args.workers, **netsim_sizes,
        )
        for entry in netsim_payload["results"]:
            detail = entry["detail"]
            extra = ", ".join(
                f"{key}={detail[key]}" for key in
                ("delivered", "stretch_p99", "hops_max",
                 "header_bits_max", "messages_per_s")
                if key in detail
            )
            print(f"  {entry['name']:>14}: {entry['seconds']:.3f}s  ({extra})")
    paths = write_bench_files(
        args.out_dir, tree_payload, nav_payload, serving_payload,
        dynamic_payload, netsim_payload,
    )
    for path in paths:
        print(f"wrote {path}")
    if args.trace:
        print("per-stage span trees embedded in the BENCH rows "
              "(render with: python -m repro trace-report <file>)")
    return 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    import json

    from .observability import render_trace_report, trace_document, validate_trace_json

    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    schema = doc.get("schema", "") if isinstance(doc, dict) else ""
    if schema.startswith("repro.bench."):
        # A BENCH_*.json artifact from a traced bench run: render the
        # span trees embedded per result row, then the run's metrics.
        rendered = False
        for entry in doc.get("results", []):
            spans = entry.get("trace")
            if not spans:
                continue
            rendered = True
            print(f"## {entry.get('name')}  ({entry.get('seconds')}s)")
            print(render_trace_report(trace_document(spans)))
        metrics = doc.get("trace_metrics")
        if metrics:
            rendered = True
            print("## metrics")
            print(render_trace_report(trace_document([], metrics)))
        if not rendered:
            print("no embedded trace data; re-run the bench with --trace",
                  file=sys.stderr)
            return 1
        return 0
    errors = validate_trace_json(doc)
    if errors:
        for problem in errors:
            print(f"trace validation: {problem}", file=sys.stderr)
        return 1
    print(render_trace_report(doc), end="")
    return 0


def cmd_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__} — bounded hop-diameter spanner navigation "
          "(PODC 2022 reproduction)")
    print("subsystems: core (Thm 1.1/1.2), treecover (Table 1, Thm 4.1), "
          "spanners (Thm 4.2 + baselines),")
    print("            routing (Thm 5.1/1.3/5.2), apps (Section 5), "
          "graphs/metrics substrates")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    tree = sub.add_parser("tree", help="navigate a random tree metric")
    tree.add_argument("--n", type=int, default=1000)
    tree.add_argument("--k", type=int, default=2)
    tree.add_argument("--queries", type=int, default=5)
    tree.add_argument("--seed", type=int, default=0)
    tree.set_defaults(func=cmd_tree)

    for name, func, help_text in (
        ("navigate", cmd_navigate, "k-hop navigation on a metric space"),
        ("route", cmd_route, "2-hop compact routing on a metric space"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--family", choices=["euclidean", "general", "planar"],
                         default="euclidean")
        cmd.add_argument("--n", type=int, default=200)
        cmd.add_argument("--k", type=int, default=2)
        cmd.add_argument("--eps", type=float, default=0.45)
        cmd.add_argument("--ell", type=int, default=2)
        cmd.add_argument("--queries", type=int, default=5)
        cmd.add_argument("--seed", type=int, default=0)
        cmd.set_defaults(func=func)

    chaos = sub.add_parser(
        "chaos", help="fault-injection survival sweeps on the FT stack"
    )
    chaos.add_argument("--family", choices=["euclidean", "general", "planar"],
                       default="euclidean")
    chaos.add_argument("--n", type=int, default=120)
    chaos.add_argument("--f", type=int, default=2)
    chaos.add_argument("--k", type=int, default=4)
    chaos.add_argument("--eps", type=float, default=0.45)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--scenario",
                       choices=["random", "adversarial", "regional", "crash"],
                       default="random")
    chaos.add_argument("--sizes", type=str, default="",
                       help="comma-separated |F| values (default: auto sweep)")
    chaos.add_argument("--queries", type=int, default=40,
                       help="query pairs per fault-set size")
    chaos.add_argument("--steps", type=int, default=8,
                       help="time steps for --scenario crash")
    chaos.add_argument("--no-routing", action="store_true",
                       help="skip the FT routing survival curve")
    chaos.add_argument("--no-checkpoint", action="store_true",
                       help="skip the save/reload/audit checkpoint round-trip")
    _add_workers_flag(chaos)
    _add_trace_flags(chaos, "TRACE_chaos.json")
    chaos.set_defaults(func=cmd_chaos)

    ckpt = sub.add_parser(
        "checkpoint",
        help="build an artifact and save a checksummed v2 checkpoint",
    )
    ckpt.add_argument("--family", choices=["euclidean", "general", "planar"],
                      default="euclidean")
    ckpt.add_argument("--n", type=int, default=120)
    ckpt.add_argument("--k", type=int, default=3)
    ckpt.add_argument("--f", type=int, default=1)
    ckpt.add_argument("--eps", type=float, default=0.45)
    ckpt.add_argument("--ell", type=int, default=2)
    ckpt.add_argument("--seed", type=int, default=0)
    ckpt.add_argument("--gamma", type=float, default=0.0,
                      help="declared stretch contract α (default: measured "
                           "stretch + 10%% headroom)")
    ckpt.add_argument("--what",
                      choices=["cover", "navigator", "ft", "labels"],
                      default="cover")
    ckpt.add_argument("--out", type=str, required=True,
                      help="checkpoint file to write (atomically)")
    ckpt.add_argument("--packed", action="store_true",
                      help="(navigator only) append the raw query-array "
                           "region so 'repro serve --mmap' can attach "
                           "zero-copy")
    _add_cover_flags(ckpt)
    _add_workers_flag(ckpt)
    _add_trace_flags(ckpt, "TRACE_checkpoint.json")
    ckpt.set_defaults(func=cmd_checkpoint)

    audit = sub.add_parser(
        "audit",
        help="verify a checkpoint's integrity and structural invariants",
    )
    audit.add_argument("--checkpoint", type=str, required=True)
    audit.add_argument("--family", choices=["euclidean", "general", "planar"],
                       default="euclidean")
    audit.add_argument("--n", type=int, default=120)
    audit.add_argument("--eps", type=float, default=0.45)
    audit.add_argument("--ell", type=int, default=2)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--recover", action="store_true",
                       help="on failure, run per-tree repair / full rebuild")
    audit.add_argument("--resave", action="store_true",
                       help="with --recover: write the repaired cover back")
    _add_cover_flags(audit)
    _add_workers_flag(audit)
    _add_trace_flags(audit, "TRACE_audit.json")
    audit.set_defaults(func=cmd_audit)

    serve = sub.add_parser(
        "serve",
        help="long-lived query daemon over a cover checkpoint "
             "(NDJSON protocol + /healthz /readyz /metrics)",
    )
    serve.add_argument("checkpoint", type=str,
                       help="cover checkpoint to load (written by "
                            "'repro checkpoint --what cover')")
    serve.add_argument("--family", choices=["euclidean", "general", "planar"],
                       default="euclidean")
    serve.add_argument("--n", type=int, default=120,
                       help="points in the checkpoint's metric")
    serve.add_argument("--k", type=int, default=3,
                       help="hop-diameter parameter for the navigators")
    serve.add_argument("--eps", type=float, default=0.45)
    serve.add_argument("--ell", type=int, default=2)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batch size cap")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="admission queue bound (beyond: overloaded)")
    serve.add_argument("--flush-ms", type=float, default=2.0,
                       help="micro-batch coalescing window")
    serve.add_argument("--deadline-ms", type=float, default=2000.0,
                       help="default per-request deadline")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="transient batch-failure retries")
    serve.add_argument("--mmap", action="store_true",
                       help="attach to a packed navigator checkpoint by "
                            "memory-mapping instead of rebuilding "
                            "(written by 'repro checkpoint --what "
                            "navigator --packed'); read-only service, "
                            "route/chaos/mutation ops unavailable")
    serve.add_argument("--dynamic", action="store_true",
                       help="enable live insert/delete/compact with the "
                            "crash-safe update journal (robust family "
                            "only; incompatible with --mmap)")
    serve.add_argument("--journal", type=str, default="",
                       help="update-journal path for --dynamic (default: "
                            "<checkpoint>.journal)")
    serve.add_argument("--no-obs", action="store_true",
                       help="disable the observability registry "
                            "(/metrics will be empty)")
    _add_cover_flags(serve)
    _add_workers_flag(serve)
    serve.set_defaults(func=cmd_serve)

    netsim = sub.add_parser(
        "netsim",
        help="event-driven message-passing simulation of a routing scheme",
    )
    netsim.add_argument("--scheme", choices=["tree", "metric", "ft"],
                        default="tree",
                        help="which theorem to simulate: 'tree' (Thm 5.1), "
                             "'metric' (Thm 1.3), 'ft' (Thm 5.2)")
    netsim.add_argument("--family", choices=["euclidean", "general", "planar"],
                        default="euclidean",
                        help="metric family for --scheme metric/ft")
    netsim.add_argument("--n", type=_positive_int, default=1000,
                        help="number of nodes")
    netsim.add_argument("--messages", type=_positive_int, default=10_000,
                        help="routed messages to inject")
    netsim.add_argument("--eps", type=float, default=0.45)
    netsim.add_argument("--ell", type=int, default=2)
    netsim.add_argument("--f", type=_positive_int, default=2,
                        help="fault budget for --scheme ft")
    netsim.add_argument("--kill", type=int, default=0,
                        help="nodes to kill mid-traffic (fault plane)")
    netsim.add_argument("--kill-scenario", choices=["random", "regional"],
                        default="random",
                        help="which resilience injector picks the victims")
    netsim.add_argument("--spacing", type=_non_negative_float, default=0.01,
                        help="simulated seconds between injections")
    netsim.add_argument("--service-time", type=_non_negative_float,
                        default=0.0,
                        help="per-message link serialization time "
                             "(0 = pure latency network)")
    netsim.add_argument("--queue-cap", type=_positive_int, default=None,
                        help="bounded egress queue depth (tail drop)")
    netsim.add_argument("--tie-break", choices=["fifo", "lifo", "seeded"],
                        default="seeded",
                        help="scheduler policy for same-time events")
    netsim.add_argument("--seed", type=int, default=0)
    netsim.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    netsim.add_argument("--verify", action="store_true",
                        help="gate the run on the paper's contracts "
                             "(delivery, stretch, 2 hops)")
    netsim.add_argument("--metrics-port", type=int, default=None,
                        help="serve /metrics on this port after the run "
                             "(0 = OS-assigned)")
    netsim.add_argument("--linger", type=_non_negative_float, default=30.0,
                        help="seconds to keep /metrics up for scraping")
    _add_workers_flag(netsim)
    netsim.set_defaults(func=cmd_netsim)

    bench = sub.add_parser(
        "bench",
        help="benchmark-regression harness; emits BENCH_*.json artifacts",
    )
    bench.add_argument("--n", type=int, default=0,
                       help="points for construction benches (default 2000)")
    bench.add_argument("--nav-n", type=int, default=0,
                       help="points for navigation benches (default 600)")
    bench.add_argument("--serve-n", type=int, default=0,
                       help="points for serving benches (default 300)")
    bench.add_argument("--no-serving", action="store_true",
                       help="skip the serving-daemon benchmarks")
    bench.add_argument("--no-dynamic", action="store_true",
                       help="skip the dynamic-update (churn) benchmarks")
    bench.add_argument("--no-netsim", action="store_true",
                       help="skip the message-passing simulator benchmarks")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repeats (best-of) for cheap constructions")
    bench.add_argument("--robust-repeats", type=int, default=1,
                       help="timing repeats for the robust cover")
    bench.add_argument("--quick", action="store_true",
                       help="small instances (n=400) for smoke testing")
    bench.add_argument("--no-baseline", action="store_true",
                       help="skip the frozen seed-implementation baselines")
    bench.add_argument("--prune", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="include the cover_pruning and compact_cover "
                            "rows (zeta before/after, prune seconds, "
                            "navigator-build/query deltas)")
    bench.add_argument("--prune-eps", type=float, default=0.05,
                       help="stretch headroom for the cover_pruning row")
    bench.add_argument("--out-dir", type=str, default=".",
                       help="directory for BENCH_*.json (default: cwd)")
    bench.add_argument("--trace", action="store_true",
                       help="embed per-stage span trees in the BENCH rows "
                            "(timings then include tracing overhead)")
    _add_workers_flag(bench)
    bench.set_defaults(func=cmd_bench)

    trace_report = sub.add_parser(
        "trace-report",
        help="render a trace document (or a traced BENCH_*.json) as text",
    )
    trace_report.add_argument("file", type=str,
                              help="trace JSON document or BENCH_*.json "
                                   "written by a --trace run")
    trace_report.set_defaults(func=cmd_trace_report)

    info = sub.add_parser("info", help="version and subsystem inventory")
    info.set_defaults(func=cmd_info)
    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # --trace on chaos/checkpoint/audit scopes tracing around the whole
    # command and writes a standalone trace document; bench handles its
    # own tracing (spans land inside the BENCH rows instead).
    if getattr(args, "trace", False) and args.func is not cmd_bench:
        return _traced_command(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
