"""Instrumented operation counting for the semigroup/comparison model.

Theorems 5.6 and the MST-verification results of Section 5.6.2 are
statements about the *number of semigroup operations* (resp. weight
comparisons), not wall-clock time; these wrappers count them.

Both wrappers are thin back-compat shims over the observability
registry (:mod:`repro.observability`): the instance-local ``.ops`` /
``.comparisons`` attributes and ``reset()`` semantics are unchanged —
existing callers and tests keep working — and when tracing is enabled
(``REPRO_TRACE=1``) every application is *also* mirrored into the
shared registry counters ``semigroup.ops`` and
``comparator.comparisons``, so the operation counts show up alongside
the distance-kernel counters in trace reports and exported metrics.

Distance-call accounting lives in the metric layer itself
(``kernel.*`` and ``metric.cache.*`` counters); a metric wrapped in
:class:`~repro.metrics.kernels.CachedMetric` bumps its kernel counters
only on cache *misses* — cache hits never reach the inner metric, so
nothing is double-counted.
"""

from __future__ import annotations

from typing import Callable

from ..observability import OBS

__all__ = ["CountingSemigroup", "CountingComparator"]

_C_SEMIGROUP_OPS = OBS.registry.counter("semigroup.ops")
_C_COMPARISONS = OBS.registry.counter("comparator.comparisons")


class CountingSemigroup:
    """Wraps an associative binary operation and counts applications.

    ``.ops`` is the per-instance count the semigroup theorems are
    checked against; the shared ``semigroup.ops`` registry counter
    aggregates across instances when observability is enabled.
    """

    def __init__(self, op: Callable):
        self._op = op
        self.ops = 0

    def __call__(self, a, b):
        self.ops += 1
        if OBS.enabled:
            _C_SEMIGROUP_OPS.inc()
        return self._op(a, b)

    def reset(self) -> int:
        """Return the per-instance count and reset it.

        The shared registry counter is cumulative and unaffected;
        reset it through ``OBS.registry.reset()`` / ``OBS.clear()``.
        """
        count = self.ops
        self.ops = 0
        return count

    def fold(self, items):
        """Left fold over a non-empty sequence (len - 1 operations)."""
        iterator = iter(items)
        result = next(iterator)
        for item in iterator:
            result = self(result, item)
        return result


class CountingComparator:
    """Counts key comparisons (used for weight-comparison accounting)."""

    def __init__(self):
        self.comparisons = 0

    def less(self, a, b) -> bool:
        self.comparisons += 1
        if OBS.enabled:
            _C_COMPARISONS.inc()
        return a < b

    def max(self, a, b):
        self.comparisons += 1
        if OBS.enabled:
            _C_COMPARISONS.inc()
        return a if a >= b else b

    def reset(self) -> int:
        count = self.comparisons
        self.comparisons = 0
        return count
