"""Instrumented operation counting for the semigroup/comparison model.

Theorems 5.6 and the MST-verification results of Section 5.6.2 are
statements about the *number of semigroup operations* (resp. weight
comparisons), not wall-clock time; these wrappers count them.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["CountingSemigroup", "CountingComparator"]


class CountingSemigroup:
    """Wraps an associative binary operation and counts applications."""

    def __init__(self, op: Callable):
        self._op = op
        self.ops = 0

    def __call__(self, a, b):
        self.ops += 1
        return self._op(a, b)

    def reset(self) -> int:
        """Return the count and reset it."""
        count = self.ops
        self.ops = 0
        return count

    def fold(self, items):
        """Left fold over a non-empty sequence (len - 1 operations)."""
        iterator = iter(items)
        result = next(iterator)
        for item in iterator:
            result = self(result, item)
        return result


class CountingComparator:
    """Counts key comparisons (used for weight-comparison accounting)."""

    def __init__(self):
        self.comparisons = 0

    def less(self, a, b) -> bool:
        self.comparisons += 1
        return a < b

    def max(self, a, b):
        self.comparisons += 1
        return a if a >= b else b

    def reset(self) -> int:
        count = self.comparisons
        self.comparisons = 0
        return count
