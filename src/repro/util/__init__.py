"""Utilities: operation counting for the comparison/semigroup model."""

from .counting import CountingComparator, CountingSemigroup

__all__ = ["CountingComparator", "CountingSemigroup"]
