"""repro — Navigating metric spaces by bounded hop-diameter spanners.

A from-scratch reproduction of Kahalon, Le, Milenković and Solomon,
"Can't See the Forest for the Trees: Navigating Metric Spaces by Bounded
Hop-Diameter Spanners" (PODC 2022).

Quick tour
----------
>>> from repro import TreeNavigator
>>> from repro.graphs import random_tree
>>> tree = random_tree(1000, seed=0)
>>> navigator = TreeNavigator(tree, k=2)       # Theorem 1.1
>>> path = navigator.find_path(3, 777)         # <= 2 hops, stretch 1
>>> len(path) - 1 <= 2
True

See :mod:`repro.core` for navigation, :mod:`repro.treecover` for the
tree cover theorems of Table 1 (including the robust tree cover of
Theorem 4.1), :mod:`repro.routing` for the 2-hop compact routing schemes
(Theorems 5.1/1.3/5.2), :mod:`repro.spanners` for fault tolerance
(Theorem 4.2) and baselines, and :mod:`repro.apps` for the Section 5
applications.
"""

from .core.ackermann import alpha_k, alpha_k_prime, inverse_ackermann
from .errors import (
    FaultBudgetExceeded,
    InvariantViolation,
    MetricValidationError,
    ReproError,
)
from .io import load_cover, save_cover
from .core.metric_navigator import MetricNavigator
from .core.navigation import TreeNavigator
from .spanners.fault_tolerant import FaultTolerantSpanner
from .treecover import (
    TreeCover,
    few_trees_cover,
    planar_tree_cover,
    ramsey_tree_cover,
    robust_tree_cover,
)

__version__ = "1.0.0"

__all__ = [
    "alpha_k",
    "alpha_k_prime",
    "inverse_ackermann",
    "ReproError",
    "MetricValidationError",
    "FaultBudgetExceeded",
    "InvariantViolation",
    "MetricNavigator",
    "TreeNavigator",
    "FaultTolerantSpanner",
    "TreeCover",
    "few_trees_cover",
    "planar_tree_cover",
    "ramsey_tree_cover",
    "robust_tree_cover",
    "load_cover",
    "save_cover",
    "__version__",
]
