"""Serialization: save and load trees and tree covers as JSON.

Tree covers are the expensive artifact of this library (the robust
cover of Theorem 4.1 can take seconds to minutes); persisting them lets
navigators, routing schemes and FT spanners be rebuilt without redoing
the net-hierarchy work.  Navigators themselves rebuild from a loaded
cover in milliseconds, so only trees and covers are serialized.

This module is the legacy **v1** format (``repro.treecover/1``):
plain JSON, no checksums.  The checksummed, audited **v2** format —
covering navigators, FT spanners and routing labels as well — lives in
:mod:`repro.checkpoint`, whose loaders also accept v1 files.  Payload
*shape* is validated here before any tree is constructed, so a
truncated or hand-edited v1 file fails with a clear :class:`ValueError`
instead of an ``IndexError`` deep inside LCA navigation; saves are
atomic (tempfile + ``os.replace``), so a crash mid-save never leaves a
half-written file behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import IO, Union

from .graphs.tree import Tree
from .metrics.base import Metric
from .treecover.base import CoverTree, TreeCover

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "cover_to_dict",
    "cover_from_dict",
    "save_cover",
    "load_cover",
    "atomic_write_json",
]

V1_COVER_FORMAT = "repro.treecover/1"


def tree_to_dict(tree: Tree) -> dict:
    return {"parents": list(tree.parents), "weights": list(tree.weights)}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"malformed cover payload: {message}")


def tree_from_dict(data: dict) -> Tree:
    """Build a :class:`Tree`, validating payload shape first.

    Length mismatches, non-numeric entries and negative weights are
    rejected with a :class:`ValueError` naming the problem; the
    :class:`Tree` constructor then enforces the single-root/acyclic
    structure itself.
    """
    _require(isinstance(data, dict), "tree entry is not an object")
    parents = data.get("parents")
    weights = data.get("weights")
    _require(isinstance(parents, list) and parents, "missing parents array")
    _require(isinstance(weights, list), "missing weights array")
    _require(
        len(parents) == len(weights),
        f"{len(parents)} parents but {len(weights)} weights",
    )
    n = len(parents)
    for v, p in enumerate(parents):
        _require(
            isinstance(p, int) and -1 <= p < n,
            f"parent {p!r} of vertex {v} out of range for {n} vertices",
        )
    for v, w in enumerate(weights):
        _require(
            isinstance(w, (int, float)) and not isinstance(w, bool) and w >= 0,
            f"weight {w!r} of vertex {v} is not a non-negative number",
        )
    return Tree(parents, weights)


def cover_to_dict(cover: TreeCover) -> dict:
    return {
        "format": V1_COVER_FORMAT,
        "n": cover.metric.n,
        "home": cover.home,
        "trees": [
            {
                "tree": tree_to_dict(cover_tree.tree),
                "vertex_of_point": cover_tree.vertex_of_point,
                "rep_point": cover_tree.rep_point,
            }
            for cover_tree in cover.trees
        ],
    }


def cover_tree_from_dict(item: dict, n_points: int) -> CoverTree:
    """Decode one serialized cover tree after validating its shape."""
    _require(isinstance(item, dict), "cover tree entry is not an object")
    tree = tree_from_dict(item.get("tree"))
    vop = item.get("vertex_of_point")
    rep = item.get("rep_point")
    _require(isinstance(vop, list), "missing vertex_of_point array")
    _require(isinstance(rep, list), "missing rep_point array")
    _require(
        len(vop) == n_points,
        f"vertex_of_point has {len(vop)} entries for {n_points} points",
    )
    _require(
        len(rep) == tree.n,
        f"rep_point has {len(rep)} entries for {tree.n} tree vertices",
    )
    for p, v in enumerate(vop):
        _require(
            isinstance(v, int) and 0 <= v < tree.n,
            f"vertex_of_point[{p}] = {v!r} out of range for {tree.n} vertices",
        )
    for v, p in enumerate(rep):
        _require(
            isinstance(p, int) and 0 <= p < n_points,
            f"rep_point[{v}] = {p!r} out of range for {n_points} points",
        )
    return CoverTree(tree, vop, rep)


def cover_from_dict(data: dict, metric: Metric) -> TreeCover:
    if not isinstance(data, dict) or data.get("format") != V1_COVER_FORMAT:
        raise ValueError("not a serialized repro tree cover")
    if data.get("n") != metric.n:
        raise ValueError(
            f"cover was built for {data.get('n')} points, metric has {metric.n}"
        )
    raw_trees = data.get("trees")
    _require(isinstance(raw_trees, list) and raw_trees, "missing trees array")
    trees = [cover_tree_from_dict(item, metric.n) for item in raw_trees]
    home = data.get("home")
    if home is not None:
        _require(isinstance(home, list), "home is not an array")
        _require(
            len(home) == metric.n,
            f"home has {len(home)} entries for {metric.n} points",
        )
        for p, t in enumerate(home):
            _require(
                isinstance(t, int) and 0 <= t < len(trees),
                f"home[{p}] = {t!r} out of range for {len(trees)} trees",
            )
    return TreeCover(metric, trees, home=home)


def atomic_write_json(payload: dict, path: str, canonical: bool = False) -> None:
    """Dump JSON to ``path`` atomically: tempfile, fsync, ``os.replace``.

    A crash at any point leaves either the previous file intact or a
    stray ``.tmp`` file — never a half-written checkpoint under the
    final name.  With ``canonical=True`` the file is written in
    canonical form (sorted keys, no insignificant whitespace), so every
    byte on disk is load-bearing — changing any one of them alters the
    parsed document.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            if canonical:
                json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            else:
                json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_cover(cover: TreeCover, destination: Union[str, IO]) -> None:
    """Write a cover as JSON to a path (atomically) or open file object."""
    payload = cover_to_dict(cover)
    if isinstance(destination, str):
        atomic_write_json(payload, destination)
    else:
        json.dump(payload, destination)


def load_cover(source: Union[str, IO], metric: Metric) -> TreeCover:
    """Read a cover saved by :func:`save_cover`; the metric must match."""
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return cover_from_dict(payload, metric)
