"""Serialization: save and load trees and tree covers as JSON.

Tree covers are the expensive artifact of this library (the robust
cover of Theorem 4.1 can take seconds to minutes); persisting them lets
navigators, routing schemes and FT spanners be rebuilt without redoing
the net-hierarchy work.  Navigators themselves rebuild from a loaded
cover in milliseconds, so only trees and covers are serialized.
"""

from __future__ import annotations

import json
from typing import IO, Union

from .graphs.tree import Tree
from .metrics.base import Metric
from .treecover.base import CoverTree, TreeCover

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "cover_to_dict",
    "cover_from_dict",
    "save_cover",
    "load_cover",
]


def tree_to_dict(tree: Tree) -> dict:
    return {"parents": list(tree.parents), "weights": list(tree.weights)}


def tree_from_dict(data: dict) -> Tree:
    return Tree(data["parents"], data["weights"])


def cover_to_dict(cover: TreeCover) -> dict:
    return {
        "format": "repro.treecover/1",
        "n": cover.metric.n,
        "home": cover.home,
        "trees": [
            {
                "tree": tree_to_dict(cover_tree.tree),
                "vertex_of_point": cover_tree.vertex_of_point,
                "rep_point": cover_tree.rep_point,
            }
            for cover_tree in cover.trees
        ],
    }


def cover_from_dict(data: dict, metric: Metric) -> TreeCover:
    if data.get("format") != "repro.treecover/1":
        raise ValueError("not a serialized repro tree cover")
    if data["n"] != metric.n:
        raise ValueError(
            f"cover was built for {data['n']} points, metric has {metric.n}"
        )
    trees = [
        CoverTree(
            tree_from_dict(item["tree"]),
            item["vertex_of_point"],
            item["rep_point"],
        )
        for item in data["trees"]
    ]
    return TreeCover(metric, trees, home=data["home"])


def save_cover(cover: TreeCover, destination: Union[str, IO]) -> None:
    """Write a cover as JSON to a path or open file object."""
    payload = cover_to_dict(cover)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(payload, handle)
    else:
        json.dump(payload, destination)


def load_cover(source: Union[str, IO], metric: Metric) -> TreeCover:
    """Read a cover saved by :func:`save_cover`; the metric must match."""
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return cover_from_dict(payload, metric)
