"""Deterministic event scheduler with controllable tie-breaking.

A seeded min-heap of ``(time, tie, seq)`` keys.  Events at distinct
times run in time order; events at the *same* time run in an order
chosen by the tie-break policy:

* ``"fifo"`` — insertion order (seq ascending);
* ``"lifo"`` — reverse insertion order;
* ``"seeded"`` — a deterministic pseudo-random permutation of the ties,
  derived from the scheduler seed and the event sequence number.

The conformance suite runs the same workload under all three policies
and asserts the delivered paths are identical — routing decisions are
pure functions of ``(table, header, label)``, so interleaving must not
be able to change where a packet goes.  Only queueing *delays* (and,
under overload, which packet a bounded queue drops) may depend on the
policy; for a fixed policy and seed those are deterministic too.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventScheduler", "TIE_BREAK_POLICIES"]

TIE_BREAK_POLICIES = ("fifo", "lifo", "seeded")

# Deterministic integer hash (splitmix64 finalizer) — no Date/Math
# randomness, so replays are exact across processes and platforms.
_MASK = (1 << 64) - 1


def _mix(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


class EventScheduler:
    """A deterministic discrete-event queue."""

    def __init__(self, tie_break: str = "fifo", seed: int = 0):
        if tie_break not in TIE_BREAK_POLICIES:
            raise ValueError(
                f"unknown tie-break policy {tie_break!r}; "
                f"pick one of {TIE_BREAK_POLICIES}"
            )
        self.tie_break = tie_break
        self.seed = seed
        self._heap: List[Tuple[float, int, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self.events_run = 0

    def __len__(self) -> int:
        return len(self._heap)

    def _tie(self, seq: int) -> int:
        if self.tie_break == "fifo":
            return seq
        if self.tie_break == "lifo":
            return -seq
        return _mix(seq ^ _mix(self.seed))

    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Enqueue ``action`` to run at simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (time, self._tie(seq), seq, action))

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events executed.

        ``until`` stops the clock (events beyond it stay queued);
        ``max_events`` bounds runaway loops (raises ``RuntimeError``).
        """
        executed = 0
        while self._heap:
            time, _, _, action = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            action()
            executed += 1
            self.events_run += 1
            if max_events is not None and executed >= max_events:
                if self._heap:
                    raise RuntimeError(
                        f"scheduler exceeded {max_events} events — likely a "
                        "routing loop or a self-rescheduling action"
                    )
                break
        return executed
