"""A tiny /metrics exporter for simulator runs.

The serving daemon already exposes ``/metrics`` for query traffic
(:mod:`repro.serve.server`); simulator runs are batch jobs, so this is
the matching sidecar: a stdlib threaded HTTP server that renders the
global registry — including the ``netsim.*`` instruments — in
Prometheus text format.  Bind port 0 to let the OS pick (tests do);
``python -m repro netsim --metrics-port`` keeps it up for scraping.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..observability import OBS

__all__ = ["MetricsExporter"]


class _Handler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = OBS.registry.export_prom_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
        else:
            body = b"unknown path; try /metrics\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # noqa: D102 - silence stderr chatter
        pass


class MetricsExporter:
    """Serve ``/metrics`` on a background thread.

    Context-manager style::

        with MetricsExporter(port=0) as exporter:
            urllib.request.urlopen(f"http://127.0.0.1:{exporter.port}/metrics")
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1"):
        self.host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("exporter not started")
        return self._server.server_address[1]

    def start(self) -> "MetricsExporter":
        if self._server is not None:
            raise RuntimeError("exporter already started")
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), _Handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="netsim-metricsd",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
