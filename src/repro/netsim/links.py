"""Directed links: latency, serialization, and bounded egress queues.

A :class:`Link` is one direction of one overlay edge, reached from its
source node through a fixed port number.  The timing model is the
standard store-and-forward one:

* **propagation latency** — ``weight * latency_scale`` (the overlay's
  links are metric edges, so distance is delay);
* **serialization** — each message occupies the link for
  ``service_time`` simulated seconds; messages sent while the link is
  busy wait in FIFO order;
* **bounded queue** — with ``queue_cap`` set, a message finding
  ``queue_cap`` messages already waiting is dropped (tail drop), which
  the simulator accounts as ``netsim.dropped_queue``.

With the defaults (``service_time=0``) a link never queues and the
simulator is a pure message-passing network — the configuration the
differential conformance suite runs under, where delivered paths must
be invariant to scheduler interleaving.
"""

from __future__ import annotations

__all__ = ["Link"]


class Link:
    """One directed link of the compiled overlay."""

    __slots__ = ("src", "dst", "port", "weight", "latency", "service_time",
                 "queue_cap", "free_at", "sent")

    def __init__(self, src: int, dst: int, port: int, weight: float,
                 latency_scale: float = 1.0, service_time: float = 0.0,
                 queue_cap=None):
        self.src = src
        self.dst = dst
        self.port = port
        self.weight = weight
        self.latency = weight * latency_scale
        self.service_time = service_time
        self.queue_cap = queue_cap
        #: Simulated time at which the link finishes its current backlog.
        self.free_at = 0.0
        self.sent = 0

    def queued_at(self, now: float) -> int:
        """Messages waiting (not yet departed) at simulated ``now``."""
        if self.service_time <= 0.0 or self.free_at <= now:
            return 0
        backlog = self.free_at - now
        return int(backlog / self.service_time + 0.5)

    def transmit(self, now: float):
        """Try to send one message at ``now``.

        Returns the arrival time at ``dst``, or ``None`` when the
        bounded queue is full and the message is tail-dropped.
        """
        if self.queue_cap is not None and self.queued_at(now) >= self.queue_cap:
            return None
        depart = self.free_at if self.free_at > now else now
        self.free_at = depart + self.service_time
        self.sent += 1
        return self.free_at + self.latency
