"""Compile routing schemes into per-node simulator state.

The adapters in this module are the *only* bridge between the global
construction world (metrics, covers, schemes — Theorems 5.1/1.3/5.2)
and the distributed world of the simulator.  Compilation is a one-way
door: each node receives copies of exactly the state the paper says it
owns — its label, its routing table, and the port numbers wired at it —
while the topology (links, weights, latencies) and the observer-side
oracle stay on the :class:`CompiledNetwork`, out of any node's reach.

The decision functions attached to a compiled network are the
module-level pure protocols from :mod:`repro.routing`
(:func:`~repro.routing.tree_routing.tree_protocol`,
:func:`~repro.routing.metric_routing.metric_protocol`) or, for the
fault-tolerant scheme, closures produced by
:func:`~repro.routing.ft_routing.ft_protocol_for` that capture nothing
but the faulty set.  :func:`repro.netsim.audit.audit_locality` verifies
all of this at runtime.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..routing.ft_routing import FaultTolerantRoutingScheme, ft_protocol_for
from ..routing.metric_routing import (
    MetricRoutingScheme,
    metric_header_bits,
    metric_protocol,
)
from ..routing.ports import Network
from ..routing.tree_routing import TreeRoutingScheme
from ..routing.tree_routing import header_bits as tree_header_bits
from ..routing.tree_routing import tree_protocol
from .links import Link
from .node import SimNode

__all__ = [
    "CompiledNetwork",
    "compile_tree_scheme",
    "compile_metric_scheme",
    "compile_ft_scheme",
]


class CompiledNetwork:
    """A scheme lowered to nodes + links + a pure decision function.

    Observer-side object: it may hold the distance oracle and contract
    metadata for *measurement*, but the :class:`SimNode` structs and
    the ``protocol`` callable it carries are what actually route, and
    those are locality-audited.
    """

    def __init__(
        self,
        name: str,
        nodes: List[SimNode],
        links: Dict[Tuple[int, int], Link],
        protocol: Callable,
        header_bits: Callable,
        labels: Dict[int, dict],
        oracle: Callable[[int, int], float],
        hop_budget: int,
        gamma: Optional[float] = None,
        protocol_factory: Optional[Callable] = None,
        f: int = 0,
        zeta: int = 1,
    ):
        self.name = name
        self.nodes = nodes
        self.links = links
        self.protocol = protocol
        self.header_bits = header_bits
        self.labels = labels
        self.oracle = oracle
        self.hop_budget = hop_budget
        self.gamma = gamma
        #: For FT schemes: faults -> decision function.  ``None`` for
        #: schemes without fault handling (kills then simply drop).
        self.protocol_factory = protocol_factory
        self.f = f
        self.zeta = zeta

    @property
    def n(self) -> int:
        return len(self.nodes)

    def num_links(self) -> int:
        return len(self.links)


def _build_links(
    network: Network,
    latency_scale: float,
    service_time: float,
    queue_cap: Optional[int],
) -> Dict[Tuple[int, int], Link]:
    """One directed :class:`Link` per (node, port) of the fixed-port net."""
    links: Dict[Tuple[int, int], Link] = {}
    graph = network.graph
    for u in range(graph.n):
        for port, v in network.neighbor_at[u].items():
            links[(u, port)] = Link(
                u, v, port, graph.adj[u][v],
                latency_scale=latency_scale,
                service_time=service_time,
                queue_cap=queue_cap,
            )
    return links


def _build_nodes(network: Network, labels: Dict[int, dict],
                 tables: Dict[int, dict]) -> List[SimNode]:
    return [
        SimNode(
            u,
            labels[u],
            tables[u],
            frozenset(network.neighbor_at[u].keys()),
        )
        for u in range(network.graph.n)
    ]


def compile_tree_scheme(
    scheme: TreeRoutingScheme,
    network: Network,
    latency_scale: float = 1.0,
    service_time: float = 0.0,
    queue_cap: Optional[int] = None,
) -> CompiledNetwork:
    """Lower a Theorem 5.1 tree scheme (stretch 1, 2 hops) to a network."""
    n = len(scheme.points)
    metric = scheme.navigator.metric
    return CompiledNetwork(
        name="tree",
        nodes=_build_nodes(network, scheme.labels, scheme.tables),
        links=_build_links(network, latency_scale, service_time, queue_cap),
        protocol=tree_protocol,
        header_bits=lambda h: tree_header_bits(h, n),
        labels=scheme.labels,
        oracle=metric.distance,
        hop_budget=2,
        gamma=1.0,
        zeta=1,
    )


def compile_metric_scheme(
    scheme: MetricRoutingScheme,
    gamma: Optional[float] = None,
    latency_scale: float = 1.0,
    service_time: float = 0.0,
    queue_cap: Optional[int] = None,
) -> CompiledNetwork:
    """Lower a Theorem 1.3 metric scheme (tree cover union overlay)."""
    n = scheme.metric.n
    zeta = len(scheme.schemes)
    if gamma is None:
        worst, _ = scheme.cover.measured_stretch(sample=300)
        gamma = 1.1 * worst
    return CompiledNetwork(
        name="metric",
        nodes=_build_nodes(scheme.network, scheme.labels, scheme.tables),
        links=_build_links(
            scheme.network, latency_scale, service_time, queue_cap
        ),
        protocol=metric_protocol,
        header_bits=lambda h: metric_header_bits(h, n, zeta),
        labels=scheme.labels,
        oracle=scheme.metric.distance,
        hop_budget=2,
        gamma=gamma,
        zeta=zeta,
    )


def _measured_ft_gamma(
    scheme: FaultTolerantRoutingScheme, sample: int = 200, seed: int = 0
) -> float:
    """An empirical stretch budget for FT routing *under faults*.

    The fault-free cover stretch does not bound the replica detours a
    faulty run takes, so the budget is measured the way the resilience
    harness measures it: sampled pairs, each against a random faulty
    set of the contractual size ``f``.  The headroom covers the fault
    sets the sample never drew — the gate exists to catch broken
    routing (2x+ blowups), not sampling noise on the empirical worst.
    """
    rng = random.Random(seed)
    n = scheme.metric.n
    worst = 1.0
    for _ in range(sample):
        u, v = rng.sample(range(n), 2)
        pool = [x for x in range(n) if x != u and x != v]
        faults = set(rng.sample(pool, min(scheme.f, len(pool))))
        result = scheme.route(u, v, faults=faults)
        d = scheme.metric.distance(u, v)
        if d > 0:
            worst = max(worst, result.weight / d)
    return 1.5 * worst


def compile_ft_scheme(
    scheme: FaultTolerantRoutingScheme,
    gamma: Optional[float] = None,
    latency_scale: float = 1.0,
    service_time: float = 0.0,
    queue_cap: Optional[int] = None,
    gamma_sample: int = 200,
    gamma_seed: int = 0,
) -> CompiledNetwork:
    """Lower a Theorem 5.2 FT scheme; kills re-arm the decision function."""
    n = scheme.metric.n
    if gamma is None:
        gamma = _measured_ft_gamma(scheme, sample=gamma_sample, seed=gamma_seed)
    return CompiledNetwork(
        name="ft",
        nodes=_build_nodes(scheme.network, scheme.labels, scheme.tables),
        links=_build_links(
            scheme.network, latency_scale, service_time, queue_cap
        ),
        protocol=ft_protocol_for(frozenset()),
        header_bits=lambda h: tree_header_bits(h, n),
        labels=scheme.labels,
        oracle=scheme.metric.distance,
        hop_budget=2,
        gamma=gamma,
        protocol_factory=ft_protocol_for,
        f=scheme.f,
        zeta=len(scheme.cover.trees),
    )
