"""Event-driven message-passing simulation of the routing schemes.

The rest of the repo *computes* routes by asking global objects
(``MetricRoutingScheme.route`` walks the whole path in one call); this
package *runs* them the way the paper's distributed model intends: each
node is a :class:`~repro.netsim.node.SimNode` holding only its label,
routing table and port numbers, messages are explicit
:class:`~repro.netsim.envelope.Envelope` objects whose header bits are
charged on every hop, and a deterministic seeded
:class:`~repro.netsim.scheduler.EventScheduler` moves them across
store-and-forward links with latency and bounded queues.

Pipeline::

    scheme   = MetricRoutingScheme(metric, cover, seed=0)   # global build
    compiled = compile_metric_scheme(scheme)                # one-way door
    audit_locality(compiled)                                # prove locality
    sim      = NetworkSimulator(compiled, tie_break="seeded", seed=7)
    sim.send_many(uniform_pairs(compiled.n, 10_000, seed=1))
    sim.run()
    SimReport(sim).check_contract(min_delivery=1.0)

``python -m repro netsim`` drives the same pipeline from the command
line; the ``bench_netsim`` stage emits ``BENCH_netsim.json``.
"""

from .audit import audit_locality, audit_payload, audit_protocol
from .compile import (
    CompiledNetwork,
    compile_ft_scheme,
    compile_metric_scheme,
    compile_tree_scheme,
)
from .envelope import Envelope
from .faults import apply_kills, kill_schedule
from .links import Link
from .metricsd import MetricsExporter
from .node import NODE_ATTRS, SimNode
from .report import SimReport, percentile
from .scheduler import TIE_BREAK_POLICIES, EventScheduler
from .sim import DROP_REASONS, NetworkSimulator
from .traffic import all_pairs_sample, hotspot_pairs, uniform_pairs

__all__ = [
    "CompiledNetwork",
    "DROP_REASONS",
    "Envelope",
    "EventScheduler",
    "Link",
    "MetricsExporter",
    "NODE_ATTRS",
    "NetworkSimulator",
    "SimNode",
    "SimReport",
    "TIE_BREAK_POLICIES",
    "all_pairs_sample",
    "apply_kills",
    "audit_locality",
    "audit_payload",
    "audit_protocol",
    "compile_ft_scheme",
    "compile_metric_scheme",
    "compile_tree_scheme",
    "hotspot_pairs",
    "kill_schedule",
    "percentile",
    "uniform_pairs",
]
