"""The fault-injection plane: resilience injectors → kill schedules.

Reuses the adversary models from :mod:`repro.resilience.injectors`
(uniform, regional, adversarial) to pick *who* dies, and turns the
choice into *when*: a list of ``(time, node_id)`` kill events the
simulator schedules alongside traffic, so deaths land mid-run the way
the chaos harness kills them between queries.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..resilience.injectors import FaultInjector

__all__ = ["kill_schedule", "apply_kills"]


def kill_schedule(
    injector: FaultInjector,
    count: int,
    start: float,
    spacing: float = 0.0,
    protect: Sequence[int] = (),
) -> List[Tuple[float, int]]:
    """``count`` kills starting at ``start``, ``spacing`` apart.

    The victims come from the injector's deterministic ranking, most
    damaging first; ids in ``protect`` are skipped (benches protect the
    traffic endpoints so delivery gates measure *routing around* faults,
    not messages to the dead).
    """
    protected = set(protect)
    victims = [v for v in injector.ranked() if v not in protected][:count]
    return [(start + i * spacing, v) for i, v in enumerate(victims)]


def apply_kills(sim, schedule: Sequence[Tuple[float, int]],
                limit: Optional[int] = None) -> int:
    """Schedule the kills onto a simulator; returns how many were armed.

    ``limit`` caps the kill count (FT benches pass the scheme's ``f``
    so the run stays inside the Theorem 5.2 resilience contract).
    """
    armed = 0
    for time, node_id in schedule:
        if limit is not None and armed >= limit:
            break
        sim.kill_at(time, node_id)
        armed += 1
    return armed
