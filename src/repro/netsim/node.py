"""The simulated node: label, table, ports — and *nothing else*.

"Local routing" is enforced by construction, not assumed: a
:class:`SimNode` is a ``__slots__`` struct whose only fields are the
node's own id, its routing label, its routing table, the set of port
numbers wired at the node, and a liveness bit owned by the fault plane.
There is no attribute through which a node could reach the metric, the
tree cover, the scheme object or any other node's state — attempting to
attach one raises ``AttributeError`` (no ``__dict__``), and the
locality audit (:mod:`repro.netsim.audit`) additionally deep-scans the
label/table payloads so compiled state cannot smuggle object
references in.

This module deliberately imports nothing from :mod:`repro.metrics`,
:mod:`repro.treecover`, :mod:`repro.core` or :mod:`repro.routing` —
``tests/test_netsim.py`` AST-gates the import list the same way
``tests/test_no_bare_asserts.py`` gates asserts.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = ["SimNode", "NODE_ATTRS"]

#: The complete whitelist of attributes a compiled node may carry.
#: The locality audit fails if ``SimNode.__slots__`` ever drifts from
#: this tuple, so adding node state is an explicit, reviewed act.
NODE_ATTRS = ("node_id", "label", "table", "ports", "alive")


class SimNode:
    """One network node holding only its local routing state.

    ``ports`` is the set of port *numbers* wired at this node — the
    links behind them belong to the simulator's topology, so a node can
    say "forward on port 3" but cannot learn which node that reaches.
    """

    __slots__ = NODE_ATTRS

    def __init__(self, node_id: int, label, table, ports: FrozenSet[int]):
        self.node_id = node_id
        self.label = label
        self.table = table
        self.ports = frozenset(ports)
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DEAD"
        return f"SimNode({self.node_id}, {len(self.ports)} ports, {state})"
