"""The event-driven message-passing simulator.

:class:`NetworkSimulator` owns the three planes the paper's distributed
model separates:

* **data plane** — envelopes move hop by hop; at every node the
  compiled scheme's *pure* decision function is called with exactly the
  arguments a real node would have (its id, its table, the envelope's
  header, the destination label) and answers ``(port, new header)``;
  the simulator then pushes the envelope onto the link behind that
  port.  Nodes never see the topology; the simulator never second-
  guesses a decision.
* **fault plane** — :meth:`kill_at` schedules a node death.  A dead
  node stops forwarding: envelopes arriving at it (or originating from
  it) are dropped and accounted.  For fault-tolerant schemes
  (Theorem 5.2) each kill re-arms the decision function via the
  compiled ``protocol_factory`` with the current faulty set — the
  paper's model where the faulty set ``F`` is known to the router.
* **observer plane** — delivery, drops, hop counts, per-hop header
  bits and delivered stretch (against the metric oracle) are recorded
  on the simulator and mirrored into the global ``netsim.*``
  instruments when observability is enabled.

Determinism: with a fixed scheduler policy and seed, runs are exactly
reproducible; and because decisions are pure, *delivered paths* are
identical across tie-break policies whenever links do not drop
(the conformance suite asserts this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import InvariantViolation, ReproError, RoutingError
from ..observability import OBS
from ..routing.ports import DELIVER
from .compile import CompiledNetwork
from .envelope import Envelope
from .scheduler import EventScheduler

__all__ = ["NetworkSimulator", "DROP_REASONS"]

#: Every way an envelope can fail to be delivered, in accounting order.
DROP_REASONS = (
    "dead_node",      # arrived at (or originated from) a killed node
    "queue_full",     # tail-dropped by a bounded link queue
    "routing_error",  # the decision function raised / named a dead port
    "misdelivered",   # DELIVER at a node that is not the destination
    "hop_exhausted",  # exceeded the compiled hop budget safety factor
)

#: Safety factor over the scheme's contractual hop budget before the
#: simulator declares a loop.  2 hops is the paper's budget; the
#: simulator allows slack for FT detours, then cuts the packet loose.
_HOP_SLACK = 8


class NetworkSimulator:
    """Drive routed messages across a :class:`CompiledNetwork`."""

    def __init__(
        self,
        compiled: CompiledNetwork,
        tie_break: str = "fifo",
        seed: int = 0,
    ):
        self.compiled = compiled
        self.nodes = compiled.nodes
        self.links = compiled.links
        # A simulator owns the mutable run state of its compiled
        # network: revive every node and drain every link so reusing
        # one CompiledNetwork across runs starts each run clean.
        # (Two *concurrent* simulators over one compiled network would
        # fight over this state — compile once per live simulator.)
        for node in self.nodes:
            node.alive = True
        for link in self.links.values():
            link.free_at = 0.0
            link.sent = 0
        #: The live decision function; the fault plane swaps it for
        #: FT schemes (pure in its arguments either way).
        self.protocol = compiled.protocol
        self.scheduler = EventScheduler(tie_break=tie_break, seed=seed)
        self.faults: set = set()
        self.hop_limit = max(2, compiled.hop_budget) * _HOP_SLACK

        self._next_msg_id = 0
        self.injected = 0
        self.delivered: List[Envelope] = []
        self.dropped: List[Tuple[Envelope, str]] = []
        self.drop_counts: Dict[str, int] = {r: 0 for r in DROP_REASONS}

        reg = OBS.registry
        self._c_injected = reg.counter("netsim.injected")
        self._c_delivered = reg.counter("netsim.delivered")
        self._c_kills = reg.counter("netsim.kills")
        self._c_drops = {
            reason: reg.counter(f"netsim.dropped_{reason}")
            for reason in DROP_REASONS
        }
        self._h_hops = reg.histogram("netsim.hops")
        self._h_header_bits = reg.histogram("netsim.header_bits")
        self._h_stretch = reg.histogram("netsim.stretch_pct")

    # -- traffic plane ---------------------------------------------------

    def send(self, src: int, dst: int, at: Optional[float] = None) -> Envelope:
        """Inject one message; the name service hands ``src`` the
        destination's label at injection time (the labeled model)."""
        when = self.scheduler.now if at is None else at
        env = Envelope(
            self._next_msg_id, src, dst, self.compiled.labels[dst], when
        )
        self._next_msg_id += 1
        self.scheduler.schedule(when, lambda: self._inject(env))
        return env

    def send_many(self, pairs, spacing: float = 0.0,
                  start: Optional[float] = None) -> List[Envelope]:
        """Inject a batch of ``(src, dst)`` pairs, ``spacing`` apart."""
        at = self.scheduler.now if start is None else start
        out = []
        for src, dst in pairs:
            out.append(self.send(src, dst, at=at))
            at += spacing
        return out

    # -- fault plane -----------------------------------------------------

    def kill_at(self, time: float, node_id: int) -> None:
        """Schedule ``node_id`` to crash at simulated ``time``."""
        self.scheduler.schedule(time, lambda: self._kill(node_id))

    def _kill(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        self.faults.add(node_id)
        if OBS.enabled:
            self._c_kills.inc()
        if self.compiled.protocol_factory is not None:
            # Theorem 5.2 model: the faulty set is announced to the
            # routers; the factory closes over *only* that set.
            self.protocol = self.compiled.protocol_factory(
                frozenset(self.faults)
            )

    # -- data plane ------------------------------------------------------

    def _inject(self, env: Envelope) -> None:
        self.injected += 1
        if OBS.enabled:
            self._c_injected.inc()
        source = self.nodes[env.src]
        if not source.alive:
            self._drop(env, "dead_node")
            return
        self._decide(env.src, env)

    def _decide(self, u: int, env: Envelope) -> None:
        node = self.nodes[u]
        try:
            port, header = self.protocol(
                u, node.table, env.header, env.dest_label
            )
        except (RoutingError, InvariantViolation, ReproError, KeyError):
            self._drop(env, "routing_error")
            return
        env.header = header
        if port == DELIVER:
            if u != env.dst:
                self._drop(env, "misdelivered")
                return
            self._deliver(env)
            return
        if env.hops >= self.hop_limit:
            self._drop(env, "hop_exhausted")
            return
        if port not in node.ports:
            # The table names a port that was never wired here (or the
            # adapter compiled garbage): a routing fault, not a crash.
            self._drop(env, "routing_error")
            return
        link = self.links[(u, port)]
        now = self.scheduler.now
        arrival = link.transmit(now)
        if arrival is None:
            self._drop(env, "queue_full")
            return
        bits = self.compiled.header_bits(header)
        self.scheduler.schedule(
            arrival, lambda: self._arrive(link.dst, link.weight, bits, env)
        )

    def _arrive(self, v: int, weight: float, bits: int, env: Envelope) -> None:
        env.record_hop(v, weight, bits)
        if not self.nodes[v].alive:
            self._drop(env, "dead_node")
            return
        self._decide(v, env)

    # -- observer plane --------------------------------------------------

    def _deliver(self, env: Envelope) -> None:
        env.delivered_at = self.scheduler.now
        self.delivered.append(env)
        if OBS.enabled:
            self._c_delivered.inc()
            self._h_hops.observe(env.hops)
            self._h_header_bits.observe(env.max_header_bits)
            s = self.stretch_of(env)
            if s is not None:
                self._h_stretch.observe(100.0 * s)

    def _drop(self, env: Envelope, reason: str) -> None:
        self.dropped.append((env, reason))
        self.drop_counts[reason] += 1
        if OBS.enabled:
            self._c_drops[reason].inc()

    def stretch_of(self, env: Envelope) -> Optional[float]:
        """Delivered stretch against the metric oracle (observer-side)."""
        if env.src == env.dst:
            return 1.0 if env.weight == 0.0 else None
        d = self.compiled.oracle(env.src, env.dst)
        if d <= 0.0:
            return None
        return env.weight / d

    # -- driving ---------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event queue; returns the number of events run."""
        if max_events is None:
            # Generous default backstop: every message may take its
            # full hop allowance, plus injections and kills.
            pending = self.injected + len(self.scheduler)
            max_events = 16 + (self.hop_limit + 2) * max(1, pending)
        return self.scheduler.run(until=until, max_events=max_events)

    @property
    def now(self) -> float:
        return self.scheduler.now
