"""Observer-side accounting: turn a finished run into numbers + gates.

:class:`SimReport` is computed *after* the event queue drains, entirely
from the simulator's observer-plane records (delivered envelopes, drop
ledger, the metric oracle).  ``check_contract`` turns the paper's
guarantees into hard gates that raise
:class:`~repro.errors.InvariantViolation` — the bench stage and the
smoke script both call it, so a regression fails loudly instead of
shipping a quietly-degraded BENCH row.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..errors import InvariantViolation, check

__all__ = ["SimReport", "percentile"]


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of an empty list")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class SimReport:
    """Aggregate results of one simulator run."""

    def __init__(self, sim) -> None:
        self.name = sim.compiled.name
        self.n = sim.compiled.n
        self.zeta = sim.compiled.zeta
        self.f = sim.compiled.f
        self.gamma_budget = sim.compiled.gamma
        self.hop_budget = sim.compiled.hop_budget
        self.injected = sim.injected
        self.delivered = len(sim.delivered)
        self.drop_counts = dict(sim.drop_counts)
        self.dropped = sum(self.drop_counts.values())
        self.kills = len(sim.faults)
        self.sim_time = sim.now
        self.events = sim.scheduler.events_run

        self.hops: List[int] = [e.hops for e in sim.delivered]
        self.header_bits: List[int] = [e.max_header_bits for e in sim.delivered]
        self.stretches: List[float] = []
        for env in sim.delivered:
            s = sim.stretch_of(env)
            if s is not None:
                self.stretches.append(s)

    # -- derived numbers -------------------------------------------------

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.injected if self.injected else 0.0

    @property
    def max_hops(self) -> int:
        return max(self.hops) if self.hops else 0

    @property
    def max_header_bits(self) -> int:
        return max(self.header_bits) if self.header_bits else 0

    @property
    def max_stretch(self) -> float:
        return max(self.stretches) if self.stretches else 0.0

    def stretch_percentile(self, q: float) -> float:
        return percentile(self.stretches, q) if self.stretches else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Schema-stable summary (BENCH rows, CLI ``--json``)."""
        return {
            "scheme": self.name,
            "n": self.n,
            "zeta": self.zeta,
            "f": self.f,
            "injected": self.injected,
            "delivered": self.delivered,
            "delivery_rate": round(self.delivery_rate, 6),
            "dropped": dict(sorted(self.drop_counts.items())),
            "kills": self.kills,
            "events": self.events,
            "sim_time": round(self.sim_time, 6),
            "hops_max": self.max_hops,
            "hops_mean": (
                round(sum(self.hops) / len(self.hops), 4) if self.hops else 0.0
            ),
            "header_bits_max": self.max_header_bits,
            "stretch_p50": round(self.stretch_percentile(50.0), 6),
            "stretch_p99": round(self.stretch_percentile(99.0), 6),
            "stretch_max": round(self.max_stretch, 6),
            "gamma_budget": self.gamma_budget,
            "hop_budget": self.hop_budget,
        }

    # -- gates -----------------------------------------------------------

    def check_contract(
        self,
        min_delivery: float = 1.0,
        gamma: Optional[float] = None,
        header_budget: Optional[int] = None,
        hop_budget: Optional[int] = None,
        expected_kills: Optional[int] = None,
    ) -> "SimReport":
        """Assert the run obeyed the paper's contracts; returns self.

        * delivery rate at least ``min_delivery`` (faulty runs pass a
          budget < 1 covering messages lost *to* dead nodes);
        * p99 delivered stretch within ``gamma`` (default: the
          compiled scheme's measured budget);
        * worst per-hop header within ``header_budget`` bits;
        * delivered hop counts within ``hop_budget`` (default: the
          scheme's contractual budget — 2 hops for Theorems 5.1/1.3);
        * the fault plane killed exactly ``expected_kills`` nodes.
        """
        check(
            self.injected > 0,
            "contract check on a run with no injected messages",
        )
        if self.delivery_rate < min_delivery:
            raise InvariantViolation(
                f"{self.name}: delivered {self.delivered}/{self.injected} "
                f"({self.delivery_rate:.4f}) below the {min_delivery:.4f} "
                f"budget; drops: {self.drop_counts}"
            )
        if gamma is None:
            gamma = self.gamma_budget
        if gamma is not None and self.stretches:
            p99 = self.stretch_percentile(99.0)
            if p99 > gamma + 1e-9:
                raise InvariantViolation(
                    f"{self.name}: p99 delivered stretch {p99:.4f} exceeds "
                    f"the γ={gamma:.4f} budget"
                )
        if header_budget is not None and self.max_header_bits > header_budget:
            raise InvariantViolation(
                f"{self.name}: worst per-hop header {self.max_header_bits} "
                f"bits exceeds the {header_budget}-bit budget"
            )
        if hop_budget is None:
            hop_budget = self.hop_budget
        if hop_budget is not None and self.hops and self.max_hops > hop_budget:
            raise InvariantViolation(
                f"{self.name}: a delivered message took {self.max_hops} hops "
                f"against a {hop_budget}-hop budget"
            )
        if expected_kills is not None and self.kills != expected_kills:
            raise InvariantViolation(
                f"{self.name}: fault plane killed {self.kills} nodes, "
                f"expected {expected_kills}"
            )
        return self

    def summary(self) -> str:
        """One human line (the CLI prints it)."""
        parts = [
            f"{self.name}: n={self.n}",
            f"delivered {self.delivered}/{self.injected} "
            f"({100.0 * self.delivery_rate:.2f}%)",
            f"hops<= {self.max_hops}",
            f"header<= {self.max_header_bits}b",
        ]
        if self.stretches:
            parts.append(
                f"stretch p50/p99/max "
                f"{self.stretch_percentile(50.0):.3f}/"
                f"{self.stretch_percentile(99.0):.3f}/"
                f"{self.max_stretch:.3f}"
            )
        if self.kills:
            parts.append(f"kills={self.kills}")
        drops = {k: v for k, v in self.drop_counts.items() if v}
        if drops:
            parts.append(f"drops={drops}")
        return "  ".join(parts)
