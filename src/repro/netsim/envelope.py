"""The message envelope: what a packet actually carries on the wire.

Wire format (documented in ``docs/ROUTING.md``):

* **destination label** — handed to the *source* by the name service
  when the message is injected, exactly as in the labeled routing model
  (Section 5.1).  The label travels with the envelope so intermediate
  nodes can run the same decision function, but after the source's
  decision the protocols only ever read the ``header`` field — the
  conformance suite and the header-bit accounting rely on that.
* **header** — the scheme's small mutable header (``("deliver",)``,
  ``("forward", port)``, or ``(tree index, inner header)``).  Its size
  in bits is charged on **every hop** via the compiled scheme's
  ``header_bits`` function; ``max_header_bits`` records the worst hop.
* **bookkeeping** — hop count, accumulated link weight and the visited
  path, maintained by the simulator (an outside observer), never
  consulted by a node.

Envelopes are plain mutable structs with ``__slots__``; one object per
message for the lifetime of the message.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["Envelope"]


class Envelope:
    """One routed message in flight."""

    __slots__ = (
        "msg_id",
        "src",
        "dst",
        "dest_label",
        "header",
        "hops",
        "weight",
        "path",
        "max_header_bits",
        "injected_at",
        "delivered_at",
    )

    def __init__(self, msg_id: int, src: int, dst: int, dest_label,
                 injected_at: float):
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.dest_label = dest_label
        self.header = None
        self.hops = 0
        self.weight = 0.0
        self.path: List[int] = [src]
        self.max_header_bits = 0
        self.injected_at = injected_at
        self.delivered_at: Optional[float] = None

    def record_hop(self, v: int, weight: float, header_bits: int) -> None:
        """Account one link transmission ending at ``v``."""
        self.hops += 1
        self.weight += weight
        self.path.append(v)
        if header_bits > self.max_header_bits:
            self.max_header_bits = header_bits

    def trace(self) -> Tuple[int, ...]:
        """The visited node sequence (for differential conformance)."""
        return tuple(self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope({self.msg_id}: {self.src}->{self.dst}, "
            f"hops={self.hops}, path={self.path})"
        )
