"""The locality audit: prove nodes can only route locally.

Two layers, mirroring the ``test_no_bare_asserts.py`` philosophy that
architectural guarantees should be *checked*, not trusted:

* a **structural check** — :class:`~repro.netsim.node.SimNode` must
  still be a closed ``__slots__`` struct whose attribute list equals
  the :data:`~repro.netsim.node.NODE_ATTRS` whitelist (no ``__dict__``
  to stash globals in);
* a **payload check** — every node's label and table must consist of
  plain data (numbers, strings, tuples, dicts, ...), so a compiled
  table cannot smuggle a reference to the metric, the cover, a scheme
  or another node;
* a **closure check** — the decision function and header-bit counter
  must be free functions (not bound methods) whose closure cells hold
  nothing but plain data: the paper's fault-knowledge model allows a
  set of faulty ids, and sizes like ``n``/``ζ`` are public constants,
  but a captured ``Metric``/``TreeCover``/``Network`` would mean the
  "local" protocol was quietly consulting global state.

All violations raise :class:`~repro.errors.InvariantViolation`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import InvariantViolation, check
from .node import NODE_ATTRS, SimNode

__all__ = ["audit_locality", "audit_protocol", "audit_payload"]

_SCALARS = (int, float, str, bytes, bool, type(None))
_CONTAINERS = (dict, list, tuple, set, frozenset)


def audit_payload(value: Any, where: str) -> None:
    """Deep-check that ``value`` is plain local data, not object graph.

    Iterative (explicit stack) so pathological nesting cannot blow the
    recursion limit; cycles are impossible in plain data built from
    literals, but an id-set guards against them anyway.
    """
    stack = [value]
    seen = set()
    while stack:
        item = stack.pop()
        if isinstance(item, _SCALARS):
            continue
        if isinstance(item, _CONTAINERS):
            if id(item) in seen:
                continue
            seen.add(id(item))
            if isinstance(item, dict):
                stack.extend(item.keys())
                stack.extend(item.values())
            else:
                stack.extend(item)
            continue
        raise InvariantViolation(
            f"{where} holds a {type(item).__name__} — node state must be "
            "plain data; object references would let a 'local' node "
            "reach global structures"
        )


def audit_protocol(fn: Callable, where: str = "protocol") -> None:
    """Check a decision function consults only its arguments.

    Allowed: module-level functions, and closures whose cells carry
    plain data (the FT faulty set, integer sizes) or further functions
    that pass the same audit.
    """
    check(
        callable(fn),
        f"{where} is not callable: {fn!r}",
    )
    check(
        getattr(fn, "__self__", None) is None,
        f"{where} is a bound method of "
        f"{type(getattr(fn, '__self__', None)).__name__} — a node "
        "carrying it could reach the whole scheme object",
    )
    closure = getattr(fn, "__closure__", None) or ()
    for cell in closure:
        try:
            content = cell.cell_contents
        except ValueError:  # pragma: no cover - unfilled cell
            continue
        if callable(content):
            audit_protocol(content, where=f"{where} closure function")
            continue
        audit_payload(content, f"{where} closure cell")


def audit_locality(compiled) -> None:
    """Audit a :class:`~repro.netsim.compile.CompiledNetwork`.

    Raises :class:`~repro.errors.InvariantViolation` on the first
    violation; returns ``None`` when every node is provably local.
    """
    check(
        tuple(SimNode.__slots__) == NODE_ATTRS,
        f"SimNode.__slots__ {tuple(SimNode.__slots__)} drifted from the "
        f"whitelist {NODE_ATTRS}; extending node state requires updating "
        "the audit, deliberately",
    )
    check(
        not hasattr(SimNode(0, None, None, frozenset()), "__dict__"),
        "SimNode instances grew a __dict__ — arbitrary attributes could "
        "smuggle global state onto nodes",
    )
    for index, node in enumerate(compiled.nodes):
        check(
            isinstance(node, SimNode),
            f"node {index} is a {type(node).__name__}, not a SimNode",
        )
        check(
            node.node_id == index,
            f"node {index} carries id {node.node_id}",
        )
        check(
            isinstance(node.ports, frozenset)
            and all(isinstance(p, int) for p in node.ports),
            f"node {index} ports must be a frozenset of port numbers",
        )
        audit_payload(node.label, f"node {index} label")
        audit_payload(node.table, f"node {index} table")
    audit_protocol(compiled.protocol, "decision function")
    audit_protocol(compiled.header_bits, "header-bit counter")
    if compiled.protocol_factory is not None:
        audit_protocol(
            compiled.protocol_factory(frozenset({0})),
            "fault-armed decision function",
        )
