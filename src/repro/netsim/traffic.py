"""Deterministic traffic generators.

Plain seeded pair streams — the simulator does not care how pairs are
chosen, but benches and the smoke script need reproducible workloads,
so everything here is a pure function of ``(n, count, seed)``.
"""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = ["uniform_pairs", "hotspot_pairs", "all_pairs_sample"]


def uniform_pairs(n: int, count: int, seed: int = 0) -> List[Tuple[int, int]]:
    """``count`` uniform ``(src, dst)`` pairs with ``src != dst``."""
    if n < 2:
        raise ValueError(f"need at least 2 nodes for traffic, got n={n}")
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        src = rng.randrange(n)
        dst = rng.randrange(n - 1)
        if dst >= src:
            dst += 1
        pairs.append((src, dst))
    return pairs


def hotspot_pairs(
    n: int,
    count: int,
    seed: int = 0,
    hotspots: int = 4,
    hot_fraction: float = 0.8,
) -> List[Tuple[int, int]]:
    """Skewed traffic: ``hot_fraction`` of messages target one of a few
    hot destinations (aggregation points, storage heads, sinks)."""
    if n < 2:
        raise ValueError(f"need at least 2 nodes for traffic, got n={n}")
    rng = random.Random(seed)
    hot = rng.sample(range(n), min(hotspots, n))
    pairs = []
    for _ in range(count):
        src = rng.randrange(n)
        if rng.random() < hot_fraction:
            dst = hot[rng.randrange(len(hot))]
        else:
            dst = rng.randrange(n)
        if dst == src:
            dst = (dst + 1) % n
        pairs.append((src, dst))
    return pairs


def all_pairs_sample(n: int, count: int, seed: int = 0) -> List[Tuple[int, int]]:
    """A sample of *distinct* ordered pairs (or all of them when the
    pair space is small) — what the conformance suite iterates."""
    total = n * (n - 1)
    if count >= total:
        return [(u, v) for u in range(n) for v in range(n) if u != v]
    rng = random.Random(seed)
    seen = set()
    while len(seen) < count:
        src = rng.randrange(n)
        dst = rng.randrange(n - 1)
        if dst >= src:
            dst += 1
        seen.add((src, dst))
    return sorted(seen)
