"""Online tree product queries (Theorem 5.6).

A tree's edges carry elements of a semigroup ``(S, ∘)``; a query asks
for the product of the elements along the path between two vertices.
The navigation spanner answers with ``k - 1`` semigroup operations per
query: every spanner edge stores the precomputed product of the tree
path it shortcuts (in both directions — the semigroup need not be
commutative), and a query folds the ``<= k`` per-edge products of its
navigated path.

Per-edge products are precomputed with binary-lifting jump products:
``O(n log n)`` preprocessing operations — within a log factor of the
paper's ``O(n·αk(n))`` bound (the query-operation count, which is the
theorem's headline, is exact; see DESIGN.md).

:class:`NaiveTreeProduct` is the baseline that walks the tree path edge
by edge (``hop-distance - 1`` operations, up to Θ(n)); the AS87 bound of
``2k - 1`` operations at equal size (Remark 5.4) is reported analytically
in the E9 bench.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.navigation import TreeNavigator
from ..graphs.tree import Tree
from ..util.counting import CountingSemigroup

__all__ = ["OnlineTreeProduct", "NaiveTreeProduct"]


class _JumpProducts:
    """Binary-lifting path products over a tree (both directions)."""

    def __init__(self, tree: Tree, values: Sequence, op: Callable):
        self.tree = tree
        self.op = op
        self.depth = tree.depths()
        n = tree.n
        levels = max(1, (max(self.depth) + 1).bit_length())
        # up[j][v]  = product of edge values walking 2^j steps from v toward the root
        # down[j][v] = the same walk's product read in the other direction
        self._anc = [list(tree.parents)]
        self._up = [list(values)]
        self._down = [list(values)]
        for j in range(1, levels):
            anc_prev = self._anc[j - 1]
            up_prev = self._up[j - 1]
            down_prev = self._down[j - 1]
            anc = [-1] * n
            up = [None] * n
            down = [None] * n
            for v in range(n):
                mid = anc_prev[v]
                if mid == -1 or anc_prev[mid] == -1:
                    continue
                anc[v] = anc_prev[mid]
                up[v] = op(up_prev[v], up_prev[mid])
                down[v] = op(down_prev[mid], down_prev[v])
            self._anc.append(anc)
            self._up.append(up)
            self._down.append(down)

    def climb(self, v: int, steps: int) -> Tuple[Optional[object], Optional[object]]:
        """(upward product, downward product) of the ``steps``-edge walk
        from ``v`` toward the root; (None, None) for zero steps."""
        up = down = None
        j = 0
        while steps:
            if steps & 1:
                seg_up = self._up[j][v]
                seg_down = self._down[j][v]
                up = seg_up if up is None else self.op(up, seg_up)
                down = seg_down if down is None else self.op(seg_down, down)
                v = self._anc[j][v]
            steps >>= 1
            j += 1
        return up, down

    def path_product(self, u: int, v: int, lca: int):
        """Product along the path u -> v through their LCA; None if u == v."""
        up, _ = self.climb(u, self.depth[u] - self.depth[lca])
        _, down = self.climb(v, self.depth[v] - self.depth[lca])
        if up is None:
            return down
        if down is None:
            return up
        return self.op(up, down)


class OnlineTreeProduct:
    """k-1 operation online tree products via the navigation spanner.

    Parameters
    ----------
    tree:
        The vertex tree; ``values[v]`` is the semigroup element on the
        edge ``(parent(v), v)`` (the root's entry is ignored).
    k:
        The hop-diameter of the underlying navigable spanner.
    op:
        The associative operation.  Wrap it in a
        :class:`~repro.util.counting.CountingSemigroup` to audit the
        operation counts; preprocessing and queries share the wrapper.
    """

    def __init__(
        self,
        tree: Tree,
        k: int,
        op: Callable,
        values: Sequence,
        navigator: Optional[TreeNavigator] = None,
    ):
        self.tree = tree
        self.op = op
        self.navigator = navigator if navigator is not None else TreeNavigator(tree, k)
        self.k = self.navigator.k
        jumps = _JumpProducts(tree, values, op)
        lca = self.navigator.metric
        #: edge_products[(a, b)] = product along the tree path a -> b,
        #: stored for both orientations of every spanner edge.
        self.edge_products: Dict[Tuple[int, int], object] = {}
        for (a, b) in self.navigator.edges:
            w = lca.lca(a, b)
            self.edge_products[(a, b)] = jumps.path_product(a, b, w)
            self.edge_products[(b, a)] = jumps.path_product(b, a, w)

    def query(self, u: int, v: int):
        """Product along the u-v tree path, in at most k-1 operations."""
        if u == v:
            raise ValueError("tree product of an empty path is undefined")
        path = self.navigator.find_path(u, v)
        result = self.edge_products[(path[0], path[1])]
        for a, b in zip(path[1:], path[2:]):
            result = self.op(result, self.edge_products[(a, b)])
        return result


class NaiveTreeProduct:
    """Baseline: walk the tree path, one operation per extra edge."""

    def __init__(self, tree: Tree, op: Callable, values: Sequence):
        self.tree = tree
        self.op = op
        self.values = list(values)
        self.depth = tree.depths()

    def query(self, u: int, v: int):
        if u == v:
            raise ValueError("tree product of an empty path is undefined")
        path = self.tree.path(u, v)
        pieces: List[object] = []
        for a, b in zip(path, path[1:]):
            child = b if self.depth[b] > self.depth[a] else a
            pieces.append(self.values[child])
        result = pieces[0]
        for piece in pieces[1:]:
            result = self.op(result, piece)
        return result
