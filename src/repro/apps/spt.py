"""Approximate shortest-path trees on a spanner (Theorem 5.4, Algorithm 3).

The metric's SPT is a star, which is (almost surely) not a subgraph of
any sparse spanner.  Using only the navigation oracle — no explicit
access to the spanner — Algorithm 3 queries the k-hop path from the root
to every vertex and relaxes its edges in root-to-leaf order, producing a
γ-approximate SPT that *is* a subgraph of the navigation spanner, in
O(n·τ) time (τ = one navigation query).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.metric_navigator import MetricNavigator
from ..graphs.graph import Graph

__all__ = ["approximate_spt", "verify_spt"]


def approximate_spt(
    navigator: MetricNavigator, root: int
) -> Tuple[List[int], List[float]]:
    """Algorithm 3: returns (parent array, distance array) of the tree.

    ``parent[root] == -1``; ``dist[v]`` is the tree distance from the
    root, at most γ·δ(root, v).
    """
    metric = navigator.metric
    n = metric.n
    parent = [-1] * n
    dist = [math.inf] * n
    dist[root] = 0.0

    def relax(u: int, v: int) -> None:
        weight = metric.distance(u, v)
        if dist[u] + weight < dist[v]:
            dist[v] = dist[u] + weight
            parent[v] = u

    targets = [v for v in range(n) if v != root]
    paths = navigator.find_paths([(root, v) for v in targets])
    for path, _ in paths:
        for a, b in zip(path, path[1:]):
            relax(a, b)
    return parent, dist


def verify_spt(
    navigator: MetricNavigator, root: int, parent: List[int], dist: List[float], gamma: float
) -> None:
    """Check Claims 5.1-5.3: T is a tree, dist is consistent, stretch <= γ.

    Raises :class:`~repro.errors.InvariantViolation` on violation."""
    from ..errors import check

    metric = navigator.metric
    n = metric.n
    # Tree shape: exactly one root, everything reaches it.
    check(parent[root] == -1, "root must have no parent")
    for v in range(n):
        hops = 0
        u = v
        while u != root:
            u = parent[u]
            hops += 1
            check(hops <= n, f"cycle through vertex {v}")
    # Claim 5.2's invariant (an inequality: a parent's label may drop
    # after its children were attached) and Claim 5.3's γ guarantee on
    # the *tree* distances.
    edges = navigator.spanner_edges()
    tree_dist = [0.0] * n
    for v in _root_first_order(parent, root):
        if v == root:
            continue
        u = parent[v]
        key = (u, v) if u < v else (v, u)
        check(key in edges, f"SPT edge ({u}, {v}) not in the spanner")
        weight = metric.distance(u, v)
        tree_dist[v] = tree_dist[u] + weight
        check(
            dist[u] + weight <= dist[v] + 1e-6 * max(1.0, dist[v]),
            f"label invariant violated at edge ({u}, {v})",
        )
        check(
            tree_dist[v] <= dist[v] + 1e-6 * max(1.0, dist[v]),
            f"tree distance to {v} exceeds its label",
        )
        base = metric.distance(root, v)
        check(
            tree_dist[v] <= gamma * base + 1e-6,
            f"SPT distance {tree_dist[v]} to {v} exceeds {gamma} x {base}",
        )


def _root_first_order(parent: List[int], root: int) -> List[int]:
    """Vertices ordered so every parent precedes its children."""
    children: List[List[int]] = [[] for _ in parent]
    for v, p in enumerate(parent):
        if p != -1:
            children[p].append(v)
    order = [root]
    index = 0
    while index < len(order):
        order.extend(children[order[index]])
        index += 1
    return order


def spt_as_graph(parent: List[int], metric) -> Graph:
    """The SPT as a graph (for lightness and other measurements)."""
    g = Graph(len(parent))
    for v, p in enumerate(parent):
        if p != -1:
            g.add_edge(p, v, metric.distance(p, v))
    return g
