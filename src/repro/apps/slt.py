"""Shallow-light trees inside the spanner (Section 1.3, [KRY93]).

A shallow-light tree (SLT) combines an SPT and an MST: its weight is
within a constant of the MST *and* every root distance is within a
constant of the true distance.  The paper observes that once the
navigation oracle yields an approximate SPT (Theorem 5.4) and an
approximate MST (Theorem 5.5) that are subgraphs of the spanner, the
classic Khuller–Raghavachari–Young construction produces an SLT that is
also a subgraph.

Construction: walk the (approximate) MST depth-first from the root,
accumulating tour length; whenever the accumulated length since the
last "break" exceeds ``beta`` times the root distance of the current
vertex, splice in the navigated root path and reset.  Choosing
``beta > 1`` trades lightness ``1 + 2/(beta - 1)`` against root stretch
``~ gamma * (1 + beta)``.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.metric_navigator import MetricNavigator
from .mst import approximate_mst

__all__ = ["shallow_light_tree"]


def shallow_light_tree(
    navigator: MetricNavigator,
    root: int,
    beta: float = 2.0,
    mst_edges: List[Tuple[int, int, float]] = None,
) -> Tuple[List[int], List[float]]:
    """An SLT rooted at ``root``: (parent array, root-distance labels).

    Every tree edge is a spanner edge; root distances are bounded by
    roughly ``gamma * (1 + beta)`` times the metric distance, and the
    total weight by ``1 + 2/(beta - 1)`` times the approximate MST.
    """
    if beta <= 1.0:
        raise ValueError("beta must exceed 1")
    metric = navigator.metric
    n = metric.n
    if mst_edges is None:
        mst_edges = approximate_mst(navigator)

    adjacency: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
    for u, v, w in mst_edges:
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))

    parent = [-1] * n
    dist = [math.inf] * n
    dist[root] = 0.0

    def relax(a: int, b: int) -> None:
        weight = metric.distance(a, b)
        if dist[a] + weight < dist[b]:
            dist[b] = dist[a] + weight
            parent[b] = a

    # Euler tour of the MST: (vertex, mst parent, weight walked to reach
    # this tour step).  The accumulated tour length since the last break
    # is the quantity the classic analysis charges breaks against —
    # consecutive breaks are separated by tour segments of length
    # > beta * (their root distances), and the whole tour weighs 2·MST.
    tour: List[Tuple[int, int, float]] = []
    seen = [False] * n
    stack: List[Tuple[int, int, float]] = [(root, -1, 0.0)]
    while stack:
        v, mst_parent, weight = stack.pop()
        tour.append((v, mst_parent, weight))
        if seen[v]:
            continue
        seen[v] = True
        for child, child_weight in adjacency[v]:
            if not seen[child]:
                # On backtrack the tour re-enters v; model it by pushing
                # a return step before each child's descent.
                stack.append((v, mst_parent, child_weight))
                stack.append((child, v, child_weight))
    # Remove the final superfluous return steps order artifact: process
    # the tour as generated (first visits trigger decisions).
    visited = [False] * n
    accumulated = 0.0
    for v, mst_parent, weight in tour:
        accumulated += weight
        if visited[v] or v == root:
            visited[v] = True
            continue
        visited[v] = True
        base = metric.distance(root, v)
        if accumulated > beta * base:
            # Break: splice in the navigated root path.
            path = navigator.find_path(root, v)
            for a, b in zip(path, path[1:]):
                relax(a, b)
            accumulated = 0.0
        else:
            relax(mst_parent, v)
    return parent, dist
