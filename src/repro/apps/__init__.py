"""Applications of the navigation scheme (Section 5)."""

from .bottleneck import BottleneckOracle, maximum_spanning_tree
from .mst import approximate_mst, base_mst, mst_weight
from .mst_update import MstUpdater
from .slt import shallow_light_tree
from .mst_verification import MstVerifier
from .sparsify import sparsify, sparsify_report
from .spt import approximate_spt, spt_as_graph, verify_spt
from .tree_product import NaiveTreeProduct, OnlineTreeProduct

__all__ = [
    "BottleneckOracle",
    "maximum_spanning_tree",
    "MstUpdater",
    "shallow_light_tree",
    "approximate_mst",
    "base_mst",
    "mst_weight",
    "MstVerifier",
    "sparsify",
    "sparsify_report",
    "approximate_spt",
    "spt_as_graph",
    "verify_spt",
    "NaiveTreeProduct",
    "OnlineTreeProduct",
]
