"""Bottleneck (widest-path) queries — AS87's multiterminal flow application.

[AS87] list "finding maximum flow values in a multiterminal network"
among the applications of online tree products: in an undirected network
the maximum *bottleneck* flow between two terminals equals the minimum
edge capacity on their path in a maximum spanning tree.  With the
navigation scheme, each query costs ``k - 1`` min-operations instead of
AS87's ``2k - 1`` (Theorem 5.6 / Remark 5.4).

:class:`BottleneckOracle` builds the maximum spanning tree of a capacity
graph and answers widest-path queries through
:class:`~repro.apps.tree_product.OnlineTreeProduct` with the ``min``
semigroup.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..graphs.graph import Graph
from ..graphs.tree import Tree
from .tree_product import OnlineTreeProduct

__all__ = ["maximum_spanning_tree", "BottleneckOracle"]


def maximum_spanning_tree(graph: Graph) -> List[Tuple[int, int, float]]:
    """Kruskal on negated capacities; requires a connected graph."""
    edges = sorted(graph.edges(), key=lambda e: -e[2])
    parent = list(range(graph.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    result: List[Tuple[int, int, float]] = []
    for u, v, w in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            result.append((u, v, w))
    if len(result) != graph.n - 1:
        raise ValueError("capacity graph is not connected")
    return result


class BottleneckOracle:
    """Widest-path (maximum bottleneck) queries over a capacity graph."""

    def __init__(self, graph: Graph, k: int = 2, op: Optional[Callable] = None):
        self.graph = graph
        mst_edges = maximum_spanning_tree(graph)
        self.tree = Tree.from_edges(graph.n, mst_edges)
        # Edge "value" = capacity of the edge to the parent; the path
        # product under min is exactly the bottleneck.
        values = list(self.tree.weights)
        self._product = OnlineTreeProduct(
            self.tree, k, op if op is not None else min, values
        )

    def bottleneck(self, u: int, v: int) -> float:
        """The maximum flow value achievable on a single widest path."""
        if u == v:
            return float("inf")
        return self._product.query(u, v)

    def brute_force(self, u: int, v: int) -> float:
        """Reference: binary-search-free direct widest path (Dijkstra-like)."""
        import heapq

        width = [0.0] * self.graph.n
        width[u] = float("inf")
        heap = [(-width[u], u)]
        while heap:
            negative, a = heapq.heappop(heap)
            if -negative < width[a]:
                continue
            if a == v:
                return width[a]
            for b, capacity in self.graph.adj[a].items():
                candidate = min(width[a], capacity)
                if candidate > width[b]:
                    width[b] = candidate
                    heapq.heappush(heap, (-candidate, b))
        return width[v]
