"""Approximate minimum spanning trees on a spanner (Theorem 5.5).

Pipeline: (1) compute an (approximate) MST of the metric — exact
Delaunay-based for 2-D Euclidean inputs, exact Prim otherwise (our
substitute for Chan's O(n) approximate Euclidean MST, see DESIGN.md);
(2) replace every MST edge by its k-hop navigated path; (3) return a
minimum spanning tree of the union.  The result is a (1+ε)·γ-approximate
MST that is a *subgraph of the navigation spanner*, computed in O(n·τ)
time plus the base MST.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.metric_navigator import MetricNavigator
from ..graphs.graph import Graph, prim_mst
from ..metrics.base import Metric
from ..metrics.euclidean import EuclideanMetric

__all__ = ["base_mst", "approximate_mst", "mst_weight"]


def base_mst(metric: Metric) -> List[Tuple[int, int, float]]:
    """An exact MST of the metric.

    2-D Euclidean inputs use the classic Delaunay reduction (the MST is
    a subgraph of the Delaunay triangulation): O(n log n).  Everything
    else falls back to O(n²) Prim.
    """
    if isinstance(metric, EuclideanMetric) and metric.dim == 2 and metric.n >= 4:
        from scipy.sparse import coo_matrix
        from scipy.sparse.csgraph import minimum_spanning_tree
        from scipy.spatial import Delaunay

        tri = Delaunay(metric.points)
        rows, cols, data = [], [], []
        seen = set()
        for simplex in tri.simplices:
            for a in range(3):
                u, v = int(simplex[a]), int(simplex[(a + 1) % 3])
                key = (min(u, v), max(u, v))
                if key in seen:
                    continue
                seen.add(key)
                rows.append(key[0])
                cols.append(key[1])
                data.append(metric.distance(*key))
        graph = coo_matrix((data, (rows, cols)), shape=(metric.n, metric.n))
        mst = minimum_spanning_tree(graph).tocoo()
        return [
            (int(u), int(v), float(w)) for u, v, w in zip(mst.row, mst.col, mst.data)
        ]
    return prim_mst(metric.n, metric.distance)


def approximate_mst(navigator: MetricNavigator) -> List[Tuple[int, int, float]]:
    """Theorem 5.5's transformation: an approximate MST inside the spanner."""
    metric = navigator.metric
    union = Graph(metric.n)
    for u, v, _ in base_mst(metric):
        path = navigator.find_path(u, v)
        for a, b in zip(path, path[1:]):
            union.add_edge(a, b, metric.distance(a, b))
    # An MST of the union is still a subgraph of the spanner and weighs
    # no more than a BFS spanning tree would.
    edges = sorted(union.edges(), key=lambda e: e[2])
    parent = list(range(metric.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    result: List[Tuple[int, int, float]] = []
    for u, v, w in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            result.append((u, v, w))
    if len(result) != metric.n - 1:
        from ..errors import InvariantViolation

        raise InvariantViolation("navigated MST union is not connected")
    return result


def mst_weight(edges: List[Tuple[int, int, float]]) -> float:
    return sum(w for _, _, w in edges)
