"""Spanner sparsification (Theorem 5.3, Table 4).

Given any light (but possibly dense) spanner ``G`` of a metric and a
navigation oracle ``D_X`` (Theorem 1.2), replace every edge of ``G`` by
the k-hop path the oracle reports; the union is a spanner whose stretch
and lightness grow by at most the cover stretch γ while the size drops
to ``O(n·αk(n)·ζ)`` — it becomes a *subgraph of the navigation spanner*
``H_X``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.metric_navigator import MetricNavigator
from ..graphs.graph import Graph
from ..metrics.base import sample_pairs
from ..spanners.spanner import SpannerReport, lightness, measured_stretch, sparsity

__all__ = ["sparsify", "sparsify_report"]


def sparsify(graph: Graph, navigator: MetricNavigator) -> Graph:
    """Replace each edge of ``graph`` by its k-hop navigated path."""
    out = Graph(graph.n)
    edge_list = [(u, v) for u, v, _ in graph.edges()]
    for path, _ in navigator.find_paths(edge_list):
        for a, b in zip(path, path[1:]):
            out.add_edge(a, b, navigator.metric.distance(a, b))
    return out


def sparsify_report(
    graph: Graph,
    navigator: MetricNavigator,
    t: float,
    pairs: Optional[list] = None,
) -> Tuple[SpannerReport, SpannerReport, Graph]:
    """(before, after) quality reports plus the sparsified spanner.

    ``t`` is the input spanner's stretch; hop-diameters are omitted here
    (they are the subject of E1/E3) so the reports run fast.
    """
    metric = navigator.metric
    if pairs is None:
        pairs = sample_pairs(metric.n, 200)
    sparse = sparsify(graph, navigator)
    before = SpannerReport(
        edges=graph.num_edges,
        stretch=measured_stretch(graph, metric, pairs),
        hops=-1,
        light=lightness(graph, metric),
        sparse=sparsity(graph),
    )
    after = SpannerReport(
        edges=sparse.num_edges,
        stretch=measured_stretch(sparse, metric, pairs),
        hops=-1,
        light=lightness(sparse, metric),
        sparse=sparsity(sparse),
    )
    return before, after, sparse
