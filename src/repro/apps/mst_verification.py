"""Online MST (tree-path maximum) verification (Section 5.6.2).

Query: given a non-tree edge ``(u, v)`` with weight ``w``, is ``w``
larger than every edge weight on the tree path between ``u`` and ``v``?
(If yes for all non-tree edges, the tree is a minimum spanning tree.)

Two comparison budgets, per the paper:

* :meth:`MstVerifier.verify` — generic: fold the k-hop path's
  precomputed maxima (k-1 weight comparisons) and compare against the
  query edge (1 more): ``k`` weight comparisons per query.
* :meth:`MstVerifier.verify_by_order` — the sorted-order trick of
  Section 5.6.2: edge *orders* (integers after one O(n log n) sort)
  replace weight comparisons along the path, leaving a **single** weight
  comparison per query.
"""

from __future__ import annotations

from typing import Tuple

from ..graphs.tree import Tree
from ..util.counting import CountingComparator
from .tree_product import OnlineTreeProduct

__all__ = ["MstVerifier"]


class MstVerifier:
    """Preprocessed tree-path-maximum verifier over a weighted tree."""

    def __init__(self, tree: Tree, k: int):
        self.tree = tree
        self.k = k
        self.comparator = CountingComparator()

        # One sort of the n-1 edge weights: O(n log n) comparisons, done
        # through the counting comparator for honest accounting.
        import functools

        vertices = [v for v in range(tree.n) if v != tree.root]
        vertices.sort(
            key=functools.cmp_to_key(
                lambda a, b: -1 if self.comparator.less(tree.weights[a], tree.weights[b]) else 1
            )
        )
        self.preprocessing_comparisons = self.comparator.reset()
        order = [0] * tree.n
        for rank, v in enumerate(vertices):
            order[v] = rank + 1
        self._weight_of_order = [0.0] * (tree.n + 1)
        for v in vertices:
            self._weight_of_order[order[v]] = tree.weights[v]

        # Per-spanner-edge maxima, stored as orders: integer max only.
        self._products = OnlineTreeProduct(tree, k, max, order)
        # A second product structure folding raw weights with counted
        # comparisons, for the generic k-comparison variant.
        self._weighted = OnlineTreeProduct(
            tree, k, self.comparator.max, list(tree.weights),
            navigator=self._products.navigator,
        )
        self.preprocessing_comparisons += self.comparator.reset()

    def path_max(self, u: int, v: int) -> float:
        """The maximum edge weight on the tree path (no weight comparisons)."""
        return self._weight_of_order[self._products.query(u, v)]

    def verify_by_order(self, u: int, v: int, weight: float) -> Tuple[bool, int]:
        """(is the query edge heavier than the whole path, #weight comparisons).

        Integer order-maxima are free; exactly one weight comparison.
        """
        path_maximum = self.path_max(u, v)
        heavier = self.comparator.less(path_maximum, weight)
        return heavier, self.comparator.reset()

    def verify(self, u: int, v: int, weight: float) -> Tuple[bool, int]:
        """The generic variant: k-1 path comparisons plus the final one."""
        path_maximum = self._weighted.query(u, v)
        heavier = self.comparator.less(path_maximum, weight)
        return heavier, self.comparator.reset()

    def brute_force(self, u: int, v: int, weight: float) -> bool:
        """Reference answer by walking the tree path."""
        path = self.tree.path(u, v)
        depth = self.tree.depths()
        worst = 0.0
        for a, b in zip(path, path[1:]):
            child = b if depth[b] > depth[a] else a
            worst = max(worst, self.tree.weights[child])
        return weight > worst