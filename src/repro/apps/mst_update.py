"""MST maintenance after an edge-cost increase — AS87's third application.

When the cost of an MST edge ``e = (a, b)`` increases, the tree stays
optimal unless some non-tree edge crossing the cut induced by removing
``e`` is now cheaper; the best replacement is the minimum-cost non-tree
edge whose endpoints lie on opposite sides.  "Crossing" is decided in
O(1) per candidate with the LCA index, and the verification that the
updated tree is again an MST reuses the k-hop path-maximum oracle
(Section 5.6.2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..graphs.lca import LcaIndex
from ..graphs.tree import Tree

__all__ = ["MstUpdater"]


class MstUpdater:
    """Replacement-edge queries for single MST edge-cost increases."""

    def __init__(self, tree: Tree, non_tree_edges: List[Tuple[int, int, float]]):
        self.tree = tree
        self.candidates = sorted(non_tree_edges, key=lambda e: e[2])
        self._lca = LcaIndex(tree)
        self.depth = tree.depths()

    def _on_path(self, edge_child: int, u: int, v: int) -> bool:
        """Is the tree edge (parent(c), c) on the u-v tree path?

        True iff c is an ancestor of exactly one endpoint (and the
        other endpoint is not below c).
        """
        below_u = self._lca.is_ancestor(edge_child, u)
        below_v = self._lca.is_ancestor(edge_child, v)
        return below_u != below_v

    def replacement(
        self, edge_child: int, new_weight: float
    ) -> Optional[Tuple[int, int, float]]:
        """The cheapest crossing non-tree edge beating ``new_weight``.

        ``edge_child`` identifies the MST edge (parent(c), c) whose cost
        rose to ``new_weight``.  Returns ``None`` when the tree remains
        optimal.  O(m) candidate scan with O(1) crossing tests.
        """
        if self.tree.parents[edge_child] == -1:
            raise ValueError("the root has no parent edge")
        for u, v, w in self.candidates:
            if w >= new_weight:
                return None
            if self._on_path(edge_child, u, v):
                return (u, v, w)
        return None

    def apply(self, edge_child: int, new_weight: float) -> Tuple[Tree, bool]:
        """The updated MST after the increase; flag = whether it changed."""
        swap = self.replacement(edge_child, new_weight)
        edges = []
        for p, c, w in self.tree.edges():
            if c == edge_child:
                if swap is None:
                    edges.append((p, c, new_weight))
            else:
                edges.append((p, c, w))
        if swap is None:
            return Tree.from_edges(self.tree.n, edges, root=self.tree.root), False
        edges.append(swap)
        return Tree.from_edges(self.tree.n, edges, root=self.tree.root), True
