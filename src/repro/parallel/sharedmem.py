"""Zero-copy shipping of metric payloads via ``multiprocessing.shared_memory``.

The two batch-capable metrics are backed by one contiguous float64
array each — ``EuclideanMetric.points`` (n, d) and
``MatrixMetric.matrix`` (n, n).  Instead of pickling that array into
every worker, the parent copies it **once** into a named shared-memory
segment and sends workers a tiny picklable descriptor
``("shm", name, shape, dtype)``; each worker maps the segment and
rebuilds the metric around a zero-copy numpy view.  Metrics without a
recognized array backing ship as ``("pickle", metric)`` — or by fork
inheritance when pickling is impossible (see :mod:`.engine`).

Lifecycle: the parent owns the segment (:class:`SharedArray`) and
unlinks it after the pool shuts down; workers only attach, and their
mappings die with the worker process.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from typing import Any, List, Tuple

import numpy as np

from ..metrics.base import Metric

__all__ = [
    "SharedArray",
    "attach_array",
    "export_metric",
    "import_metric",
    "mapped_navigator_descriptor",
    "attach_mapped_navigator",
]


class SharedArray:
    """Parent-side owner of one shared-memory numpy array.

    ``descriptor`` is the picklable handle workers use to attach;
    :meth:`close` releases the mapping and unlinks the segment (call it
    only after every worker is done, i.e. after pool shutdown).
    """

    def __init__(self, array: np.ndarray):
        source = np.ascontiguousarray(array)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, source.nbytes))
        self.view = np.ndarray(source.shape, dtype=source.dtype, buffer=self._shm.buf)
        self.view[...] = source
        self.descriptor: Tuple[str, str, tuple, str] = (
            "shm",
            self._shm.name,
            source.shape,
            source.dtype.str,
        )

    def close(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked (double close is fine)
            pass


# Worker-side attachments, keyed by segment name.  The SharedMemory
# object must stay referenced for as long as views into it live, and one
# worker may run many tasks against the same segment — so attach once
# and cache for the worker's lifetime.
_ATTACHED: dict = {}


def attach_array(descriptor: Tuple[str, str, tuple, str]) -> np.ndarray:
    """Map a :class:`SharedArray` descriptor into this process (cached)."""
    _, name, shape, dtype = descriptor
    entry = _ATTACHED.get(name)
    if entry is None:
        shm = shared_memory.SharedMemory(name=name)
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)
        entry = (shm, view)
        _ATTACHED[name] = entry
    return entry[1]


def export_metric(metric: Metric) -> Tuple[Any, List[SharedArray]]:
    """Turn a metric into a picklable spec plus owned shared segments.

    Returns ``(spec, owners)``; the caller must ``close()`` every owner
    after the worker pool has shut down.  Specs:

    - ``("euclidean", descriptor)`` — points array in shared memory,
    - ``("matrix", descriptor)`` — distance matrix in shared memory,
    - ``("pickle", metric)`` — anything else, shipped by value.
    """
    from ..metrics.euclidean import EuclideanMetric
    from ..metrics.general import MatrixMetric

    if type(metric) is EuclideanMetric:
        owner = SharedArray(metric.points)
        return ("euclidean", owner.descriptor), [owner]
    if type(metric) is MatrixMetric:
        owner = SharedArray(metric.matrix)
        return ("matrix", owner.descriptor), [owner]
    return ("pickle", metric), []


def import_metric(spec: Any) -> Metric:
    """Rebuild a metric from an :func:`export_metric` spec (worker side).

    The Euclidean/matrix variants wrap a zero-copy view of the shared
    segment — ``np.asarray`` in the metric constructors preserves the
    buffer since dtype and layout already match.
    """
    kind, payload = spec
    if kind == "euclidean":
        from ..metrics.euclidean import EuclideanMetric

        return EuclideanMetric(attach_array(payload))
    if kind == "matrix":
        from ..metrics.general import MatrixMetric

        return MatrixMetric(attach_array(payload))
    if kind == "pickle":
        return payload
    raise ValueError(f"unknown metric spec kind {kind!r}")


# ----------------------------------------------------------------------
# Mapped-checkpoint descriptors: the multi-process serving counterpart.
# A packed navigator checkpoint is already a shareable artifact — the
# raw-array region memory-maps read-only, so the kernel page cache is
# the shared segment and the descriptor is just the file path.  Unlike
# SharedArray there is nothing to own or unlink: attachments die with
# the worker, the file outlives everything.

def mapped_navigator_descriptor(path: str) -> Tuple[str, str]:
    """A picklable handle for a ``packed=True`` navigator checkpoint."""
    return ("mapped_ckpt", os.path.abspath(path))


# Worker-side cache: one worker runs many batches; map (and CRC-verify)
# the checkpoint once per process, not once per batch.
_MAPPED: dict = {}


def attach_mapped_navigator(descriptor: Tuple[str, str], metric: Metric):
    """Attach this process to a mapped navigator checkpoint (cached).

    Returns a :class:`~repro.core.mapped_navigator.PackedMetricNavigator`
    whose query arrays are views into the shared page-cache mapping.
    The checkpoint import is lazy to keep :mod:`repro.parallel` free of
    a hard dependency on the checkpoint stack.
    """
    kind, path = descriptor
    if kind != "mapped_ckpt":
        raise ValueError(f"unknown navigator descriptor kind {kind!r}")
    navigator = _MAPPED.get(path)
    if navigator is None:
        from ..checkpoint.store import load_navigator_checkpoint

        navigator = load_navigator_checkpoint(path, metric, mmap=True)
        _MAPPED[path] = navigator
    return navigator
