"""Process-pool execution engine for per-tree fan-out.

A tree cover is a bag of independent trees: Theorem 1.2 builds Solomon's
1-spanner and the navigation structure 𝒟_T per tree, Theorem 4.1 builds
each robust-cover tree from its own pairing, and Theorem 4.2 derives the
replica pools R(v) per tree.  This package fans that per-tree work out
across worker processes and merges the results deterministically (input
order), shipping point coordinates and distance matrices through
``multiprocessing.shared_memory`` instead of pickling the metric per
task.

Worker-count resolution (one knob everywhere):

- ``workers=`` argument on the builder APIs wins,
- then ``--workers`` on the CLI (which just forwards the argument),
- then the ``REPRO_WORKERS`` environment variable,
- default 0 — serial, no pool, no subprocess machinery at all.

``workers=0`` and ``workers=1`` both mean serial; negative means "one
per CPU".  Metrics that cannot be shipped to a subprocess fall back to a
thread pool (same semantics, shared address space) and, if the pool
machinery itself fails, to the serial path — results are identical in
every mode.
"""

from .engine import ENV_WORKERS, derive_seed, map_per_tree, resolve_workers
from .sharedmem import (
    SharedArray,
    attach_mapped_navigator,
    export_metric,
    import_metric,
    mapped_navigator_descriptor,
)

__all__ = [
    "ENV_WORKERS",
    "SharedArray",
    "attach_mapped_navigator",
    "derive_seed",
    "export_metric",
    "import_metric",
    "map_per_tree",
    "mapped_navigator_descriptor",
    "resolve_workers",
]
