"""The process-pool fan-out engine.

:func:`map_per_tree` is the single execution primitive every parallel
build path goes through: run a top-level function ``fn(ctx, item)`` over
a list of per-tree work items and return the results **in input order**
(the deterministic merge — serial and parallel runs produce identical
output by construction, because each item's result depends only on the
item and the shared read-only context).

Shipping strategy, in order of preference:

1. **Process pool** — the metric goes through shared memory
   (:mod:`.sharedmem`), the remaining context rides fork inheritance
   when the platform forks (free, works for unpicklable objects) or the
   pool initializer's pickled ``initargs`` under spawn.
2. **Thread pool** — when the context or a work item cannot cross a
   process boundary (unpicklable metric under spawn, closures, ...).
   Same semantics, shared address space, GIL-bound.
3. **Serial** — ``workers<=1``, a single work item, or any failure of
   the pool machinery itself.  Exceptions raised by ``fn`` are *not*
   machinery failures: they re-raise in the parent, first-item-first,
   exactly like a serial loop.

Worker processes refuse to open nested pools (``resolve_workers``
returns 0 inside a worker), so a parallel cover build inside a parallel
bench sweep degrades to serial instead of forking a process storm.

Observability rides the same rails: when tracing is enabled in the
parent, the enabled flag ships with the context, each worker wraps its
task in a metrics/span capture, and the per-task deltas come back with
the results and merge in input order (so aggregated telemetry matches a
serial run for deterministic workloads).  The thread-pool fallback
shares the parent's registry directly and adopts the caller's open span
as the parent of worker-thread spans.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, NamedTuple, Optional

from ..observability import OBS
from .sharedmem import export_metric, import_metric

__all__ = [
    "ENV_WORKERS",
    "WorkerContext",
    "derive_seed",
    "map_per_tree",
    "resolve_workers",
]


def derive_seed(master: int, index: int) -> int:
    """A per-task seed derived stably from a master seed.

    Randomized constructions that fan per-tree draws out to workers
    cannot share one RNG stream; deriving task ``index``'s seed through
    a keyed hash keeps every draw independent of both the worker count
    and the consumption order.  ``hashlib`` rather than ``hash()``:
    string hashing is salted per process (PYTHONHASHSEED) and would
    break cross-process determinism.
    """
    digest = hashlib.blake2b(
        f"{master}:{index}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")

#: Environment default for the worker count; the ``workers=`` argument
#: (and the CLI ``--workers`` flag, which forwards it) takes precedence.
ENV_WORKERS = "REPRO_WORKERS"

# Set inside worker processes (env var so both fork and spawn children
# see it) to forbid nested pools.
_IN_WORKER_ENV = "_REPRO_IN_WORKER"


class WorkerContext(NamedTuple):
    """Read-only context shared by every task of one :func:`map_per_tree`."""

    metric: Any  # a Metric, or None for metric-free work
    payload: Any  # arbitrary extra state (trees, group tables, ...)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    ``workers`` wins when given; otherwise the ``REPRO_WORKERS``
    environment variable; otherwise 0.  Values 0 and 1 mean serial,
    negative means one worker per CPU.  Inside a worker process the
    answer is always 0 (no nested pools).
    """
    if os.environ.get(_IN_WORKER_ENV) == "1":
        return 0
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError:
            return 0
    if workers < 0:
        workers = os.cpu_count() or 1
    return 0 if workers <= 1 else int(workers)


# ----------------------------------------------------------------------
# Worker plumbing.  Context travels to workers one of two ways:
#   fork  — the parent stores it in _FORK_SHIP right before creating the
#           pool; forked children inherit the binding (no pickling).
#   spawn — the initializer receives it pickled via initargs.
# Either way the worker materializes it into _WORKER_CTX once and every
# task reuses it; the metric spec is resolved through sharedmem, so the
# big arrays are mapped, not copied.

_FORK_SHIP: Any = None
_WORKER_FN: Optional[Callable] = None
_WORKER_CTX: Optional[WorkerContext] = None

_FORK_TOKEN = "__fork_inherit__"


def _init_worker(shipment: Any) -> None:
    global _WORKER_CTX, _WORKER_FN
    os.environ[_IN_WORKER_ENV] = "1"
    if shipment == _FORK_TOKEN:
        shipment = _FORK_SHIP
    fn, metric_spec, payload, obs_enabled = shipment
    OBS.enabled = obs_enabled
    if obs_enabled:
        # Fork children inherit the parent's registry values and any open
        # span stacks; start each worker from a clean slate so per-task
        # deltas contain only this worker's own work.
        OBS.clear()
    metric = import_metric(metric_spec) if metric_spec is not None else None
    _WORKER_FN = fn
    _WORKER_CTX = WorkerContext(metric, payload)


def _run_task(item: Any):
    # Wrap fn's own exceptions so the parent can tell "fn raised" (re-raise,
    # like a serial loop) from "the pool machinery broke" (fall back).  When
    # tracing is on, everything the task recorded travels back as a third
    # element and merges into the parent in input order.
    capture = OBS.begin_task_capture() if OBS.enabled else None
    try:
        outcome = ("ok", _WORKER_FN(_WORKER_CTX, item))
    except Exception as exc:  # noqa: BLE001 — transported, re-raised in parent
        outcome = ("err", exc)
    delta = OBS.end_task_capture(capture) if capture is not None else None
    return outcome + (delta,)


def _picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:  # noqa: BLE001 — any pickling failure means "no"
        return False


def _serial_map(fn: Callable, ctx: WorkerContext, items: List[Any]) -> List[Any]:
    return [fn(ctx, item) for item in items]


def map_per_tree(
    fn: Callable[[WorkerContext, Any], Any],
    items: Iterable[Any],
    *,
    workers: Optional[int] = None,
    metric: Any = None,
    payload: Any = None,
) -> List[Any]:
    """Run ``fn(ctx, item)`` over ``items``, results in input order.

    ``fn`` must be a module-level function (spawn pickles it by
    reference) and must treat ``ctx`` as read-only: mutations happen in
    a worker's copy and are silently lost, which would break the
    serial/parallel equivalence this engine guarantees.
    """
    items = list(items)
    ctx = WorkerContext(metric, payload)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return _serial_map(fn, ctx, items)
    workers = min(workers, len(items))

    use_fork = mp.get_start_method() == "fork"
    # Items cross the process boundary always; fn and the context only
    # need to pickle under spawn.  Checking the first item is enough in
    # practice (homogeneous work lists) and keeps the precheck O(1).
    if not _picklable(items[0]) or (
        not use_fork and not (_picklable(fn) and _picklable(payload) and _picklable(metric))
    ):
        return _thread_map(fn, ctx, items, workers)

    global _FORK_SHIP
    spec, owners = (None, []) if metric is None else export_metric(metric)
    shipment = (fn, spec, payload, OBS.enabled)
    try:
        if use_fork:
            _FORK_SHIP = shipment
            initargs = (_FORK_TOKEN,)
        else:
            initargs = (shipment,)
        chunksize = max(1, len(items) // (4 * workers))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=initargs
        ) as pool:
            wrapped = list(pool.map(_run_task, items, chunksize=chunksize))
    except Exception:  # noqa: BLE001 — pool machinery failure: run serial
        return _serial_map(fn, ctx, items)
    finally:
        _FORK_SHIP = None
        for owner in owners:
            owner.close()
    return _unwrap(wrapped)


def _thread_map(
    fn: Callable, ctx: WorkerContext, items: List[Any], workers: int
) -> List[Any]:
    # Threads share the parent's registry directly; spans opened inside a
    # worker thread nest under the caller's open span (attachment order
    # follows completion order — this is the fallback path, not the
    # deterministic process-pool merge).
    parent = OBS.current() if OBS.enabled else None

    def run(item: Any) -> Any:
        if parent is None:
            return fn(ctx, item)
        with OBS.under_span(parent):
            return fn(ctx, item)

    try:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run, items))
    except Exception:  # noqa: BLE001 — pool machinery failure: run serial
        return _serial_map(fn, ctx, items)


def _unwrap(wrapped: List[Any]) -> List[Any]:
    # Deltas merge in input order, stopping at the first error exactly as
    # a serial loop would have (later items' telemetry never existed).
    results = []
    for status, value, delta in wrapped:
        if delta:
            OBS.merge_task_delta(delta)
        if status == "err":
            raise value
        results.append(value)
    return results
