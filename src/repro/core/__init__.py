"""The paper's core: Ackermann inverses, Solomon 1-spanners, navigation."""

from .ackermann import (
    ackermann_a,
    ackermann_b,
    alpha_k,
    alpha_k_prime,
    inverse_ackermann,
    pettie_lambda,
)
from .decompose import WorkTree, decompose, decompose_centroid, prune, split_components
from .mapped_navigator import PackedMetricNavigator, navigator_arrays
from .metric_navigator import MetricNavigator
from .navigation import TreeNavigator, dedup_path
from .packed_query import QueryPack

__all__ = [
    "ackermann_a",
    "ackermann_b",
    "alpha_k",
    "alpha_k_prime",
    "inverse_ackermann",
    "pettie_lambda",
    "WorkTree",
    "decompose",
    "decompose_centroid",
    "prune",
    "split_components",
    "MetricNavigator",
    "PackedMetricNavigator",
    "QueryPack",
    "TreeNavigator",
    "dedup_path",
    "navigator_arrays",
]
