"""Read-only navigator served from memory-mapped checkpoint arrays.

``MetricNavigator`` answers queries from per-tree python object graphs
(Φ recursion trees, contracted-tree dicts) that every serving process
must rebuild from the cover — O(n·ζ) work and O(n·ζ) private heap per
worker.  :class:`PackedMetricNavigator` is the zero-copy alternative:
all query state lives in the flat arrays of the checkpoint raw-array
section (:func:`navigator_arrays`), so a worker attaches by
``np.memmap`` in milliseconds and N workers share one physical copy of
the pages through the page cache.

The mapped navigator answers ``find_path`` / ``find_paths`` /
``approx_distance(s)`` bit-identically to the in-memory navigator it
was packed from (same tree selection tie-breaks, same float op order,
same counters).  What it cannot do — anything that needs the cover's
python objects — is explicit: :attr:`cover` is ``None``,
:attr:`supports_routing` is ``False``, and the serving layer degrades
those operations with typed errors instead of crashing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observability import OBS
from ..treecover.packed_index import PackedCoverIndex
from .navigation import dedup_path
from .packed_query import pack_suite_arrays, suite_from_arrays

__all__ = ["PackedMetricNavigator", "navigator_arrays"]

# Same registry names as metric_navigator.py: the registry dedups by
# name, so mapped and in-memory navigators feed one set of instruments.
_C_QUERIES = OBS.registry.counter("navigator.queries")
_H_HOPS = OBS.registry.histogram("navigator.hops")
_H_TREE = OBS.registry.histogram("navigator.tree_chosen")


def navigator_arrays(navigator) -> Dict[str, np.ndarray]:
    """Every raw array a :class:`PackedMetricNavigator` needs.

    ``cov/*`` carries tree selection (the :class:`PackedCoverIndex`
    tables, per-tree host vertices and representative points, and the
    Ramsey home table when the cover has one); ``pk/*`` carries the
    per-tree :class:`~repro.core.packed_query.QueryPack` forest.  Raises
    :class:`ValueError` when the cover exceeds the packed-index budget
    (such covers can only serve in-memory).
    """
    cover = navigator.cover
    index = cover.packed_index()
    if index is None:
        raise ValueError(
            f"cover with {cover.size} trees exceeds the packed-index "
            "budget (REPRO_PACKED_INDEX_MAX_MB); cannot write a mapped "
            "checkpoint"
        )
    arrays = dict(index.arrays())
    arrays.update(pack_suite_arrays(navigator.navigators))
    zeta = cover.size
    n = cover.metric.n
    vop = np.empty((zeta, n), dtype=np.int32)
    rep_off = np.zeros(zeta + 1, dtype=np.int64)
    reps: List[np.ndarray] = []
    for t, cover_tree in enumerate(cover.trees):
        vop[t] = np.asarray(cover_tree.vertex_of_point, dtype=np.int32)
        rep = np.asarray(cover_tree.rep_point, dtype=np.int32)
        reps.append(rep)
        rep_off[t + 1] = rep_off[t] + len(rep)
    arrays["cov/vop"] = vop
    arrays["cov/rep"] = np.concatenate(reps)
    arrays["cov/rep_off"] = rep_off
    if cover.home is not None:
        arrays["cov/home"] = np.asarray(cover.home, dtype=np.int32)
    return arrays


class PackedMetricNavigator:
    """Navigation queries straight off (memory-mapped) flat arrays.

    Construct via :func:`repro.checkpoint.load_navigator_checkpoint`
    with ``mmap=True``; the arrays come back CRC-verified and
    read-only.  Mirrors the query surface of
    :class:`~repro.core.metric_navigator.MetricNavigator`
    (``find_path`` / ``find_paths`` / ``find_path_with_tree`` /
    ``approx_distance`` / ``approx_distances`` / ``path_weight`` /
    ``query_stretch``) with bit-identical answers.
    """

    #: Mapped navigators carry no cover object: spanner materialization,
    #: routing-scheme construction and per-tree chaos surgery all need
    #: the python cover and are unavailable in mapped mode.
    cover = None
    supports_routing = False
    mapped = True

    def __init__(self, metric, k: int, arrays: Dict[str, np.ndarray]):
        self.metric = metric
        self.k = k
        self.index = PackedCoverIndex.from_arrays(arrays)
        self.packs = suite_from_arrays(arrays)
        self.vop = arrays["cov/vop"]
        self.rep = arrays["cov/rep"]
        self.rep_off = arrays["cov/rep_off"]
        self.home = arrays.get("cov/home")

    @property
    def num_trees(self) -> int:
        return len(self.packs)

    # ------------------------------------------------------------------
    # Tree selection (same tie-breaks as TreeCover.best_tree)

    def best_tree(self, u: int, v: int) -> Tuple[int, float]:
        if self.home is not None:
            t = int(self.home[u])
            return t, self.index.distance(t, u, v)
        return self.index.best_pair(u, v)

    def _best_trees(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Tuple[int, float]]:
        ps = [u for u, _ in pairs]
        qs = [v for _, v in pairs]
        if self.home is not None:
            homes = self.home[np.asarray(ps, dtype=np.int64)]
            dist = self.index.distances(homes, ps, qs)
            return list(zip(homes.tolist(), dist.tolist()))
        return self.index.best_pairs(ps, qs)

    # ------------------------------------------------------------------
    # Queries

    def find_path(self, u: int, v: int) -> List[int]:
        path, _ = self.find_path_with_tree(u, v)
        return path

    def _tree_path(self, index: int, u: int, v: int) -> List[int]:
        vertex_path = self.packs[index].find_path(
            int(self.vop[index, u]), int(self.vop[index, v])
        )
        base = int(self.rep_off[index])
        return dedup_path([int(self.rep[base + x]) for x in vertex_path])

    def find_path_with_tree(self, u: int, v: int) -> Tuple[List[int], int]:
        if u == v:
            return [u], -1
        index, _ = self.best_tree(u, v)
        points = self._tree_path(index, u, v)
        if OBS.enabled:
            _C_QUERIES.inc()
            _H_HOPS.observe(len(points) - 1)
            _H_TREE.observe(index)
        return points, index

    def find_paths(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Tuple[List[int], int]]:
        pairs = list(pairs)
        results: List[Optional[Tuple[List[int], int]]] = [None] * len(pairs)
        nontrivial: List[Tuple[int, int, int]] = []
        for t, (u, v) in enumerate(pairs):
            if u == v:
                results[t] = ([u], -1)
            else:
                nontrivial.append((t, u, v))
        if nontrivial:
            best = self._best_trees([(u, v) for _, u, v in nontrivial])
            obs = OBS.enabled
            for (t, u, v), (index, _) in zip(nontrivial, best):
                points = self._tree_path(index, u, v)
                if obs:
                    _C_QUERIES.inc()
                    _H_HOPS.observe(len(points) - 1)
                    _H_TREE.observe(index)
                results[t] = (points, index)
        return results  # type: ignore[return-value]

    def approx_distance(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        return self.best_tree(u, v)[1]

    def approx_distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        pairs = list(pairs)
        out = np.zeros(len(pairs))
        nontrivial = [t for t, (u, v) in enumerate(pairs) if u != v]
        if nontrivial:
            best = self._best_trees([pairs[t] for t in nontrivial])
            for t, (_, d) in zip(nontrivial, best):
                out[t] = d
        return out

    def path_weight(self, path: List[int]) -> float:
        return sum(self.metric.distance(a, b) for a, b in zip(path, path[1:]))

    def query_stretch(self, u: int, v: int) -> Tuple[int, float]:
        path = self.find_path(u, v)
        base = self.metric.distance(u, v)
        stretch = self.path_weight(path) / base if base > 0 else 1.0
        return len(path) - 1, stretch
