"""Allocation-lean array form of the ``FindPath`` query (Algorithm 2).

PR 4 rewrote the navigator *build* onto :class:`PackedTree`
preorder-position arrays but left the *query* on dict-backed structures
(``home`` dict probes, lazily built sparse-table LCA / level-ancestor
indexes per contracted tree).  A one-off scalar query could therefore
pay an O(n log n) index build — the 190 ms p99 spikes in
BENCH_navigation.json — for an O(k) walk.

:class:`QueryPack` flattens one :class:`TreeNavigator`'s query-side
state (Φ, the contracted trees 𝒯_β, the home table) into plain
positional arrays and answers ``find_path`` by iterative pointer
climbing on them:

* Φ depths are O(k) (Observation 3.1) and contracted-tree LCA /
  level-ancestor hops are O(1) amortized per query level, so naive
  parent climbing beats building any index;
* the recursion of Algorithm 2 (budget k → k−2) becomes a loop carrying
  a prefix/suffix pair, so a query allocates only its output path;
* every observability counter of the dict reference implementation is
  incremented identically, and the reported path is required to be
  bit-for-bit identical (``tests/test_packed_query.py`` enforces both).

The same class runs in *mapped* mode: :func:`pack_suite_arrays`
concatenates every pack of every tree of a cover into flat numpy
arenas (for the checkpoint raw-array section) and
:func:`suite_from_arrays` reconstructs read-only packs whose fields are
views into an ``np.memmap`` — N serving processes then share one copy
of the query state.  See docs/CHECKPOINTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvariantViolation
from ..observability import OBS

__all__ = ["QueryPack", "pack_suite_arrays", "suite_from_arrays"]

# Same instruments as the dict reference in core/navigation.py — the
# registry hands back the same objects, so packed and reference paths
# are indistinguishable to the counter-based theorem checks of
# tests/test_asymptotics.py.
_C_QUERIES = OBS.registry.counter("treenav.queries")
_C_NODES = OBS.registry.counter("treenav.nodes_touched")
_C_PACK_BUILDS = OBS.registry.counter("packed.query_pack_builds")


def _dedup(path: List[int]) -> List[int]:
    out: List[int] = []
    for v in path:
        if not out or out[-1] != v:
            out.append(v)
    return out


class QueryPack:
    """Flat-array query state for one :class:`TreeNavigator`.

    Build from a navigator (in-memory mode: fields are python lists and
    dicts referencing the navigator's own structures, so construction is
    O(Φ) and copies nothing heavy) or from mapped arenas
    (:func:`suite_from_arrays`; fields are numpy views, ``navigator`` is
    ``None`` and explicit base-case adjacencies are unsupported — the
    current construction never emits them).
    """

    __slots__ = (
        "k",
        "navigator",
        "home",
        "rank",
        "n",
        "phi_parent",
        "phi_depth",
        "phi_leaf",
        "phi_cuts",
        "phi_adj",
        "phi_comp",
        "phi_sub",
        "ct_parent",
        "ct_depth",
        "ct_p",
    )

    def __init__(self, navigator=None):
        if navigator is None:
            return  # mapped mode: suite_from_arrays fills the slots
        if OBS.enabled:
            _C_PACK_BUILDS.inc()
        self.k = navigator.k
        self.navigator = navigator
        self.home = navigator.home  # dict: vertex -> Φ id (shared)
        self.n = navigator.tree.n
        nodes = navigator.phi_nodes
        m = len(nodes)
        self.phi_parent = [node.parent for node in nodes]
        self.phi_depth = [node.level for node in nodes]
        self.phi_leaf = [node.is_leaf for node in nodes]
        self.phi_cuts = [node.cut_vertices for node in nodes]
        self.phi_adj = [node.base_adjacency for node in nodes]
        comp = [-1] * m
        sub: List[Optional["QueryPack"]] = [None] * m
        ct_parent: List[Optional[Sequence[int]]] = [None] * m
        ct_depth: List[Optional[Sequence[int]]] = [None] * m
        ct_p = [0] * m
        rank: Dict[int, int] = {}
        for node in nodes:
            for child_id, comp_index in node.child_component.items():
                comp[child_id] = comp_index
            if node.sub_navigator is not None:
                sub[node.id] = QueryPack(node.sub_navigator)
            contracted = node.contracted
            if contracted is not None:
                ct_parent[node.id] = contracted.index.tree.parents
                ct_depth[node.id] = contracted.depth
                ct_p[node.id] = contracted.p
            if not node.is_leaf:
                for t, c in enumerate(node.cut_vertices):
                    rank[c] = t
        self.phi_comp = comp
        self.phi_sub = sub
        self.ct_parent = ct_parent
        self.ct_depth = ct_depth
        self.ct_p = ct_p
        self.rank = rank

    # ------------------------------------------------------------------
    # Query

    def _home_of(self, u: int, v: int) -> Tuple[int, int]:
        home = self.home
        if type(home) is dict:
            try:
                return home[u], home[v]
            except KeyError:
                raise KeyError(
                    "find_path endpoints must be required vertices"
                ) from None
        # Mapped mode: dense int32 array with -1 for non-required ids.
        n = self.n
        hu = int(home[u]) if 0 <= u < n else -1
        hv = int(home[v]) if 0 <= v < n else -1
        if hu < 0 or hv < 0:
            raise KeyError("find_path endpoints must be required vertices")
        return hu, hv

    def _rank_of(self, u: int) -> int:
        rank = self.rank
        if type(rank) is dict:
            return rank[u]
        return int(rank[u])

    def find_path(self, u: int, v: int) -> List[int]:
        """A T-monotone 1-spanner path with <= k hops (Algorithm 2).

        Identical output and identical counter increments to the dict
        reference (:meth:`TreeNavigator.find_path_reference`); the
        recursive interconnection descent runs as a loop here.
        """
        pack = self
        prefix: List[int] = []
        suffix: List[int] = []
        obs = OBS.enabled
        while True:
            hu, hv = pack._home_of(u, v)
            if obs:
                _C_QUERIES.inc()
            if u == v:
                if obs:
                    _C_NODES.inc(1)
                core = [u]
                break
            if hu == hv and pack.phi_leaf[hu]:
                adjacency = pack.phi_adj[hu] if pack.phi_adj is not None else None
                if adjacency is None:
                    core = [u, v]
                else:
                    # Only reachable with an explicit base-case subgraph,
                    # which the in-memory build may carry; mapped packs
                    # never do (pack_suite_arrays refuses to emit them).
                    core = pack.navigator._base_case_bfs(
                        pack.navigator.phi_nodes[hu], u, v
                    )
                if obs:
                    _C_NODES.inc(len(core))
                break
            pp = pack.phi_parent
            pd = pack.phi_depth
            a, b = hu, hv
            da = pd[a]
            db = pd[b]
            while da > db:
                a = pp[a]
                da -= 1
            while db > da:
                b = pp[b]
                db -= 1
            while a != b:
                a = pp[a]
                b = pp[b]
                da -= 1
            beta = int(a)
            if pack.k == 2:
                w = int(pack.phi_cuts[beta][0])
                if obs:
                    _C_NODES.inc(3)
                core = [u, w, v]
                break
            ctp = pack.ct_parent[beta]
            ctd = pack.ct_depth[beta]
            p = pack.ct_p[beta]
            u_node = pack._locate(u, hu, beta, da, p, pp, pd)
            v_node = pack._locate(v, hv, beta, da, p, pp, pd)
            # LCA in 𝒯_β by the same naive climb (depths are O(k)-ish
            # along any query's route; no index build).
            x = u_node
            y = v_node
            dx = ctd[x]
            dy = ctd[y]
            while dx > dy:
                x = ctp[x]
                dx -= 1
            while dy > dx:
                y = ctp[y]
                dy -= 1
            while x != y:
                x = ctp[x]
                y = ctp[y]
            c = x
            x_node = _find_cut(hu, beta, u_node, v_node, c, ctp, ctd)
            y_node = _find_cut(hv, beta, v_node, u_node, c, ctp, ctd)
            cuts = pack.phi_cuts[beta]
            xv = int(cuts[x_node - p])
            yv = int(cuts[y_node - p])
            sub = pack.phi_sub[beta]
            if sub is None:
                # k = 3 with the cut-vertex clique: one direct hop.
                if obs:
                    _C_NODES.inc(4)
                core = [u, xv, yv, v]
                break
            if obs:
                _C_NODES.inc(2)
            prefix.append(u)
            suffix.append(v)
            u, v = xv, yv
            pack = sub
        if prefix:
            prefix.extend(core)
            suffix.reverse()
            prefix.extend(suffix)
            return _dedup(prefix)
        return _dedup(core)

    def _locate(
        self, w: int, hw: int, beta: int, beta_depth: int, p: int, pp, pd
    ) -> int:
        """``LocateContracted`` on arrays: the 𝒯_β vertex standing for w."""
        if hw == beta:
            return p + self._rank_of(w)
        child = hw
        d = pd[child]
        target = beta_depth + 1
        while d > target:
            child = pp[child]
            d -= 1
        return int(self.phi_comp[child])  # node_of_comp is the identity


def _find_cut(hw: int, beta: int, w_node: int, o_node: int, c: int, ctp, ctd) -> int:
    """``FindCut`` on arrays: first cut on the 𝒯_β path w_node → o_node."""
    if hw == beta:
        return w_node
    if w_node == c:
        target = ctd[w_node] + 1
        x = o_node
        while ctd[x] > target:
            x = ctp[x]
        return int(x)
    return int(ctp[w_node])


# ----------------------------------------------------------------------
# Suite serialization: every pack of every tree -> flat numpy arenas
# (the payload of the checkpoint raw-array section) and back.

def _walk_packs(pack: QueryPack, out: List[QueryPack]) -> None:
    out.append(pack)
    for sub in pack.phi_sub:
        if sub is not None:
            _walk_packs(sub, out)


def pack_suite_arrays(navigators: Sequence) -> Dict[str, np.ndarray]:
    """Concatenate the :class:`QueryPack` forest of a navigator list.

    Returns a name → array dict ready for the checkpoint raw-array
    section.  Home/rank tables are stored dense per pack (int32 of the
    host tree's vertex count) — exact for any k, and linear in total
    vertex count for the default k=3 where each tree has one pack.

    Raises :class:`InvariantViolation` if any leaf carries an explicit
    ``base_adjacency`` (never produced by the current construction);
    such navigators cannot be mapped.
    """
    packs: List[QueryPack] = []
    tree_root = []
    for navigator in navigators:
        tree_root.append(len(packs))
        _walk_packs(navigator.query_pack(), packs)
    pack_ids = {id(pack): index for index, pack in enumerate(packs)}

    pk_k = []
    home_off = [0]
    phi_off = [0]
    cut_off = [0]
    ct_off = [0]
    homes: List[np.ndarray] = []
    ranks: List[np.ndarray] = []
    phi_parent: List[int] = []
    phi_depth: List[int] = []
    phi_leaf: List[int] = []
    phi_comp: List[int] = []
    phi_sub: List[int] = []
    phi_ct: List[int] = []
    cut_flat: List[int] = []
    ct_parent: List[int] = []
    ct_depth: List[int] = []
    ct_p: List[int] = []
    for pack in packs:
        pk_k.append(pack.k)
        n = pack.n
        home = np.full(n, -1, dtype=np.int32)
        rank = np.zeros(n, dtype=np.int32)
        for vertex, phi_id in pack.home.items():
            home[vertex] = phi_id
        if type(pack.rank) is dict:
            for vertex, r in pack.rank.items():
                rank[vertex] = r
        homes.append(home)
        ranks.append(rank)
        home_off.append(home_off[-1] + n)
        m = len(pack.phi_parent)
        phi_parent.extend(int(x) for x in pack.phi_parent)
        phi_depth.extend(int(x) for x in pack.phi_depth)
        phi_leaf.extend(1 if leaf else 0 for leaf in pack.phi_leaf)
        phi_comp.extend(int(x) for x in pack.phi_comp)
        for i in range(m):
            adj = pack.phi_adj[i] if pack.phi_adj is not None else None
            if adj is not None:
                raise InvariantViolation(
                    "explicit base-case adjacency cannot be mapped"
                )
            sub = pack.phi_sub[i]
            phi_sub.append(pack_ids[id(sub)] if sub is not None else -1)
            if pack.ct_parent[i] is not None:
                phi_ct.append(len(ct_p))
                ct_p.append(pack.ct_p[i])
                ct_parent.extend(int(x) for x in pack.ct_parent[i])
                ct_depth.extend(int(x) for x in pack.ct_depth[i])
                ct_off.append(len(ct_parent))
                # Internal nodes with a contracted tree keep their cuts.
                cut_flat.extend(int(x) for x in pack.phi_cuts[i])
            else:
                phi_ct.append(-1)
                if not pack.phi_leaf[i]:
                    # k = 2 internal node: cuts still feed the query.
                    cut_flat.extend(int(x) for x in pack.phi_cuts[i])
            cut_off.append(len(cut_flat))
        phi_off.append(phi_off[-1] + m)

    return {
        "pk/tree_root": np.asarray(tree_root, dtype=np.int32),
        "pk/k": np.asarray(pk_k, dtype=np.int32),
        "pk/home_off": np.asarray(home_off, dtype=np.int64),
        "pk/home": (
            np.concatenate(homes) if homes else np.zeros(0, dtype=np.int32)
        ),
        "pk/rank": (
            np.concatenate(ranks) if ranks else np.zeros(0, dtype=np.int32)
        ),
        "pk/phi_off": np.asarray(phi_off, dtype=np.int64),
        "pk/phi_parent": np.asarray(phi_parent, dtype=np.int32),
        "pk/phi_depth": np.asarray(phi_depth, dtype=np.int32),
        "pk/phi_leaf": np.asarray(phi_leaf, dtype=np.uint8),
        "pk/phi_comp": np.asarray(phi_comp, dtype=np.int32),
        "pk/phi_sub": np.asarray(phi_sub, dtype=np.int32),
        "pk/phi_ct": np.asarray(phi_ct, dtype=np.int32),
        "pk/cut_off": np.asarray(cut_off, dtype=np.int64),
        "pk/cut": np.asarray(cut_flat, dtype=np.int32),
        "pk/ct_off": np.asarray(ct_off, dtype=np.int64),
        "pk/ct_parent": np.asarray(ct_parent, dtype=np.int32),
        "pk/ct_depth": np.asarray(ct_depth, dtype=np.int32),
        "pk/ct_p": np.asarray(ct_p, dtype=np.int32),
    }


def suite_from_arrays(arrays: Dict[str, np.ndarray]) -> List[QueryPack]:
    """Rebuild per-tree root packs from :func:`pack_suite_arrays` output.

    Fields are views into the given arrays (zero-copy: slicing a memmap
    keeps the data on the mapping).  Returns ``root_packs`` — one
    :class:`QueryPack` per tree, in tree order.
    """
    home_off = arrays["pk/home_off"]
    phi_off = arrays["pk/phi_off"]
    cut_off = arrays["pk/cut_off"]
    ct_off = arrays["pk/ct_off"]
    pk_k = arrays["pk/k"]
    num_packs = len(pk_k)
    packs = [QueryPack() for _ in range(num_packs)]
    phi_sub_arr = arrays["pk/phi_sub"]
    phi_ct_arr = arrays["pk/phi_ct"]
    ct_p_arr = arrays["pk/ct_p"]
    for index, pack in enumerate(packs):
        h0, h1 = int(home_off[index]), int(home_off[index + 1])
        f0, f1 = int(phi_off[index]), int(phi_off[index + 1])
        pack.k = int(pk_k[index])
        pack.navigator = None
        pack.home = arrays["pk/home"][h0:h1]
        pack.rank = arrays["pk/rank"][h0:h1]
        pack.n = h1 - h0
        pack.phi_parent = arrays["pk/phi_parent"][f0:f1]
        pack.phi_depth = arrays["pk/phi_depth"][f0:f1]
        pack.phi_leaf = arrays["pk/phi_leaf"][f0:f1]
        pack.phi_adj = None
        pack.phi_comp = arrays["pk/phi_comp"][f0:f1]
        m = f1 - f0
        cuts: List[Optional[np.ndarray]] = [None] * m
        subs: List[Optional[QueryPack]] = [None] * m
        ctp: List[Optional[np.ndarray]] = [None] * m
        ctd: List[Optional[np.ndarray]] = [None] * m
        ct_p = [0] * m
        for i in range(m):
            g = f0 + i
            cuts[i] = arrays["pk/cut"][int(cut_off[g]) : int(cut_off[g + 1])]
            sub_id = int(phi_sub_arr[g])
            if sub_id >= 0:
                subs[i] = packs[sub_id]
            slot = int(phi_ct_arr[g])
            if slot >= 0:
                c0, c1 = int(ct_off[slot]), int(ct_off[slot + 1])
                ctp[i] = arrays["pk/ct_parent"][c0:c1]
                ctd[i] = arrays["pk/ct_depth"][c0:c1]
                ct_p[i] = int(ct_p_arr[slot])
        pack.phi_cuts = cuts
        pack.phi_sub = subs
        pack.ct_parent = ctp
        pack.ct_depth = ctd
        pack.ct_p = ct_p
    return [packs[int(i)] for i in arrays["pk/tree_root"]]
