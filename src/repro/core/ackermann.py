"""Ackermann-style functions and their functional inverses.

This module implements the rapidly-growing functions ``A(k, n)`` and
``B(k, n)`` from Definition 2.1 of the paper, their functional inverses
``alpha_k`` (Definition 2.2), the variant ``alpha_k'`` used by Solomon's
1-spanner construction (Definition 2.3), the one-parameter inverse
Ackermann function ``alpha(n)``, and Pettie's row inverse ``lambda_i``
(Section 2.2).

All inverses are computed without ever materializing astronomically large
values of ``A``/``B``: the search for ``min{s : A(k, s) >= n}`` walks ``s``
upward and evaluates ``A(k, s)`` with early cutoff at ``n``.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "ackermann_a",
    "ackermann_b",
    "alpha_k",
    "alpha_k_prime",
    "inverse_ackermann",
    "pettie_lambda",
]


def _a_capped(k: int, n: int, cap: int) -> int:
    """Evaluate ``A(k, n)`` but return ``cap`` as soon as the value reaches it.

    ``A(0, n) = 2n``; ``A(k, 0) = 1``; ``A(k, n) = A(k-1, A(k, n-1))``.
    The cap keeps every intermediate value at most ``cap`` so the recursion
    terminates quickly even though ``A`` is not primitive recursive.
    """
    if k == 0:
        return min(2 * n, cap)
    value = 1  # A(k, 0)
    for _ in range(n):
        value = _a_capped(k - 1, value, cap)
        if value >= cap:
            return cap
    return value


def _b_capped(k: int, n: int, cap: int) -> int:
    """Evaluate ``B(k, n)`` with early cutoff at ``cap``.

    ``B(0, n) = n^2``; ``B(k, 0) = 2``; ``B(k, n) = B(k-1, B(k, n-1))``.
    """
    if k == 0:
        return min(n * n, cap)
    value = 2  # B(k, 0)
    for _ in range(n):
        value = _b_capped(k - 1, value, cap)
        if value >= cap:
            return cap
    return value


def ackermann_a(k: int, n: int, cap: int = 10**30) -> int:
    """The function ``A(k, n)`` of Definition 2.1, saturating at ``cap``."""
    if k < 0 or n < 0:
        raise ValueError("ackermann_a requires k >= 0 and n >= 0")
    return _a_capped(k, n, cap)


def ackermann_b(k: int, n: int, cap: int = 10**30) -> int:
    """The function ``B(k, n)`` of Definition 2.1, saturating at ``cap``."""
    if k < 0 or n < 0:
        raise ValueError("ackermann_b requires k >= 0 and n >= 0")
    return _b_capped(k, n, cap)


@lru_cache(maxsize=None)
def alpha_k(k: int, n: int) -> int:
    """The inverse ``alpha_k(n)`` of Definition 2.2.

    ``alpha_{2k}(n) = min{s >= 0 : A(k, s) >= n}`` and
    ``alpha_{2k+1}(n) = min{s >= 0 : B(k, s) >= n}``.

    Concretely: ``alpha_0(n) = ceil(n/2)``, ``alpha_1(n) = ceil(sqrt(n))``,
    ``alpha_2(n) = ceil(log2 n)``, ``alpha_3(n) = ceil(log2 log2 n)``,
    ``alpha_4(n) = log* n``, and so on.
    """
    if k < 0:
        raise ValueError("alpha_k requires k >= 0")
    if n < 0:
        raise ValueError("alpha_k requires n >= 0")
    half, odd = divmod(k, 2)
    evaluate = _b_capped if odd else _a_capped
    s = 0
    while evaluate(half, s, n) < n:
        s += 1
    return s


@lru_cache(maxsize=None)
def alpha_k_prime(k: int, n: int) -> int:
    """The variant ``alpha_k'(n)`` of Definition 2.3 used by the spanner.

    ``alpha_k' = alpha_k`` for ``k <= 1`` and for ``n <= k + 1``;
    otherwise ``alpha_k'(n) = 2 + alpha_k'(alpha_{k-2}'(n))``.
    Satisfies ``alpha_k(n) <= alpha_k'(n) <= 2 alpha_k(n) + 4``.
    """
    if k < 0 or n < 0:
        raise ValueError("alpha_k_prime requires k >= 0 and n >= 0")
    if k <= 1 or n <= k + 1:
        return alpha_k(k, n)
    inner = alpha_k_prime(k - 2, n)
    # The recursion strictly decreases n: alpha'_{k-2}(n) < n for n >= k + 2.
    if inner >= n:
        inner = n - 1
    return 2 + alpha_k_prime(k, inner)


def inverse_ackermann(n: int) -> int:
    """The one-parameter inverse Ackermann ``alpha(n) = min{s : A(s, s) >= n}``."""
    if n < 0:
        raise ValueError("inverse_ackermann requires n >= 0")
    s = 0
    while _a_capped(s, s, n) < n:
        s += 1
    return s


def pettie_lambda(i: int, n: int) -> int:
    """Pettie's row inverse ``lambda_i(n) = min{j : P(i, j) >= n}`` (Section 2.2).

    ``P(1, j) = 2^j``; ``P(i, 0) = P(i-1, 1)``;
    ``P(i, j) = P(i-1, 2^(2^P(i, j-1)))``.
    """
    if i < 1:
        raise ValueError("pettie_lambda requires i >= 1")
    if n < 0:
        raise ValueError("pettie_lambda requires n >= 0")

    def p_capped(row: int, j: int, cap: int) -> int:
        if row == 1:
            if j >= cap.bit_length():
                return cap
            return min(2**j, cap)
        value = p_capped(row - 1, 1, cap)  # P(row, 0)
        for _ in range(j):
            if value >= cap.bit_length().bit_length():
                # 2^(2^value) already exceeds any sane cap.
                return cap
            value = p_capped(row - 1, 2 ** (2**value), cap)
            if value >= cap:
                return cap
        return value

    j = 0
    while p_capped(i, j, n) < n:
        j += 1
    return j
