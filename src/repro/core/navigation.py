"""Navigable 1-spanners of bounded hop-diameter for tree metrics.

This module implements Theorem 1.1 of the paper: given an edge-weighted
tree ``T``, a set of required vertices and an integer ``k >= 2``, it
builds Solomon's 1-spanner ``G_T`` with hop-diameter ``k`` and
``O(n * alpha_k(n))`` edges *together with* the navigation data structure
``D_T`` — the augmented recursion tree Φ, contracted trees 𝒯_β, and
LCA / level-ancestor indexes — so that ``find_path(u, v)`` reports a
T-monotone 1-spanner path of at most ``k`` hops in O(k) time
(Algorithms 1 and 2 of the paper).

Construction outline (Section 3.1.1):

* base case ``|R| <= k + 1``: a constant-size component; we connect the
  required vertices of the component directly (the paper's
  ``HandleBaseCase`` relies on structural guarantees internal to
  [Sol13]; a clique on <= k+1 required vertices realizes the same 1-hop
  base paths at O(k) edges per component — see DESIGN.md);
* otherwise ``Decompose`` picks cut vertices ``CV`` with parameter
  ``ell = alpha'_{k-2}(n)``;
* ``E''`` connects every cut vertex to all required vertices of its
  adjacent components;
* ``E'`` interconnects ``CV``: empty for k=2 (|CV| = 1), a clique for
  k=3, and a recursive (k-2)-hop navigator over the pruned copy of the
  tree for k >= 4;
* components recurse with the same ``k``.

The query algorithm mirrors the paper's ``FindPath`` /
``LocateContracted`` / ``FindCut`` exactly, including the contracted
trees that make finding the border cut vertices O(1).

``decrement=1`` switches the interconnection recursion to the
[AS87]-style level-by-level scheme (budget −1 per level, paths up to
2(k−1) hops) — the baseline Solomon's −2 trick improves on; used by the
E9 ablation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from contextlib import nullcontext

from ..errors import InvariantViolation, check
from ..graphs.graph import Graph
from ..graphs.index import TreeIndex
from ..graphs.tree import Tree
from ..metrics.tree_metric import TreeMetric
from ..observability import OBS, trace
from .ackermann import alpha_k_prime
from .decompose import (
    PackedTree,
    decompose_packed,
    prune_packed,
    split_packed,
)

__all__ = ["TreeNavigator", "dedup_path"]

# Build-side: recursion shape of Algorithm 1.  Query-side: every
# find_path (recursive interconnection calls included) bumps queries,
# and nodes_touched totals the path vertices each level contributes —
# the empirical stand-in for the O(k) time bound of Theorem 1.1
# (tests/test_asymptotics.py asserts it grows with k, not n).
_C_RECURSIONS = OBS.registry.counter("treenav.recursions")
_C_CUTS = OBS.registry.counter("treenav.cuts")
_C_BASE_CASES = OBS.registry.counter("treenav.base_cases")
_C_QUERIES = OBS.registry.counter("treenav.queries")
_C_NODES = OBS.registry.counter("treenav.nodes_touched")


def dedup_path(path: Sequence[int]) -> List[int]:
    """Remove consecutive duplicates (the braces notation of the paper)."""
    out: List[int] = []
    for v in path:
        if not out or out[-1] != v:
            out.append(v)
    return out


class _PhiNode:
    """A vertex of the augmented recursion tree Φ."""

    __slots__ = (
        "id",
        "parent",
        "level",
        "is_leaf",
        "cut_vertices",
        "base_adjacency",
        "contracted",
        "sub_navigator",
        "child_component",
    )

    def __init__(self, node_id: int):
        self.id = node_id
        self.parent = -1
        self.level = 0
        self.is_leaf = False
        # Inner vertices: the cut vertices CV (internal node) or the
        # required vertices of the base case (leaf).
        self.cut_vertices: List[int] = []
        # Leaf only: adjacency of the base-case subgraph of G_T; None
        # means the implicit clique on ``cut_vertices``.
        self.base_adjacency: Optional[Dict[int, List[int]]] = None
        # Internal, k >= 3 only: the contracted tree 𝒯_β.
        self.contracted: Optional[_ContractedTree] = None
        # Internal, k >= 4 only: navigator over the pruned cut-vertex copy.
        self.sub_navigator: Optional["TreeNavigator"] = None
        # Maps a Φ-child id to the component index it recurses on.
        self.child_component: Dict[int, int] = {}


class _ContractedTree:
    """The contracted tree 𝒯_β of an internal recursion node.

    Vertices are component representatives ``t_i`` and cut vertices; a
    cut vertex is adjacent to ``t_i`` iff it borders component ``T_i``
    (Property 7).  Adjacent cut vertices of the working tree are linked
    directly — a corner case the paper's prose elides but which keeps
    𝒯_β connected (hence a tree) when ``Decompose`` cuts neighbours.
    """

    __slots__ = (
        "index",
        "depth",
        "cuts",
        "p",
        "_node_of_cut",
        "_cut_of_node",
        "_node_of_comp",
    )

    def __init__(
        self,
        pt: PackedTree,
        cut_positions: Sequence[int],
        comp_of: Sequence[int],
        p: int,
    ):
        ids = pt.ids
        tree_parent = pt.parent
        # The query-side lookup dicts (node_of_cut and friends) are
        # derived lazily from these two fields: one contracted tree
        # exists per internal recursion node but only the handful a path
        # lookup routes through ever get queried.
        self.cuts: List[int] = [ids[j] for j in cut_positions]
        self.p = p
        self._node_of_cut: Optional[Dict[int, int]] = None
        self._cut_of_node: Optional[Dict[int, int]] = None
        self._node_of_comp: Optional[List[int]] = None

        # Contracted id per position: component index for component
        # vertices, p + rank for cut vertices.
        cid = list(comp_of)
        for t, j in enumerate(cut_positions):
            cid[j] = p + t

        m = p + len(cut_positions)
        parent = [-1] * m
        depth = [0] * m
        seen = [False] * m
        seen[cid[0]] = True
        # Preorder visits a contracted node's first vertex after its
        # contracted parent's first vertex, so depth[a] is final by the
        # time b hangs below it — one pass yields parents and depths.
        for j in range(1, len(ids)):
            a = cid[tree_parent[j]]
            b = cid[j]
            if a != b and not seen[b]:
                parent[b] = a
                depth[b] = depth[a] + 1
                seen[b] = True
        # Built from a traversal of wt, a tree by construction — skip
        # the O(m) connectivity validation (one 𝒯_β per recursion node).
        self.index = TreeIndex(Tree(parent, validate=False), depth=depth)
        self.depth = self.index.depth

    @property
    def node_of_cut(self) -> Dict[int, int]:
        if self._node_of_cut is None:
            self._node_of_cut = {c: self.p + t for t, c in enumerate(self.cuts)}
        return self._node_of_cut

    @property
    def cut_of_node(self) -> Dict[int, int]:
        if self._cut_of_node is None:
            self._cut_of_node = {self.p + t: c for t, c in enumerate(self.cuts)}
        return self._cut_of_node

    @property
    def node_of_comp(self) -> List[int]:
        if self._node_of_comp is None:
            self._node_of_comp = list(range(self.p))
        return self._node_of_comp

    def is_cut_node(self, node: int) -> bool:
        return node in self.cut_of_node


class TreeNavigator:
    """Solomon 1-spanner of hop-diameter ``k`` plus its navigation oracle.

    Parameters
    ----------
    tree:
        The input edge-weighted tree (a :class:`repro.graphs.tree.Tree`).
    k:
        Target hop-diameter, ``k >= 2``.
    required:
        Optional subset of vertices that must receive the k-hop
        guarantee (the Steiner setting of [Sol13]); defaults to all
        vertices.

    After construction, :meth:`find_path` answers queries between
    required vertices in O(k) time, and :attr:`edges` holds the spanner
    edge set (pairs of vertex ids with tree-metric weights).
    """

    def __init__(
        self,
        tree: Tree,
        k: int,
        required: Optional[Sequence[int]] = None,
        decrement: int = 2,
        _worktree: Optional[PackedTree] = None,
        _metric: Optional[TreeMetric] = None,
        _edges: Optional[Dict[Tuple[int, int], float]] = None,
    ):
        if k < 2:
            raise ValueError("hop-diameter parameter k must be at least 2")
        if decrement not in (1, 2):
            raise ValueError("decrement must be 1 (AS87-style) or 2 (Solomon)")
        # decrement = 2 is Solomon's trick: the cut-vertex interconnection
        # recurses with budget k-2, so each recursion level of the query
        # adds 2 hops against a budget that shrinks by 2 — hop-diameter k.
        # decrement = 1 emulates the [AS87]-style level-by-level scheme
        # the paper compares against: the interconnection only drops the
        # budget by 1, so a "budget k" structure routes in up to 2(k-1)
        # hops; at equal size this uses about twice the hops (Remark 5.4),
        # which the E9 ablation measures.
        self.decrement = decrement
        self.tree = tree
        self.k = k
        self.metric = _metric if _metric is not None else TreeMetric(tree)
        if required is None:
            required = range(tree.n)
        self.required: Set[int] = set(required)
        if not self.required:
            raise ValueError("need at least one required vertex")
        self.edges: Dict[Tuple[int, int], float] = _edges if _edges is not None else {}
        self._is_root_navigator = _edges is None

        self._phi_nodes: List[_PhiNode] = []
        self.home: Dict[int, int] = {}
        # Flat-array query engine, built lazily on first find_path.
        self._qpack = None

        worktree = _worktree if _worktree is not None else PackedTree.from_tree(tree)
        # One span per root navigator only: sub-navigators are part of the
        # same build and would bloat the trace with one span per recursion.
        span = (
            trace("treenav.build", n=tree.n, k=k, required=len(self.required))
            if self._is_root_navigator
            else nullcontext()
        )
        with span:
            self._preprocess(worktree, set(self.required))
            self._build_phi_index()
            if self._is_root_navigator:
                self._fill_edge_weights()

    # ------------------------------------------------------------------
    # Preprocessing (Algorithm 1)

    def _new_phi_node(self) -> _PhiNode:
        node = _PhiNode(len(self._phi_nodes))
        self._phi_nodes.append(node)
        return node

    def _add_edge(self, u: int, v: int) -> None:
        # Weights are left as placeholders during the recursion — nothing
        # reads them until construction finishes — and are filled by one
        # vectorized LCA batch in _fill_edge_weights.  Scalar per-edge
        # distance calls used to dominate the build.
        if u == v:
            return
        key = (u, v) if u < v else (v, u)
        if key not in self.edges:
            self.edges[key] = -1.0

    def _fill_edge_weights(self) -> None:
        """Resolve every placeholder edge weight in one batch query.

        Sub-navigators (E' interconnections) share the root's edge dict,
        so a single pass over ``self.edges`` at the root covers the whole
        recursion.
        """
        if not self.edges:
            return
        keys = list(self.edges.keys())
        weights = self.metric.pair_distances(
            [key[0] for key in keys], [key[1] for key in keys]
        )
        self.edges.update(zip(keys, weights.tolist()))

    def _preprocess(self, wt: PackedTree, req: Set[int]) -> int:
        """Recursive construction; returns the id of this call's Φ node."""
        n = len(req)
        if n <= self.k + 1:
            # The base case connects the required vertices directly and
            # never looks at the tree, so the Steiner pruning would be
            # pure waste here — and the vast majority of recursion calls
            # land in this branch.
            return self._handle_base_case(req)
        wt = prune_packed(wt, req)
        ids = wt.ids

        # k = 2 always needs a single (centroid) cut; deeper budgets size
        # their components by the interconnection recursion's parameter.
        ell_index = 0 if self.k == 2 else self.k - self.decrement
        ell = alpha_k_prime(ell_index, n)
        cut_positions = decompose_packed(wt, req, ell)
        cuts = [ids[j] for j in cut_positions]
        if OBS.enabled:
            _C_RECURSIONS.inc()
            _C_CUTS.inc(len(cuts))
        beta = self._new_phi_node()
        beta.cut_vertices = cuts
        for c in cuts:
            self.home[c] = beta.id

        # E': interconnect the cut vertices.
        if self.decrement == 2 and self.k == 3:
            for i, a in enumerate(cuts):
                for b in cuts[i + 1 :]:
                    self._add_edge(a, b)
        elif self.k >= 3:
            beta.sub_navigator = TreeNavigator(
                self.tree,
                max(2, self.k - self.decrement),
                required=cuts,
                decrement=self.decrement,
                _worktree=wt,
                _metric=self.metric,
                _edges=self.edges,
            )

        # E'': each cut vertex to the required vertices it borders.
        comps_ids, comps_parent, borders, comp_of = split_packed(wt, cut_positions)
        pos_of = {v: j for j, v in enumerate(ids)}
        comp_required: List[List[int]] = [[] for _ in comps_ids]
        for v in req:
            index = comp_of[pos_of[v]]
            if index >= 0:
                comp_required[index].append(v)
        edges = self.edges
        for i, border in enumerate(borders):
            required_here = comp_required[i]
            for c in border:
                # c is a cut vertex and u a non-cut component vertex, so
                # the u == c guard of _add_edge is unnecessary (inlined:
                # this loop inserts the bulk of the spanner edges).
                for u in required_here:
                    key = (c, u) if c < u else (u, c)
                    if key not in edges:
                        edges[key] = -1.0

        # Recurse on components that still carry required vertices.
        # Base cases are dispatched directly: they never look at the
        # component's tree, so its PackedTree is only materialized for
        # components large enough to recurse (a small minority).
        base_bound = self.k + 1
        phi_nodes = self._phi_nodes
        for i, creq in enumerate(comp_required):
            if not creq:
                continue
            if len(creq) <= base_bound:
                child_id = self._handle_base_case(creq)
            else:
                child_id = self._preprocess(
                    PackedTree(comps_ids[i], comps_parent[i]), set(creq)
                )
            phi_nodes[child_id].parent = beta.id
            beta.child_component[child_id] = i

        if self.k >= 3:
            beta.contracted = _ContractedTree(
                wt, cut_positions, comp_of, len(comps_ids)
            )
        return beta.id

    def _handle_base_case(self, req: Sequence[int]) -> int:
        if OBS.enabled:
            _C_BASE_CASES.inc()
        leaf = self._new_phi_node()
        leaf.is_leaf = True
        if len(req) == 1:
            # Singleton components are common and need neither edges nor
            # the sort below.
            (u,) = req
            leaf.cut_vertices = [u]
            self.home[u] = leaf.id
            return leaf.id
        ordered = sorted(req)
        leaf.cut_vertices = ordered
        edges = self.edges
        for i, a in enumerate(ordered):
            # ordered is sorted, so a < b and the key needs no swap
            # (_add_edge inlined — the recursion bottoms out here
            # hundreds of thousands of times per cover).
            for b in ordered[i + 1 :]:
                if (a, b) not in edges:
                    edges[(a, b)] = -1.0
        # base_adjacency stays None: the subgraph is the clique on
        # ``ordered``, so adjacency is implicit (see _base_case_bfs).
        home = self.home
        for u in ordered:
            home[u] = leaf.id
        return leaf.id

    def _build_phi_index(self) -> None:
        parents = [node.parent for node in self._phi_nodes]
        # The recursion may create several parentless nodes only when the
        # whole call was a single base case; Φ always has one root here
        # because _preprocess links every child it spawns.
        self._phi = TreeIndex(Tree(parents, validate=False))
        for node, depth in zip(self._phi_nodes, self._phi.depth):
            node.level = depth

    def __getstate__(self):
        # The packed query engine is derived (and holds references into
        # sub-navigators); rebuild it lazily on the receiving side.
        state = dict(self.__dict__)
        state["_qpack"] = None
        return state

    # ------------------------------------------------------------------
    # Spanner accessors

    def spanner(self) -> Graph:
        """The spanner ``G_T`` as a weighted graph on ``tree.n`` vertices."""
        g = Graph(self.tree.n)
        for (u, v), w in self.edges.items():
            g.add_edge(u, v, w)
        return g

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def hop_bound(self) -> int:
        """The guaranteed maximum hops per path: k for Solomon's scheme
        (decrement 2), 2(k-1) for the AS87-style level-by-level variant."""
        if self.decrement == 2:
            return self.k
        return 2 * (self.k - 1)

    def phi_depth(self) -> int:
        """Depth of the augmented recursion tree (Observation 3.1)."""
        return max(self._phi.depth) if self._phi_nodes else 0

    @property
    def phi_nodes(self) -> List[_PhiNode]:
        """The augmented recursion tree's nodes (read-only use)."""
        return self._phi_nodes

    @property
    def phi_index(self) -> TreeIndex:
        """LCA/level-ancestor index over the recursion tree Φ."""
        return self._phi

    # ------------------------------------------------------------------
    # Query (Algorithm 2)

    def query_pack(self):
        """The flat-array query engine for this navigator (lazy).

        Built once on first scalar query; all subsequent ``find_path``
        calls run on plain positional arrays with no per-query index
        builds.  See :mod:`repro.core.packed_query`.
        """
        pack = self._qpack
        if pack is None:
            from .packed_query import QueryPack

            pack = self._qpack = QueryPack(self)
        return pack

    def find_path(self, u: int, v: int) -> List[int]:
        """A T-monotone 1-spanner path from ``u`` to ``v`` with <= k hops.

        Both endpoints must be required vertices.  Runs in O(k) time on
        the packed query engine; output and observability counters are
        bit-identical to :meth:`find_path_reference` (the dict-backed
        Algorithm 2 kept as the differential-test reference).
        """
        pack = self._qpack
        if pack is None:
            pack = self.query_pack()
        return pack.find_path(u, v)

    def find_path_reference(self, u: int, v: int) -> List[int]:
        """Dict-backed Algorithm 2 — the differential-test reference.

        Byte-for-byte the pre-packed implementation; kept so tests can
        assert path-for-path identity against :meth:`find_path`.
        """
        if u not in self.home or v not in self.home:
            raise KeyError("find_path endpoints must be required vertices")
        obs = OBS.enabled
        if obs:
            _C_QUERIES.inc()
        if u == v:
            if obs:
                _C_NODES.inc(1)
            return [u]
        hu = self._phi_nodes[self.home[u]]
        hv = self._phi_nodes[self.home[v]]
        if hu.id == hv.id and hu.is_leaf:
            path = self._base_case_bfs(hu, u, v)
            if obs:
                _C_NODES.inc(len(path))
            return path
        beta = self._phi_nodes[self._phi.lca(hu.id, hv.id)]
        if self.k == 2:
            w = beta.cut_vertices[0]
            if obs:
                _C_NODES.inc(3)
            return dedup_path([u, w, v])

        contracted = beta.contracted
        u_node = self._locate_contracted(u, beta)
        v_node = self._locate_contracted(v, beta)
        c = contracted.index.lca(u_node, v_node)
        x_node = self._find_cut(u, u_node, v_node, beta, c)
        y_node = self._find_cut(v, v_node, u_node, beta, c)
        x = contracted.cut_of_node[x_node]
        y = contracted.cut_of_node[y_node]
        if beta.sub_navigator is None:
            # k = 3 with the cut-vertex clique: one direct hop x -> y.
            if obs:
                _C_NODES.inc(4)
            return dedup_path([u, x, y, v])
        # The interconnection recursion counts its own levels; this level
        # contributes the two endpoints it wraps around the middle.
        middle = beta.sub_navigator.find_path_reference(x, y)
        if obs:
            _C_NODES.inc(2)
        return dedup_path([u] + middle + [v])

    def _base_case_bfs(self, leaf: _PhiNode, u: int, v: int) -> List[int]:
        """BFS restricted to the base-case subgraph (line 3 of Algorithm 2)."""
        adjacency = leaf.base_adjacency
        if adjacency is None:
            # _handle_base_case connects the leaf's required vertices as
            # a clique without materializing the adjacency, so the BFS
            # always terminates at the direct edge.
            return [u, v]
        parent: Dict[int, int] = {u: u}
        queue = deque([u])
        while queue:
            a = queue.popleft()
            if a == v:
                path = [v]
                while path[-1] != u:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            for b in adjacency[a]:
                if b not in parent:
                    parent[b] = a
                    queue.append(b)
        raise InvariantViolation("base-case subgraph must connect its vertices")

    def _locate_contracted(self, u: int, beta: _PhiNode) -> int:
        """The vertex of 𝒯_β standing for ``u`` (``LocateContracted``)."""
        home_id = self.home[u]
        if home_id == beta.id:
            return beta.contracted.node_of_cut[u]
        child = self._phi.ancestor_at_depth(home_id, beta.level + 1)
        comp = beta.child_component[child]
        return beta.contracted.node_of_comp[comp]

    def _find_cut(self, u: int, u_node: int, v_node: int, beta: _PhiNode, c: int) -> int:
        """First cut vertex on the 𝒯_β path from ``u_node`` to ``v_node``."""
        contracted = beta.contracted
        if self.home[u] == beta.id:
            return u_node
        if u_node == c:
            return contracted.index.ancestor_at_depth(
                v_node, contracted.depth[u_node] + 1
            )
        return contracted.index.ancestor_at_depth(u_node, contracted.depth[u_node] - 1)

    # ------------------------------------------------------------------
    # Verification helpers (used by tests and benches)

    def verify_path(self, u: int, v: int, path: List[int]) -> None:
        """Check the three guarantees of Theorem 1.1 for one query.

        Raises :class:`~repro.errors.InvariantViolation` on the first
        broken guarantee — a real exception rather than an ``assert``,
        so verification is not a no-op under ``python -O``."""
        check(path[0] == u and path[-1] == v, "path endpoints mismatch")
        check(
            len(path) - 1 <= self.hop_bound,
            f"path {path} has {len(path) - 1} hops, budget {self.hop_bound}",
        )
        total = 0.0
        for a, b in zip(path, path[1:]):
            key = (a, b) if a < b else (b, a)
            check(key in self.edges, f"({a}, {b}) is not a spanner edge")
            total += self.edges[key]
        direct = self.metric.distance(u, v)
        check(
            abs(total - direct) <= 1e-6 * max(1.0, direct),
            f"path weight {total} differs from tree distance {direct}",
        )
        # T-monotone: the path vertices appear in order along the tree path.
        tree_path = self.tree.path(u, v)
        positions = {w: i for i, w in enumerate(tree_path)}
        indices = [positions.get(w) for w in path]
        check(None not in indices, f"path {path} leaves the tree path")
        check(indices == sorted(indices), f"path {path} is not T-monotone")
