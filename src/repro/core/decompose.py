"""The ``Prune`` and ``Decompose`` procedures of Solomon's construction.

Both operate on :class:`WorkTree`, a lightweight rooted-tree view whose
vertices are *original* vertex ids — the recursion of Algorithm 1
constantly forms subtrees and pruned copies, and keeping original ids
everywhere means spanner edges and reported paths never need
translation.

* :func:`prune` (Section 3.2 of [Sol13], as used in line 2 of the
  paper's Algorithm 1): keeps the required vertices plus the branching
  vertices of their Steiner closure, at most ``|R| - 1`` Steiner
  vertices, preserving ancestor order (hence T-monotonicity).
* :func:`decompose` (line 4): returns cut vertices ``CV`` such that
  every connected component of ``T \\ CV`` contains at most ``ell``
  required vertices; a single (centroid) cut for ``ell >= ceil(n/2)``,
  at most ``|V|/(ell+1)`` cuts in general (Lemma 3.1).
* :func:`split_components`: the components ``T1..Tp`` of ``T \\ CV``
  together with their border cut vertices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = [
    "WorkTree",
    "prune",
    "decompose",
    "decompose_centroid",
    "split_components",
]


class WorkTree:
    """A rooted tree over original vertex ids (no weights).

    ``parent[root] == -1``.  Children lists preserve insertion order so
    traversals are deterministic.
    """

    __slots__ = ("parent", "children", "root")

    def __init__(self, parent: Dict[int, int], root: int):
        self.parent = parent
        self.root = root
        self.children: Dict[int, List[int]] = {v: [] for v in parent}
        for v, p in parent.items():
            if p != -1:
                self.children[p].append(v)

    def __len__(self) -> int:
        return len(self.parent)

    def vertices(self) -> Iterable[int]:
        return self.parent.keys()

    def preorder(self) -> List[int]:
        order: List[int] = []
        stack = [self.root]
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(reversed(self.children[v]))
        return order

    def postorder(self) -> List[int]:
        return list(reversed(self.preorder()))

    @classmethod
    def from_tree(cls, tree) -> "WorkTree":
        """View a :class:`repro.graphs.tree.Tree` as a WorkTree."""
        parent = {v: tree.parents[v] for v in range(tree.n)}
        return cls(parent, tree.root)


def prune(wt: WorkTree, required: Set[int]) -> WorkTree:
    """The Steiner-closure pruning of [Sol13].

    Returns a new WorkTree containing every required vertex plus every
    vertex with at least two children subtrees that contain required
    vertices (branching vertices).  The root of the result is the
    highest kept vertex; parent pointers connect each kept vertex to its
    nearest kept proper ancestor, so paths in the result are subpaths
    (in vertex order) of paths in ``wt``.
    """
    if not required:
        raise ValueError("prune needs at least one required vertex")
    # has_req[v]: does the subtree of v contain a required vertex?
    has_req: Dict[int, bool] = {}
    for v in wt.postorder():
        flag = v in required
        for c in wt.children[v]:
            flag = flag or has_req[c]
        has_req[v] = flag

    keep: Set[int] = set()
    for v in wt.vertices():
        if v in required:
            keep.add(v)
            continue
        busy_children = sum(1 for c in wt.children[v] if has_req[c])
        if busy_children >= 2:
            keep.add(v)

    # Preorder pass threading the nearest kept ancestor downward.
    new_parent: Dict[int, int] = {}
    nearest_kept: Dict[int, int] = {}
    new_root = -1
    for v in wt.preorder():
        p = wt.parent[v]
        anc = nearest_kept.get(p, -1) if p != -1 else -1
        if v in keep:
            new_parent[v] = anc
            if anc == -1:
                new_root = v
            nearest_kept[v] = v
        else:
            nearest_kept[v] = anc
    # Exactly one kept vertex has no kept ancestor: the closure root.
    roots = [v for v, p in new_parent.items() if p == -1]
    if len(roots) != 1:
        from ..errors import InvariantViolation

        raise InvariantViolation(f"prune produced {len(roots)} roots")
    return WorkTree(new_parent, new_root)


def decompose(wt: WorkTree, required: Set[int], ell: int) -> List[int]:
    """Greedy postorder cut-vertex selection (the ``Decompose`` procedure).

    Accumulates required counts bottom-up and cuts a vertex whenever its
    pending count would exceed ``ell``; each component of ``wt`` minus
    the cut set then holds at most ``ell`` required vertices.
    """
    if ell < 1:
        raise ValueError("ell must be at least 1")
    cuts: List[int] = []
    pending: Dict[int, int] = {}
    for v in wt.postorder():
        count = 1 if v in required else 0
        for c in wt.children[v]:
            count += pending[c]
        if count > ell:
            cuts.append(v)
            count = 0
        pending[v] = count
    return cuts


def decompose_centroid(wt: WorkTree, required: Set[int], ell: int) -> List[int]:
    """Ablation variant of :func:`decompose`: recursive centroid cutting.

    Repeatedly removes the required-weight centroid of every component
    still holding more than ``ell`` required vertices.  Produces the
    same component guarantee as the greedy cutter with (empirically)
    similar cut counts; kept for the E1 ablation bench.
    """
    if ell < 1:
        raise ValueError("ell must be at least 1")
    cuts: List[int] = []
    pending = [wt]
    while pending:
        piece = pending.pop()
        req_here = [v for v in piece.vertices() if v in required]
        if len(req_here) <= ell:
            continue
        centroid = decompose(piece, set(req_here), max((len(req_here) + 1) // 2, 1))
        # The greedy cutter with ell = ceil(n/2) yields exactly one cut:
        # the required-weight centroid of the piece.
        cut = centroid[0]
        cuts.append(cut)
        components, _, _ = split_components(piece, [cut])
        pending.extend(components)
    return cuts


def split_components(
    wt: WorkTree, cuts: Sequence[int]
) -> Tuple[List[WorkTree], List[Set[int]], Dict[int, int]]:
    """Components of ``wt`` minus the cut vertices, with border sets.

    Returns ``(components, borders, comp_of)`` where ``borders[i]`` is
    the set of cut vertices adjacent (in ``wt``) to component ``i`` and
    ``comp_of`` maps every non-cut vertex to its component index.
    """
    cut_set = set(cuts)
    comp_of: Dict[int, int] = {}
    components: List[WorkTree] = []
    borders: List[Set[int]] = []
    for v in wt.preorder():
        if v in cut_set:
            continue
        p = wt.parent[v]
        if p == -1 or p in cut_set:
            # v starts a new component; collect its subtree, stopping at cuts.
            index = len(components)
            parent: Dict[int, int] = {v: -1}
            comp_of[v] = index
            stack = [v]
            while stack:
                u = stack.pop()
                for c in wt.children[u]:
                    if c in cut_set:
                        continue
                    parent[c] = u
                    comp_of[c] = index
                    stack.append(c)
            components.append(WorkTree(parent, v))
            borders.append(set())

    for c in cut_set:
        p = wt.parent[c]
        if p != -1 and p not in cut_set:
            borders[comp_of[p]].add(c)
        for child in wt.children[c]:
            if child not in cut_set:
                borders[comp_of[child]].add(c)
    return components, borders, comp_of
