"""The ``Prune`` and ``Decompose`` procedures of Solomon's construction.

Both operate on :class:`WorkTree`, a lightweight rooted-tree view whose
vertices are *original* vertex ids — the recursion of Algorithm 1
constantly forms subtrees and pruned copies, and keeping original ids
everywhere means spanner edges and reported paths never need
translation.

* :func:`prune` (Section 3.2 of [Sol13], as used in line 2 of the
  paper's Algorithm 1): keeps the required vertices plus the branching
  vertices of their Steiner closure, at most ``|R| - 1`` Steiner
  vertices, preserving ancestor order (hence T-monotonicity).
* :func:`decompose` (line 4): returns cut vertices ``CV`` such that
  every connected component of ``T \\ CV`` contains at most ``ell``
  required vertices; a single (centroid) cut for ``ell >= ceil(n/2)``,
  at most ``|V|/(ell+1)`` cuts in general (Lemma 3.1).
* :func:`split_components`: the components ``T1..Tp`` of ``T \\ CV``
  together with their border cut vertices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import InvariantViolation
from ..observability import OBS

__all__ = [
    "WorkTree",
    "prune",
    "decompose",
    "decompose_centroid",
    "split_components",
    "PackedTree",
    "prune_packed",
    "decompose_packed",
    "split_packed",
]


# The packed hot path only (the dict WorkTree is the reference
# implementation, exercised by tests, not production builds).  Scanned
# vertex totals expose the recursion's aggregate O(n log n)-ish work.
_C_PRUNE = OBS.registry.counter("decompose.prune_calls")
_C_PRUNE_KEPT = OBS.registry.counter("decompose.prune_kept")
_C_DECOMPOSE = OBS.registry.counter("decompose.calls")
_C_SCANNED = OBS.registry.counter("decompose.vertices_scanned")


class WorkTree:
    """A rooted tree over original vertex ids (no weights).

    ``parent[root] == -1``.  Children lists preserve insertion order so
    traversals are deterministic.
    """

    __slots__ = ("parent", "children", "root", "_order")

    def __init__(
        self,
        parent: Dict[int, int],
        root: int,
        children: Optional[Dict[int, List[int]]] = None,
    ):
        self.parent = parent
        self.root = root
        if children is None:
            children = {v: [] for v in parent}
            for v, p in parent.items():
                if p != -1:
                    children[p].append(v)
        # Callers constructing both maps in one traversal (prune,
        # split_components) pass children directly; the recursion builds
        # hundreds of thousands of small WorkTrees, so skipping the
        # re-derivation pass is measurable.
        self.children = children
        self._order: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.parent)

    def vertices(self) -> Iterable[int]:
        return self.parent.keys()

    def preorder(self) -> List[int]:
        # Memoized: a WorkTree is never mutated after construction, and
        # each recursion node walks the same pruned tree three times
        # (decompose, split_components, the contracted tree).  Callers
        # must not mutate the returned list.
        if self._order is None:
            order: List[int] = []
            stack = [self.root]
            while stack:
                v = stack.pop()
                order.append(v)
                stack.extend(reversed(self.children[v]))
            self._order = order
        return self._order

    def postorder(self) -> List[int]:
        return list(reversed(self.preorder()))

    @classmethod
    def from_tree(cls, tree) -> "WorkTree":
        """View a :class:`repro.graphs.tree.Tree` as a WorkTree."""
        parent = {v: tree.parents[v] for v in range(tree.n)}
        return cls(parent, tree.root)


def prune(wt: WorkTree, required: Set[int]) -> WorkTree:
    """The Steiner-closure pruning of [Sol13].

    Returns a new WorkTree containing every required vertex plus every
    vertex with at least two children subtrees that contain required
    vertices (branching vertices).  The root of the result is the
    highest kept vertex; parent pointers connect each kept vertex to its
    nearest kept proper ancestor, so paths in the result are subpaths
    (in vertex order) of paths in ``wt``.
    """
    if not required:
        raise ValueError("prune needs at least one required vertex")
    order = wt.preorder()
    parent_of = wt.parent
    # busy[v]: number of children subtrees of v containing a required
    # vertex.  Kept vertices are the required ones plus every v with
    # busy[v] >= 2 (the branching vertices of the Steiner closure).
    busy: Dict[int, int] = {}
    busy_get = busy.get
    for v in reversed(order):
        if v in required or busy_get(v, 0) > 0:
            p = parent_of[v]
            if p != -1:
                busy[p] = busy_get(p, 0) + 1

    # Preorder pass threading the nearest kept ancestor downward.
    new_parent: Dict[int, int] = {}
    new_children: Dict[int, List[int]] = {}
    nearest_kept: Dict[int, int] = {}
    new_order: List[int] = []
    new_root = -1
    root_count = 0
    for v in order:
        p = parent_of[v]
        anc = nearest_kept[p] if p != -1 else -1
        if v in required or busy_get(v, 0) >= 2:
            new_parent[v] = anc
            new_children[v] = []
            new_order.append(v)
            if anc == -1:
                new_root = v
                root_count += 1
            else:
                new_children[anc].append(v)
            nearest_kept[v] = v
        else:
            nearest_kept[v] = anc
    # Exactly one kept vertex has no kept ancestor: the closure root.
    if root_count != 1:
        raise InvariantViolation(f"prune produced {root_count} roots")
    result = WorkTree(new_parent, new_root, new_children)
    # The kept vertices in input preorder ARE the pruned tree's preorder
    # (subtrees stay contiguous and children attach in discovery order),
    # so the traversal the consumers would redo is seeded here.
    result._order = new_order
    return result


def decompose(wt: WorkTree, required: Set[int], ell: int) -> List[int]:
    """Greedy postorder cut-vertex selection (the ``Decompose`` procedure).

    Accumulates required counts bottom-up and cuts a vertex whenever its
    pending count would exceed ``ell``; each component of ``wt`` minus
    the cut set then holds at most ``ell`` required vertices.
    """
    if ell < 1:
        raise ValueError("ell must be at least 1")
    cuts: List[int] = []
    pending: Dict[int, int] = {}
    children = wt.children
    for v in reversed(wt.preorder()):
        count = 1 if v in required else 0
        for c in children[v]:
            count += pending[c]
        if count > ell:
            cuts.append(v)
            count = 0
        pending[v] = count
    return cuts


def decompose_centroid(wt: WorkTree, required: Set[int], ell: int) -> List[int]:
    """Ablation variant of :func:`decompose`: recursive centroid cutting.

    Repeatedly removes the required-weight centroid of every component
    still holding more than ``ell`` required vertices.  Produces the
    same component guarantee as the greedy cutter with (empirically)
    similar cut counts; kept for the E1 ablation bench.
    """
    if ell < 1:
        raise ValueError("ell must be at least 1")
    cuts: List[int] = []
    pending = [wt]
    while pending:
        piece = pending.pop()
        req_here = [v for v in piece.vertices() if v in required]
        if len(req_here) <= ell:
            continue
        centroid = decompose(piece, set(req_here), max((len(req_here) + 1) // 2, 1))
        # The greedy cutter with ell = ceil(n/2) yields exactly one cut:
        # the required-weight centroid of the piece.
        cut = centroid[0]
        cuts.append(cut)
        components, _, _ = split_components(piece, [cut])
        pending.extend(components)
    return cuts


def split_components(
    wt: WorkTree, cuts: Sequence[int]
) -> Tuple[List[WorkTree], List[Set[int]], Dict[int, int]]:
    """Components of ``wt`` minus the cut vertices, with border sets.

    Returns ``(components, borders, comp_of)`` where ``borders[i]`` is
    the set of cut vertices adjacent (in ``wt``) to component ``i`` and
    ``comp_of`` maps every non-cut vertex to its component index.
    """
    cut_set = set(cuts)
    comp_of: Dict[int, int] = {}
    components: List[WorkTree] = []
    borders: List[Set[int]] = []
    wt_children = wt.children
    for v in wt.preorder():
        if v in cut_set:
            continue
        p = wt.parent[v]
        if p == -1 or p in cut_set:
            # v starts a new component; collect its subtree, stopping at cuts.
            index = len(components)
            parent: Dict[int, int] = {v: -1}
            children: Dict[int, List[int]] = {}
            comp_of[v] = index
            stack = [v]
            order: List[int] = []
            # Pushing children reversed makes the pop sequence the
            # component's preorder, which seeds the WorkTree's memoized
            # traversal for free (the recursion re-walks each component
            # immediately in prune/decompose).
            while stack:
                u = stack.pop()
                order.append(u)
                kept = [c for c in wt_children[u] if c not in cut_set]
                children[u] = kept
                for c in kept:
                    parent[c] = u
                    comp_of[c] = index
                stack.extend(reversed(kept))
            component = WorkTree(parent, v, children)
            component._order = order
            components.append(component)
            borders.append(set())

    for c in cut_set:
        p = wt.parent[c]
        if p != -1 and p not in cut_set:
            borders[comp_of[p]].add(c)
        for child in wt.children[c]:
            if child not in cut_set:
                borders[comp_of[child]].add(c)
    return components, borders, comp_of


# ----------------------------------------------------------------------
# Packed fast path.
#
# Every tree Algorithm 1's recursion manipulates is derived from the
# input tree by operations that preserve ancestor order and the relative
# order of siblings; consequently the vertices of each derived tree,
# listed in the *original* preorder, are exactly that tree's own
# preorder.  PackedTree exploits this: a tree is two parallel arrays
# indexed by preorder position, and prune / decompose / split /
# contraction all become single array passes with no per-vertex dict
# hashing and no explicit stack traversals.  The WorkTree API above is
# the reference implementation — kept for external callers, the tests
# that pin its semantics, and the centroid-cut ablation — while the
# navigator's hot path (TreeNavigator._preprocess) runs on PackedTree.
# The two implementations are equivalent by the invariants noted at each
# function below (and the navigation test suites compare the resulting
# spanners path-for-path against the frozen seed implementation).


class PackedTree:
    """A rooted tree stored as preorder-position arrays.

    ``ids[j]`` is the original vertex id at preorder position ``j``;
    ``parent[j]`` is the preorder *position* of its parent, ``-1`` for
    the root.  The root always sits at position 0, and positions are in
    preorder by construction, so a plain ``range(len(ids))`` loop visits
    parents before children and ``range(len(ids) - 1, -1, -1)`` visits
    children before parents.
    """

    __slots__ = ("ids", "parent")

    def __init__(self, ids: List[int], parent: List[int]):
        self.ids = ids
        self.parent = parent

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def from_tree(cls, tree) -> "PackedTree":
        """Pack a :class:`repro.graphs.tree.Tree`."""
        order = tree.preorder()
        pos = [0] * tree.n
        for j, v in enumerate(order):
            pos[v] = j
        parents = tree.parents
        parent = [-1 if parents[v] == -1 else pos[parents[v]] for v in order]
        return cls(order, parent)


def prune_packed(pt: PackedTree, required: Set[int]) -> PackedTree:
    """:func:`prune` on a :class:`PackedTree` (same semantics).

    The kept vertices in the input's preorder are the pruned tree's
    preorder (subtrees stay contiguous, children attach in discovery
    order), so one reverse pass computes the busy counts and one forward
    pass emits the result.
    """
    if not required:
        raise ValueError("prune needs at least one required vertex")
    ids = pt.ids
    parent = pt.parent
    m = len(ids)
    req_flag = [v in required for v in ids]
    # busy[j]: number of children subtrees holding a required vertex.
    busy = [0] * m
    for j in range(m - 1, 0, -1):
        if req_flag[j] or busy[j]:
            busy[parent[j]] += 1
    new_ids: List[int] = []
    new_parent: List[int] = []
    # nearest[j]: position *in the output* of the nearest kept ancestor
    # of j (inclusive), threaded downward in preorder.
    nearest = [-1] * m
    root_count = 0
    for j in range(m):
        p = parent[j]
        anc = nearest[p] if p != -1 else -1
        if req_flag[j] or busy[j] >= 2:
            if anc == -1:
                root_count += 1
            nearest[j] = len(new_ids)
            new_parent.append(anc)
            new_ids.append(ids[j])
        else:
            nearest[j] = anc
    if root_count != 1:
        raise InvariantViolation(f"prune produced {root_count} roots")
    if OBS.enabled:
        _C_PRUNE.inc()
        _C_PRUNE_KEPT.inc(len(new_ids))
    return PackedTree(new_ids, new_parent)


def decompose_packed(pt: PackedTree, required: Set[int], ell: int) -> List[int]:
    """:func:`decompose` on a :class:`PackedTree`.

    Returns cut *positions* (into ``pt``), in the same reverse-preorder
    order the reference implementation reports cut vertices.
    """
    if ell < 1:
        raise ValueError("ell must be at least 1")
    ids = pt.ids
    parent = pt.parent
    m = len(ids)
    if OBS.enabled:
        _C_DECOMPOSE.inc()
        _C_SCANNED.inc(m)
    pending = [0] * m
    cuts: List[int] = []
    for j in range(m - 1, -1, -1):
        count = pending[j] + (1 if ids[j] in required else 0)
        if count > ell:
            cuts.append(j)
        elif j:
            # A cut contributes 0 upward; others pass their count on.
            pending[parent[j]] += count
    return cuts


def split_packed(
    pt: PackedTree, cut_positions: Sequence[int]
) -> Tuple[List[List[int]], List[List[int]], List[Set[int]], List[int]]:
    """:func:`split_components` on a :class:`PackedTree`.

    Returns ``(comps_ids, comps_parent, borders, comp_of)``: the raw
    ``ids``/``parent`` arrays of each component (zip a pair into a
    :class:`PackedTree` only if the component actually recurses — most
    are base cases that never look at their tree again), the border cut
    vertices per component as original ids, and ``comp_of`` indexed by
    *position* in ``pt`` (``-1`` for cut vertices).  Global preorder
    restricted to one component is that component's preorder, so a
    single forward pass assembles every component simultaneously: a
    non-cut vertex whose parent is absent (root) or cut starts a new
    component — matching the reference implementation's discovery order
    — and every other vertex appends itself to its parent's component.
    """
    ids = pt.ids
    parent = pt.parent
    m = len(ids)
    cut_flag = bytearray(m)
    for j in cut_positions:
        cut_flag[j] = 1
    comp_of = [-1] * m
    # local[j]: position of j within its component's arrays.
    local = [0] * m
    comps_ids: List[List[int]] = []
    comps_parent: List[List[int]] = []
    borders: List[Set[int]] = []
    for j in range(m):
        if cut_flag[j]:
            continue
        p = parent[j]
        if p == -1 or cut_flag[p]:
            index = len(comps_ids)
            comp_of[j] = index
            comps_ids.append([ids[j]])
            comps_parent.append([-1])
            borders.append({ids[p]} if p != -1 else set())
        else:
            index = comp_of[p]
            comp_of[j] = index
            comp = comps_ids[index]
            local[j] = len(comp)
            comp.append(ids[j])
            comps_parent[index].append(local[p])
    # Cut vertices bordering a component from below (their parent is a
    # component vertex); the from-above direction was collected when the
    # component roots were created.
    for j in cut_positions:
        p = parent[j]
        if p != -1 and not cut_flag[p]:
            borders[comp_of[p]].add(ids[j])
    return comps_ids, comps_parent, borders, comp_of
