"""Two-step navigation on metric spaces (Theorem 1.2).

Given any metric that admits a ``(γ, ζ)``-tree cover, build one
navigable 1-spanner per tree (Theorem 1.1) and answer a query
``(u, v)`` by (1) picking the tree that approximates the pair best —
O(1) via the home tree for Ramsey covers, an O(ζ) scan of per-tree O(1)
distance oracles otherwise — and (2) running the O(k) tree navigation
inside it.  The union of all per-tree spanner edges, mapped back to
metric points through the vertices' representative points, is a
γ-spanner ``H_X`` with hop-diameter ``k`` and ``O(n·αk(n)·ζ)`` edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import check
from ..graphs.graph import Graph
from ..metrics.base import Metric
from ..observability import OBS, trace
from ..parallel import map_per_tree
from ..treecover.base import TreeCover
from .navigation import TreeNavigator, dedup_path

__all__ = ["MetricNavigator"]

_C_QUERIES = OBS.registry.counter("navigator.queries")
_H_HOPS = OBS.registry.histogram("navigator.hops")
_H_TREE = OBS.registry.histogram("navigator.tree_chosen")


def _build_tree_navigator(ctx, index: int) -> TreeNavigator:
    """Per-tree fan-out unit: build the 𝒟_T structure of one cover tree.

    Module-level so it crosses the worker boundary by reference; the
    cover trees and ``k`` ride the worker context.  Sharing the cover
    tree's :class:`TreeMetric` means the LCA index built for the batch
    edge-weight fill is the same one later distance queries reuse.
    """
    trees, k = ctx.payload
    cover_tree = trees[index]
    return TreeNavigator(
        cover_tree.tree,
        k,
        required=list(cover_tree.vertex_of_point),
        _metric=cover_tree.tree_metric,
    )


class MetricNavigator:
    """Navigable k-hop spanner over a metric space with a tree cover.

    Parameters
    ----------
    metric:
        The underlying metric space.
    cover:
        A (γ, ζ)-tree cover of it (any construction from
        :mod:`repro.treecover`).
    k:
        Hop-diameter parameter (>= 2) passed to every per-tree
        navigator.
    workers:
        Worker processes for the per-tree 𝒟_T builds (the trees of a
        cover are independent).  ``None`` defers to ``REPRO_WORKERS``,
        0/1 builds serially; results are identical either way.
    """

    def __init__(
        self,
        metric: Metric,
        cover: TreeCover,
        k: int,
        workers: Optional[int] = None,
        _reuse: Optional[Sequence[Optional[TreeNavigator]]] = None,
    ):
        self.metric = metric
        self.cover = cover
        self.k = k
        # The dynamic patch path passes ``_reuse`` — per-tree navigators
        # from the previous generation whose cover tree object survived
        # the mutation untouched; only the ``None`` slots are rebuilt.
        if _reuse is not None and len(_reuse) != len(cover.trees):
            _reuse = None
        pending = (
            [t for t, nav in enumerate(_reuse) if nav is None]
            if _reuse is not None
            else list(range(len(cover.trees)))
        )
        navigators: List[Optional[TreeNavigator]] = (
            list(_reuse) if _reuse is not None else [None] * len(cover.trees)
        )
        with trace("navigator.build", n=metric.n, k=k, trees=len(pending)):
            built = map_per_tree(
                _build_tree_navigator,
                pending,
                workers=workers,
                payload=(cover.trees, k),
            )
        for slot, navigator in zip(pending, built):
            navigators[slot] = navigator
        self.navigators: List[TreeNavigator] = navigators  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Queries

    def find_path(self, u: int, v: int) -> List[int]:
        """A <= k hop path between metric points, as point ids.

        The path's weight (sum of metric distances of consecutive
        points) is at most the cover stretch γ times δ(u, v).
        """
        path, _ = self.find_path_with_tree(u, v)
        return path

    def find_path_with_tree(self, u: int, v: int) -> Tuple[List[int], int]:
        """Like :meth:`find_path` but also reports the tree used."""
        if u == v:
            return [u], -1
        index, _ = self.cover.best_tree(u, v)
        cover_tree = self.cover.trees[index]
        vertex_path = self.navigators[index].find_path(
            cover_tree.vertex_of_point[u], cover_tree.vertex_of_point[v]
        )
        points = dedup_path([cover_tree.rep_point[x] for x in vertex_path])
        if OBS.enabled:
            _C_QUERIES.inc()
            _H_HOPS.observe(len(points) - 1)
            _H_TREE.observe(index)
        return points, index

    def find_paths(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Tuple[List[int], int]]:
        """Batched :meth:`find_path_with_tree` over many pairs.

        Tree selection — the O(ζ)-scan that dominates query time for
        non-Ramsey covers — runs once for all pairs through
        :meth:`TreeCover.best_trees` (one vectorized LCA batch per
        tree); only the O(k) tree navigation remains per pair.  Returns
        ``(point_path, tree_index)`` per pair, in input order.
        """
        pairs = list(pairs)
        results: List[Optional[Tuple[List[int], int]]] = [None] * len(pairs)
        nontrivial: List[Tuple[int, int, int]] = []
        for t, (u, v) in enumerate(pairs):
            if u == v:
                results[t] = ([u], -1)
            else:
                nontrivial.append((t, u, v))
        best = self.cover.best_trees([(u, v) for _, u, v in nontrivial])
        obs = OBS.enabled
        for (t, u, v), (index, _) in zip(nontrivial, best):
            cover_tree = self.cover.trees[index]
            vertex_path = self.navigators[index].find_path(
                cover_tree.vertex_of_point[u], cover_tree.vertex_of_point[v]
            )
            points = dedup_path([cover_tree.rep_point[x] for x in vertex_path])
            if obs:
                _C_QUERIES.inc()
                _H_HOPS.observe(len(points) - 1)
                _H_TREE.observe(index)
            results[t] = (points, index)
        return results  # type: ignore[return-value]

    def approx_distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Batched :meth:`approx_distance` (one LCA sweep per tree)."""
        pairs = list(pairs)
        out = np.zeros(len(pairs))
        nontrivial = [t for t, (u, v) in enumerate(pairs) if u != v]
        if nontrivial:
            best = self.cover.best_trees([pairs[t] for t in nontrivial])
            for t, (_, d) in zip(nontrivial, best):
                out[t] = d
        return out

    def approx_distance(self, u: int, v: int) -> float:
        """A γ-approximate distance without reporting the path.

        O(1) with a Ramsey cover, O(ζ) otherwise — the distance-oracle
        view the paper contrasts with (Question 1.2): unlike [MN06]-style
        oracles, the matching path is always available via
        :meth:`find_path` and lives on the spanner.
        """
        if u == v:
            return 0.0
        return self.cover.best_tree(u, v)[1]

    def path_weight(self, path: List[int]) -> float:
        """Metric weight of a reported point path."""
        return sum(self.metric.distance(a, b) for a, b in zip(path, path[1:]))

    def query_stretch(self, u: int, v: int) -> Tuple[int, float]:
        """(hops, stretch) of the reported path for one pair."""
        path = self.find_path(u, v)
        base = self.metric.distance(u, v)
        stretch = self.path_weight(path) / base if base > 0 else 1.0
        return len(path) - 1, stretch

    # ------------------------------------------------------------------
    # The spanner H_X

    def spanner_edges(self) -> Dict[Tuple[int, int], float]:
        """Edges of ``H_X`` as point pairs with metric weights."""
        edges: Dict[Tuple[int, int], float] = {}
        for index, navigator in enumerate(self.navigators):
            rep = self.cover.trees[index].rep_point
            for (a, b) in navigator.edges:
                pa, pb = rep[a], rep[b]
                if pa == pb:
                    continue
                key = (pa, pb) if pa < pb else (pb, pa)
                if key not in edges:
                    edges[key] = self.metric.distance(pa, pb)
        return edges

    def spanner(self) -> Graph:
        """``H_X`` as a weighted graph on the metric's points."""
        g = Graph(self.metric.n)
        for (a, b), w in self.spanner_edges().items():
            g.add_edge(a, b, w)
        return g

    @property
    def num_edges(self) -> int:
        return len(self.spanner_edges())

    @property
    def num_trees(self) -> int:
        """Trees serving queries (shared surface with the mapped
        navigator, whose :attr:`cover` is ``None``)."""
        return self.cover.size

    # ------------------------------------------------------------------
    # Checkpointing

    def aux_fingerprint(self) -> Dict[str, object]:
        """Fingerprint of the per-tree auxiliary state, for checkpoints.

        The navigation structures 𝒟_T rebuild deterministically from a
        cover in milliseconds, so checkpoints persist the cover plus
        this fingerprint — per tree, the 1-spanner edge count and a
        CRC32 of the canonically encoded sorted edge list — instead of
        the structures themselves.  On load the rebuilt navigators are
        checked against it, turning "the cover round-tripped" into "the
        auxiliary state round-tripped" without storing O(n·α_k(n)·ζ)
        edges.
        """
        import zlib

        from ..checkpoint.format import canonical_bytes

        per_tree = []
        for navigator in self.navigators:
            edge_list = sorted(
                [a, b, w] for (a, b), w in navigator.edges.items()
            )
            per_tree.append(
                {
                    "edges": len(edge_list),
                    "crc32": zlib.crc32(canonical_bytes(edge_list)) & 0xFFFFFFFF,
                }
            )
        return {"k": self.k, "per_tree": per_tree}

    def verify_aux_fingerprint(self, fingerprint: Dict[str, object]) -> None:
        """Check the rebuilt 𝒟_T state against a saved fingerprint;
        raises :class:`~repro.errors.InvariantViolation` on mismatch."""
        check(
            fingerprint.get("k") == self.k,
            f"navigator was saved with k={fingerprint.get('k')}, "
            f"rebuilt with k={self.k}",
        )
        per_tree = fingerprint.get("per_tree")
        check(
            isinstance(per_tree, list) and len(per_tree) == len(self.navigators),
            "fingerprint covers a different number of trees",
        )
        actual = self.aux_fingerprint()["per_tree"]
        for index, (saved, rebuilt) in enumerate(zip(per_tree, actual)):
            check(
                saved == rebuilt,
                f"tree {index}: rebuilt 1-spanner {rebuilt} differs from "
                f"saved fingerprint {saved}",
            )

    # ------------------------------------------------------------------
    # Verification

    def verify_query(self, u: int, v: int, gamma: Optional[float] = None) -> None:
        """Check hop and stretch guarantees for one query; raises
        :class:`~repro.errors.InvariantViolation` on violation.

        The path must (a) start and end correctly, (b) respect the hop
        budget, (c) consist of spanner edges, (d) weigh no more than the
        best cover-tree distance for the pair (which in turn is at most
        γ·δ(u, v) if ``gamma`` is the cover's stretch on this pair).
        """
        path = self.find_path(u, v)
        check(path[0] == u and path[-1] == v, "endpoints mismatch")
        check(
            len(path) - 1 <= self.k,
            f"path for ({u}, {v}) has {len(path) - 1} hops, budget {self.k}",
        )
        edges = self.spanner_edges()
        for a, b in zip(path, path[1:]):
            key = (a, b) if a < b else (b, a)
            check(key in edges, f"hop ({a}, {b}) is not a spanner edge")
        base = self.metric.distance(u, v)
        if base > 0:
            weight = self.path_weight(path)
            _, best = self.cover.best_tree(u, v)
            check(
                weight <= best + 1e-6 * max(1.0, best),
                f"path weight {weight} exceeds the tree distance {best}",
            )
            if gamma is not None:
                check(
                    weight <= gamma * base + 1e-6,
                    f"path weight {weight} exceeds {gamma} x {base}",
                )
