"""Tree covers: robust/doubling (Thm 4.1), Ramsey/general, planar (Table 1)."""

from .base import CoverTree, TreeCover
from .dumbbell import (
    PairingCover,
    build_pairing_covers,
    path_replacement_bound,
    replaced_path_weight,
    robust_tree_cover,
    robustness_certificate,
)
from .hst import PartitionHierarchy, build_hst, ckr_partition
from .planar import planar_tree_cover
from .ramsey import few_trees_cover, ramsey_tree_cover

__all__ = [
    "CoverTree",
    "TreeCover",
    "PairingCover",
    "build_pairing_covers",
    "path_replacement_bound",
    "replaced_path_weight",
    "robust_tree_cover",
    "robustness_certificate",
    "PartitionHierarchy",
    "build_hst",
    "ckr_partition",
    "planar_tree_cover",
    "few_trees_cover",
    "ramsey_tree_cover",
]
