"""Tree covers: robust/doubling (Thm 4.1), Ramsey/general, planar (Table 1),
compact doubling (arXiv:2508.11555), plus contract-preserving pruning."""

from .base import CoverTree, TreeCover
from .compact import compact_tree_cover
from .dumbbell import (
    PairingCover,
    build_pairing_covers,
    path_replacement_bound,
    replaced_path_weight,
    robust_tree_cover,
    robustness_certificate,
)
from .hst import PartitionHierarchy, build_hst, ckr_partition
from .planar import planar_tree_cover
from .prune import PruneReport, prune_cover
from .ramsey import few_trees_cover, ramsey_tree_cover

__all__ = [
    "CoverTree",
    "TreeCover",
    "PruneReport",
    "prune_cover",
    "compact_tree_cover",
    "PairingCover",
    "build_pairing_covers",
    "path_replacement_bound",
    "replaced_path_weight",
    "robust_tree_cover",
    "robustness_certificate",
    "PartitionHierarchy",
    "build_hst",
    "ckr_partition",
    "planar_tree_cover",
    "few_trees_cover",
    "ramsey_tree_cover",
]
