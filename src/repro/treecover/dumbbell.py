"""Robust tree covers for doubling metrics (Theorem 4.1).

This is the paper's generalization of the Euclidean "Dumbbell Tree"
theorem [ADM+95]: a ``(1 + O(ε), ε^{-O(d)})``-tree cover in which every
internal tree vertex may be replaced by an *arbitrary* descendant leaf
without hurting the stretch — the property ("robustness") that powers
the fault-tolerant spanners of Theorem 4.2.

Construction (Section 4.2):

* **Step 1 — pairing covers.**  For each level ``i`` of a net hierarchy,
  pack all net-point pairs within the pairing radius into sets whose
  pairs are mutually well separated — each point gets at most one
  partner per set and every close pair is paired somewhere, exactly
  Definition 4.2.  (The paper realizes the same properties with a
  two-step partition/σ₂-expansion; greedy packing yields far fewer sets
  — see the :func:`build_pairing_covers` docstring.)
* **Step 2 — trees.**  For each set index ``j`` and phase
  ``p ∈ {0..L-1}`` (``L = ⌈log 1/ε⌉``), build a tree bottom-up over the
  levels ``i ≡ p (mod L)``: every pair ``(x, y)`` of the j-th set merges
  the subtrees of ``x`` and ``y`` together with all subtrees containing
  net points of ``N_{i-L}`` near them, under a fresh internal node.
  The connectivity merges of Section 4.3 (around every net point of
  ``N_i``) keep the forest's trees anchored at net points.

The merge radii are derived from the measured net covering radii and a
diameter fixed-point computation rather than the paper's worst-case
constants (which assume eps <= 1/12); stretch is verified empirically in
tests and benches.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InvariantViolation, check
from ..graphs.tree import Tree
from ..metrics.base import Metric
from ..metrics.doubling import NetHierarchy
from ..observability import OBS, trace
from ..parallel import map_per_tree
from .base import CoverTree, TreeCover

_C_PAIRING_SETS = OBS.registry.counter("cover.robust.pairing_sets")
_C_MERGE_GROUPS = OBS.registry.counter("cover.robust.merge_groups")

__all__ = [
    "PairingCover",
    "build_pairing_covers",
    "covering_radius",
    "pairing_radius",
    "path_replacement_bound",
    "robustness_certificate",
    "robust_tree_cover",
    "replaced_path_weight",
]


class PairingCover:
    """The pairing cover 𝒞_i of one net level: a list of pair lists."""

    def __init__(self, level: int, sets: List[List[Tuple[int, int]]]):
        self.level = level
        #: sets[j] is the j-th pairing set, as (x, partner) pairs.
        self.sets = sets

    def __len__(self) -> int:
        return len(self.sets)

    def verify(self, metric: Metric, eps: float) -> None:
        """Check properties (1) and (2) of Definition 4.2; raises
        :class:`~repro.errors.InvariantViolation` on violation."""
        radius = pairing_radius(eps, self.level, 2.0 ** (self.level + 1))
        for pairs in self.sets:
            partner: Dict[int, int] = {}
            for x, y in pairs:
                for end, other in ((x, y), (y, x)):
                    if end in partner and partner[end] != other:
                        raise InvariantViolation(
                            f"point {end} paired twice in one set (level {self.level})"
                        )
                    partner[end] = other
                check(
                    metric.distance(x, y) <= radius + 1e-9,
                    f"pair ({x}, {y}) too far apart at level {self.level}",
                )


def covering_radius(metric: Metric, hierarchy: NetHierarchy, level: int) -> float:
    """Measured covering radius of ``N_level`` over the whole point set.

    The paper assumes nets cover within ``2^i``; a greedy nested
    hierarchy only guarantees ``2^{i+1}``, but the *actual* radius is
    usually close to ``2^i`` — using the measured value keeps the
    pairing radius (and hence ζ) small without losing coverage.
    """
    net = hierarchy.nets[level]
    if len(net) == metric.n:
        return 0.0
    if metric.supports_batch:
        _, dist = metric.nearest_many(range(metric.n), net, return_distance=True)
        return float(dist.max())
    worst = 0.0
    for p in range(metric.n):
        worst = max(worst, min(metric.distance(p, q) for q in net))
    return worst


def pairing_radius(eps: float, level: int, cov: float) -> float:
    """Radius within which level-``level`` net points must be paired.

    Derived from Equation 2 of the paper: a pair x, y handled at level i
    has ``δ(x, y) <= 2^{i-1}/ε``, and its nearest net points p, q satisfy
    ``δ(p, q) <= δ(x, y) + 2·cov``.
    """
    return (0.5 / eps) * 2.0**level + 2.0 * cov + 1e-9


def build_pairing_covers(
    metric: Metric, hierarchy: NetHierarchy, eps: float
) -> Dict[int, PairingCover]:
    """Pairing covers for every level of the hierarchy (Step 1).

    Deviating from the paper's two-step (partition, then σ₂ sets per
    part) enumeration, we *pack* the near pairs greedily into sets under
    the same separation invariant — every two pairs in one set keep all
    endpoint distances above the separation threshold.  This yields the
    identical Definition 4.2 guarantees (each point has at most one
    partner per set; every close pair is paired somewhere) with far
    fewer sets, because one set can host pairs from different regions.
    """
    covers: Dict[int, PairingCover] = {}
    for i in range(hierarchy.i_min, hierarchy.i_max + 1):
        net = hierarchy.nets[i]
        cov = covering_radius(metric, hierarchy, i)
        pair_radius = pairing_radius(eps, i, cov)
        # Separation > 2x pairing radius keeps partners unique; the
        # extra 10 * 2^i keeps distinct pairs' gathered subtrees apart
        # (the forest property of Lemma 4.3).
        separation = 2.0 * pair_radius + 10.0 * 2.0**i

        near_lists = hierarchy.net_points_within_many(i, net, pair_radius)
        pairs_at_level: List[Tuple[int, int]] = [
            (x, y) for x, nbrs in zip(net, near_lists) for y in nbrs if y > x
        ]
        if pairs_at_level:
            dist = metric.pair_distances(
                [x for x, _ in pairs_at_level], [y for _, y in pairs_at_level]
            )
            order = sorted(
                range(len(pairs_at_level)),
                key=lambda t: (dist[t], pairs_at_level[t]),
            )
            pairs_at_level = [pairs_at_level[t] for t in order]

        # One batched separation sweep for every endpoint in play.
        endpoints = sorted({v for pair in pairs_at_level for v in pair})
        sep_lists = hierarchy.net_points_within_many(i, endpoints, separation)
        sep_near = dict(zip(endpoints, sep_lists))

        sets: List[List[Tuple[int, int]]] = []
        # endpoint_sets[v] = indices of sets already using v as an endpoint.
        endpoint_sets: Dict[int, set] = {}
        for x, y in pairs_at_level:
            blocked = set()
            for end in (x, y):
                for z in sep_near[end]:
                    blocked |= endpoint_sets.get(z, set())
            index = 0
            while index in blocked:
                index += 1
            if index == len(sets):
                sets.append([])
            sets[index].append((x, y))
            for end in (x, y):
                endpoint_sets.setdefault(end, set()).add(index)
        covers[i] = PairingCover(i, sets)
    return covers


class _ForestBuilder:
    """Bottom-up tree assembly with union-find over metric points."""

    def __init__(self, n: int):
        self.parent_node: List[int] = [-1] * n  # tree structure being built
        self.rep: List[int] = list(range(n))  # representative point per node
        self._uf: List[int] = list(range(n))  # union-find over points
        self._root_node: List[int] = list(range(n))  # comp leader -> root node
        self._leaders: set = set(range(n))  # live component leaders

    def find(self, p: int) -> int:
        uf = self._uf
        while uf[p] != p:
            uf[p] = uf[uf[p]]
            p = uf[p]
        return p

    def root_of(self, p: int) -> int:
        return self._root_node[self.find(p)]

    def merge(self, points: Sequence[int], rep: int) -> None:
        """Put the subtrees containing ``points`` under a new node."""
        # Path-halving find, inlined: this loop runs millions of times
        # per cover and call overhead dominates otherwise.  Most replayed
        # groups are already connected, so the fast path tracks only the
        # leaders that differ from the first point's.
        uf = self._uf
        p = points[0]
        while uf[p] != p:
            uf[p] = uf[uf[p]]
            p = uf[p]
        head = p
        extra = None
        for p in points[1:]:
            while uf[p] != p:
                uf[p] = uf[uf[p]]
                p = uf[p]
            if p != head:
                if extra is None:
                    extra = {p}
                else:
                    extra.add(p)
        if extra is None:
            return
        root_node = self._root_node
        node = len(self.parent_node)
        self.parent_node.append(-1)
        self.rep.append(rep)
        parent_node = self.parent_node
        parent_node[root_node[head]] = node
        leaders = self._leaders
        for other in extra:
            parent_node[root_node[other]] = node
            uf[other] = head
            leaders.discard(other)
        root_node[head] = node

    def finish(self, metric: Metric, n: int) -> CoverTree:
        """Close the forest into one tree and emit a CoverTree."""
        root_node = self._root_node
        roots = sorted({root_node[leader] for leader in self._leaders})
        if len(roots) > 1:
            node = len(self.parent_node)
            self.parent_node.append(-1)
            self.rep.append(self.rep[roots[0]])
            for r in roots:
                self.parent_node[r] = node
        parent_node = self.parent_node
        rep = self.rep
        # Edge weights in one batched kernel call instead of one scalar
        # metric.distance per tree vertex.
        children = [v for v, p in enumerate(parent_node) if p != -1]
        weights = [0.0] * len(parent_node)
        if children:
            ws = metric.pair_distances(
                [rep[parent_node[v]] for v in children], [rep[v] for v in children]
            )
            for index, v in enumerate(children):
                weights[v] = float(ws[index])
        tree = Tree(parent_node, weights, validate=False)
        return CoverTree(tree, list(range(n)), rep)


def _build_robust_tree(ctx, task: Tuple[int, int]) -> CoverTree:
    """Per-tree fan-out unit: replay one (phase, set-index) merge script.

    The merge groups are precomputed once in the parent (they depend
    only on the hierarchy); each tree replays its groups against a fresh
    union-find, so trees build independently and deterministically on
    any worker.  The metric arrives through shared memory and is only
    touched by the final batched edge-weight kernel.
    """
    p, j = task
    levels_by_phase, conn_groups, pair_groups, n = ctx.payload
    builder = _ForestBuilder(n)
    merge = builder.merge
    for i in levels_by_phase[p]:
        groups = pair_groups.get(i)
        if groups is not None and j < len(groups):
            for group in groups[j]:
                merge(group, rep=group[0])
        for group in conn_groups[i]:
            merge(group, rep=group[0])
    return builder.finish(ctx.metric, n)


def robust_tree_cover(
    metric: Metric,
    eps: float = 0.5,
    hierarchy: Optional[NetHierarchy] = None,
    workers: Optional[int] = None,
) -> TreeCover:
    """The robust ``(1 + O(ε), ε^{-O(d)})``-tree cover of Theorem 4.1.

    ``workers`` fans the per-tree forest replays out over a process
    pool (``None`` defers to ``REPRO_WORKERS``; 0/1 builds serially);
    the output is identical for any worker count.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must lie in (0, 1)")
    with trace("robust_cover", n=metric.n, eps=eps):
        return _robust_tree_cover(metric, eps, hierarchy, workers)


def _robust_tree_cover(
    metric: Metric,
    eps: float,
    hierarchy: Optional[NetHierarchy],
    workers: Optional[int],
) -> TreeCover:
    if hierarchy is None:
        # Extend the hierarchy below the minimum distance so that every
        # pair, however close, has a level i with 2^i in [2*eps*d, 4*eps*d)
        # (the paper achieves this by scaling so d_min > 1/(4*eps)).
        from ..metrics.doubling import scale_levels

        lo, hi = scale_levels(metric)
        lo -= math.ceil(math.log2(1.0 / eps)) + 2
        hierarchy = NetHierarchy(metric, i_min=lo, i_max=hi)
    with trace("pairing_covers"):
        covers = build_pairing_covers(metric, hierarchy, eps)
    if OBS.enabled:
        _C_PAIRING_SETS.inc(sum(len(c) for c in covers.values()))
    # Two phases beyond the paper's ceil(log 1/eps) shrink the ratio
    # between consecutive processed levels to <= eps/4, which keeps the
    # subtree-diameter recursion (Lemma 4.3) convergent for every
    # eps < 1, not only the eps <= 1/12 regime of the paper's analysis.
    phases = math.ceil(math.log2(1.0 / eps)) + 2
    ratio = 2.0**-phases
    # Gather radius: must capture the whole subtree holding a point that
    # a net point covers; solves the diameter fixed point D = rho + 4 +
    # 2*G + 2*r*D, G = 2 + r*D (in units of 2^i).
    gather = (2.0 + 0.5 * ratio / eps) / (1.0 - 4.0 * ratio) + 0.5
    num_sets = max((len(c) for c in covers.values()), default=0)

    # Per phase, only set indexes that actually occur at some level of
    # that phase need a tree; one extra pure-connectivity tree per phase
    # keeps every point covered even if a phase has no pairing sets.
    sets_per_phase = [0] * phases
    for i, cover in covers.items():
        phase = (i - (hierarchy.i_min + 1)) % phases
        sets_per_phase[phase] = max(sets_per_phase[phase], len(cover))

    # Precompute every merge group once, with batched near-net sweeps —
    # the same groups are replayed against a fresh union-find per tree.
    # Connectivity groups (Section 4.3: around every current net point,
    # so each surviving tree is anchored at a net point of the level
    # just processed) depend only on the level; pair-gather groups on
    # (level, set index).
    top = hierarchy.i_max + phases
    conn_groups: Dict[int, List[List[int]]] = {}
    pair_groups: Dict[int, List[List[List[int]]]] = {}
    with trace("merge_groups"):
        for i in range(hierarchy.i_min + 1, top + 1):
            lower = i - phases
            net = hierarchy.net(min(i, hierarchy.i_max))
            near_conn = hierarchy.net_points_within_many(lower, net, 2.0 * 2.0**i)
            conn_groups[i] = [
                group
                for z, nbrs in zip(net, near_conn)
                if len(group := list(dict.fromkeys([z] + nbrs))) > 1
            ]
            cover = covers.get(i)
            if cover is None or not cover.sets:
                continue
            endpoints = sorted(
                {v for pairs in cover.sets for pair in pairs for v in pair}
            )
            gath_lists = hierarchy.net_points_within_many(
                lower, endpoints, gather * 2.0**i
            )
            gath = dict(zip(endpoints, gath_lists))
            pair_groups[i] = [
                [
                    list(dict.fromkeys([x, y] + gath[x] + gath[y]))
                    for x, y in pairs
                ]
                for pairs in cover.sets
            ]
        if OBS.enabled:
            _C_MERGE_GROUPS.inc(
                sum(len(g) for g in conn_groups.values())
                + sum(len(s) for sets in pair_groups.values() for s in sets)
            )

    levels_by_phase = [
        [
            i
            for i in range(hierarchy.i_min + 1, top + 1)
            if (i - (hierarchy.i_min + 1)) % phases == p % phases
        ]
        for p in range(phases)
    ]
    tasks = [
        (p, j) for p in range(phases) for j in range(max(sets_per_phase[p], 1))
    ]
    with trace("build_trees", trees=len(tasks)):
        trees: List[CoverTree] = map_per_tree(
            _build_robust_tree,
            tasks,
            workers=workers,
            metric=metric,
            payload=(levels_by_phase, conn_groups, pair_groups, metric.n),
        )
    return TreeCover(metric, trees)


def path_replacement_bound(
    cover_tree: CoverTree,
    metric: Metric,
    p: int,
    q: int,
    descendants: Optional[List[List[int]]] = None,
) -> float:
    """An upper bound on the p-q path weight under *any* leaf replacement.

    For every vertex ``v`` on the tree path an adversary may substitute
    any descendant leaf ``l_v``; since ``δ(l_v, rep_v)`` is at most the
    subtree radius around the representative, the replaced path weighs
    at most ``stored path weight + 2·Σ radius_v``.  A cover is robust
    iff for every pair some tree keeps this bound near ``δ(p, q)``.
    """
    if descendants is None:
        descendants = cover_tree.descendant_points()
    path = cover_tree.tree.path(
        cover_tree.vertex_of_point[p], cover_tree.vertex_of_point[q]
    )
    total = 0.0
    for a, b in zip(path, path[1:]):
        total += metric.distance(cover_tree.rep_point[a], cover_tree.rep_point[b])
    for v in path[1:-1]:
        rep = cover_tree.rep_point[v]
        radius = max(
            (metric.distance(rep, leaf) for leaf in descendants[v]), default=0.0
        )
        total += 2.0 * radius
    return total


def robustness_certificate(cover: TreeCover, p: int, q: int) -> float:
    """min over trees of the adversarial-replacement bound over δ(p, q).

    Values staying bounded as the adversary ranges over all leaf choices
    certify property (2) of Definition 4.1 empirically.
    """
    metric = cover.metric
    base = metric.distance(p, q)
    if base == 0:
        return 1.0
    best = float("inf")
    for cover_tree in cover.trees:
        best = min(best, path_replacement_bound(cover_tree, metric, p, q))
        if best <= base * 1.0000001:
            break
    return best / base


def replaced_path_weight(
    cover_tree: CoverTree,
    metric: Metric,
    p: int,
    q: int,
    rng: random.Random,
    descendants: Optional[List[List[int]]] = None,
) -> float:
    """Weight of the p-q tree path with internal vertices replaced by
    *random* descendant leaves — property (2) of Definition 4.1.

    Used to verify robustness: for a robust cover the returned weight is
    at most γ·δ(p, q) for the pair's covering tree, no matter which
    leaves the adversary picks.
    """
    if descendants is None:
        descendants = cover_tree.descendant_points()
    path = cover_tree.tree.path(
        cover_tree.vertex_of_point[p], cover_tree.vertex_of_point[q]
    )
    chosen: List[int] = []
    for v in path:
        pool = descendants[v]
        chosen.append(pool[rng.randrange(len(pool))] if pool else cover_tree.rep_point[v])
    chosen[0] = p
    chosen[-1] = q
    total = 0.0
    for a, b in zip(chosen, chosen[1:]):
        total += metric.distance(a, b)
    return total
