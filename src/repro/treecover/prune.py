"""Contract-preserving tree-cover pruning (greedy set cover over pairs).

The Theorem 4.1 construction emits one tree per (phase, pairing-set)
slot, so ζ grows with n even though most trees end up *redundant*: the
pairs a tree covers within the declared stretch are usually covered by
other trees too.  Every downstream cost — navigator build, per-query
fan-out, checkpoint size, mmap arena, daemon memory — scales with ζ,
so dropping dominated trees compounds with every hot-path win.

:func:`prune_cover` makes the redundancy explicit and removes it:

1. **Pair-coverage matrix.**  For an evaluation pair set (all pairs
   when small enough, else a deterministic sample) and a stretch
   budget γ, tree ``t`` covers pair ``(p, q)`` iff
   ``d_T(p, q) <= γ · δ(p, q)``.  Rows are computed with the batched
   LCA distance kernels (:meth:`CoverTree.tree_distances_many`) and
   fanned out per tree via :func:`repro.parallel.map_per_tree`,
   returned bit-packed so the matrix stays a few MB even at ζ ≈ 3000.
2. **Greedy set cover.**  Trees are retained greedily by marginal pair
   coverage (ties to the lowest index, so the result is deterministic
   at any worker count); everything else is a candidate drop.  Ramsey
   home trees are mandatory — the O(1) home-tree contract survives.
3. **Contract re-verification.**  Each candidate drop is admitted only
   because the retained set still covers every evaluated pair within γ
   (checked against the coverage matrix), and the pruned cover is then
   re-audited with the existing :class:`~repro.checkpoint.audit.CoverContract`
   machinery before it is returned — a failed audit raises instead of
   returning a cover that silently broke Table 1.

Retained trees are the *same objects* as in the input cover, so query
answers on them are bit-identical pre/post prune (pinned by
``tests/test_packed_query.py``); the pruned cover is a fresh
:class:`TreeCover` with its own packed-arena/LRU state, honoring the
``TreeCover.retire`` / :class:`~repro.errors.StalePackError` protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import InvariantViolation, StalePackError, check
from ..metrics.base import sample_pairs
from ..observability import OBS, trace
from ..parallel import map_per_tree
from .base import TreeCover

__all__ = ["DEFAULT_MAX_PAIRS", "PruneReport", "prune_cover"]

#: Evaluation-pair budget: below this many total pairs the coverage
#: matrix is exact (all pairs); above it a deterministic sample is used
#: and the stretch budget carries ``eps`` slack for the unseen pairs.
DEFAULT_MAX_PAIRS = 50_000

_C_PRUNES = OBS.registry.counter("cover.prunes")
_G_DROPPED = OBS.registry.gauge("cover.pruned_trees_dropped")

# Bits-set lookup for uint8: greedy marginal gains over the bit-packed
# coverage matrix are two gathers and a sum instead of an unpack.
_POPCOUNT = np.array(
    [bin(v).count("1") for v in range(256)], dtype=np.int64
)


@dataclass
class PruneReport:
    """What a prune did: the new cover plus the evidence for it."""

    cover: TreeCover
    #: Original tree indexes retained, ascending; ``cover.trees[i]`` is
    #: the same object as the input cover's ``trees[retained[i]]``.
    retained: List[int] = field(default_factory=list)
    zeta_before: int = 0
    zeta_after: int = 0
    #: The stretch budget every evaluated pair is covered within.
    gamma: float = 0.0
    pairs_evaluated: int = 0
    #: True when the coverage matrix was exact (all pairs), False when
    #: it was a deterministic sample.
    exact: bool = False
    seconds: float = 0.0

    @property
    def reduction(self) -> float:
        """ζ_before / ζ_after."""
        return self.zeta_before / max(1, self.zeta_after)

    def format_summary(self) -> str:
        kind = "all pairs" if self.exact else "sampled pairs"
        return (
            f"prune: ζ {self.zeta_before} -> {self.zeta_after} "
            f"({self.reduction:.1f}x) within γ={self.gamma:.3f} over "
            f"{self.pairs_evaluated} {kind} in {self.seconds:.2f}s"
        )


def _evaluation_pairs(
    n: int, max_pairs: int, seed: int
) -> Tuple[List[Tuple[int, int]], bool]:
    """(pairs, exact): all pairs when affordable, else a seeded sample."""
    total = n * (n - 1) // 2
    if total <= max_pairs:
        return [(p, q) for p in range(n) for q in range(p + 1, n)], True
    return sample_pairs(n, max_pairs, seed=seed), False


def _coverage_row(ctx, cover_tree) -> np.ndarray:
    """Per-tree fan-out unit: bit-packed within-γ pair coverage.

    One vectorized LCA batch per tree; the bool row packs to
    ``ceil(P/8)`` bytes so shipping ζ rows back stays cheap.
    """
    ps, qs, limits = ctx.payload
    d = np.asarray(cover_tree.tree_distances_many(ps, qs), dtype=float)
    return np.packbits(d <= limits)


def prune_cover(
    cover: TreeCover,
    eps: float = 0.05,
    gamma: Optional[float] = None,
    max_pairs: int = DEFAULT_MAX_PAIRS,
    seed: int = 0,
    workers: Optional[int] = None,
) -> PruneReport:
    """Greedily drop trees whose pair coverage is dominated; re-verify.

    ``gamma`` is the stretch budget retained trees must meet for every
    evaluated pair.  When ``None`` it is derived from the cover itself:
    the worst stretch the *full* cover achieves over the evaluation
    pairs, times ``1 + eps`` — so the declared Table 1 contract
    (measured stretch plus headroom, see ``cli._declared_contract``)
    always survives pruning.  An explicit ``gamma`` below what the
    cover achieves raises :class:`~repro.errors.InvariantViolation`
    rather than returning a cover that cannot honor it.

    Deterministic for fixed inputs at any worker count: the pair sample
    is seeded, rows merge in tree order, and greedy ties resolve to the
    lowest tree index — which is what lets checkpoint recovery replay a
    prune from the builder spec and land on the identical cover.
    """
    if cover.retired:
        raise StalePackError(
            "refusing to prune a retired cover; prune the live generation",
            hint="the dynamic layer retired this cover after a mutation",
        )
    if eps < 0:
        raise ValueError("eps must be non-negative")
    if max_pairs < 1:
        raise ValueError("max_pairs must be positive")
    with trace("cover.prune", zeta=cover.size, eps=eps):
        return _prune_cover(cover, eps, gamma, max_pairs, seed, workers)


def _prune_cover(
    cover: TreeCover,
    eps: float,
    gamma: Optional[float],
    max_pairs: int,
    seed: int,
    workers: Optional[int],
) -> PruneReport:
    start = time.perf_counter()
    metric = cover.metric
    n = metric.n
    zeta = cover.size
    pairs, exact = _evaluation_pairs(n, max_pairs, seed)
    ps = [p for p, _ in pairs]
    qs = [q for _, q in pairs]
    base = np.asarray(metric.pair_distances(ps, qs), dtype=float)

    # The budget comes from how the cover actually answers: the O(ζ)
    # min-scan for ordinary covers, the home tree for Ramsey covers
    # (whose home answer is *worse* than the min — deriving γ from the
    # min would declare a contract the home-tree path cannot meet).
    # The scan also warms each consulted tree's LCA index, which the
    # coverage fan-out reuses on the serial path.
    best = np.asarray([d for _, d in cover.best_trees(pairs)], dtype=float)
    positive = base > 0
    worst = float((best[positive] / base[positive]).max()) if positive.any() else 1.0
    if gamma is None:
        gamma = worst * (1.0 + eps)
    elif worst > gamma + 1e-6:
        raise InvariantViolation(
            f"cannot prune to γ={gamma}: the full cover only achieves "
            f"stretch {worst:.4f} on the evaluation pairs"
        )
    # Zero-distance pairs have stretch 1.0 by convention — any tree
    # covers them.
    limits = np.where(positive, base * gamma + 1e-9, np.inf)

    with trace("cover.prune.coverage", pairs=len(pairs)):
        rows = map_per_tree(
            _coverage_row,
            cover.trees,
            workers=workers,
            metric=metric,
            payload=(ps, qs, limits),
        )
    matrix = np.vstack(rows)  # (ζ, ceil(P/8)) uint8

    # packbits pads the last byte with zero bits, so starting from the
    # packed all-ones mask never counts phantom pairs.
    uncovered = np.packbits(np.ones(len(pairs), dtype=bool))
    selected: List[int] = []
    if cover.home is not None:
        # Home trees are mandatory: the Ramsey O(1) lookup contract
        # names them per point, so they can never be a candidate drop.
        selected = sorted(set(cover.home))
        for t in selected:
            uncovered &= ~matrix[t]
    in_set = np.zeros(zeta, dtype=bool)
    in_set[selected] = True
    with trace("cover.prune.greedy"):
        while uncovered.any():
            gains = _POPCOUNT[matrix & uncovered].sum(axis=1)
            gains[in_set] = -1
            t = int(np.argmax(gains))  # first occurrence: lowest index
            if gains[t] <= 0:
                raise InvariantViolation(
                    "evaluation pairs left uncoverable within "
                    f"γ={gamma}: the coverage matrix is inconsistent"
                )
            selected.append(t)
            in_set[t] = True
            uncovered &= ~matrix[t]

    retained = sorted(selected)
    # Every non-selected tree is a candidate drop; re-verify the
    # contract for each before committing: the retained set must cover
    # every evaluated pair on its own (the drop's coverage must be
    # dominated), which is exactly the Table 1 stretch contract
    # restricted to the evaluation pairs.
    retained_or = np.zeros_like(uncovered)
    for t in retained:
        retained_or |= matrix[t]
    full = np.packbits(np.ones(len(pairs), dtype=bool))
    check(
        bool(((retained_or & full) == full).all()),
        "a candidate drop would uncover evaluated pairs "
        "(retained set does not dominate the dropped trees)",
    )

    trees = [cover.trees[t] for t in retained]
    home = None
    if cover.home is not None:
        remap = {t: i for i, t in enumerate(retained)}
        home = [remap[t] for t in cover.home]
    pruned = TreeCover(metric, trees, home=home)

    # Seal with the existing audit machinery: structure, domination and
    # the (γ, ζ_after) contract on an independent sample plus the worst
    # evaluated pairs.  Lazy import — checkpoint.audit imports this
    # package.
    from ..checkpoint.audit import CoverContract, audit_cover

    order = np.argsort(-np.where(positive, best / np.maximum(base, 1e-300), 1.0))
    audit_pairs = [pairs[i] for i in order[:200]]
    audit_cover(
        pruned,
        contract=CoverContract(gamma=gamma, max_trees=len(retained)),
        pairs=audit_pairs,
        workers=workers,
    )

    if OBS.enabled:
        _C_PRUNES.inc()
        _G_DROPPED.set(zeta - len(retained))
    return PruneReport(
        cover=pruned,
        retained=retained,
        zeta_before=zeta,
        zeta_after=len(retained),
        gamma=float(gamma),
        pairs_evaluated=len(pairs),
        exact=exact,
        seconds=time.perf_counter() - start,
    )
