"""Tree-cover containers and verification.

A *(γ, ζ)-tree cover* of a metric ``(X, δ)`` (Section 1.2 of the paper)
is a collection of ζ dominating trees such that every pair of points has
a tree preserving its distance to within γ.  A *Ramsey* cover
additionally gives every point a home tree good for **all** its pairs.

:class:`CoverTree` wraps one dominating tree: a rooted weighted
:class:`~repro.graphs.tree.Tree` whose vertices each carry a
*representative point*; metric points occupy a designated vertex each
(possibly internal).  Edge weights are metric distances between the
representatives of the endpoints, so tree distances dominate metric
distances by the triangle inequality whenever each point's designated
vertex has itself as representative.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import StalePackError, check
from ..graphs.tree import Tree
from ..metrics.base import Metric, sample_pairs
from ..metrics.tree_metric import TreeMetric
from ..observability import OBS
from .packed_index import PackedCoverIndex

__all__ = ["CoverTree", "TreeCover"]

# Trees consulted per best-tree selection: 1 for Ramsey home-tree
# lookups, ζ for the ordinary scan — the O(1) vs O(ζ) contrast of
# Section 3.2 made measurable.  The packed index answers the scan with
# vectorized array ops but still *consults* ζ oracles, so the
# histogram's semantics are unchanged; cache hits count as selections
# too (the selection happened, just from memory).
_C_SELECTIONS = OBS.registry.counter("cover.selections")
_H_CONSULTED = OBS.registry.histogram("cover.trees_consulted")
_C_CACHE_HITS = OBS.registry.counter("cover.pair_cache_hits")
_C_CACHE_MISSES = OBS.registry.counter("cover.pair_cache_misses")

# Entries kept by the per-cover (p, q) -> (tree, distance) LRU.
_PAIR_CACHE_CAP = 4096


class CoverTree:
    """One dominating tree of a cover.

    Parameters
    ----------
    tree:
        Rooted weighted tree; vertex count may exceed the number of
        metric points (Steiner vertices).
    vertex_of_point:
        ``vertex_of_point[p]`` is the tree vertex hosting metric point
        ``p``.
    rep_point:
        ``rep_point[v]`` is the metric point represented by tree vertex
        ``v`` (for a point's own vertex this is the point itself).
    """

    def __init__(self, tree: Tree, vertex_of_point: Sequence[int], rep_point: Sequence[int]):
        self.tree = tree
        self.vertex_of_point = list(vertex_of_point)
        self.rep_point = list(rep_point)
        if len(self.rep_point) != tree.n:
            raise ValueError("rep_point must cover every tree vertex")
        self._tree_metric: Optional[TreeMetric] = None

    @property
    def tree_metric(self) -> TreeMetric:
        if self._tree_metric is None:
            self._tree_metric = TreeMetric(self.tree)
        return self._tree_metric

    def __getstate__(self):
        # LCA state is derived; crossing a pickle boundary (parallel
        # worker results, checkpoints) ships only the raw arrays.
        state = dict(self.__dict__)
        state["_tree_metric"] = None
        return state

    def reset_derived(self) -> None:
        """Drop the derived LCA/level-ancestor state so it is recomputed.

        Checkpoint recovery calls this after swapping a repaired tree
        in: the raw arrays are authoritative, everything derived from
        them (the sparse-table LCA index inside :class:`TreeMetric`) is
        rebuilt lazily on next use.
        """
        self._tree_metric = None

    def tree_distance(self, p: int, q: int) -> float:
        """Distance between two metric points inside this tree (O(1))."""
        return self.tree_metric.distance(self.vertex_of_point[p], self.vertex_of_point[q])

    def tree_distances_many(self, ps: Sequence[int], qs: Sequence[int]) -> np.ndarray:
        """Elementwise tree distances for many point pairs in one sweep.

        One vectorized sparse-table LCA batch per call instead of one
        python-level query per pair — the kernel the O(ζ)-scan tree
        selection of :meth:`TreeCover.best_trees` is built on.
        """
        vop = self.vertex_of_point
        return self.tree_metric.pair_distances(
            [vop[p] for p in ps], [vop[q] for q in qs]
        )

    def tree_path_points(self, p: int, q: int) -> List[int]:
        """The tree path between two points, as representative points."""
        path = self.tree.path(self.vertex_of_point[p], self.vertex_of_point[q])
        return [self.rep_point[v] for v in path]

    def descendant_points(self) -> List[List[int]]:
        """For each tree vertex, the metric points hosted in its subtree.

        Used by the fault-tolerant constructions (the sets ``R(v)`` of
        Theorem 4.2 are prefixes of these lists).  Points hosted at
        internal vertices count as descendants of that vertex.
        """
        below: List[List[int]] = [[] for _ in range(self.tree.n)]
        host = [-1] * self.tree.n
        for p, v in enumerate(self.vertex_of_point):
            host[v] = p
        for v in self.tree.postorder():
            if host[v] != -1:
                below[v].append(host[v])
            for c in self.tree.children[v]:
                below[v].extend(below[c])
        return below

    def check_dominating(self, metric: Metric, pairs: Sequence[Tuple[int, int]]) -> None:
        """Check domination (δ_T >= δ_X) on the given pairs; raises
        :class:`~repro.errors.InvariantViolation` on violation."""
        for p, q in pairs:
            td = self.tree_distance(p, q)
            md = metric.distance(p, q)
            check(
                td >= md - 1e-6 * max(1.0, md),
                f"tree distance {td} below metric distance {md} for ({p}, {q})",
            )


class TreeCover:
    """A collection of dominating trees over one metric."""

    def __init__(
        self,
        metric: Metric,
        trees: List[CoverTree],
        home: Optional[List[int]] = None,
    ):
        self.metric = metric
        self.trees = trees
        #: Ramsey covers: home[p] = index of the tree covering p against
        #: every other point; ``None`` for ordinary covers.
        self.home = home
        # Derived query state: the packed selection index (built lazily
        # on first scalar selection) and the (p, q) LRU over results.
        self._packed: Optional[PackedCoverIndex] = None
        self._packed_failed = False
        self._pair_cache: "OrderedDict[Tuple[int, int], Tuple[int, float]]" = (
            OrderedDict()
        )
        # Set by the dynamic layer when a mutation supersedes this
        # cover; see :meth:`retire`.
        self._retired_reason: Optional[str] = None

    @property
    def size(self) -> int:
        """The number of trees ζ."""
        return len(self.trees)

    def __getstate__(self):
        # The packed index and LRU are derived (and may hold memmap
        # views); rebuild lazily on the receiving side.
        state = dict(self.__dict__)
        state["_packed"] = None
        state["_packed_failed"] = False
        state["_pair_cache"] = OrderedDict()
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Covers pickled before these fields existed.
        self.__dict__.setdefault("_packed", None)
        self.__dict__.setdefault("_packed_failed", False)
        self.__dict__.setdefault("_pair_cache", OrderedDict())
        self.__dict__.setdefault("_retired_reason", None)

    def retire(self, reason: str) -> None:
        """Mark this cover as superseded by a mutation.

        The dynamic layer calls this on the pre-mutation cover when it
        swaps a patched generation in.  An already-built packed arena
        keeps answering (in-flight query batches hold a snapshot of
        *this* generation, for which its preorder positions are still
        correct), but building a *new* arena from a retired cover is
        refused with :class:`~repro.errors.StalePackError` — its
        positions would describe trees that no longer serve.
        """
        self._retired_reason = reason

    @property
    def retired(self) -> bool:
        return self._retired_reason is not None

    def packed_index(self, build: bool = True) -> Optional[PackedCoverIndex]:
        """The packed best-tree index; built on first scalar selection.

        Returns ``None`` when over the size budget (the legacy scan
        stays in charge) or when ``build=False`` and it does not exist
        yet.  Raises :class:`~repro.errors.StalePackError` when asked
        to *build* an arena for a cover that a mutation has retired.
        """
        if self._packed is None and build and not self._packed_failed:
            if self._retired_reason is not None:
                raise StalePackError(
                    "refusing to build a packed query arena from a retired "
                    f"cover ({self._retired_reason})"
                )
            self._packed = PackedCoverIndex.build(self.trees)
            if self._packed is None:
                self._packed_failed = True
        return self._packed

    def invalidate_query_state(self) -> None:
        """Drop the packed index and the pair LRU (tree content changed)."""
        self._packed = None
        self._packed_failed = False
        self._pair_cache.clear()

    def replace_tree(self, index: int, cover_tree: CoverTree) -> None:
        """Swap one tree of the cover for a freshly built replacement.

        The per-tree repair path of checkpoint recovery: only the
        corrupted tree is replaced, the other ζ − 1 trees (and the home
        table, which indexes trees positionally) stay untouched.
        """
        if not 0 <= index < len(self.trees):
            raise IndexError(f"no tree {index} in a cover of {len(self.trees)}")
        cover_tree.reset_derived()
        self.trees[index] = cover_tree
        self.invalidate_query_state()

    def best_tree(self, p: int, q: int) -> Tuple[int, float]:
        """The tree index minimizing the tree distance for the pair.

        Ramsey covers answer from the home tree in O(1); ordinary covers
        scan all ζ trees (O(ζ), as in Section 3.2 of the paper).
        """
        if OBS.enabled:
            _C_SELECTIONS.inc()
            _H_CONSULTED.observe(1 if self.home is not None else len(self.trees))
        cache = self._pair_cache
        key = (p, q) if p <= q else (q, p)
        hit = cache.get(key)
        if hit is not None:
            # Tree distances are symmetric and the scan's tie-break is
            # deterministic, so the cached answer is the exact answer.
            cache.move_to_end(key)
            if OBS.enabled:
                _C_CACHE_HITS.inc()
            return hit
        if OBS.enabled:
            _C_CACHE_MISSES.inc()
        if self.home is not None:
            index = self.home[p]
            packed = self.packed_index(build=False)
            if packed is not None:
                result = (index, packed.distance(index, p, q))
            else:
                result = (index, self.trees[index].tree_distance(p, q))
        else:
            packed = self.packed_index()
            if packed is not None:
                result = packed.best_pair(p, q)
            else:
                best_index = -1
                best = float("inf")
                for index, cover_tree in enumerate(self.trees):
                    d = cover_tree.tree_distance(p, q)
                    if d < best:
                        best = d
                        best_index = index
                result = (best_index, best)
        cache[key] = result
        if len(cache) > _PAIR_CACHE_CAP:
            cache.popitem(last=False)
        return result

    def best_trees(self, pairs: Sequence[Tuple[int, int]]) -> List[Tuple[int, float]]:
        """:meth:`best_tree` for many pairs at once.

        Ordinary covers still scan all ζ trees, but each tree answers
        every pair in one vectorized LCA batch, so the python-level work
        is O(ζ) instead of O(ζ · pairs).  Ties resolve to the lowest
        tree index, exactly like the scalar scan.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        if OBS.enabled:
            _C_SELECTIONS.inc(len(pairs))
            consulted = 1 if self.home is not None else len(self.trees)
            for _ in pairs:
                _H_CONSULTED.observe(consulted)
        # The packed index also answers batches; use it when a scalar
        # query already paid for the build (never build it for a batch —
        # the per-tree vectorized scan below is already O(ζ) python).
        packed = self.packed_index(build=False)
        if self.home is not None:
            if packed is not None:
                homes = [self.home[p] for p, _ in pairs]
                d = packed.distances(
                    homes, [p for p, _ in pairs], [q for _, q in pairs]
                )
                return list(zip(homes, d.tolist()))
            return [
                (self.home[p], self.trees[self.home[p]].tree_distance(p, q))
                for p, q in pairs
            ]
        ps = [p for p, _ in pairs]
        qs = [q for _, q in pairs]
        if packed is not None:
            return packed.best_pairs(ps, qs)
        best = np.full(len(pairs), np.inf)
        best_index = np.full(len(pairs), -1, dtype=np.int64)
        for index, cover_tree in enumerate(self.trees):
            d = np.asarray(cover_tree.tree_distances_many(ps, qs), dtype=float)
            better = d < best
            if better.any():
                best[better] = d[better]
                best_index[better] = index
        return list(zip(best_index.tolist(), best.tolist()))

    def pruned(self, eps: float = 0.05, **kwargs) -> "TreeCover":
        """A contract-preserving pruned copy of this cover.

        Greedy set cover over the pair-coverage matrix: trees whose
        within-stretch coverage is dominated by the retained set are
        dropped, and the result is re-audited against the derived
        ``(γ, ζ)`` contract before it is returned.  Retained trees are
        the *same objects*, so query answers on them are bit-identical.
        See :func:`repro.treecover.prune.prune_cover` (which also
        returns the :class:`~repro.treecover.prune.PruneReport` evidence
        and accepts ``gamma``/``max_pairs``/``seed``/``workers``).
        """
        from .prune import prune_cover

        return prune_cover(self, eps=eps, **kwargs).cover

    def memory_bytes(self) -> int:
        """Array-byte accounting of the cover's structural state.

        Counts the per-tree parent/weight arrays plus the
        vertex-of-point and representative tables at their serialized
        widths (int64 parent + float64 weight per vertex, int64 per
        point mapping) and the home table if present — deliberately not
        ``sys.getsizeof``, which would measure python object headers
        instead of the data.  Derived state (LCA tables, packed arena,
        LRU) is excluded; see ``PackedCoverIndex.nbytes`` for the arena.
        """
        total = 0
        for cover_tree in self.trees:
            total += 16 * cover_tree.tree.n  # parent (i8) + weight (f8)
            total += 8 * len(cover_tree.vertex_of_point)
            total += 8 * len(cover_tree.rep_point)
        if self.home is not None:
            total += 8 * len(self.home)
        return total

    def stretch(self, p: int, q: int) -> float:
        """The stretch the cover achieves for one pair."""
        base = self.metric.distance(p, q)
        if base == 0:
            return 1.0
        return self.best_tree(p, q)[1] / base

    def measured_stretch(
        self, pairs: Optional[Sequence[Tuple[int, int]]] = None, sample: int = 500
    ) -> Tuple[float, float]:
        """(max, mean) stretch over the given or sampled pairs."""
        if pairs is None:
            pairs = sample_pairs(self.metric.n, sample)
        pairs = list(pairs)
        tree_d = [d for _, d in self.best_trees(pairs)]
        values = []
        for (p, q), d in zip(pairs, tree_d):
            base = self.metric.distance(p, q)
            values.append(1.0 if base == 0 else d / base)
        return max(values), sum(values) / len(values)

    def verify(
        self,
        gamma: float,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
        sample: int = 300,
    ) -> None:
        """Check domination and stretch <= gamma on sampled pairs;
        raises :class:`~repro.errors.InvariantViolation` on violation."""
        if pairs is None:
            pairs = sample_pairs(self.metric.n, sample)
        for cover_tree in self.trees:
            cover_tree.check_dominating(self.metric, pairs)
        worst, _ = self.measured_stretch(pairs)
        check(worst <= gamma + 1e-6, f"cover stretch {worst} exceeds gamma {gamma}")
