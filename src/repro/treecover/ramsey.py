"""Ramsey tree covers for general metrics (Table 1, [MN06]).

A Ramsey ``(γ, ζ)``-tree cover gives every point a *home tree* whose
stretch to every other point is at most γ.  Mendel–Naor achieve
``γ = O(ℓ)`` with ``ζ = O(ℓ · n^{1/ℓ})`` trees deterministically; we
implement the randomized core (CKR hierarchical partitions with padded
point extraction), which achieves the same stretch with an extra
``O(log n)`` factor in the number of trees w.h.p. — see DESIGN.md for
the substitution note.

Algorithm: repeatedly draw a random partition hierarchy of the whole
space, turn it into a dominating HST, assign it as home tree to every
not-yet-homed point that was *padded* at all levels, and continue until
every point has a home.  The padding parameter ``alpha = 8ℓ`` makes the
per-iteration success probability about ``n^{-1/ℓ}`` per point and the
home-tree stretch at most ``8·alpha = 64ℓ = O(ℓ)``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..metrics.base import Metric
from ..observability import OBS, trace
from ..parallel import derive_seed, map_per_tree, resolve_workers
from .base import TreeCover
from .hst import PartitionHierarchy

__all__ = ["ramsey_tree_cover", "few_trees_cover"]

# Hierarchy draws actually consumed vs drawn: parallel builds draw
# speculative batches, so drawn - consumed is the speculation surplus
# (and the one place parallel and serial build *metrics* may differ
# even though the produced cover is identical).
_C_DRAWS = OBS.registry.counter("cover.ramsey.draws")
_C_CONSUMED = OBS.registry.counter("cover.ramsey.draws_consumed")
_C_FALLBACK_HOMES = OBS.registry.counter("cover.ramsey.fallback_homes")


def _draw_hierarchy(ctx, task_seed: int):
    """Per-tree fan-out unit: one CKR partition hierarchy draw.

    Each draw owns an RNG seeded by a value derived from the master
    seed (see :func:`repro.parallel.derive_seed`), so the sequence of
    hierarchies is a pure function of the master seed — identical for
    serial, 2-worker and 8-worker builds.
    """
    alpha = ctx.payload
    hierarchy = PartitionHierarchy(ctx.metric, alpha, random.Random(task_seed))
    return hierarchy.to_cover_tree(), hierarchy.padded


def ramsey_tree_cover(
    metric: Metric,
    ell: int = 2,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    workers: Optional[int] = None,
) -> TreeCover:
    """A Ramsey tree cover with stretch ``O(ℓ)`` for a general metric.

    Parameters
    ----------
    ell:
        The stretch/size tradeoff knob: larger ``ell`` means fewer
        padded points per iteration (more trees) but the theory trades
        it the other way — ``O(ℓ n^{1/ℓ})`` trees, stretch ``O(ℓ)``.
    max_iterations:
        Safety valve; once exceeded, the remaining points are homed to
        the tree where their measured worst stretch is smallest (their
        guarantee then is measured, not provable).
    workers:
        Worker processes for the hierarchy draws.  Parallel runs draw
        speculative batches (one draw per worker) and consume them in
        iteration order; since draw ``t`` is always seeded by
        ``derive_seed(seed, t)``, the cover is identical for every
        worker count — surplus draws past the stopping point are
        discarded.
    """
    if ell < 1:
        raise ValueError("ell must be at least 1")
    with trace("ramsey_cover", n=metric.n, ell=ell):
        return _ramsey_tree_cover(metric, ell, seed, max_iterations, workers)


def _ramsey_tree_cover(
    metric: Metric,
    ell: int,
    seed: int,
    max_iterations: Optional[int],
    workers: Optional[int],
) -> TreeCover:
    alpha = 8.0 * ell
    if max_iterations is None:
        max_iterations = 40 * max(1, round(ell * metric.n ** (1.0 / ell)))

    batch = max(1, resolve_workers(workers))
    trees = []
    home: List[Optional[int]] = [None] * metric.n
    remaining = set(range(metric.n))
    iterations = 0
    next_draw = 0
    while remaining and iterations < max_iterations:
        count = min(batch, max_iterations - iterations)
        seeds = [derive_seed(seed, next_draw + t) for t in range(count)]
        next_draw += count
        draws = map_per_tree(
            _draw_hierarchy, seeds, workers=workers, metric=metric, payload=alpha
        )
        if OBS.enabled:
            _C_DRAWS.inc(len(draws))
        for cover_tree, padded in draws:
            if not remaining:
                break
            iterations += 1
            if OBS.enabled:
                _C_CONSUMED.inc()
            newly = remaining & padded
            if not newly:
                continue
            index = len(trees)
            trees.append(cover_tree)
            for p in newly:
                home[p] = index
            remaining -= newly

    if remaining:
        # Fallback: home leftover points to their empirically best tree.
        if OBS.enabled:
            _C_FALLBACK_HOMES.inc(len(remaining))
        if not trees:
            hierarchy = PartitionHierarchy(
                metric, alpha, random.Random(derive_seed(seed, next_draw))
            )
            trees.append(hierarchy.to_cover_tree())
        for p in remaining:
            best_index = 0
            best = float("inf")
            for index, cover_tree in enumerate(trees):
                worst = max(
                    cover_tree.tree_distance(p, q) / metric.distance(p, q)
                    for q in range(metric.n)
                    if q != p
                )
                if worst < best:
                    best = worst
                    best_index = index
            home[p] = best_index
    return TreeCover(metric, trees, home=[h for h in home])


def few_trees_cover(
    metric: Metric, ell: int, seed: int = 0, workers: Optional[int] = None
) -> TreeCover:
    """The few-trees tradeoff of Table 1: exactly ``ℓ`` trees.

    [BFN19] prove that ``ℓ`` trees suffice for stretch
    ``O(n^{1/ℓ} log^{1-1/ℓ} n)``.  We substitute the randomized
    equivalent: draw ``ℓ`` independent partition hierarchies (with a
    padding parameter that makes each point likely padded in at least
    one) and home every point to its empirically best tree.  The stretch
    is measured rather than proven; benches record it against the
    theoretical curve.  The ℓ draws are independent (per-draw derived
    seeds) and fan out across ``workers`` processes.
    """
    if ell < 1:
        raise ValueError("ell must be at least 1")
    # With alpha ~ n^{1/ell} the padding probability per hierarchy is a
    # constant, so ell independent draws cover most points.
    alpha = 8.0 * max(1.0, metric.n ** (1.0 / ell))
    with trace("few_trees_cover", n=metric.n, ell=ell):
        draws = map_per_tree(
            _draw_hierarchy,
            [derive_seed(seed, t) for t in range(ell)],
            workers=workers,
            metric=metric,
            payload=alpha,
        )
        if OBS.enabled:
            _C_DRAWS.inc(len(draws))
            _C_CONSUMED.inc(len(draws))
        return _few_trees_home(metric, ell, draws)


def _few_trees_home(metric: Metric, ell: int, draws) -> TreeCover:
    trees = [cover_tree for cover_tree, _ in draws]
    padded_sets = [padded for _, padded in draws]

    home: List[int] = []
    for p in range(metric.n):
        padded_in = [t for t in range(ell) if p in padded_sets[t]]
        if padded_in:
            home.append(padded_in[0])
            continue
        best_index = 0
        best = float("inf")
        for index, cover_tree in enumerate(trees):
            worst = max(
                cover_tree.tree_distance(p, q) / metric.distance(p, q)
                for q in range(metric.n)
                if q != p
            )
            if worst < best:
                best = worst
                best_index = index
        home.append(best_index)
    return TreeCover(metric, trees, home=home)
