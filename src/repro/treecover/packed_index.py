"""Vectorized best-tree selection over a whole cover.

``TreeCover.best_tree`` — step (1) of every navigation query — scans ζ
per-tree distance oracles in a python loop for non-Ramsey covers.  At
n=600 the robust cover has ζ=1622 trees, so a single scalar query paid
1622 python-level LCA calls (and, worse, lazily built each tree's
O(n log n) sparse table on first touch).

:class:`PackedCoverIndex` concatenates the Euler tours of every cover
tree into one flat arena and builds a single ±depth sparse-table RMQ
over it, plus per-(tree, point) tables of host-vertex tour positions
and weighted depths.  One scalar selection is then a handful of
vectorized numpy ops over length-ζ vectors:

* ``lo/hi`` — two rows of the position table;
* range-minimum via two gathers from the shared sparse table (a query
  window never crosses a tree's tour segment, so the junk entries that
  span segments are never read);
* ``d = wd[p] + wd[q] − 2·wd[lca]`` with exactly the float64 op order
  of the scalar oracle, so selected indexes and distances are
  bit-identical to the legacy scan (``np.argmin`` keeps the first
  minimum, matching the scan's lowest-index tie-break).

The index serializes to a name → array dict for the checkpoint
raw-array section and reconstructs from memory-mapped views
(:meth:`arrays` / :meth:`from_arrays`).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observability import OBS, trace

__all__ = ["PackedCoverIndex"]

_C_BUILDS = OBS.registry.counter("cover.packed_index_builds")
_G_ARENA_BYTES = OBS.registry.gauge("cover.packed_arena_bytes")

# Sparse-table budget: a cover whose concatenated tour would exceed this
# keeps the legacy O(ζ) scan instead of thrashing memory.  Override via
# REPRO_PACKED_INDEX_MAX_MB (0 disables the packed index entirely).
_DEFAULT_MAX_MB = 768.0


def _max_table_bytes() -> float:
    raw = os.environ.get("REPRO_PACKED_INDEX_MAX_MB", "")
    try:
        return float(raw) * 1e6 if raw else _DEFAULT_MAX_MB * 1e6
    except ValueError:
        return _DEFAULT_MAX_MB * 1e6


class PackedCoverIndex:
    """Flat-array tree-selection oracle for one cover (read-only)."""

    __slots__ = ("first_pt", "wd_pt", "tour_depth", "wd_tour", "table", "tour_off")

    def __init__(
        self,
        first_pt: np.ndarray,
        wd_pt: np.ndarray,
        tour_depth: np.ndarray,
        wd_tour: np.ndarray,
        table: np.ndarray,
        tour_off: np.ndarray,
    ):
        self.first_pt = first_pt
        self.wd_pt = wd_pt
        self.tour_depth = tour_depth
        self.wd_tour = wd_tour
        self.table = table
        self.tour_off = tour_off

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def build(cls, trees: Sequence) -> Optional["PackedCoverIndex"]:
        """Build from ``CoverTree`` objects; ``None`` over budget."""
        zeta = len(trees)
        if zeta == 0:
            return None
        n_points = len(trees[0].vertex_of_point)
        total_tour = sum(2 * ct.tree.n - 1 for ct in trees)
        max_tour = max(2 * ct.tree.n - 1 for ct in trees)
        levels = max(1, max_tour.bit_length())
        if levels * total_tour * 4 > _max_table_bytes():
            return None
        with trace("cover.packed_index_build", trees=zeta, tour=total_tour):
            if OBS.enabled:
                _C_BUILDS.inc()
            first_pt = np.empty((zeta, n_points), dtype=np.int32)
            wd_pt = np.empty((zeta, n_points), dtype=np.float64)
            tour_depth = np.empty(total_tour, dtype=np.int32)
            wd_tour = np.empty(total_tour, dtype=np.float64)
            tour_off = np.zeros(zeta + 1, dtype=np.int64)
            offset = 0
            for t, ct in enumerate(trees):
                tree = ct.tree
                n = tree.n
                first, tour, depths = _euler_tour(tree)
                m = len(tour)
                tour_np = np.asarray(tour, dtype=np.int64)
                tour_depth[offset : offset + m] = depths
                wdepth = np.asarray(tree.weighted_depths(), dtype=np.float64)
                wd_tour[offset : offset + m] = wdepth[tour_np]
                vop = np.asarray(ct.vertex_of_point, dtype=np.int64)
                first_np = np.asarray(first, dtype=np.int64)
                first_pt[t] = first_np[vop] + offset
                wd_pt[t] = wdepth[vop]
                tour_off[t + 1] = offset = offset + m
            table = np.empty((levels, total_tour), dtype=np.int32)
            table[0] = np.arange(total_tour, dtype=np.int32)
            for j in range(1, levels):
                half = 1 << (j - 1)
                span = total_tour - (1 << j) + 1
                if span > 0:
                    left = table[j - 1, :span]
                    right = table[j - 1, half : half + span]
                    choose_right = tour_depth[right] < tour_depth[left]
                    table[j, :span] = np.where(choose_right, right, left)
                table[j, max(span, 0) :] = table[j - 1, max(span, 0) :]
        index = cls(first_pt, wd_pt, tour_depth, wd_tour, table, tour_off)
        if OBS.enabled:
            _G_ARENA_BYTES.set(index.nbytes)
        return index

    def arrays(self, prefix: str = "cov/") -> Dict[str, np.ndarray]:
        """The index as a name → array dict (raw-array checkpointing)."""
        return {
            prefix + "first": self.first_pt,
            prefix + "wpt": self.wd_pt,
            prefix + "tdepth": self.tour_depth,
            prefix + "wtour": self.wd_tour,
            prefix + "rmq": self.table,
            prefix + "toff": self.tour_off,
        }

    @classmethod
    def from_arrays(
        cls, arrays: Dict[str, np.ndarray], prefix: str = "cov/"
    ) -> "PackedCoverIndex":
        """Reconstruct from (possibly memory-mapped) arrays, zero-copy."""
        return cls(
            arrays[prefix + "first"],
            arrays[prefix + "wpt"],
            arrays[prefix + "tdepth"],
            arrays[prefix + "wtour"],
            arrays[prefix + "rmq"],
            arrays[prefix + "toff"],
        )

    # ------------------------------------------------------------------
    # Queries

    @property
    def size(self) -> int:
        return len(self.first_pt)

    @property
    def nbytes(self) -> int:
        """Total bytes across the arena's six arrays (mmap or in-RAM)."""
        return (
            self.first_pt.nbytes
            + self.wd_pt.nbytes
            + self.tour_depth.nbytes
            + self.wd_tour.nbytes
            + self.table.nbytes
            + self.tour_off.nbytes
        )

    def _lca_pos(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Tour position of the minimum-depth entry per window (vector)."""
        l = np.minimum(lo, hi)
        h = np.maximum(lo, hi)
        length = (h - l + 1).astype(np.int64)
        j = np.floor(np.log2(length)).astype(np.int64)
        a = self.table[j, l]
        b = self.table[j, h - (1 << j) + 1]
        return np.where(self.tour_depth[a] <= self.tour_depth[b], a, b)

    def best_pair(self, p: int, q: int) -> Tuple[int, float]:
        """Lowest tree index minimizing the tree distance, plus the
        distance — bit-identical to the legacy O(ζ) scalar scan."""
        best = self._lca_pos(self.first_pt[:, p], self.first_pt[:, q])
        d = (self.wd_pt[:, p] + self.wd_pt[:, q]) - 2.0 * self.wd_tour[best]
        index = int(np.argmin(d))
        return index, float(d[index])

    def best_pairs(
        self, ps: Sequence[int], qs: Sequence[int]
    ) -> List[Tuple[int, float]]:
        """Batched :meth:`best_pair` (one gather per sparse-table level)."""
        ps = np.asarray(ps, dtype=np.int64)
        qs = np.asarray(qs, dtype=np.int64)
        best = self._lca_pos(self.first_pt[:, ps], self.first_pt[:, qs])
        d = (self.wd_pt[:, ps] + self.wd_pt[:, qs]) - 2.0 * self.wd_tour[best]
        index = np.argmin(d, axis=0)
        dist = d[index, np.arange(len(ps))]
        return list(zip(index.tolist(), dist.tolist()))

    def distance(self, t: int, p: int, q: int) -> float:
        """Tree distance inside tree ``t`` (the Ramsey home-tree path)."""
        lo = int(self.first_pt[t, p])
        hi = int(self.first_pt[t, q])
        if lo > hi:
            lo, hi = hi, lo
        j = (hi - lo + 1).bit_length() - 1
        a = self.table[j, lo]
        b = self.table[j, hi - (1 << j) + 1]
        w = a if self.tour_depth[a] <= self.tour_depth[b] else b
        return float((self.wd_pt[t, p] + self.wd_pt[t, q]) - 2.0 * self.wd_tour[w])

    def distances(
        self, ts: Sequence[int], ps: Sequence[int], qs: Sequence[int]
    ) -> np.ndarray:
        """Elementwise tree distances for (tree, p, q) triples."""
        ts = np.asarray(ts, dtype=np.int64)
        ps = np.asarray(ps, dtype=np.int64)
        qs = np.asarray(qs, dtype=np.int64)
        best = self._lca_pos(self.first_pt[ts, ps], self.first_pt[ts, qs])
        return (self.wd_pt[ts, ps] + self.wd_pt[ts, qs]) - 2.0 * self.wd_tour[best]


def _euler_tour(tree) -> Tuple[List[int], List[int], List[int]]:
    """(first-visit positions, tour vertices, tour depths) of one tree."""
    n = tree.n
    root = tree.root
    parents = tree.parents
    children = tree.children
    first = [0] * n
    tour = [root]
    depths = [0]
    cursor = [0] * n
    v = root
    d = 0
    while True:
        ch = children[v]
        i = cursor[v]
        if i < len(ch):
            cursor[v] = i + 1
            v = ch[i]
            d += 1
            first[v] = len(tour)
            tour.append(v)
            depths.append(d)
        else:
            if v == root:
                break
            v = parents[v]
            d -= 1
            tour.append(v)
            depths.append(d)
    return first, tour, depths
